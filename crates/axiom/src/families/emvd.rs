//! Theorem 5.3 (Sagiv–Walecka): no k-ary complete axiomatization for
//! embedded multivalued dependencies.
//!
//! The family over `R(A_1, ..., A_{k+1}, B)`:
//!
//! ```text
//! Σ_k = { A_1 ->> A_2 | B,  A_2 ->> A_3 | B,  ...,  A_k ->> A_{k+1} | B,
//!         A_{k+1} ->> A_1 | B }
//! σ_k = A_1 ->> A_{k+1} | B
//! ```
//!
//! Corollary 5.2 requires (i) `Σ ⊨ σ`, (ii) no single member implies `σ`,
//! and (iii) any ≤k-subset's consequences are single-member consequences.
//! We machine-check (i) with a bounded EMVD chase (a proof-only
//! semi-decision procedure) and (ii) with explicitly constructed
//! countermodels; (iii) is Sagiv & Walecka's combinatorial theorem, which
//! we cite rather than re-verify (it quantifies over all EMVDs).

use depkit_core::attr::{attrs, Attr, AttrSeq};
use depkit_core::database::Database;
use depkit_core::dependency::{Dependency, Emvd};
use depkit_core::schema::{DatabaseSchema, RelationScheme};
use std::collections::HashSet;

/// The Sagiv–Walecka family for parameter `k ≥ 2`.
#[derive(Debug, Clone)]
pub struct SagivWalecka {
    /// The parameter `k`.
    pub k: usize,
    /// The schema `R(A_1..A_{k+1}, B)`.
    pub schema: DatabaseSchema,
    /// `Σ_k` (k + 1 EMVDs).
    pub sigma: Vec<Emvd>,
    /// `σ_k = A_1 ->> A_{k+1} | B`.
    pub target: Emvd,
}

fn a(i: usize) -> String {
    format!("A{i}")
}

impl SagivWalecka {
    /// Build the family (`k ≥ 2`; at `k = 1` the target coincides with a
    /// member of `Σ` and the family degenerates).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "family needs k >= 2");
        let mut names: Vec<String> = (1..=k + 1).map(a).collect();
        names.push("B".into());
        let scheme = RelationScheme::new(
            "R",
            AttrSeq::new(names.iter().map(Attr::new).collect()).expect("distinct"),
        );
        let schema = DatabaseSchema::new(vec![scheme]).expect("single scheme");
        let mut sigma = Vec::new();
        for i in 1..=k {
            sigma.push(
                Emvd::new("R", attrs(&[&a(i)]), attrs(&[&a(i + 1)]), attrs(&["B"]))
                    .expect("disjoint"),
            );
        }
        sigma.push(
            Emvd::new("R", attrs(&[&a(k + 1)]), attrs(&[&a(1)]), attrs(&["B"])).expect("disjoint"),
        );
        let target =
            Emvd::new("R", attrs(&[&a(1)]), attrs(&[&a(k + 1)]), attrs(&["B"])).expect("disjoint");
        SagivWalecka {
            k,
            schema,
            sigma,
            target,
        }
    }

    /// `Σ_k` as dependencies.
    pub fn sigma_deps(&self) -> Vec<Dependency> {
        self.sigma.iter().cloned().map(Into::into).collect()
    }

    /// Bounded EMVD chase proving `Σ ⊨ σ` (condition (i) of
    /// Corollary 5.2): returns the number of rounds on success, `None` if
    /// the budget expired first.
    ///
    /// The tableau is two tuples agreeing exactly on the target's `X`;
    /// EMVDs act as tuple-generating rules inserting the recombination
    /// with fresh values in unconstrained columns; the goal is the
    /// target's own recombination.
    pub fn chase_proves_target(&self, max_rounds: usize) -> Option<usize> {
        let scheme = &self.schema.schemes()[0];
        let width = scheme.arity();
        let col = |seq: &AttrSeq| scheme.columns(seq).expect("well-formed");

        // Fresh-value counter; tuples are vectors of usize.
        let mut next: usize = 0;
        let mut fresh = || {
            next += 1;
            next - 1
        };
        let t1: Vec<usize> = (0..width).map(|_| fresh()).collect();
        let mut t2: Vec<usize> = (0..width).map(|_| fresh()).collect();
        for &c in &col(&self.target.x) {
            t2[c] = t1[c];
        }

        let goal_cols: (Vec<usize>, Vec<usize>, Vec<usize>) = (
            col(&self.target.x),
            col(&self.target.y),
            col(&self.target.z),
        );
        let goal = |rel: &HashSet<Vec<usize>>, t1: &[usize], t2: &[usize]| {
            rel.iter().any(|t3| {
                goal_cols.0.iter().all(|&c| t3[c] == t1[c])
                    && goal_cols.1.iter().all(|&c| t3[c] == t1[c])
                    && goal_cols.2.iter().all(|&c| t3[c] == t2[c])
            })
        };

        let mut rel: HashSet<Vec<usize>> = HashSet::from([t1.clone(), t2.clone()]);
        for round in 0..max_rounds {
            if goal(&rel, &t1, &t2) {
                return Some(round);
            }
            // One breadth-first layer of EMVD applications.
            let snapshot: Vec<Vec<usize>> = rel.iter().cloned().collect();
            let mut added = false;
            for e in &self.sigma {
                let (xc, yc, zc) = (col(&e.x), col(&e.y), col(&e.z));
                for u in &snapshot {
                    for v in &snapshot {
                        if xc.iter().any(|&c| u[c] != v[c]) {
                            continue;
                        }
                        // Does a recombination witness already exist?
                        let exists = rel.iter().any(|t3| {
                            xc.iter().all(|&c| t3[c] == u[c])
                                && yc.iter().all(|&c| t3[c] == u[c])
                                && zc.iter().all(|&c| t3[c] == v[c])
                        });
                        if exists {
                            continue;
                        }
                        let mut w: Vec<usize> = (0..width).map(|_| usize::MAX).collect();
                        for &c in &xc {
                            w[c] = u[c];
                        }
                        for &c in &yc {
                            w[c] = u[c];
                        }
                        for &c in &zc {
                            w[c] = v[c];
                        }
                        for slot in w.iter_mut() {
                            if *slot == usize::MAX {
                                *slot = fresh();
                            }
                        }
                        rel.insert(w);
                        added = true;
                    }
                }
            }
            if !added {
                return if goal(&rel, &t1, &t2) {
                    Some(round + 1)
                } else {
                    None
                };
            }
        }
        if goal(&rel, &t1, &t2) {
            Some(max_rounds)
        } else {
            None
        }
    }

    /// Condition (ii) of Corollary 5.2: for each single member `δ ∈ Σ`, a
    /// countermodel satisfying `δ` but violating `σ`.
    ///
    /// Construction: two tuples agreeing only on `A_1` (and on `δ`'s own
    /// `X` column if it is not `A_1`, arranged so `δ` holds vacuously or
    /// by an explicit witness) with distinct `B`s and distinct `A_{k+1}`s,
    /// and no recombining third tuple.
    pub fn single_member_countermodel(&self, member: usize) -> Database {
        let delta = &self.sigma[member];
        let width = self.schema.schemes()[0].arity();
        let scheme = &self.schema.schemes()[0];
        let xcol = scheme.columns(&delta.x).expect("well-formed")[0];
        let a1 = scheme.column(&Attr::new(a(1))).expect("A1 exists");

        // Two tuples agreeing on A_1 (to arm the target) and disagreeing
        // everywhere else — except we must keep δ satisfied: make the two
        // tuples DISAGREE on δ's X column whenever that column is not A_1,
        // so δ holds vacuously. When δ's X *is* A_1 (the i = 1 member),
        // add δ's recombination witness explicitly; it does not recombine
        // the target because Y(δ) = A_2 ≠ A_{k+1} when k ≥ 2.
        let t1: Vec<i64> = (0..width).map(|c| 100 + c as i64).collect();
        let mut t2: Vec<i64> = (0..width).map(|c| 200 + c as i64).collect();
        t2[a1] = t1[a1];

        let mut rows: Vec<Vec<i64>> = vec![t1.clone(), t2.clone()];
        if xcol == a1 {
            let ycol = scheme.columns(&delta.y).expect("well-formed")[0];
            let zcol = scheme.columns(&delta.z).expect("well-formed")[0];
            // Recombinations in both directions.
            for (u, v) in [(&t1, &t2), (&t2, &t1)] {
                let mut w: Vec<i64> = (0..width).map(|c| 300 + c as i64).collect();
                w[xcol] = u[xcol];
                w[ycol] = u[ycol];
                w[zcol] = v[zcol];
                rows.push(w);
            }
        }
        let mut db = Database::empty(self.schema.clone());
        let rows_ref: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        db.insert_ints("R", &rows_ref).expect("arity");
        db
    }

    /// Machine-check conditions (i) and (ii) of Corollary 5.2.
    pub fn verify(&self, chase_rounds: usize) -> Result<EmvdReport, String> {
        let rounds = self
            .chase_proves_target(chase_rounds)
            .ok_or_else(|| format!("EMVD chase did not prove σ within {chase_rounds} rounds"))?;
        for m in 0..self.sigma.len() {
            let db = self.single_member_countermodel(m);
            let delta: Dependency = self.sigma[m].clone().into();
            if !db.satisfies(&delta).map_err(|e| e.to_string())? {
                return Err(format!("countermodel {m} violates its own member"));
            }
            if db
                .satisfies(&self.target.clone().into())
                .map_err(|e| e.to_string())?
            {
                return Err(format!("countermodel {m} fails to violate σ"));
            }
        }
        Ok(EmvdReport {
            k: self.k,
            chase_rounds: rounds,
            members: self.sigma.len(),
        })
    }
}

/// Summary of a successful Sagiv–Walecka verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmvdReport {
    /// The parameter `k`.
    pub k: usize,
    /// Rounds the EMVD chase needed for `Σ ⊨ σ`.
    pub chase_rounds: usize,
    /// `|Σ_k| = k + 1`.
    pub members: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_shape() {
        let f = SagivWalecka::new(3);
        assert_eq!(f.sigma.len(), 4);
        assert_eq!(f.schema.schemes()[0].arity(), 5);
        assert_eq!(f.target.to_string(), "R: A1 ->> A4 | B");
    }

    #[test]
    fn corollary_5_2_conditions_check() {
        for k in 2..=3 {
            let f = SagivWalecka::new(k);
            let report = f.verify(16).unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert_eq!(report.members, k + 1);
            assert!(report.chase_rounds >= 1);
        }
    }

    #[test]
    fn chase_needs_the_whole_cycle() {
        // Dropping one Σ member must make the bounded chase fail to prove
        // σ (this is the k-ary gap in miniature).
        let f = SagivWalecka::new(2);
        for drop in 0..f.sigma.len() {
            let mut reduced = f.clone();
            reduced.sigma.remove(drop);
            assert!(
                reduced.chase_proves_target(8).is_none(),
                "dropping member {drop} should break the proof"
            );
        }
    }

    #[test]
    fn countermodels_are_genuine() {
        let f = SagivWalecka::new(2);
        for m in 0..f.sigma.len() {
            let db = f.single_member_countermodel(m);
            assert!(db.satisfies(&f.sigma[m].clone().into()).unwrap());
            assert!(!db.satisfies(&f.target.clone().into()).unwrap());
        }
    }
}
