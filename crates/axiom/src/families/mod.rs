//! The concrete dependency families behind the paper's negative results.
//!
//! * [`theorem44`] — finite implication ≠ unrestricted implication for
//!   FDs + INDs (Theorem 4.4; Figures 4.1 and 4.2).
//! * [`emvd`] — the Sagiv–Walecka EMVD family of Theorem 5.3.
//! * [`section6`] — no k-ary complete axiomatization for **finite**
//!   implication of FDs + INDs (+ RDs) (Theorem 6.1; Figure 6.1).
//! * [`section7`] — no k-ary complete axiomatization for **unrestricted**
//!   implication (Theorem 7.1; Lemmas 7.2–7.9; Figures 7.1–7.5).

pub mod emvd;
pub mod section6;
pub mod section7;
pub mod theorem44;
