//! Theorem 6.1: no k-ary complete axiomatization for **finite**
//! implication of FDs and INDs (nor of FDs, INDs, and RDs).
//!
//! The family (paper, proof of Theorem 6.1), with arithmetic mod `k + 1`:
//!
//! ```text
//! schemes:  R_0(A, B), ..., R_k(A, B)
//! Σ  =  { R_i: A → B,  R_i[A] ⊆ R_{i+1}[B]  :  0 ≤ i ≤ k }
//! σ  =  R_0[B] ⊆ R_k[A]          (the reversal of the cycle IND at i = k)
//! Γ  =  Σ ∪ { trivial FDs, INDs, RDs }
//! ```
//!
//! Over finite databases the cardinality chain
//! `|r_0[A]| ≤ |r_1[B]| ≤ |r_1[A]| ≤ ... ≤ |r_0[B]| ≤ |r_0[A]|` collapses
//! to equalities, so `Σ ⊨_fin σ` — the `depkit-solver` counting engine
//! derives it. But `Γ` is closed under k-ary finite implication: dropping
//! *any one* IND `δ` from `Σ` admits the Armstrong database of Figure 6.1,
//! which satisfies exactly `Γ − δ` (property (6.1), machine-checked here
//! over the full dependency universe). By Theorem 5.1, no k-ary complete
//! axiomatization exists. All dependencies involved are unary and every
//! scheme has two attributes — the sharpest form the paper states.

use depkit_core::attr::attrs;
use depkit_core::database::Database;
use depkit_core::dependency::{Dependency, Fd, Ind, Rd};
use depkit_core::schema::{DatabaseSchema, RelationScheme};
use depkit_core::symbolic::{Pattern, SymbolicDatabase};
use depkit_core::value::Value;
use depkit_solver::finite::FiniteEngine;

/// The Theorem 6.1 family for a given `k`.
#[derive(Debug, Clone)]
pub struct Section6 {
    /// The parameter `k` (the family defeats k-ary axiomatizations).
    pub k: usize,
    /// Schemes `R_0(A, B) ... R_k(A, B)`.
    pub schema: DatabaseSchema,
    /// The FDs `R_i: A → B`.
    pub fds: Vec<Fd>,
    /// The cycle INDs `R_i[A] ⊆ R_{i+1}[B]` (index `i` = position).
    pub inds: Vec<Ind>,
    /// The target `σ = R_0[B] ⊆ R_k[A]`.
    pub target: Ind,
}

fn rel(i: usize) -> String {
    format!("R{i}")
}

impl Section6 {
    /// Build the family (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "the family needs k >= 1");
        let schemes = (0..=k)
            .map(|i| RelationScheme::new(rel(i).as_str(), attrs(&["A", "B"])))
            .collect();
        let schema = DatabaseSchema::new(schemes).expect("distinct names");
        let fds = (0..=k)
            .map(|i| Fd::new(rel(i).as_str(), attrs(&["A"]), attrs(&["B"])))
            .collect();
        let inds = (0..=k)
            .map(|i| {
                Ind::new(
                    rel(i).as_str(),
                    attrs(&["A"]),
                    rel((i + 1) % (k + 1)).as_str(),
                    attrs(&["B"]),
                )
                .expect("unary")
            })
            .collect();
        let target = Ind::new(
            rel(0).as_str(),
            attrs(&["B"]),
            rel(k).as_str(),
            attrs(&["A"]),
        )
        .expect("unary");
        Section6 {
            k,
            schema,
            fds,
            inds,
            target,
        }
    }

    /// `Σ` as a dependency list.
    pub fn sigma(&self) -> Vec<Dependency> {
        let mut out: Vec<Dependency> = self.fds.iter().cloned().map(Into::into).collect();
        out.extend(self.inds.iter().cloned().map(Dependency::from));
        out
    }

    /// The finite dependency universe used for the machine checks: all
    /// unary FDs (including constant-column FDs `R: ∅ → X`), all unary and
    /// binary INDs (binary ones normalized to left side `[A, B]`), and all
    /// unary RDs over the schema. Trivial dependencies included.
    pub fn universe(&self) -> Vec<Dependency> {
        let mut out: Vec<Dependency> = Vec::new();
        let sides = ["A", "B"];
        for i in 0..=self.k {
            // FDs with LHS ∅, A, or B and a single-attribute RHS.
            for rhs in sides {
                out.push(
                    Fd::new(
                        rel(i).as_str(),
                        depkit_core::AttrSeq::empty(),
                        attrs(&[rhs]),
                    )
                    .into(),
                );
                for lhs in sides {
                    out.push(Fd::new(rel(i).as_str(), attrs(&[lhs]), attrs(&[rhs])).into());
                }
            }
            // Unary RD.
            out.push(
                Rd::new(rel(i).as_str(), attrs(&["A"]), attrs(&["B"]))
                    .expect("unary")
                    .into(),
            );
            for j in 0..=self.k {
                // Unary INDs.
                for x in sides {
                    for y in sides {
                        out.push(
                            Ind::new(rel(i).as_str(), attrs(&[x]), rel(j).as_str(), attrs(&[y]))
                                .expect("unary")
                                .into(),
                        );
                    }
                }
                // Binary INDs with canonical left side [A, B].
                for rhs in [["A", "B"], ["B", "A"]] {
                    out.push(
                        Ind::new(
                            rel(i).as_str(),
                            attrs(&["A", "B"]),
                            rel(j).as_str(),
                            attrs(&rhs),
                        )
                        .expect("binary")
                        .into(),
                    );
                }
            }
        }
        out
    }

    /// Membership in `Γ = Σ ∪ trivia`.
    pub fn in_gamma(&self, dep: &Dependency) -> bool {
        dep.is_trivial() || self.sigma().contains(dep)
    }

    /// The Armstrong database of Figure 6.1, rotated so that the one
    /// violated dependency is the cycle IND at index `missing`
    /// (`R_{missing}[A] ⊆ R_{missing+1}[B]`).
    ///
    /// Base construction (paper, proof of Theorem 6.1; `missing = k`):
    ///
    /// ```text
    /// r_0 = { ((0,0),(0,k+1)), ((1,0),(1,k+1)), ((2,0),(1,k+1)) }
    /// r_i = { ((m,i),(m,i−1))      : 0 ≤ m ≤ 2i+1 }
    ///     ∪ { ((2i+2,i),(2i+1,i−1)) }                 for 1 ≤ i ≤ k
    /// ```
    pub fn armstrong_database(&self, missing: usize) -> Database {
        let k = self.k;
        assert!(missing <= k);
        let mut db = Database::empty(self.schema.clone());
        // The base database violates the IND at index k. To violate the
        // IND at `missing` instead, send base relation index i to actual
        // relation index (i + missing + 1) mod (k + 1): the base IND
        // "R_k[A] ⊆ R_0[B]" then lands on actual indices
        // (missing, missing + 1).
        let place = |base: usize| (base + missing + 1) % (k + 1);
        // Base r_0.
        let rows0 = vec![
            (Value::pair(0, 0), Value::pair(0, k as i64 + 1)),
            (Value::pair(1, 0), Value::pair(1, k as i64 + 1)),
            (Value::pair(2, 0), Value::pair(1, k as i64 + 1)),
        ];
        let name0 = depkit_core::RelName::new(rel(place(0)));
        for (a, b) in rows0 {
            db.insert(&name0, depkit_core::Tuple::new(vec![a, b]))
                .expect("arity 2");
        }
        // Base r_i, 1 ≤ i ≤ k.
        for i in 1..=k {
            let name = depkit_core::RelName::new(rel(place(i)));
            let (ii, prev) = (i as i64, i as i64 - 1);
            for m in 0..=(2 * ii + 1) {
                db.insert(
                    &name,
                    depkit_core::Tuple::new(vec![Value::pair(m, ii), Value::pair(m, prev)]),
                )
                .expect("arity 2");
            }
            db.insert(
                &name,
                depkit_core::Tuple::new(vec![
                    Value::pair(2 * ii + 2, ii),
                    Value::pair(2 * ii + 1, prev),
                ]),
            )
            .expect("arity 2");
        }
        db
    }

    /// Machine-check property (6.1) for the database with dependency
    /// `δ = inds[missing]` removed: for every `τ` in the universe,
    /// `d ⊨ τ ⟺ τ ∈ Γ − δ`. Returns the first discrepancy.
    pub fn verify_armstrong_property(&self, missing: usize) -> Result<(), String> {
        let d = self.armstrong_database(missing);
        let delta: Dependency = self.inds[missing].clone().into();
        for tau in self.universe() {
            let holds = d
                .satisfies(&tau)
                .map_err(|e| format!("checking {tau}: {e}"))?;
            let in_gamma_minus_delta = self.in_gamma(&tau) && tau != delta;
            if holds != in_gamma_minus_delta {
                return Err(format!(
                    "property (6.1) fails at missing={missing}: {tau} holds={holds}, \
                     in Γ−δ={in_gamma_minus_delta}"
                ));
            }
        }
        Ok(())
    }

    /// `Σ ⊨_fin σ`, derived by the counting engine.
    pub fn finite_implication_holds(&self) -> bool {
        FiniteEngine::new(&self.sigma()).implies(&self.target.clone().into())
    }

    /// The infinite witness showing `Σ ⊭ σ` under *unrestricted*
    /// implication: `r_i = {((k+1)m + i + 1, (k+1)m + i) : m ≥ 0}`
    /// (the Figure 4.1 chain threaded around the cycle).
    pub fn infinite_countermodel(&self) -> SymbolicDatabase {
        let step = self.k as i64 + 1;
        let mut db = SymbolicDatabase::empty(self.schema.clone());
        for i in 0..=self.k {
            db.relation_mut(&rel(i))
                .expect("exists")
                .add_pattern(Pattern::from_pairs(&[
                    (step, i as i64 + 1),
                    (step, i as i64),
                ]))
                .expect("arity 2");
        }
        db
    }

    /// Full machine-check of the theorem's ingredients for this `k`.
    pub fn verify(&self) -> Result<Section6Report, String> {
        // 1. Σ ⊨_fin σ and σ ∉ Γ.
        if !self.finite_implication_holds() {
            return Err("counting engine failed to derive σ".into());
        }
        if self.in_gamma(&self.target.clone().into()) {
            return Err("σ unexpectedly in Γ".into());
        }
        // 2. Property (6.1) for every rotation.
        for missing in 0..=self.k {
            self.verify_armstrong_property(missing)?;
        }
        // 3. Unrestricted implication fails (infinite witness).
        let witness = self.infinite_countermodel();
        for d in self.sigma() {
            if !witness.satisfies(&d).map_err(|e| e.to_string())? {
                return Err(format!("infinite witness violates Σ member {d}"));
            }
        }
        if witness
            .satisfies(&self.target.clone().into())
            .map_err(|e| e.to_string())?
        {
            return Err("infinite witness unexpectedly satisfies σ".into());
        }
        Ok(Section6Report {
            k: self.k,
            armstrong_databases_checked: self.k + 1,
            universe_size: self.universe().len(),
        })
    }
}

/// Summary of a successful Section 6 verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section6Report {
    /// The family parameter.
    pub k: usize,
    /// Number of rotated Figure 6.1 databases fully checked.
    pub armstrong_databases_checked: usize,
    /// Size of the dependency universe checked against property (6.1).
    pub universe_size: usize,
}

/// An exact finite-implication oracle for subsets of `Γ` on this family:
/// `T ⊨_fin τ` is answered positively by the sound counting engine and
/// refuted by whichever rotated Armstrong database models `T` but not `τ`.
/// Panics if neither side answers — by the paper's proof of Theorem 6.1
/// that cannot happen for `T ⊆ Γ`, so a panic indicates a bug.
pub struct Section6Oracle {
    family: Section6,
    databases: Vec<Database>,
}

impl Section6Oracle {
    /// Build the oracle (constructs all `k + 1` rotated databases).
    pub fn new(family: &Section6) -> Self {
        let databases = (0..=family.k)
            .map(|m| family.armstrong_database(m))
            .collect();
        Section6Oracle {
            family: family.clone(),
            databases,
        }
    }
}

impl crate::kary::ImplicationOracle for Section6Oracle {
    fn implies(&self, sigma: &[Dependency], tau: &Dependency) -> bool {
        if tau.is_trivial() || sigma.contains(tau) {
            return true;
        }
        if FiniteEngine::new(sigma).implies(tau) {
            return true;
        }
        for d in &self.databases {
            let models_sigma = sigma.iter().all(|s| d.satisfies(s).unwrap_or(false));
            if models_sigma && !d.satisfies(tau).unwrap_or(true) {
                return false;
            }
        }
        // Last resort: the symbolic infinite countermodel (handles τ that
        // hold finitely but are asked under Σ-subsets modeled by it).
        let w = self.family.infinite_countermodel();
        let models_sigma = sigma.iter().all(|s| w.satisfies(s).unwrap_or(false));
        if models_sigma && !w.satisfies(tau).unwrap_or(true) {
            return false;
        }
        panic!(
            "Section6Oracle undecided for T={sigma:?}, τ={tau} — outside the family's \
             guaranteed fragment"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kary::{close_under_k_ary, implication_closure_witness};
    use std::collections::BTreeSet;

    #[test]
    fn family_shape() {
        let f = Section6::new(3);
        assert_eq!(f.schema.schemes().len(), 4);
        assert_eq!(f.fds.len(), 4);
        assert_eq!(f.inds.len(), 4);
        assert_eq!(f.target.to_string(), "R0[B] <= R3[A]");
        assert_eq!(f.inds[3].to_string(), "R3[A] <= R0[B]");
        // Everything is unary over two-attribute schemes.
        assert!(f.fds.iter().all(|fd| fd.is_unary()));
        assert!(f.inds.iter().all(|i| i.is_unary()));
        assert_eq!(f.schema.max_arity(), 2);
    }

    #[test]
    fn figure_6_1_matches_paper_at_k3() {
        // Spot-check the printed Figure 6.1 (k = 3): r_3 has 9 tuples with
        // A entries (0,3)..(8,3) and the last B entry repeated.
        let f = Section6::new(3);
        let d = f.armstrong_database(3); // base orientation
        let r3 = d.relation(&depkit_core::RelName::new("R3")).unwrap();
        assert_eq!(r3.len(), 9);
        let a_col = r3.project(&[0]);
        assert!(a_col.contains(&vec![Value::pair(8, 3)]));
        let b_col = r3.project(&[1]);
        // B entries (0,2)..(7,2): 8 distinct values for 9 tuples.
        assert_eq!(b_col.len(), 8);
        // r_0 has 3 tuples with B entries (·, k+1) = (·, 4).
        let r0 = d.relation(&depkit_core::RelName::new("R0")).unwrap();
        assert_eq!(r0.len(), 3);
        assert!(r0.project(&[1]).contains(&vec![Value::pair(0, 4)]));
    }

    #[test]
    fn verify_small_k() {
        for k in 1..=4 {
            let f = Section6::new(k);
            let report = f.verify().unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert_eq!(report.armstrong_databases_checked, k + 1);
        }
    }

    #[test]
    fn theorem_5_1_gap_at_small_k() {
        // The full Theorem 5.1 pipeline: Γ ∩ universe is closed under
        // k-ary finite implication, yet implies σ ∉ Γ.
        for k in 1..=2 {
            let f = Section6::new(k);
            let oracle = Section6Oracle::new(&f);
            let universe = f.universe();
            let gamma: BTreeSet<Dependency> =
                universe.iter().filter(|d| f.in_gamma(d)).cloned().collect();
            let closed = close_under_k_ary(&universe, &gamma, k, &oracle);
            assert_eq!(
                closed, gamma,
                "k={k}: Γ must already be closed under k-ary implication"
            );
            // Any implied-but-missing sentence witnesses non-closure; the
            // universe may surface the FD flip R0: B → A before σ itself.
            let witness = implication_closure_witness(&universe, &gamma, &oracle)
                .unwrap_or_else(|| panic!("k={k}: expected a closure witness"));
            assert!(!gamma.contains(&witness), "k={k}");
            // And σ specifically is implied by the full Γ yet outside it.
            use crate::kary::ImplicationOracle as _;
            let gamma_vec: Vec<Dependency> = gamma.iter().cloned().collect();
            let sigma_dep: Dependency = f.target.clone().into();
            assert!(oracle.implies(&gamma_vec, &sigma_dep), "k={k}");
            assert!(!gamma.contains(&sigma_dep), "k={k}");
        }
    }

    #[test]
    fn full_sigma_is_not_kary_limited() {
        // Sanity: with all k+1 INDs available (a (k+1)-sized subset), the
        // oracle confirms σ — the gap is about subsets of size ≤ k only.
        let f = Section6::new(2);
        let oracle = Section6Oracle::new(&f);
        use crate::kary::ImplicationOracle as _;
        assert!(oracle.implies(&f.sigma(), &f.target.clone().into()));
    }

    #[test]
    fn armstrong_database_violates_exactly_delta() {
        let f = Section6::new(2);
        for missing in 0..=2 {
            let d = f.armstrong_database(missing);
            for (i, ind) in f.inds.iter().enumerate() {
                let holds = d.satisfies(&ind.clone().into()).unwrap();
                assert_eq!(holds, i != missing, "missing={missing}, ind {i}");
            }
            for fd in &f.fds {
                assert!(d.satisfies(&fd.clone().into()).unwrap());
            }
            assert!(!d.satisfies(&f.target.clone().into()).unwrap());
        }
    }
}
