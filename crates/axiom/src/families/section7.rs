//! Theorem 7.1: no k-ary complete axiomatization for **unrestricted**
//! implication of FDs and INDs (nor of FDs, INDs, and RDs).
//!
//! The family, for parameters `k < n` (paper, Section 7):
//!
//! ```text
//! schemes:  F(A,B,C), G_0(A,B,C), G_1..G_n(B,C), H_0..H_{n−1}(B,C), H_n(B,C,D)
//!
//! λ (INDs):  α_0 = F[A,B] ⊆ G_0[A,B]
//!            α_i = F[B] ⊆ G_i[B]               (1 ≤ i ≤ n)
//!            β_i = F[B] ⊆ H_i[B]               (0 ≤ i ≤ n−1)
//!            β_n = F[B,C] ⊆ H_n[B,D]
//!            γ_i = H_i[B,C] ⊆ G_i[B,C]         (0 ≤ i ≤ n)
//!            γ'_i = H_i[B,C] ⊆ G_{i+1}[B,C]    (0 ≤ i ≤ n−1)
//! FDs in Σ:  δ_0 = G_0: A → C,   ε_i = G_i: B → C,   θ_n = H_n: C → D
//! σ        = F: A → C
//! φ        = {F: A→C, F: B→C} ∪ {G_0: A→C} ∪ {G_i: B→C} ∪ {H_i: B→C}
//!            ∪ {H_n: C→D}        (the FDs Σ implies, relation by relation)
//! Γ        = φ⁺ ∪ λ⁺ ∪ ω − {σ}   (ω = trivial RDs)
//! ```
//!
//! Machine-checked content (each lemma gets a function):
//!
//! * **Lemma 7.2** — `Σ ⊨ σ`: proved by the goal-directed FD+IND chase.
//! * **Lemma 7.4** — Σ implies no nontrivial RD: witness database
//!   [`Section7::fig_7_1`].
//! * **Lemma 7.5** — the FDs Σ implies are exactly `φ⁺`: FD-Armstrong
//!   witness [`Section7::fig_7_2`], checked against the full FD universe.
//! * **Lemma 7.6** — the INDs Σ implies are exactly `λ⁺`: IND-Armstrong
//!   witness [`Section7::fig_7_3`], checked against all INDs of arity ≤ 3.
//! * **Lemma 7.8** — `φ⁺ − σ = (φ−σ)⁺` and `λ⁺ − β_j = (λ−β_j)⁺`, with
//!   [`Section7::fig_7_4`] witnessing `λ − β_j ⊭ β_j`.
//! * **Lemma 7.9** — [`Section7::fig_7_5`] satisfies
//!   `(φ−σ) ∪ (λ−β_j) ∪ ω` yet violates `σ`, so no ≤k-subset of `Γ`
//!   implies `σ`.
//!
//! The paper's printed figures are only partially legible in our source;
//! the witness databases here are **reconstructions** that are verified to
//! have every property the lemmas demand (which is all the proof uses).
//! Every FD in the family is unary and every IND binary or unary, and no
//! scheme exceeds three attributes — the sharpest form the paper states.

use crate::kary::ImplicationOracle;
use depkit_chase::fdind_chase::{ChaseBudget, ChaseOutcome, FdIndChase};
use depkit_core::attr::{attrs, Attr, AttrSeq};
use depkit_core::database::Database;
use depkit_core::dependency::{Dependency, Fd, Ind, Rd};
use depkit_core::schema::{DatabaseSchema, RelationScheme};
use depkit_solver::fd::FdEngine;
use depkit_solver::ind::IndSolver;
use std::collections::BTreeSet;

/// The Theorem 7.1 family for a given `n ≥ 1`.
#[derive(Debug, Clone)]
pub struct Section7 {
    /// The chain-length parameter `n` (defeats k-ary axiomatizations for
    /// every `k < n`).
    pub n: usize,
    /// The database schema.
    pub schema: DatabaseSchema,
    /// The IND part `λ` of `Σ`.
    pub lambda: Vec<Ind>,
    /// The FD part of `Σ` (`δ_0`, `ε_i`, `θ_n`).
    pub sigma_fds: Vec<Fd>,
    /// The FD family `φ` (all FDs Σ implies, per Lemma 7.5).
    pub phi: Vec<Fd>,
    /// The target `σ = F: A → C`.
    pub target: Fd,
}

fn g(i: usize) -> String {
    format!("G{i}")
}

fn h(i: usize) -> String {
    format!("H{i}")
}

impl Section7 {
    /// Build the family (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "the family needs n >= 1");
        let mut schemes = vec![
            RelationScheme::new("F", attrs(&["A", "B", "C"])),
            RelationScheme::new(g(0).as_str(), attrs(&["A", "B", "C"])),
        ];
        for i in 1..=n {
            schemes.push(RelationScheme::new(g(i).as_str(), attrs(&["B", "C"])));
        }
        for i in 0..n {
            schemes.push(RelationScheme::new(h(i).as_str(), attrs(&["B", "C"])));
        }
        schemes.push(RelationScheme::new(h(n).as_str(), attrs(&["B", "C", "D"])));
        let schema = DatabaseSchema::new(schemes).expect("distinct names");

        let mut lambda: Vec<Ind> = Vec::new();
        // α_0 and α_i.
        lambda.push(
            Ind::new("F", attrs(&["A", "B"]), g(0).as_str(), attrs(&["A", "B"])).expect("binary"),
        );
        for i in 1..=n {
            lambda.push(Ind::new("F", attrs(&["B"]), g(i).as_str(), attrs(&["B"])).expect("unary"));
        }
        // β_i (unary) and β_n (binary).
        for i in 0..n {
            lambda.push(Ind::new("F", attrs(&["B"]), h(i).as_str(), attrs(&["B"])).expect("unary"));
        }
        lambda.push(
            Ind::new("F", attrs(&["B", "C"]), h(n).as_str(), attrs(&["B", "D"])).expect("binary"),
        );
        // γ_i and γ'_i.
        for i in 0..=n {
            lambda.push(
                Ind::new(
                    h(i).as_str(),
                    attrs(&["B", "C"]),
                    g(i).as_str(),
                    attrs(&["B", "C"]),
                )
                .expect("binary"),
            );
        }
        for i in 0..n {
            lambda.push(
                Ind::new(
                    h(i).as_str(),
                    attrs(&["B", "C"]),
                    g(i + 1).as_str(),
                    attrs(&["B", "C"]),
                )
                .expect("binary"),
            );
        }

        let mut sigma_fds = vec![Fd::new(g(0).as_str(), attrs(&["A"]), attrs(&["C"]))];
        for i in 0..=n {
            sigma_fds.push(Fd::new(g(i).as_str(), attrs(&["B"]), attrs(&["C"])));
        }
        sigma_fds.push(Fd::new(h(n).as_str(), attrs(&["C"]), attrs(&["D"])));

        let mut phi = vec![
            Fd::new("F", attrs(&["A"]), attrs(&["C"])),
            Fd::new("F", attrs(&["B"]), attrs(&["C"])),
            Fd::new(g(0).as_str(), attrs(&["A"]), attrs(&["C"])),
        ];
        for i in 0..=n {
            phi.push(Fd::new(g(i).as_str(), attrs(&["B"]), attrs(&["C"])));
        }
        for i in 0..=n {
            phi.push(Fd::new(h(i).as_str(), attrs(&["B"]), attrs(&["C"])));
        }
        phi.push(Fd::new(h(n).as_str(), attrs(&["C"]), attrs(&["D"])));

        let target = Fd::new("F", attrs(&["A"]), attrs(&["C"]));

        Section7 {
            n,
            schema,
            lambda,
            sigma_fds,
            phi,
            target,
        }
    }

    /// `Σ` as a dependency list.
    pub fn sigma(&self) -> Vec<Dependency> {
        let mut out: Vec<Dependency> = self.lambda.iter().cloned().map(Into::into).collect();
        out.extend(self.sigma_fds.iter().cloned().map(Dependency::from));
        out
    }

    /// `β_j = F[B] ⊆ H_j[B]` for `j < n`.
    pub fn beta(&self, j: usize) -> Ind {
        assert!(j < self.n);
        Ind::new("F", attrs(&["B"]), h(j).as_str(), attrs(&["B"])).expect("unary")
    }

    /// `λ − {β_j}`.
    pub fn lambda_without_beta(&self, j: usize) -> Vec<Ind> {
        let beta = self.beta(j);
        self.lambda
            .iter()
            .filter(|i| **i != beta)
            .cloned()
            .collect()
    }

    /// `φ − {σ}`.
    pub fn phi_without_target(&self) -> Vec<Fd> {
        self.phi
            .iter()
            .filter(|f| **f != self.target)
            .cloned()
            .collect()
    }

    // ----------------------------------------------------------------
    // Witness databases (reconstructions of Figures 7.1–7.5)
    // ----------------------------------------------------------------

    /// Figure 7.1: satisfies `Σ`; every tuple has pairwise-distinct
    /// entries, so no nontrivial RD holds (Lemma 7.4).
    pub fn fig_7_1(&self) -> Database {
        let n = self.n;
        let mut db = Database::empty(self.schema.clone());
        db.insert_ints("F", &[&[1, 2, 3]]).expect("arity");
        db.insert_ints(&g(0), &[&[1, 2, 9]]).expect("arity");
        for i in 1..=n {
            db.insert_ints(&g(i), &[&[2, 9]]).expect("arity");
        }
        for i in 0..n {
            db.insert_ints(&h(i), &[&[2, 9]]).expect("arity");
        }
        db.insert_ints(&h(n), &[&[2, 9, 3]]).expect("arity");
        db
    }

    /// Figure 7.2: satisfies `Σ`; the FDs that hold are **exactly** `φ⁺`
    /// (Lemma 7.5). Each relation is an Armstrong relation for its `φ`
    /// slice, and the IND requirements thread consistently.
    pub fn fig_7_2(&self) -> Database {
        let n = self.n;
        let mut db = Database::empty(self.schema.clone());
        db.insert_ints(
            "F",
            &[&[1, 10, 100], &[1, 11, 100], &[2, 12, 101], &[3, 12, 101]],
        )
        .expect("arity");
        db.insert_ints(
            &g(0),
            &[&[1, 10, 200], &[1, 11, 200], &[2, 12, 201], &[3, 12, 201]],
        )
        .expect("arity");
        let shared: &[&[i64]] = &[&[10, 200], &[11, 200], &[12, 201]];
        for i in 1..n {
            db.insert_ints(&g(i), shared).expect("arity");
        }
        // G_n carries the extra (13, 202) pair required by H_n's
        // D→C-breaking tuple.
        if n >= 1 {
            db.insert_ints(&g(n), &[&[10, 200], &[11, 200], &[12, 201], &[13, 202]])
                .expect("arity");
        }
        for i in 0..n {
            db.insert_ints(&h(i), shared).expect("arity");
        }
        db.insert_ints(
            &h(n),
            &[
                &[10, 200, 100],
                &[11, 200, 100],
                &[12, 201, 101],
                // Extra tuple so D → C fails (D=100 maps to C ∈ {200, 202}).
                &[13, 202, 100],
            ],
        )
        .expect("arity");
        db
    }

    /// Figure 7.3: satisfies `Σ`; the INDs that hold are **exactly** `λ⁺`
    /// (Lemma 7.6). Private values per relation/column break every
    /// non-implied inclusion.
    pub fn fig_7_3(&self) -> Database {
        let n = self.n;
        let hb = |i: usize| 500 + i as i64; // H_i's private B value
        let hc = |i: usize| 600 + i as i64; // H_i's private C value (i < n)
        let gb = |i: usize| 200 + i as i64; // G_i's private B value
        let gc = |i: usize| 300 + i as i64; // G_i's private C value
        let mut db = Database::empty(self.schema.clone());
        db.insert_ints("F", &[&[1, 2, 3]]).expect("arity");
        db.insert_ints(&g(0), &[&[1, 2, 30], &[100, 101, 31], &[102, hb(0), hc(0)]])
            .expect("arity");
        for i in 1..=n {
            let mut rows: Vec<Vec<i64>> = vec![vec![2, 30], vec![gb(i), gc(i)]];
            // γ_i: H_i's content must appear.
            if i < n {
                rows.push(vec![hb(i), hc(i)]);
            } else {
                rows.push(vec![hb(n), 40]);
            }
            // γ'_{i−1}: H_{i−1}'s content must appear.
            rows.push(vec![hb(i - 1), hc(i - 1)]);
            let rows: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            db.insert_ints(&g(i), &rows).expect("arity");
        }
        for i in 0..n {
            db.insert_ints(&h(i), &[&[2, 30], &[hb(i), hc(i)]])
                .expect("arity");
        }
        db.insert_ints(&h(n), &[&[2, 30, 3], &[hb(n), 40, 5]])
            .expect("arity");
        db
    }

    /// Figure 7.4: satisfies `λ − β_j` but violates `β_j` (`j < n`); used
    /// in the proof of Lemma 7.8's identity (4).
    pub fn fig_7_4(&self, j: usize) -> Database {
        assert!(j < self.n);
        let n = self.n;
        let mut db = Database::empty(self.schema.clone());
        db.insert_ints("F", &[&[1, 2, 3]]).expect("arity");
        let mut g0: Vec<Vec<i64>> = vec![vec![1, 2, 30]];
        if j == 0 {
            g0.push(vec![7, 777, 30]);
        }
        let g0_rows: Vec<&[i64]> = g0.iter().map(|r| r.as_slice()).collect();
        db.insert_ints(&g(0), &g0_rows).expect("arity");
        for i in 1..=n {
            let mut rows: Vec<Vec<i64>> = vec![vec![2, 30]];
            if i == j || i == j + 1 {
                rows.push(vec![777, 30]);
            }
            let rows: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            db.insert_ints(&g(i), &rows).expect("arity");
        }
        for i in 0..n {
            if i == j {
                db.insert_ints(&h(i), &[&[777, 30]]).expect("arity");
            } else {
                db.insert_ints(&h(i), &[&[2, 30]]).expect("arity");
            }
        }
        db.insert_ints(&h(n), &[&[2, 30, 3]]).expect("arity");
        db
    }

    /// Figure 7.5: satisfies `(φ − σ) ∪ (λ − β_j) ∪ ω` yet violates
    /// `σ = F: A → C` (Lemma 7.9). The two `F`-threads (B = 2 and B = 4)
    /// carry equal C-values up to the break at `H_j`, and distinct values
    /// after it, which is exactly why removing `β_j` kills the Lemma 7.2
    /// equality chain.
    pub fn fig_7_5(&self, j: usize) -> Database {
        assert!(j < self.n);
        let n = self.n;
        let mut db = Database::empty(self.schema.clone());
        db.insert_ints("F", &[&[1, 2, 3], &[1, 4, 5]])
            .expect("arity");

        let mut g0: Vec<Vec<i64>> = vec![vec![1, 2, 30], vec![1, 4, 30]];
        if j == 0 {
            g0.push(vec![7, 777, 33]);
        }
        let g0_rows: Vec<&[i64]> = g0.iter().map(|r| r.as_slice()).collect();
        db.insert_ints(&g(0), &g0_rows).expect("arity");

        for i in 1..=n {
            let mut rows: Vec<Vec<i64>> = if i <= j {
                vec![vec![2, 30], vec![4, 30]]
            } else {
                vec![vec![2, 31], vec![4, 32]]
            };
            if i == j || i == j + 1 {
                rows.push(vec![777, 33]);
            }
            let rows: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            db.insert_ints(&g(i), &rows).expect("arity");
        }
        for i in 0..n {
            if i == j {
                db.insert_ints(&h(i), &[&[777, 33]]).expect("arity");
            } else if i < j {
                db.insert_ints(&h(i), &[&[2, 30], &[4, 30]]).expect("arity");
            } else {
                db.insert_ints(&h(i), &[&[2, 31], &[4, 32]]).expect("arity");
            }
        }
        db.insert_ints(&h(n), &[&[2, 31, 3], &[4, 32, 5]])
            .expect("arity");
        db
    }

    // ----------------------------------------------------------------
    // Universes
    // ----------------------------------------------------------------

    /// All FDs over the schema with a set-canonical left side and a single
    /// right attribute (every FD is equivalent to a conjunction of these).
    pub fn fd_universe(&self) -> Vec<Fd> {
        let mut out = Vec::new();
        for scheme in self.schema.schemes() {
            let attrs_all: Vec<Attr> = scheme.attrs().attrs().to_vec();
            let m = attrs_all.len();
            for mask in 0..(1u32 << m) {
                let lhs: Vec<Attr> = (0..m)
                    .filter(|&b| mask & (1 << b) != 0)
                    .map(|b| attrs_all[b].clone())
                    .collect();
                for rhs in &attrs_all {
                    out.push(Fd::new(
                        scheme.name().clone(),
                        AttrSeq::new(lhs.clone()).expect("distinct"),
                        AttrSeq::new(vec![rhs.clone()]).expect("single"),
                    ));
                }
            }
        }
        out
    }

    /// All INDs over the schema of arity at most `max_arity` (distinct
    /// attribute sequences on each side).
    pub fn ind_universe(&self, max_arity: usize) -> Vec<Ind> {
        // All distinct-attribute sequences of each length per scheme.
        fn seqs(scheme: &RelationScheme, len: usize) -> Vec<AttrSeq> {
            let attrs_all = scheme.attrs().attrs();
            let mut out = Vec::new();
            let mut stack: Vec<Vec<Attr>> = vec![Vec::new()];
            while let Some(cur) = stack.pop() {
                if cur.len() == len {
                    out.push(AttrSeq::new(cur).expect("distinct by construction"));
                    continue;
                }
                for a in attrs_all {
                    if !cur.contains(a) {
                        let mut next = cur.clone();
                        next.push(a.clone());
                        stack.push(next);
                    }
                }
            }
            out
        }
        let mut out = Vec::new();
        for arity in 1..=max_arity {
            for s1 in self.schema.schemes() {
                for s2 in self.schema.schemes() {
                    for lhs in seqs(s1, arity) {
                        for rhs in seqs(s2, arity) {
                            out.push(
                                Ind::new(s1.name().clone(), lhs.clone(), s2.name().clone(), rhs)
                                    .expect("equal arity"),
                            );
                        }
                    }
                }
            }
        }
        out
    }

    /// All unary RDs over the schema (canonical order).
    pub fn rd_universe(&self) -> Vec<Rd> {
        let mut out = Vec::new();
        for scheme in self.schema.schemes() {
            let a = scheme.attrs().attrs();
            for i in 0..a.len() {
                for j in (i + 1)..a.len() {
                    out.push(
                        Rd::new(
                            scheme.name().clone(),
                            AttrSeq::new(vec![a[i].clone()]).expect("single"),
                            AttrSeq::new(vec![a[j].clone()]).expect("single"),
                        )
                        .expect("unary"),
                    );
                }
            }
        }
        out
    }

    /// Membership of `dep` in `Γ = φ⁺ ∪ λ⁺ ∪ ω − {σ}` (exact: `φ⁺` via
    /// Armstrong-complete closure, `λ⁺` via the Theorem 3.1-complete
    /// search).
    pub fn in_gamma(&self, dep: &Dependency) -> bool {
        if *dep == Dependency::Fd(self.target.clone()) {
            return false;
        }
        match dep {
            Dependency::Fd(f) => FdEngine::new(f.rel.clone(), &self.phi).implies(f),
            Dependency::Ind(i) => IndSolver::new(&self.lambda).implies(i),
            Dependency::Rd(r) => r.is_trivial(),
            Dependency::Emvd(_) => false,
        }
    }

    // ----------------------------------------------------------------
    // Lemma verifications
    // ----------------------------------------------------------------

    /// Lemma 7.2: the chase proves `Σ ⊨ F: A → C`.
    pub fn verify_lemma_7_2(&self, budget: ChaseBudget) -> Result<usize, String> {
        let chase = FdIndChase::new(&self.schema, &self.sigma()).map_err(|e| e.to_string())?;
        match chase
            .implies(&self.target.clone().into(), budget)
            .map_err(|e| e.to_string())?
        {
            ChaseOutcome::Proved { rounds } => Ok(rounds),
            other => Err(format!("chase failed to prove Lemma 7.2: {other:?}")),
        }
    }

    /// Lemma 7.4: Figure 7.1 satisfies `Σ` and violates every nontrivial
    /// RD in the universe.
    pub fn verify_lemma_7_4(&self) -> Result<(), String> {
        let d = self.fig_7_1();
        self.check_sigma(&d, "fig 7.1")?;
        for rd in self.rd_universe() {
            if d.satisfies(&rd.clone().into()).map_err(|e| e.to_string())? {
                return Err(format!("fig 7.1 satisfies nontrivial RD {rd}"));
            }
        }
        Ok(())
    }

    /// Lemma 7.5: Figure 7.2 satisfies `Σ`, and an FD holds in it iff
    /// `φ ⊨` it — checked over the full FD universe.
    pub fn verify_lemma_7_5(&self) -> Result<(), String> {
        let d = self.fig_7_2();
        self.check_sigma(&d, "fig 7.2")?;
        for fd in self.fd_universe() {
            let holds = d.satisfies(&fd.clone().into()).map_err(|e| e.to_string())?;
            let in_phi_plus = FdEngine::new(fd.rel.clone(), &self.phi).implies(&fd);
            if holds != in_phi_plus {
                return Err(format!(
                    "fig 7.2 FD-exactness fails at {fd}: holds={holds}, φ⁺={in_phi_plus}"
                ));
            }
        }
        Ok(())
    }

    /// Lemma 7.6: Figure 7.3 satisfies `Σ`, and an IND of arity ≤ 3 holds
    /// in it iff `λ ⊨` it.
    pub fn verify_lemma_7_6(&self) -> Result<(), String> {
        let d = self.fig_7_3();
        self.check_sigma(&d, "fig 7.3")?;
        let solver = IndSolver::new(&self.lambda);
        for ind in self.ind_universe(3) {
            let holds = d
                .satisfies(&ind.clone().into())
                .map_err(|e| e.to_string())?;
            let in_lambda_plus = solver.implies(&ind);
            if holds != in_lambda_plus {
                return Err(format!(
                    "fig 7.3 IND-exactness fails at {ind}: holds={holds}, λ⁺={in_lambda_plus}"
                ));
            }
        }
        Ok(())
    }

    /// Lemma 7.8 for a given `j < n`: the closure identities
    /// `φ⁺ − σ = (φ−σ)⁺` (over the FD universe) and
    /// `λ⁺ − β_j = (λ−β_j)⁺` (over the IND universe, arity ≤ 3), with
    /// Figure 7.4 witnessing `λ − β_j ⊭ β_j`.
    pub fn verify_lemma_7_8(&self, j: usize) -> Result<(), String> {
        // FD identity.
        let phi_minus = self.phi_without_target();
        for fd in self.fd_universe() {
            let lhs = FdEngine::new(fd.rel.clone(), &self.phi).implies(&fd) && fd != self.target;
            let rhs = FdEngine::new(fd.rel.clone(), &phi_minus).implies(&fd);
            if lhs != rhs {
                return Err(format!(
                    "FD identity of Lemma 7.8 fails at {fd}: φ⁺−σ={lhs}, (φ−σ)⁺={rhs}"
                ));
            }
        }
        // IND identity.
        let beta = self.beta(j);
        let lambda_minus = self.lambda_without_beta(j);
        let full = IndSolver::new(&self.lambda);
        let reduced = IndSolver::new(&lambda_minus);
        for ind in self.ind_universe(3) {
            let lhs = full.implies(&ind) && ind != beta;
            let rhs = reduced.implies(&ind);
            if lhs != rhs {
                return Err(format!(
                    "IND identity of Lemma 7.8 fails at {ind} (j={j}): λ⁺−β={lhs}, (λ−β)⁺={rhs}"
                ));
            }
        }
        // Figure 7.4 semantic witness for λ − β_j ⊭ β_j.
        let d = self.fig_7_4(j);
        for ind in &lambda_minus {
            if !d
                .satisfies(&ind.clone().into())
                .map_err(|e| e.to_string())?
            {
                return Err(format!("fig 7.4(j={j}) violates λ−β member {ind}"));
            }
        }
        if d.satisfies(&beta.clone().into())
            .map_err(|e| e.to_string())?
        {
            return Err(format!("fig 7.4(j={j}) unexpectedly satisfies β_j"));
        }
        Ok(())
    }

    /// Lemma 7.9's database check for a given `j < n`: Figure 7.5
    /// satisfies `(φ−σ) ∪ (λ−β_j)` and violates `σ`.
    pub fn verify_lemma_7_9(&self, j: usize) -> Result<(), String> {
        let d = self.fig_7_5(j);
        for fd in self.phi_without_target() {
            if !d.satisfies(&fd.clone().into()).map_err(|e| e.to_string())? {
                return Err(format!("fig 7.5(j={j}) violates φ−σ member {fd}"));
            }
        }
        for ind in self.lambda_without_beta(j) {
            if !d
                .satisfies(&ind.clone().into())
                .map_err(|e| e.to_string())?
            {
                return Err(format!("fig 7.5(j={j}) violates λ−β member {ind}"));
            }
        }
        if d.satisfies(&self.target.clone().into())
            .map_err(|e| e.to_string())?
        {
            return Err(format!("fig 7.5(j={j}) unexpectedly satisfies σ"));
        }
        Ok(())
    }

    fn check_sigma(&self, d: &Database, what: &str) -> Result<(), String> {
        for dep in self.sigma() {
            if !d.satisfies(&dep).map_err(|e| e.to_string())? {
                return Err(format!("{what} violates Σ member {dep}"));
            }
        }
        Ok(())
    }

    /// Run every lemma check (`j` sweeps `0..n`); returns a summary.
    pub fn verify(&self) -> Result<Section7Report, String> {
        let rounds = self.verify_lemma_7_2(ChaseBudget {
            max_rounds: 8 * (self.n + 2),
            max_tuples: 500_000,
        })?;
        self.verify_lemma_7_4()?;
        self.verify_lemma_7_5()?;
        self.verify_lemma_7_6()?;
        for j in 0..self.n {
            self.verify_lemma_7_8(j)?;
            self.verify_lemma_7_9(j)?;
        }
        Ok(Section7Report {
            n: self.n,
            chase_rounds: rounds,
            fd_universe: self.fd_universe().len(),
            ind_universe: self.ind_universe(3).len(),
        })
    }
}

/// Summary of a successful Section 7 verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section7Report {
    /// The family parameter.
    pub n: usize,
    /// Chase rounds needed to prove Lemma 7.2.
    pub chase_rounds: usize,
    /// FD universe size checked for Lemma 7.5.
    pub fd_universe: usize,
    /// IND universe size checked for Lemma 7.6.
    pub ind_universe: usize,
}

/// An exact unrestricted-implication oracle for Theorem 5.1 closures over
/// this family's `Γ`, valid for the query patterns the closure machinery
/// makes (premise sets `T ⊆ Γ`, conclusions outside the current set):
///
/// * `τ` trivial or `τ ∈ T` — implied;
/// * `Σ ⊆ T` — `σ` implied (Lemma 7.2, chase-verified);
/// * `τ = σ` with some `β_j ∉ T` — refuted by Figure 7.5(j), which models
///   every `Γ`-subset avoiding `β_j`;
/// * `τ ∉ Γ ∪ {σ}` — refuted by Figure 7.2 (FDs), 7.3 (INDs), or
///   7.1 (RDs), each of which models all of `Γ ∪ {σ}`.
///
/// Panics when asked something outside these patterns.
pub struct Section7Oracle {
    family: Section7,
    fig71: Database,
    fig72: Database,
    fig73: Database,
    fig75: Vec<Database>,
}

impl Section7Oracle {
    /// Build the oracle.
    pub fn new(family: &Section7) -> Self {
        Section7Oracle {
            fig71: family.fig_7_1(),
            fig72: family.fig_7_2(),
            fig73: family.fig_7_3(),
            fig75: (0..family.n).map(|j| family.fig_7_5(j)).collect(),
            family: family.clone(),
        }
    }
}

impl ImplicationOracle for Section7Oracle {
    fn implies(&self, sigma: &[Dependency], tau: &Dependency) -> bool {
        if tau.is_trivial() || sigma.contains(tau) {
            return true;
        }
        let family_sigma = self.family.sigma();
        if *tau == Dependency::Fd(self.family.target.clone())
            && family_sigma.iter().all(|d| sigma.contains(d))
        {
            return true; // Lemma 7.2
        }
        // Refutation by a witness database modeling T.
        let mut witnesses: Vec<&Database> = vec![&self.fig72, &self.fig73, &self.fig71];
        witnesses.extend(self.fig75.iter());
        for d in witnesses {
            let models = sigma.iter().all(|s| d.satisfies(s).unwrap_or(false));
            if models && !d.satisfies(tau).unwrap_or(true) {
                return false;
            }
        }
        panic!("Section7Oracle undecided for T={sigma:?}, τ={tau}");
    }
}

/// The Theorem 5.1 pipeline on this family for `k < n`: `Γ ∩ universe` is
/// closed under k-ary implication yet implies `σ ∉ Γ`.
pub fn verify_kary_gap(family: &Section7, k: usize) -> Result<(), String> {
    assert!(
        k < family.n,
        "the family defeats k-ary axiomatization only for k < n"
    );
    let oracle = Section7Oracle::new(family);
    // A compact universe: Σ's own shapes plus σ (enough to exercise the
    // closure; the full lemma checks cover the rest of the space).
    let mut universe: Vec<Dependency> = family.sigma();
    universe.push(family.target.clone().into());
    for ind in family.ind_universe(1) {
        universe.push(ind.into());
    }
    let gamma: BTreeSet<Dependency> = universe
        .iter()
        .filter(|d| family.in_gamma(d))
        .cloned()
        .collect();
    let closed = crate::kary::close_under_k_ary(&universe, &gamma, k, &oracle);
    if closed != gamma {
        let extra: Vec<&Dependency> = closed.difference(&gamma).collect();
        return Err(format!("Γ gained members under {k}-ary closure: {extra:?}"));
    }
    match crate::kary::implication_closure_witness(&universe, &gamma, &oracle) {
        Some(w) if w == Dependency::Fd(family.target.clone()) => Ok(()),
        Some(w) => Err(format!("unexpected closure witness {w}")),
        None => Err("no closure witness found; Γ should imply σ".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_shape() {
        let f = Section7::new(2);
        // Schemes: F, G0, G1, G2, H0, H1, H2.
        assert_eq!(f.schema.schemes().len(), 7);
        // λ: α (3) + β (3) + γ (3) + γ' (2) = 11.
        assert_eq!(f.lambda.len(), 11);
        // FDs in Σ: δ_0 + ε_0..ε_2 + θ_n = 5.
        assert_eq!(f.sigma_fds.len(), 5);
        // Every FD unary, every IND at most binary, schemes at most 3-ary.
        assert!(f.sigma_fds.iter().all(|fd| fd.is_unary()));
        assert!(f.phi.iter().all(|fd| fd.is_unary()));
        assert!(f.lambda.iter().all(|i| i.arity() <= 2));
        assert_eq!(f.schema.max_arity(), 3);
    }

    #[test]
    fn lemma_7_2_chase_proof() {
        for n in 1..=3 {
            let f = Section7::new(n);
            let rounds = f
                .verify_lemma_7_2(ChaseBudget {
                    max_rounds: 64,
                    max_tuples: 500_000,
                })
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert!(rounds >= 1, "n={n} should need work");
        }
    }

    #[test]
    fn lemma_7_4_no_rds() {
        for n in 1..=3 {
            Section7::new(n).verify_lemma_7_4().unwrap();
        }
    }

    #[test]
    fn lemma_7_5_fd_exactness() {
        for n in 1..=3 {
            Section7::new(n).verify_lemma_7_5().unwrap();
        }
    }

    #[test]
    fn lemma_7_6_ind_exactness() {
        for n in 1..=2 {
            Section7::new(n).verify_lemma_7_6().unwrap();
        }
    }

    #[test]
    fn lemmas_7_8_and_7_9() {
        for n in 1..=2 {
            let f = Section7::new(n);
            for j in 0..n {
                f.verify_lemma_7_8(j).unwrap();
                f.verify_lemma_7_9(j).unwrap();
            }
        }
    }

    #[test]
    fn full_verification_n2() {
        let report = Section7::new(2).verify().unwrap();
        assert_eq!(report.n, 2);
        assert!(report.fd_universe > 0);
        assert!(report.ind_universe > 0);
    }

    #[test]
    fn theorem_5_1_gap() {
        let f = Section7::new(2);
        verify_kary_gap(&f, 1).unwrap();
    }

    #[test]
    fn saturator_cannot_derive_sigma() {
        // The k-ary interaction rules of Section 4 are provably too weak
        // for this family (that is the point of Theorem 7.1): the
        // saturator must NOT derive σ even with all of Σ, while the chase
        // does. This guards the "necessarily incomplete" documentation.
        let f = Section7::new(2);
        let mut sat = depkit_solver::interact::Saturator::new(&f.sigma());
        sat.saturate();
        assert!(!sat.implies(&f.target.clone().into()));
    }
}
