//! Theorem 4.4: finite implication differs from unrestricted implication
//! for FDs and INDs taken together.
//!
//! The family is `Σ = {R: A → B, R[A] ⊆ R[B]}` over `R(A, B)` with two
//! targets:
//!
//! * part (a): `σ = R[B] ⊆ R[A]` — an IND;
//! * part (b): `σ = R: B → A` — an FD.
//!
//! Over **finite** databases both follow by counting (`|r[B]| ≤ |r[A]| ≤
//! |r[B]|` forces equalities); the `depkit-solver` finite engine derives
//! both. Over unrestricted databases both fail: Figure 4.1 (the infinite
//! relation `{(i+1, i) : i ≥ 0}`) refutes (a) and Figure 4.2
//! (`{(1,1)} ∪ {(i+1, i) : i ≥ 1}`) refutes (b). The figures are
//! represented exactly as affine-pattern symbolic relations.

use depkit_core::dependency::Dependency;
use depkit_core::parser::parse_dependencies;
use depkit_core::schema::DatabaseSchema;
use depkit_core::symbolic::{Pattern, SymbolicDatabase};
use depkit_solver::finite::FiniteEngine;

/// The Theorem 4.4 family.
#[derive(Debug, Clone)]
pub struct Theorem44 {
    /// The schema `R(A, B)`.
    pub schema: DatabaseSchema,
    /// `Σ = {R: A → B, R[A] ⊆ R[B]}`.
    pub sigma: Vec<Dependency>,
    /// Part (a) target: `R[B] ⊆ R[A]`.
    pub target_ind: Dependency,
    /// Part (b) target: `R: B → A`.
    pub target_fd: Dependency,
}

impl Default for Theorem44 {
    fn default() -> Self {
        Self::new()
    }
}

impl Theorem44 {
    /// Build the family.
    pub fn new() -> Self {
        let schema = DatabaseSchema::parse(&["R(A, B)"]).expect("static schema");
        let sigma = parse_dependencies(&["R: A -> B", "R[A] <= R[B]"]).expect("static deps");
        let targets = parse_dependencies(&["R[B] <= R[A]", "R: B -> A"]).expect("static deps");
        Theorem44 {
            schema,
            sigma,
            target_ind: targets[0].clone(),
            target_fd: targets[1].clone(),
        }
    }

    /// Figure 4.1: the infinite relation `{(i+1, i) : i ≥ 0}`.
    pub fn figure_4_1(&self) -> SymbolicDatabase {
        let mut db = SymbolicDatabase::empty(self.schema.clone());
        db.relation_mut("R")
            .expect("R exists")
            .add_pattern(Pattern::from_pairs(&[(1, 1), (1, 0)]))
            .expect("arity 2");
        db
    }

    /// Figure 4.2: the infinite relation `{(1,1)} ∪ {(i+1, i) : i ≥ 1}`.
    pub fn figure_4_2(&self) -> SymbolicDatabase {
        let mut db = SymbolicDatabase::empty(self.schema.clone());
        let r = db.relation_mut("R").expect("R exists");
        r.add_constant(&[1, 1]).expect("arity 2");
        // i ≥ 1 re-parameterized through i' = i − 1 ≥ 0.
        r.add_pattern(Pattern::from_pairs(&[(1, 2), (1, 1)]))
            .expect("arity 2");
        db
    }

    /// Machine-check the whole theorem; panics with a description on any
    /// failed sub-check (so tests and the bench harness surface exactly
    /// which claim broke).
    pub fn verify(&self) -> Theorem44Report {
        let engine = FiniteEngine::new(&self.sigma);
        let finite_a = engine.implies(&self.target_ind);
        let finite_b = engine.implies(&self.target_fd);

        let fig41 = self.figure_4_1();
        let fig42 = self.figure_4_2();
        let fig41_satisfies_sigma = self
            .sigma
            .iter()
            .all(|d| fig41.satisfies(d).expect("decidable"));
        let fig42_satisfies_sigma = self
            .sigma
            .iter()
            .all(|d| fig42.satisfies(d).expect("decidable"));
        let fig41_violates_a = !fig41.satisfies(&self.target_ind).expect("decidable");
        let fig42_violates_b = !fig42.satisfies(&self.target_fd).expect("decidable");

        Theorem44Report {
            finite_implies_ind: finite_a,
            finite_implies_fd: finite_b,
            fig41_satisfies_sigma,
            fig41_violates_ind: fig41_violates_a,
            fig42_satisfies_sigma,
            fig42_violates_fd: fig42_violates_b,
        }
    }
}

/// The machine-checked facts of Theorem 4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Theorem44Report {
    /// `Σ ⊨_fin R[B] ⊆ R[A]` (derived by the counting engine).
    pub finite_implies_ind: bool,
    /// `Σ ⊨_fin R: B → A`.
    pub finite_implies_fd: bool,
    /// Figure 4.1 satisfies `Σ`.
    pub fig41_satisfies_sigma: bool,
    /// Figure 4.1 violates `R[B] ⊆ R[A]` (so `Σ ⊭ σ` unrestricted).
    pub fig41_violates_ind: bool,
    /// Figure 4.2 satisfies `Σ`.
    pub fig42_satisfies_sigma: bool,
    /// Figure 4.2 violates `R: B → A`.
    pub fig42_violates_fd: bool,
}

impl Theorem44Report {
    /// Whether every claim of the theorem checked out.
    pub fn all_verified(&self) -> bool {
        self.finite_implies_ind
            && self.finite_implies_fd
            && self.fig41_satisfies_sigma
            && self.fig41_violates_ind
            && self.fig42_satisfies_sigma
            && self.fig42_violates_fd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_chase::fdind_chase::{ChaseBudget, ChaseOutcome, FdIndChase};

    #[test]
    fn theorem_4_4_fully_verifies() {
        let report = Theorem44::new().verify();
        assert!(report.all_verified(), "{report:?}");
    }

    #[test]
    fn finite_prefixes_satisfying_sigma_satisfy_targets() {
        // Sanity for the counting argument: no finite prefix of Figure 4.1
        // satisfies Σ (each prefix breaks R[A] ⊆ R[B] at its top element),
        // which is exactly why the infinite witness is needed.
        let fam = Theorem44::new();
        let fig41 = fam.figure_4_1();
        for n in 1..8 {
            let prefix = fig41.prefix(n);
            let sat = fam
                .sigma
                .iter()
                .all(|d| prefix.satisfies(d).expect("finite check"));
            assert!(!sat, "prefix {n} unexpectedly satisfies Σ");
        }
    }

    #[test]
    fn unrestricted_chase_cannot_decide() {
        // The goal-directed chase diverges on this family (it is trying to
        // build Figure 4.1 tuple by tuple): budget exhaustion, not a wrong
        // answer.
        let fam = Theorem44::new();
        let chase = FdIndChase::new(&fam.schema, &fam.sigma).unwrap();
        let out = chase
            .implies(
                &fam.target_ind,
                ChaseBudget {
                    max_rounds: 10,
                    max_tuples: 10_000,
                },
            )
            .unwrap();
        assert!(matches!(out, ChaseOutcome::Exhausted));
    }
}
