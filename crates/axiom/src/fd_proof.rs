//! Verifiable Armstrong-style proof objects for FDs.
//!
//! The paper contrasts the IND axiomatization with Armstrong's classical
//! FD system [Ar, Fa2]: **reflexivity** (`Y ⊆ X ⟹ X → Y`, 0-ary),
//! **augmentation** (`X → Y ⟹ XW → YW`, 1-ary), and **transitivity**
//! (`X → Y, Y → Z ⟹ X → Z`, 2-ary) — a 2-ary complete axiomatization,
//! which is exactly why the Theorem 5.1 pipeline closes FD sets at k = 2.
//!
//! [`prove_fd`] converts the Beeri–Bernstein closure trace of
//! `depkit-solver` into a checkable derivation; [`FdProof::check`]
//! validates every line independently. FD sides are compared as **sets**
//! (Armstrong reasoning is order-insensitive; the sequence form matters
//! only when FDs interact with INDs).

use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::dependency::Fd;
use depkit_solver::fd::FdEngine;
use std::collections::BTreeSet;
use std::fmt;

/// How an FD proof line is justified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdJustification {
    /// The line is `sigma[index]`.
    Premise {
        /// Index into the premise list.
        index: usize,
    },
    /// Reflexivity: `X → Y` with `Y ⊆ X`.
    Reflexivity,
    /// Augmentation of an earlier line by an attribute set `W`:
    /// from `X → Y` infer `X ∪ W → Y ∪ W`.
    Augmentation {
        /// The earlier line.
        from_line: usize,
        /// The attributes added to both sides.
        with: Vec<Attr>,
    },
    /// Transitivity of two earlier lines: `X → Y` and `Y → Z` give
    /// `X → Z` (middle sets must match exactly, as sets).
    Transitivity {
        /// Line holding `X → Y`.
        left_line: usize,
        /// Line holding `Y → Z`.
        right_line: usize,
    },
}

/// One line of an FD proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdProofLine {
    /// The FD asserted by this line.
    pub fd: Fd,
    /// Its justification.
    pub justification: FdJustification,
}

/// Why an FD proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdProofError {
    /// The proof has no lines.
    Empty,
    /// A premise reference is invalid or mismatched.
    BadPremise(usize),
    /// A reflexivity line's RHS is not contained in its LHS.
    NotReflexive(usize),
    /// An augmentation line does not match its source and `W`.
    BadAugmentation(usize),
    /// A transitivity line's sources do not chain.
    BadTransitivity(usize),
    /// A line references a later or missing line.
    ForwardReference(usize),
    /// Lines mention different relations.
    MixedRelations(usize),
}

impl fmt::Display for FdProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdProofError::Empty => write!(f, "proof has no lines"),
            FdProofError::BadPremise(l) => write!(f, "line {l}: bad premise"),
            FdProofError::NotReflexive(l) => write!(f, "line {l}: not reflexive"),
            FdProofError::BadAugmentation(l) => write!(f, "line {l}: bad augmentation"),
            FdProofError::BadTransitivity(l) => write!(f, "line {l}: sources do not chain"),
            FdProofError::ForwardReference(l) => write!(f, "line {l}: forward reference"),
            FdProofError::MixedRelations(l) => write!(f, "line {l}: wrong relation"),
        }
    }
}

impl std::error::Error for FdProofError {}

/// A checkable Armstrong derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdProof {
    /// The proof lines, in order.
    pub lines: Vec<FdProofLine>,
}

fn set_of(seq: &AttrSeq) -> BTreeSet<Attr> {
    seq.attrs().iter().cloned().collect()
}

impl FdProof {
    /// The conclusion (last line).
    pub fn conclusion(&self) -> Option<&Fd> {
        self.lines.last().map(|l| &l.fd)
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the proof has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Validate every line against the premises and Armstrong's rules.
    pub fn check(&self, sigma: &[Fd]) -> Result<(), FdProofError> {
        if self.lines.is_empty() {
            return Err(FdProofError::Empty);
        }
        let rel = &self.lines[0].fd.rel;
        for (l, line) in self.lines.iter().enumerate() {
            if line.fd.rel != *rel {
                return Err(FdProofError::MixedRelations(l));
            }
            match &line.justification {
                FdJustification::Premise { index } => match sigma.get(*index) {
                    Some(p) if *p == line.fd => {}
                    _ => return Err(FdProofError::BadPremise(l)),
                },
                FdJustification::Reflexivity => {
                    if !set_of(&line.fd.rhs).is_subset(&set_of(&line.fd.lhs)) {
                        return Err(FdProofError::NotReflexive(l));
                    }
                }
                FdJustification::Augmentation { from_line, with } => {
                    if *from_line >= l {
                        return Err(FdProofError::ForwardReference(l));
                    }
                    let src = &self.lines[*from_line].fd;
                    let w: BTreeSet<Attr> = with.iter().cloned().collect();
                    let want_lhs: BTreeSet<Attr> = set_of(&src.lhs).union(&w).cloned().collect();
                    let want_rhs: BTreeSet<Attr> = set_of(&src.rhs).union(&w).cloned().collect();
                    if set_of(&line.fd.lhs) != want_lhs || set_of(&line.fd.rhs) != want_rhs {
                        return Err(FdProofError::BadAugmentation(l));
                    }
                }
                FdJustification::Transitivity {
                    left_line,
                    right_line,
                } => {
                    if *left_line >= l || *right_line >= l {
                        return Err(FdProofError::ForwardReference(l));
                    }
                    let a = &self.lines[*left_line].fd;
                    let b = &self.lines[*right_line].fd;
                    let chains = set_of(&a.rhs) == set_of(&b.lhs)
                        && set_of(&line.fd.lhs) == set_of(&a.lhs)
                        && set_of(&line.fd.rhs) == set_of(&b.rhs);
                    if !chains {
                        return Err(FdProofError::BadTransitivity(l));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for FdProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (l, line) in self.lines.iter().enumerate() {
            let just = match &line.justification {
                FdJustification::Premise { index } => format!("premise {index}"),
                FdJustification::Reflexivity => "reflexivity".into(),
                FdJustification::Augmentation { from_line, with } => {
                    let names: Vec<&str> = with.iter().map(|a| a.name()).collect();
                    format!("augment line {from_line} with {{{}}}", names.join(", "))
                }
                FdJustification::Transitivity {
                    left_line,
                    right_line,
                } => format!("transitivity of lines {left_line}, {right_line}"),
            };
            writeln!(f, "{l:>3}. {}    [{just}]", line.fd)?;
        }
        Ok(())
    }
}

/// Construct a checked Armstrong derivation of `target` from `sigma`, or
/// `None` when the implication does not hold.
///
/// Construction follows the Beeri–Bernstein closure trace: maintain the
/// derived FD `X → Z` for the growing closure `Z`; for each firing
/// premise `L → R` (with `L ⊆ Z`), augment it to `Z → Z ∪ R` and chain by
/// transitivity; finish with a reflexive projection onto the target RHS.
pub fn prove_fd(sigma: &[Fd], target: &Fd) -> Option<FdProof> {
    let engine = FdEngine::new(target.rel.clone(), sigma);
    if !engine.implies(target) {
        return None;
    }
    // Index premises by their position in `sigma` (the engine filters by
    // relation, so recompute indices against the caller's list).
    let (closure, trace) = engine.closure_with_trace(&target.lhs);
    debug_assert!(target.rhs.attrs().iter().all(|a| closure.contains(a)));

    let rel = target.rel.clone();
    let seq = |s: &BTreeSet<Attr>| AttrSeq::new(s.iter().cloned().collect()).expect("set distinct");

    let mut lines: Vec<FdProofLine> = Vec::new();
    // Line 0: X → X (reflexivity); the running derivation X → Z.
    let x = set_of(&target.lhs);
    lines.push(FdProofLine {
        fd: Fd::new(rel.clone(), target.lhs.clone(), seq(&x)),
        justification: FdJustification::Reflexivity,
    });
    let mut z = x.clone();
    let mut running = 0usize; // line index of X → Z

    // Group the trace by firing FD, in firing order.
    let mut fired: Vec<usize> = Vec::new();
    for (_, fd_idx) in &trace {
        // The engine's indices refer to its filtered list; map to sigma by
        // identity of the FD value.
        if !fired.contains(fd_idx) {
            fired.push(*fd_idx);
        }
    }
    for fd_idx in fired {
        let premise = engine.fds()[fd_idx].clone();
        let sigma_idx = sigma.iter().position(|f| *f == premise)?;
        // premise: L → R with L ⊆ Z.
        let premise_line = lines.len();
        lines.push(FdProofLine {
            fd: premise.clone(),
            justification: FdJustification::Premise { index: sigma_idx },
        });
        // Augment with Z: Z → Z ∪ R.
        let with: Vec<Attr> = z.iter().cloned().collect();
        let mut z_new = z.clone();
        z_new.extend(premise.rhs.attrs().iter().cloned());
        let aug_line = lines.len();
        lines.push(FdProofLine {
            fd: Fd::new(rel.clone(), seq(&z), seq(&z_new)),
            justification: FdJustification::Augmentation {
                from_line: premise_line,
                with,
            },
        });
        // Chain: X → Z, Z → Z ∪ R ⟹ X → Z ∪ R.
        let trans_line = lines.len();
        lines.push(FdProofLine {
            fd: Fd::new(rel.clone(), target.lhs.clone(), seq(&z_new)),
            justification: FdJustification::Transitivity {
                left_line: running,
                right_line: aug_line,
            },
        });
        z = z_new;
        running = trans_line;
    }

    // Project: Z → Y (reflexivity), then X → Y (transitivity).
    let y = set_of(&target.rhs);
    let proj_line = lines.len();
    lines.push(FdProofLine {
        fd: Fd::new(rel.clone(), seq(&z), target.rhs.clone()),
        justification: FdJustification::Reflexivity,
    });
    lines.push(FdProofLine {
        fd: target.clone(),
        justification: FdJustification::Transitivity {
            left_line: running,
            right_line: proj_line,
        },
    });
    let _ = y;
    Some(FdProof { lines })
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::parse_dependency;

    fn fd(src: &str) -> Fd {
        match parse_dependency(src).unwrap() {
            depkit_core::Dependency::Fd(f) => f,
            _ => panic!("not an FD"),
        }
    }

    #[test]
    fn prove_transitivity_chain() {
        let sigma = vec![fd("R: A -> B"), fd("R: B -> C"), fd("R: C -> D")];
        let target = fd("R: A -> D");
        let proof = prove_fd(&sigma, &target).expect("implied");
        proof.check(&sigma).expect("must check");
        assert_eq!(proof.conclusion(), Some(&target));
    }

    #[test]
    fn prove_trivial_fd() {
        let target = fd("R: A, B -> A");
        let proof = prove_fd(&[], &target).expect("trivial");
        proof.check(&[]).expect("must check");
    }

    #[test]
    fn prove_fails_on_non_consequence() {
        let sigma = vec![fd("R: A -> B")];
        assert!(prove_fd(&sigma, &fd("R: B -> A")).is_none());
    }

    #[test]
    fn mutated_proofs_fail() {
        let sigma = vec![fd("R: A -> B"), fd("R: B -> C")];
        let proof = prove_fd(&sigma, &fd("R: A -> C")).unwrap();
        let mut bad = proof.clone();
        let last = bad.lines.len() - 1;
        bad.lines[last].fd = fd("R: C -> A");
        assert!(bad.check(&sigma).is_err());
        let mut bad2 = proof.clone();
        bad2.lines[0].fd = fd("R: A -> B"); // reflexivity line must be X → X-ish
        assert!(bad2.check(&sigma).is_err());
    }

    #[test]
    fn agreement_with_engine_on_random_sets() {
        use depkit_core::generate::{random_fd, random_schema, Rng, SchemaConfig};
        let mut rng = Rng::new(0xF00D);
        for round in 0..60 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 1,
                    min_arity: 3,
                    max_arity: 5,
                },
            );
            let mut sigma = Vec::new();
            for _ in 0..4 {
                let lhs_n = 1 + rng.below(2);
                if let Some(f) = random_fd(&mut rng, &schema, lhs_n, 1) {
                    sigma.push(f);
                }
            }
            let Some(target) = random_fd(&mut rng, &schema, 1, 2) else {
                continue;
            };
            let expected = FdEngine::new(target.rel.clone(), &sigma).implies(&target);
            match prove_fd(&sigma, &target) {
                Some(proof) => {
                    assert!(expected, "round {round}: over-proved {target}");
                    proof.check(&sigma).unwrap_or_else(|e| {
                        panic!("round {round}: produced proof fails: {e}\n{proof}")
                    });
                }
                None => assert!(!expected, "round {round}: under-proved {target}"),
            }
        }
    }

    #[test]
    fn armstrong_rule_arity_matches_theorem_5_1_control() {
        // Reflexivity is 0-ary, augmentation 1-ary, transitivity 2-ary:
        // the k = 2 closure control of kary.rs is about exactly this
        // system. Here we just assert the proof uses only those rules.
        let sigma = vec![fd("R: A -> B"), fd("R: B -> C")];
        let proof = prove_fd(&sigma, &fd("R: A -> C")).unwrap();
        for line in &proof.lines {
            match &line.justification {
                FdJustification::Premise { .. }
                | FdJustification::Reflexivity
                | FdJustification::Augmentation { .. }
                | FdJustification::Transitivity { .. } => {}
            }
        }
        assert!(proof.len() >= 5);
    }
}
