//! Theorem 5.1: characterizing the existence of k-ary complete
//! axiomatizations.
//!
//! > **Theorem 5.1.** Let `D` be a database scheme, `𝒟` a set of sentences
//! > about `D`, and `k ≥ 0`. There is a k-ary complete axiomatization for
//! > `𝒟` iff whenever `Γ ⊆ 𝒟` is closed under k-ary implication, `Γ` is
//! > closed under implication.
//!
//! This module implements the two closure notions over **finite** sentence
//! universes with a pluggable [`ImplicationOracle`]. The negative results
//! of Sections 6 and 7 are obtained by exhibiting a set closed under
//! k-ary implication but not under implication ([`families`] builds the
//! witnesses; this module provides the machinery). The positive direction
//! is exercised in tests: FDs have a 2-ary complete axiomatization
//! (Armstrong), so 2-ary-closed FD sets are implication-closed — while
//! 1-ary-closed sets need not be, pinpointing why transitivity is
//! genuinely binary.
//!
//! [`families`]: crate::families

use depkit_core::dependency::Dependency;
use std::collections::BTreeSet;

/// Decides `Σ ⊨ τ` for the universe under study. Implementations choose
/// the implication notion (finite vs unrestricted) and must be **exact**
/// for the conclusions drawn from them; sound-but-incomplete engines may
/// be used where only one direction is needed.
pub trait ImplicationOracle {
    /// Whether `sigma ⊨ tau`.
    fn implies(&self, sigma: &[Dependency], tau: &Dependency) -> bool;
}

/// An oracle backed by a closure: handy for family-specific exact oracles.
pub struct FnOracle<F: Fn(&[Dependency], &Dependency) -> bool>(pub F);

impl<F: Fn(&[Dependency], &Dependency) -> bool> ImplicationOracle for FnOracle<F> {
    fn implies(&self, sigma: &[Dependency], tau: &Dependency) -> bool {
        (self.0)(sigma, tau)
    }
}

/// An exact FD oracle (Armstrong completeness via attribute closure).
pub struct FdOracle;

impl ImplicationOracle for FdOracle {
    fn implies(&self, sigma: &[Dependency], tau: &Dependency) -> bool {
        let fds: Vec<depkit_core::Fd> = sigma.iter().filter_map(|d| d.as_fd().cloned()).collect();
        match tau {
            Dependency::Fd(f) => depkit_solver::fd::implies_fd(&fds, f),
            _ => tau.is_trivial(),
        }
    }
}

/// An exact IND oracle (Theorem 3.1 completeness via the expression
/// search).
pub struct IndOracle;

impl ImplicationOracle for IndOracle {
    fn implies(&self, sigma: &[Dependency], tau: &Dependency) -> bool {
        let inds: Vec<depkit_core::Ind> =
            sigma.iter().filter_map(|d| d.as_ind().cloned()).collect();
        match tau {
            Dependency::Ind(i) => depkit_solver::ind::IndSolver::new(&inds).implies(i),
            _ => tau.is_trivial(),
        }
    }
}

/// Enumerate subsets of `items` of size at most `k`, invoking `f` on each;
/// stops early when `f` returns `false`. Returns whether enumeration ran
/// to completion.
pub fn for_each_subset_up_to<T: Clone>(
    items: &[T],
    k: usize,
    f: &mut dyn FnMut(&[T]) -> bool,
) -> bool {
    fn rec<T: Clone>(
        items: &[T],
        k: usize,
        start: usize,
        current: &mut Vec<T>,
        f: &mut dyn FnMut(&[T]) -> bool,
    ) -> bool {
        if !f(current) {
            return false;
        }
        if current.len() == k {
            return true;
        }
        for i in start..items.len() {
            current.push(items[i].clone());
            if !rec(items, k, i + 1, current, f) {
                return false;
            }
            current.pop();
        }
        true
    }
    let mut current = Vec::new();
    rec(items, k, 0, &mut current, f)
}

/// Close `start` under k-ary implication within `universe`: repeatedly add
/// every `τ ∈ universe` implied by some subset of the current set of size
/// at most `k` (0-ary closure adds tautologies).
pub fn close_under_k_ary(
    universe: &[Dependency],
    start: &BTreeSet<Dependency>,
    k: usize,
    oracle: &dyn ImplicationOracle,
) -> BTreeSet<Dependency> {
    let mut set = start.clone();
    loop {
        let mut added: Vec<Dependency> = Vec::new();
        let members: Vec<Dependency> = set.iter().cloned().collect();
        for tau in universe {
            if set.contains(tau) {
                continue;
            }
            let mut implied = false;
            for_each_subset_up_to(&members, k, &mut |subset| {
                if oracle.implies(subset, tau) {
                    implied = true;
                    false
                } else {
                    true
                }
            });
            if implied {
                added.push(tau.clone());
            }
        }
        if added.is_empty() {
            return set;
        }
        set.extend(added);
    }
}

/// If `set` is **not** closed under (full) implication within `universe`,
/// return a witness `τ ∈ universe ∖ set` with `set ⊨ τ`.
pub fn implication_closure_witness(
    universe: &[Dependency],
    set: &BTreeSet<Dependency>,
    oracle: &dyn ImplicationOracle,
) -> Option<Dependency> {
    let members: Vec<Dependency> = set.iter().cloned().collect();
    universe
        .iter()
        .find(|tau| !set.contains(*tau) && oracle.implies(&members, tau))
        .cloned()
}

/// The Theorem 5.1 verdict for one candidate set: if the k-ary closure of
/// `start` admits an implication-closure witness, then **no k-ary complete
/// axiomatization exists** for this universe (the closure is the set `Γ`
/// of the theorem's proof).
#[derive(Debug, Clone)]
pub struct KaryGap {
    /// The k-ary-closed set `Γ`.
    pub closed_set: BTreeSet<Dependency>,
    /// A sentence implied by `Γ` but outside it.
    pub witness: Dependency,
}

/// Search for a Theorem 5.1 gap starting from `start`.
pub fn find_kary_gap(
    universe: &[Dependency],
    start: &BTreeSet<Dependency>,
    k: usize,
    oracle: &dyn ImplicationOracle,
) -> Option<KaryGap> {
    let closed = close_under_k_ary(universe, start, k, oracle);
    implication_closure_witness(universe, &closed, oracle).map(|witness| KaryGap {
        closed_set: closed,
        witness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::attr::attrs;
    use depkit_core::parser::parse_dependency;
    use depkit_core::Fd;

    fn dep(src: &str) -> Dependency {
        parse_dependency(src).unwrap()
    }

    /// All FDs over R(A, B, C) with single-attribute sides (the universe
    /// used by the k-ary experiments on FDs).
    fn unary_fd_universe() -> Vec<Dependency> {
        let names = ["A", "B", "C"];
        let mut out = Vec::new();
        for l in names {
            for r in names {
                out.push(Fd::new("R", attrs(&[l]), attrs(&[r])).into());
            }
        }
        out
    }

    #[test]
    fn subset_enumeration_counts() {
        let items = [1, 2, 3, 4];
        let mut count = 0;
        for_each_subset_up_to(&items, 2, &mut |_s| {
            count += 1;
            true
        });
        // C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6 = 11.
        assert_eq!(count, 11);
    }

    #[test]
    fn fds_are_2ary_closed_implies_implication_closed() {
        // FDs have a 2-ary complete axiomatization (Armstrong), so by
        // Theorem 5.1 every 2-ary-closed set must be implication-closed.
        let universe = unary_fd_universe();
        let oracle = FdOracle;
        let start: BTreeSet<Dependency> =
            [dep("R: A -> B"), dep("R: B -> C")].into_iter().collect();
        let closed = close_under_k_ary(&universe, &start, 2, &oracle);
        // Transitivity fired at arity 2.
        assert!(closed.contains(&dep("R: A -> C")));
        assert!(
            implication_closure_witness(&universe, &closed, &oracle).is_none(),
            "2-ary-closed FD sets are implication-closed"
        );
    }

    #[test]
    fn fds_have_no_1ary_axiomatization_gap() {
        // At k = 1 transitivity cannot fire: the 1-ary closure of
        // {A -> B, B -> C} misses A -> C, exhibiting the Theorem 5.1 gap
        // (so there is no 1-ary complete axiomatization of FDs).
        let universe = unary_fd_universe();
        let oracle = FdOracle;
        let start: BTreeSet<Dependency> =
            [dep("R: A -> B"), dep("R: B -> C")].into_iter().collect();
        let gap = find_kary_gap(&universe, &start, 1, &oracle).expect("gap must exist");
        assert_eq!(gap.witness, dep("R: A -> C"));
        assert!(!gap.closed_set.contains(&dep("R: A -> C")));
        // Tautologies were added by 0-ary closure.
        assert!(gap.closed_set.contains(&dep("R: A -> A")));
    }

    #[test]
    fn inds_are_2ary_closed_implies_implication_closed_small() {
        // INDs have a 2-ary complete axiomatization (IND1-3), so 2-ary
        // closed sets are implication-closed; check on a small universe.
        let names = ["R", "S", "T"];
        let mut universe = Vec::new();
        for a in names {
            for b in names {
                universe.push(dep(&format!("{a}[A] <= {b}[A]")));
            }
        }
        let oracle = IndOracle;
        let start: BTreeSet<Dependency> = [dep("R[A] <= S[A]"), dep("S[A] <= T[A]")]
            .into_iter()
            .collect();
        let closed = close_under_k_ary(&universe, &start, 2, &oracle);
        assert!(closed.contains(&dep("R[A] <= T[A]")));
        assert!(implication_closure_witness(&universe, &closed, &oracle).is_none());
        // And at k = 1 the transitive consequence is missed.
        let gap = find_kary_gap(&universe, &start, 1, &oracle).expect("gap at k = 1");
        assert_eq!(gap.witness, dep("R[A] <= T[A]"));
    }

    #[test]
    fn section_5_warning_example() {
        // The paper's warning at the end of Section 5: the FD chain rule
        // "if {A1→A2, ..., A_{k+1}→A_{k+2}} then A1→A_{k+2}" has k+1
        // antecedents, NONE removable — yet FDs still have a 2-ary
        // complete axiomatization. Irredundant many-antecedent rules do
        // not, by themselves, refute k-ary axiomatizability.
        for k in [2usize, 3, 4] {
            let chain: Vec<Dependency> = (1..=k + 1)
                .map(|i| dep(&format!("R: A{i} -> A{}", i + 1)))
                .collect();
            let tau = dep(&format!("R: A1 -> A{}", k + 2));
            let oracle = FdOracle;
            // Sound with all antecedents...
            let chain_vec: Vec<Dependency> = chain.clone();
            assert!(oracle.implies(&chain_vec, &tau), "k={k}");
            // ...and no antecedent is removable.
            for drop in 0..chain.len() {
                let reduced: Vec<Dependency> = chain
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, d)| d.clone())
                    .collect();
                assert!(!oracle.implies(&reduced, &tau), "k={k}, drop={drop}");
            }
            // Yet the 2-ary closure machinery still decides everything:
            // the chain's conclusion IS in the 2-ary closure.
            let universe: Vec<Dependency> = {
                let mut out = chain.clone();
                out.push(tau.clone());
                // intermediate transitive consequences
                for i in 1..=k + 2 {
                    for j in 1..=k + 2 {
                        if i != j {
                            out.push(dep(&format!("R: A{i} -> A{j}")));
                        }
                    }
                }
                out.sort();
                out.dedup();
                out
            };
            let start: BTreeSet<Dependency> = chain.into_iter().collect();
            let closed = close_under_k_ary(&universe, &start, 2, &oracle);
            assert!(
                closed.contains(&tau),
                "k={k}: 2-ary closure reaches the conclusion"
            );
        }
    }

    #[test]
    fn closure_is_monotone_in_k() {
        let universe = unary_fd_universe();
        let oracle = FdOracle;
        let start: BTreeSet<Dependency> = [dep("R: A -> B"), dep("R: B -> C"), dep("R: C -> A")]
            .into_iter()
            .collect();
        let c0 = close_under_k_ary(&universe, &start, 0, &oracle);
        let c1 = close_under_k_ary(&universe, &start, 1, &oracle);
        let c2 = close_under_k_ary(&universe, &start, 2, &oracle);
        assert!(c0.is_subset(&c1));
        assert!(c1.is_subset(&c2));
    }
}
