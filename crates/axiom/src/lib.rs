//! # depkit-axiom — proof theory and the paper's negative results
//!
//! This crate turns the axiomatic content of Casanova–Fagin–Papadimitriou
//! into executable, machine-checked objects:
//!
//! * [`proof`] — the IND proof system of Section 3 (rules IND1 reflexivity,
//!   IND2 projection-and-permutation, IND3 transitivity) as verifiable
//!   proof objects, with a prover that converts Corollary 3.2 walks into
//!   checked proofs. Theorem 3.1 (completeness) is machine-checked by
//!   agreement between the prover, the semantic Rule (*) chase, and the
//!   syntactic search.
//! * [`kary`] — Theorem 5.1: a `k`-ary complete axiomatization exists for a
//!   sentence universe iff every set closed under `k`-ary implication is
//!   closed under implication. Implemented over finite dependency universes
//!   with pluggable implication oracles.
//! * [`families`] — the concrete families driving the negative results:
//!   Theorem 4.4 (finite ≠ unrestricted, with the Figure 4.1/4.2 infinite
//!   witnesses), Theorem 5.3 (Sagiv–Walecka EMVDs), Theorem 6.1 (no k-ary
//!   axiomatization for finite implication; Figure 6.1 Armstrong
//!   databases), and Theorem 7.1 (no k-ary axiomatization for unrestricted
//!   implication; Figures 7.1–7.5 witness databases and the Lemma 7.2
//!   chase proof).

pub mod families;
pub mod fd_proof;
pub mod kary;
pub mod proof;

pub use fd_proof::{prove_fd, FdProof};
pub use kary::{close_under_k_ary, implication_closure_witness, ImplicationOracle};
pub use proof::{IndProof, Justification, ProofError, ProofLine};
