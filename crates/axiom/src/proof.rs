//! Verifiable proof objects for the IND axiomatization of Section 3.
//!
//! A proof of `σ` from `Σ` is a finite sequence of INDs, each a member of
//! `Σ` or obtained from earlier lines by one of:
//!
//! * **IND1** (reflexivity): `R[X] ⊆ R[X]`;
//! * **IND2** (projection and permutation): from `R[A_1..A_m] ⊆
//!   S[B_1..B_m]` infer `R[A_{i_1}..A_{i_k}] ⊆ S[B_{i_1}..B_{i_k}]` for
//!   distinct `i_1..i_k`;
//! * **IND3** (transitivity): from `R[X] ⊆ S[Y]` and `S[Y] ⊆ T[Z]` infer
//!   `R[X] ⊆ T[Z]`.
//!
//! [`IndProof::check`] validates every line, so a checked proof is a
//! self-contained certificate. [`prove`] produces proofs from the
//! Corollary 3.2 walks found by `depkit-solver`; Theorem 3.1's
//! completeness is the (machine-checked) fact that `prove` succeeds
//! exactly when the semantic Rule (*) chase says the implication holds.

use depkit_core::dependency::Ind;
use depkit_solver::ind::{IndSolver, WalkStep};
use std::fmt;

/// How a proof line is justified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Justification {
    /// The line is `sigma[index]`.
    Premise {
        /// Index into the premise set `Σ`.
        index: usize,
    },
    /// IND1 (reflexivity): the line is `R[X] ⊆ R[X]`.
    Ind1,
    /// IND2 (projection and permutation) applied to an earlier line.
    Ind2 {
        /// The earlier line the rule is applied to.
        from_line: usize,
        /// The selected positions `i_1, ..., i_k` (0-based).
        positions: Vec<usize>,
    },
    /// IND3 (transitivity) of two earlier lines.
    Ind3 {
        /// Line holding `R[X] ⊆ S[Y]`.
        left_line: usize,
        /// Line holding `S[Y] ⊆ T[Z]`.
        right_line: usize,
    },
}

/// One line of a proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofLine {
    /// The IND asserted by this line.
    pub ind: Ind,
    /// Its justification.
    pub justification: Justification,
}

/// Why a proof failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The proof has no lines.
    Empty,
    /// A line references a premise index outside `Σ`.
    BadPremiseIndex(usize),
    /// A line does not match the premise it claims to be.
    PremiseMismatch(usize),
    /// An IND1 line is not of the form `R[X] ⊆ R[X]`.
    NotReflexive(usize),
    /// A line references a later or nonexistent line.
    ForwardReference(usize),
    /// An IND2 line does not equal the claimed projection.
    BadProjection(usize),
    /// An IND3 line's sources do not chain.
    BadComposition(usize),
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::Empty => write!(f, "proof has no lines"),
            ProofError::BadPremiseIndex(l) => write!(f, "line {l}: premise index out of range"),
            ProofError::PremiseMismatch(l) => write!(f, "line {l}: IND differs from premise"),
            ProofError::NotReflexive(l) => write!(f, "line {l}: not an IND1 instance"),
            ProofError::ForwardReference(l) => write!(f, "line {l}: references a later line"),
            ProofError::BadProjection(l) => write!(f, "line {l}: not the claimed IND2 instance"),
            ProofError::BadComposition(l) => write!(f, "line {l}: IND3 sources do not chain"),
        }
    }
}

impl std::error::Error for ProofError {}

/// A proof: a sequence of justified lines whose last line is the
/// conclusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndProof {
    /// The proof lines, in order.
    pub lines: Vec<ProofLine>,
}

impl IndProof {
    /// The proof's conclusion (its last line).
    pub fn conclusion(&self) -> Option<&Ind> {
        self.lines.last().map(|l| &l.ind)
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the proof has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Validate every line against `Σ` and the three rules.
    pub fn check(&self, sigma: &[Ind]) -> Result<(), ProofError> {
        if self.lines.is_empty() {
            return Err(ProofError::Empty);
        }
        for (l, line) in self.lines.iter().enumerate() {
            match &line.justification {
                Justification::Premise { index } => {
                    let premise = sigma.get(*index).ok_or(ProofError::BadPremiseIndex(l))?;
                    if *premise != line.ind {
                        return Err(ProofError::PremiseMismatch(l));
                    }
                }
                Justification::Ind1 => {
                    if !line.ind.is_trivial() {
                        return Err(ProofError::NotReflexive(l));
                    }
                }
                Justification::Ind2 {
                    from_line,
                    positions,
                } => {
                    if *from_line >= l {
                        return Err(ProofError::ForwardReference(l));
                    }
                    let source = &self.lines[*from_line].ind;
                    match source.select(positions) {
                        Ok(projected) if projected == line.ind => {}
                        _ => return Err(ProofError::BadProjection(l)),
                    }
                }
                Justification::Ind3 {
                    left_line,
                    right_line,
                } => {
                    if *left_line >= l || *right_line >= l {
                        return Err(ProofError::ForwardReference(l));
                    }
                    let a = &self.lines[*left_line].ind;
                    let b = &self.lines[*right_line].ind;
                    let chains = a.rhs_rel == b.lhs_rel
                        && a.rhs_attrs == b.lhs_attrs
                        && line.ind.lhs_rel == a.lhs_rel
                        && line.ind.lhs_attrs == a.lhs_attrs
                        && line.ind.rhs_rel == b.rhs_rel
                        && line.ind.rhs_attrs == b.rhs_attrs;
                    if !chains {
                        return Err(ProofError::BadComposition(l));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for IndProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (l, line) in self.lines.iter().enumerate() {
            let just = match &line.justification {
                Justification::Premise { index } => format!("premise {index}"),
                Justification::Ind1 => "IND1".to_string(),
                Justification::Ind2 {
                    from_line,
                    positions,
                } => format!("IND2 on line {from_line}, positions {positions:?}"),
                Justification::Ind3 {
                    left_line,
                    right_line,
                } => format!("IND3 of lines {left_line}, {right_line}"),
            };
            writeln!(f, "{l:>3}. {}    [{just}]", line.ind)?;
        }
        Ok(())
    }
}

/// Construct a checked proof of `target` from `Σ`, or return `None` when
/// `Σ ⊭ target`. Uses the Corollary 3.2 walk and converts each step into a
/// premise + IND2 pair, chaining with IND3.
pub fn prove(sigma: &[Ind], target: &Ind) -> Option<IndProof> {
    let solver = IndSolver::new(sigma);
    let walk = solver.walk(target)?;
    Some(proof_from_walk(sigma, &walk))
}

/// Convert a verified walk into a proof object.
///
/// A length-1 walk means the target is reflexive: a single IND1 line.
/// Otherwise each step contributes a premise line and an IND2 line; the
/// running composition is maintained with IND3.
pub fn proof_from_walk(sigma: &[Ind], walk: &[WalkStep]) -> IndProof {
    let mut lines: Vec<ProofLine> = Vec::new();
    if walk.len() == 1 {
        let e = &walk[0].expr;
        let ind = Ind::new(
            e.rel.clone(),
            e.attrs.clone(),
            e.rel.clone(),
            e.attrs.clone(),
        )
        .expect("equal sides");
        lines.push(ProofLine {
            ind,
            justification: Justification::Ind1,
        });
        return IndProof { lines };
    }

    // Running line index of the composed IND R_a[X_1] ⊆ S_i[X_i].
    let mut composed: Option<usize> = None;
    for w in 1..walk.len() {
        let prev = &walk[w - 1].expr;
        let cur = &walk[w].expr;
        let sigma_idx = walk[w].via.expect("non-initial steps record their IND");
        let premise = &sigma[sigma_idx];

        // Positions: expression attrs located inside the premise's LHS.
        let positions: Vec<usize> = prev
            .attrs
            .attrs()
            .iter()
            .map(|a| {
                premise
                    .lhs_attrs
                    .position(a)
                    .expect("walk steps are IND2 instances")
            })
            .collect();

        let premise_line = lines.len();
        lines.push(ProofLine {
            ind: premise.clone(),
            justification: Justification::Premise { index: sigma_idx },
        });

        let step_ind = Ind::new(
            prev.rel.clone(),
            prev.attrs.clone(),
            cur.rel.clone(),
            cur.attrs.clone(),
        )
        .expect("equal lengths");
        let step_line = lines.len();
        lines.push(ProofLine {
            ind: step_ind,
            justification: Justification::Ind2 {
                from_line: premise_line,
                positions,
            },
        });

        composed = Some(match composed {
            None => step_line,
            Some(prev_comp) => {
                let left = lines[prev_comp].ind.clone();
                let right = lines[step_line].ind.clone();
                let ind = Ind::new(
                    left.lhs_rel.clone(),
                    left.lhs_attrs.clone(),
                    right.rhs_rel.clone(),
                    right.rhs_attrs.clone(),
                )
                .expect("equal lengths");
                let line = lines.len();
                lines.push(ProofLine {
                    ind,
                    justification: Justification::Ind3 {
                        left_line: prev_comp,
                        right_line: step_line,
                    },
                });
                line
            }
        });
    }
    let _ = composed;
    IndProof { lines }
}

/// A **short** proof of `σ(γ^k)` from `σ(γ)` by repeated squaring:
/// `O(log k)` squaring/multiplication steps instead of the `k − 1` steps
/// the breadth-first decision procedure walks.
///
/// This is the paper's remark after the Landau example in Section 3: "for
/// the class of examples we just gave, there are short proofs that
/// `σ(γ) ⊨ σ(δ)`" — the *procedure* is superpolynomial, the *certificates*
/// are not. Requires `ind` to be a full-width self-IND `R[U] ⊆ R[πU]`
/// whose right side is a permutation of its left side; returns `None`
/// otherwise (or when `k = 0` and the identity IND is not reflexive).
///
/// Key step: if a line holds `R[U] ⊆ R[δU]`, then IND2 with positions
/// `δ(1), ..., δ(m)` applied to the *same* line yields
/// `R[δU] ⊆ R[δ²U]`, and IND3 chains them to `R[U] ⊆ R[δ²U]`.
pub fn prove_permutation_power(sigma: &[Ind], ind_index: usize, k: u128) -> Option<IndProof> {
    let ind = sigma.get(ind_index)?;
    if ind.lhs_rel != ind.rhs_rel || !ind.lhs_attrs.same_set(&ind.rhs_attrs) {
        return None;
    }
    let m = ind.arity();
    // The permutation π as positions: rhs[i] = lhs[π(i)].
    let pi: Vec<usize> = ind
        .rhs_attrs
        .attrs()
        .iter()
        .map(|a| ind.lhs_attrs.position(a).expect("same attribute set"))
        .collect();

    // Compose position maps: (a ∘ b)(i) = a[b[i]] — apply b, then a.
    let compose = |a: &[usize], b: &[usize]| -> Vec<usize> { (0..m).map(|i| a[b[i]]).collect() };
    // The IND σ(perm) for a position map.
    let ind_of = |perm: &[usize]| -> Ind {
        let rhs: Vec<_> = (0..m)
            .map(|i| ind.lhs_attrs.attrs()[perm[i]].clone())
            .collect();
        Ind::new(
            ind.lhs_rel.clone(),
            ind.lhs_attrs.clone(),
            ind.rhs_rel.clone(),
            depkit_core::attr::AttrSeq::new(rhs).expect("permutation of distinct attrs"),
        )
        .expect("equal arity")
    };

    let mut lines: Vec<ProofLine> = Vec::new();
    if k == 0 {
        lines.push(ProofLine {
            ind: ind_of(&(0..m).collect::<Vec<_>>()),
            justification: Justification::Ind1,
        });
        return Some(IndProof { lines });
    }

    // `base`: (line index, position map) for σ(π^{2^i}), starting at i = 0.
    lines.push(ProofLine {
        ind: ind.clone(),
        justification: Justification::Premise { index: ind_index },
    });
    let mut base: (usize, Vec<usize>) = (0, pi);
    // `acc`: accumulated σ(π^bits) for the processed low bits of k.
    let mut acc: Option<(usize, Vec<usize>)> = None;

    let mut remaining = k;
    loop {
        if remaining & 1 == 1 {
            acc = Some(match acc {
                None => base.clone(),
                Some((acc_line, acc_perm)) => {
                    // From base (R[U] ⊆ R[δU]) derive R[αU] ⊆ R[(δ∘α)U]
                    // via IND2 with positions α, then chain the
                    // accumulator R[U] ⊆ R[αU] by IND3.
                    let projected = lines[base.0]
                        .ind
                        .select(&acc_perm)
                        .expect("valid positions");
                    let shifted = lines.len();
                    lines.push(ProofLine {
                        ind: projected,
                        justification: Justification::Ind2 {
                            from_line: base.0,
                            positions: acc_perm.clone(),
                        },
                    });
                    let combined_perm = compose(&base.1, &acc_perm);
                    let line = lines.len();
                    lines.push(ProofLine {
                        ind: ind_of(&combined_perm),
                        justification: Justification::Ind3 {
                            left_line: acc_line,
                            right_line: shifted,
                        },
                    });
                    (line, combined_perm)
                }
            });
        }
        remaining >>= 1;
        if remaining == 0 {
            break;
        }
        // Square the base: IND2 on base with positions δ gives
        // R[δU] ⊆ R[δ²U]; IND3 with base gives R[U] ⊆ R[δ²U].
        let (base_line, base_perm) = base;
        let src = lines[base_line].ind.clone();
        let shifted = lines.len();
        lines.push(ProofLine {
            ind: src.select(&base_perm).expect("valid positions"),
            justification: Justification::Ind2 {
                from_line: base_line,
                positions: base_perm.clone(),
            },
        });
        let squared_perm = compose(&base_perm, &base_perm);
        let line = lines.len();
        lines.push(ProofLine {
            ind: ind_of(&squared_perm),
            justification: Justification::Ind3 {
                left_line: base_line,
                right_line: shifted,
            },
        });
        base = (line, squared_perm);
    }

    let (acc_line, _) = acc.expect("k >= 1 sets the accumulator");
    // Ensure the conclusion is the last line (IND2 with the identity
    // selection restates an earlier line verbatim).
    if acc_line != lines.len() - 1 {
        let conclusion = lines[acc_line].ind.clone();
        lines.push(ProofLine {
            ind: conclusion,
            justification: Justification::Ind2 {
                from_line: acc_line,
                positions: (0..m).collect(),
            },
        });
    }
    Some(IndProof { lines })
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::parse_dependency;
    use depkit_core::Dependency;

    fn ind(src: &str) -> Ind {
        match parse_dependency(src).unwrap() {
            Dependency::Ind(i) => i,
            _ => panic!("not an IND"),
        }
    }

    fn inds(srcs: &[&str]) -> Vec<Ind> {
        srcs.iter().map(|s| ind(s)).collect()
    }

    #[test]
    fn prove_and_check_transitivity() {
        let sigma = inds(&["R[A, B] <= S[C, D]", "S[C, D] <= T[E, F]"]);
        let target = ind("R[B] <= T[F]");
        let proof = prove(&sigma, &target).expect("implication holds");
        assert_eq!(proof.conclusion(), Some(&target));
        proof.check(&sigma).expect("proof must check");
    }

    #[test]
    fn prove_reflexive_with_ind1() {
        let proof = prove(&[], &ind("R[A, B] <= R[A, B]")).unwrap();
        assert_eq!(proof.len(), 1);
        assert_eq!(proof.lines[0].justification, Justification::Ind1);
        proof.check(&[]).unwrap();
    }

    #[test]
    fn prove_fails_on_non_consequence() {
        let sigma = inds(&["R[A] <= S[B]"]);
        assert!(prove(&sigma, &ind("S[B] <= R[A]")).is_none());
    }

    #[test]
    fn tampered_proofs_fail_checking() {
        let sigma = inds(&["R[A, B] <= S[C, D]", "S[C, D] <= T[E, F]"]);
        let target = ind("R[B] <= T[F]");
        let good = prove(&sigma, &target).unwrap();

        // Swap the conclusion.
        let mut bad = good.clone();
        let last = bad.lines.len() - 1;
        bad.lines[last].ind = ind("R[A] <= T[F]");
        assert!(bad.check(&sigma).is_err());

        // Claim a wrong premise.
        let mut bad2 = good.clone();
        bad2.lines[0].justification = Justification::Premise { index: 1 };
        assert!(bad2.check(&sigma).is_err());

        // Forward reference.
        let mut bad3 = good.clone();
        if let Justification::Ind2 { from_line, .. } = &mut bad3.lines[1].justification {
            *from_line = 99;
        }
        assert!(matches!(
            bad3.check(&sigma),
            Err(ProofError::ForwardReference(_)) | Err(ProofError::BadProjection(_))
        ));
    }

    #[test]
    fn ind1_rejects_non_reflexive() {
        let proof = IndProof {
            lines: vec![ProofLine {
                ind: ind("R[A, B] <= R[B, A]"),
                justification: Justification::Ind1,
            }],
        };
        assert_eq!(proof.check(&[]), Err(ProofError::NotReflexive(0)));
    }

    #[test]
    fn completeness_against_semantic_chase() {
        // Theorem 3.1, machine-checked: prover succeeds iff the Rule (*)
        // chase says the implication holds, and produced proofs check.
        use depkit_chase::ind_chase::ind_chase;
        use depkit_core::generate::{random_ind, random_ind_set, random_schema, Rng, SchemaConfig};
        let mut rng = Rng::new(0x1982);
        for round in 0..50 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 3,
                    min_arity: 2,
                    max_arity: 3,
                },
            );
            let sigma = random_ind_set(&mut rng, &schema, 4, 2);
            let Some(target) = random_ind(&mut rng, &schema, 2) else {
                continue;
            };
            let semantic = ind_chase(&schema, &sigma, &target, 100_000)
                .unwrap()
                .implied;
            match prove(&sigma, &target) {
                Some(proof) => {
                    assert!(semantic, "round {round}: proof exists but chase refutes");
                    proof.check(&sigma).expect("produced proof must check");
                    assert_eq!(proof.conclusion(), Some(&target));
                }
                None => assert!(!semantic, "round {round}: no proof but chase confirms"),
            }
        }
    }

    #[test]
    fn short_proofs_for_permutation_powers() {
        // The paper's Section 3 remark: although the decision procedure
        // walks f(m) − 1 steps on the Landau pair, there are SHORT proofs
        // under the axiomatization — repeated squaring gives O(log k)
        // certificates, independently checkable.
        use depkit_perm::{landau_function, landau_witness, permutation_ind};
        for m in [5usize, 7, 10, 13] {
            let gamma = landau_witness(m);
            let f = landau_function(m);
            let sigma = vec![permutation_ind(&gamma)];
            let k = f - 1;
            let proof = prove_permutation_power(&sigma, 0, k).expect("applicable");
            proof.check(&sigma).expect("short proof must check");
            assert_eq!(
                proof.conclusion(),
                Some(&permutation_ind(&gamma.pow(k))),
                "conclusion must be σ(γ^{k}) at m={m}"
            );
            // Short: O(log k) lines versus the walk's k steps.
            let log_bound = 3 * (128 - k.leading_zeros() as usize) + 4;
            assert!(
                proof.len() <= log_bound,
                "m={m}: proof has {} lines, bound {log_bound} (k={k})",
                proof.len()
            );
            // Strictly shorter than the walk once k is large enough for
            // the logarithm to win (tiny k favors the direct walk).
            if k >= 16 {
                assert!((proof.len() as u128) < k, "m={m}: {} vs k={k}", proof.len());
            }
        }
    }

    #[test]
    fn power_proof_small_exponents() {
        use depkit_perm::{permutation_ind, Perm};
        let gamma = Perm::from_cycles(4, &[vec![0, 1, 2, 3]]).unwrap();
        let sigma = vec![permutation_ind(&gamma)];
        for k in 0..=8u128 {
            let proof = prove_permutation_power(&sigma, 0, k).expect("applicable");
            proof.check(&sigma).expect("must check");
            assert_eq!(
                proof.conclusion(),
                Some(&permutation_ind(&gamma.pow(k))),
                "k={k}"
            );
        }
    }

    #[test]
    fn power_proof_rejects_non_permutation_inds() {
        let sigma = inds(&["R[A] <= S[B]"]);
        assert!(prove_permutation_power(&sigma, 0, 3).is_none());
        let sigma2 = inds(&["R[A, B] <= R[A, C]"]);
        assert!(prove_permutation_power(&sigma2, 0, 3).is_none());
    }

    #[test]
    fn long_permutation_proof_checks() {
        // The Landau-style example: proofs through many IND2/IND3 steps.
        let sigma = inds(&["R[A, B, C, D, E] <= R[B, C, D, E, A]"]);
        let target = ind("R[A, B, C, D, E] <= R[E, A, B, C, D]");
        let proof = prove(&sigma, &target).unwrap();
        proof.check(&sigma).unwrap();
        // 4 steps: each contributes premise + IND2, plus IND3 chains.
        assert!(proof.len() >= 9);
    }
}
