//! Criterion bench: approximate discovery against the exact path on a
//! dirtied 1M-row referential workload (`EMP(EID, DNO)` / `DEPT(DNO, MGR)`
//! with 0.5% of employee rows pointing at dangling departments).
//!
//! Both points mine the *same* dirty store; the only difference is the
//! tolerance. The exact run drops the planted key FD and foreign key the
//! moment it sees the first counterexample (first-disagreement early
//! exit), while the tolerant run (`max_error = 0.01`) must keep counting
//! to the end of every column to produce miss totals — the table reads
//! as the price of confidence scoring over refutation.
//!
//! Setup asserts the acceptance contract before timing anything: the
//! dirt breaks exactly the two planted dependencies, the tolerant run
//! re-mines both with the predicted miss count and support, and the
//! exact run neither mines nor scores them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use depkit_bench::dirty_referential_columns;
use depkit_core::dependency::Dependency;
use depkit_solver::discover::{discover_store, DiscoveryConfig};
use std::hint::black_box;

const DEPTS: usize = 64;
const EMPS: usize = 1_000_000;
/// 0.5% of the clean rows are dirtied — inside the 1% tolerance, so both
/// planted dependencies survive the tolerant run.
const DIRTY: usize = 5_000;

fn config(max_error: f64) -> DiscoveryConfig {
    DiscoveryConfig {
        max_error,
        ..DiscoveryConfig::default()
    }
}

fn bench_approximate_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximate_discovery");
    let (schema, store) = dirty_referential_columns(EMPS, DEPTS, DIRTY);

    // Acceptance gate, not a measurement.
    let exact = discover_store(&schema, &store, &config(0.0)).expect("in-memory, no I/O");
    let tolerant = discover_store(&schema, &store, &config(0.01)).expect("in-memory, no I/O");
    assert!(exact.scored.is_empty(), "exact discovery never scores");
    for dep_src in ["EMP[DNO] <= DEPT[DNO]", "EMP: EID -> DNO"] {
        let dep: Dependency = dep_src.parse().expect("static dep parses");
        assert!(
            !exact.raw.contains(&dep),
            "the dirt must refute `{dep}` exactly"
        );
        let scored = tolerant
            .scored
            .iter()
            .find(|s| s.dep == dep)
            .unwrap_or_else(|| panic!("tolerant run must re-mine `{dep}`"));
        assert_eq!(
            (scored.misses, scored.support),
            (DIRTY as u64, (EMPS + DIRTY) as u64),
            "`{dep}` must miss on exactly the dirty rows"
        );
    }

    group.throughput(Throughput::Elements((EMPS + DIRTY + DEPTS) as u64));
    for (label, max_error) in [("exact", 0.0), ("tolerant", 0.01)] {
        group.bench_with_input(BenchmarkId::new(label, EMPS), &EMPS, |b, _| {
            b.iter(|| {
                black_box(
                    discover_store(black_box(&schema), black_box(&store), &config(max_error))
                        .expect("in-memory, no I/O"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approximate_discovery);
criterion_main!(benches);
