//! Criterion bench: concurrent delta validation through the
//! snapshot-isolated catalog (`depkit_solver::incremental::CatalogState`)
//! — the engine behind `depkit serve`.
//!
//! The fixture is the 64k-row referential workload of
//! `incremental_validation`. Two shapes:
//!
//! * `single_session` — one session per churn batch: begin, stage the
//!   64-pair batch, commit, then the O(1) post-commit consistency check
//!   (and the same for the inverse, restoring steady state). This is the
//!   exact workflow `delta_incremental` prices on a bare `Validator`
//!   (apply + `is_consistent`), so the two are directly comparable; the
//!   acceptance bar is within 2× of it.
//! * `single_session_preview` — the same round trip plus the O(delta)
//!   *pre*-commit [`Session::is_consistent`] preview against the pinned
//!   snapshot — the extra capability a session buys over a `Validator`.
//! * `sessions/N` — N threads, each committing its own churn batch on a
//!   *disjoint* EID range ([`scoped_churn_delta`]), so commits contend
//!   only on the writer lock, never on rows. Throughput is total staged
//!   ops across all threads; the acceptance bar is ≥ 100k delta-rows/sec
//!   at N = 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use depkit_bench::{referential_workload, scoped_churn_delta};
use depkit_core::delta::Delta;
use depkit_solver::incremental::CatalogState;
use std::hint::black_box;

const EMPS: usize = 64_000;
const DEPTS: usize = 64;
const BATCH: usize = 64;

/// Stage `delta`, commit, check consistency of the result O(1) — the
/// session spelling of `delta_incremental`'s apply + `is_consistent`.
fn commit_round(cat: &CatalogState, delta: &Delta) {
    let mut s = cat.begin();
    s.stage(black_box(delta))
        .expect("churn rows fit the schema");
    s.commit();
    black_box(cat.snapshot().is_consistent());
}

/// The same round trip plus the O(delta) pre-commit preview against the
/// session's pinned snapshot.
fn preview_commit_round(cat: &CatalogState, delta: &Delta) {
    let mut s = cat.begin();
    s.stage(black_box(delta))
        .expect("churn rows fit the schema");
    black_box(s.is_consistent());
    s.commit();
}

fn bench_concurrent_validation(c: &mut Criterion) {
    let (schema, sigma, db) = referential_workload(EMPS, DEPTS);
    let mut group = c.benchmark_group("concurrent_validation");

    {
        let delta = scoped_churn_delta(EMPS, DEPTS, BATCH, 0);
        let inverse = delta.inverse();
        group.throughput(Throughput::Elements(2 * delta.len() as u64));
        group.bench_with_input(BenchmarkId::new("single_session", EMPS), &EMPS, |b, _| {
            let cat = CatalogState::new(&schema, &sigma).expect("FD/IND sigma compiles");
            cat.seed(&db).expect("workload rows fit the schema");
            b.iter(|| {
                commit_round(&cat, &delta);
                commit_round(&cat, &inverse);
            })
        });
    }

    {
        let delta = scoped_churn_delta(EMPS, DEPTS, BATCH, 0);
        let inverse = delta.inverse();
        group.throughput(Throughput::Elements(2 * delta.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("single_session_preview", EMPS),
            &EMPS,
            |b, _| {
                let cat = CatalogState::new(&schema, &sigma).expect("FD/IND sigma compiles");
                cat.seed(&db).expect("workload rows fit the schema");
                b.iter(|| {
                    preview_commit_round(&cat, &delta);
                    preview_commit_round(&cat, &inverse);
                })
            },
        );
    }

    for &threads in &[2usize, 8] {
        // One forward/inverse churn pair per thread, each on its own
        // disjoint EID range, so every iteration restores steady state.
        let pairs: Vec<(Delta, Delta)> = (0..threads)
            .map(|t| {
                let d = scoped_churn_delta(EMPS, DEPTS, BATCH, t * BATCH);
                let inv = d.inverse();
                (d, inv)
            })
            .collect();
        let staged_ops = (threads * 2 * 2 * BATCH) as u64;
        group.throughput(Throughput::Elements(staged_ops));
        group.bench_with_input(BenchmarkId::new("sessions", threads), &threads, |b, _| {
            let cat = CatalogState::new(&schema, &sigma).expect("FD/IND sigma compiles");
            cat.seed(&db).expect("workload rows fit the schema");
            b.iter(|| {
                std::thread::scope(|scope| {
                    for (delta, inverse) in &pairs {
                        let cat = cat.clone();
                        scope.spawn(move || {
                            commit_round(&cat, delta);
                            commit_round(&cat, inverse);
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_validation);
criterion_main!(benches);
