//! Criterion bench: end-to-end dependency discovery on the referential
//! workload (`EMP(EID, DNO)` / `DEPT(DNO, MGR)` at 1k–64k employee rows).
//!
//! `discover` runs the full pipeline — value interning, the SPIDER unary
//! IND pass, composed n-ary IND validation, partition-refinement FD
//! mining, and cover minimization through the implication engines.
//! Expected shape: mining cost grows linearly with the row count (the
//! interning and partition passes dominate), while `minimize_cover` —
//! measured separately on the 64k-row raw set — depends only on the
//! handful of mined dependencies and is therefore size-independent.
//!
//! The 64k point doubles as the acceptance check of the discovery
//! subsystem: a generated 64k-row database must complete the whole
//! pipeline inside the harness budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use depkit_bench::referential_workload;
use depkit_solver::discover::{
    discover_reference, discover_with_config, minimize_cover, DiscoveryConfig,
};
use std::hint::black_box;

const DEPTS: usize = 64;

fn bench_dependency_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_discovery");
    for &n in &[1_000usize, 4_000, 16_000, 64_000] {
        let (_schema, _sigma, db) = referential_workload(n, DEPTS);
        // Throughput in rows/sec: results read as how fast the profiler
        // chews through tuples.
        group.throughput(Throughput::Elements(db.total_tuples() as u64));
        group.bench_with_input(BenchmarkId::new("discover", n), &n, |b, _| {
            b.iter(|| {
                black_box(discover_with_config(
                    black_box(&db),
                    &DiscoveryConfig::default(),
                ))
            })
        });
    }

    // The row-at-a-time reference engine on the acceptance point: the
    // columnar-vs-rows speedup the perf trajectory tracks.
    let (_schema, _sigma, db) = referential_workload(64_000, DEPTS);
    group.throughput(Throughput::Elements(db.total_tuples() as u64));
    group.bench_with_input(
        BenchmarkId::new("discover_reference", 64_000),
        &(),
        |b, _| {
            b.iter(|| {
                black_box(discover_reference(
                    black_box(&db),
                    &DiscoveryConfig::default(),
                ))
            })
        },
    );

    // Cover minimization alone: its cost tracks |Σ|, not the row count.
    let found = discover_with_config(&db, &DiscoveryConfig::default());
    group.throughput(Throughput::Elements(found.raw.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("minimize_cover", found.raw.len()),
        &found.raw,
        |b, raw| b.iter(|| black_box(minimize_cover(black_box(raw), &DiscoveryConfig::default()))),
    );
    group.finish();
}

criterion_group!(benches, bench_dependency_discovery);
criterion_main!(benches);
