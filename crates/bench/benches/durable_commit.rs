//! Criterion bench: what durability *costs* per commit — the same
//! churn-batch commit round as `concurrent_validation/single_session`,
//! priced through the write-ahead-logged catalog at each
//! [`FsyncPolicy`], against the in-memory catalog as the floor.
//!
//! Four shapes over the 16k-row referential workload, one 64-pair churn
//! batch plus its inverse per iteration:
//!
//! * `in_memory` — no durability at all: the baseline commit path.
//! * `wal_never` — WAL appends, no fsync: the pure serialization +
//!   page-cache-write overhead of the log.
//! * `wal_interval64` — group durability: fsync every 64th append, the
//!   amortized middle ground.
//! * `wal_always` — fsync inside every commit's write-lock window:
//!   ack-implies-durable at its strictest, dominated by device sync
//!   latency.
//!
//! The gap between `in_memory` and `wal_never` is the logging tax
//! (target: small multiples of the baseline); the gap between
//! `wal_never` and `wal_always` is the device's sync price, which the
//! interval policy exists to amortize.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use depkit_bench::{referential_workload, scoped_churn_delta};
use depkit_core::delta::Delta;
use depkit_core::wal::FsyncPolicy;
use depkit_solver::incremental::{CatalogState, Durability, DurabilityConfig};
use std::hint::black_box;
use std::path::PathBuf;

const EMPS: usize = 16_000;
const DEPTS: usize = 64;
const BATCH: usize = 64;

fn commit_round(cat: &CatalogState, delta: &Delta) {
    let mut s = cat.begin();
    s.stage(black_box(delta))
        .expect("churn rows fit the schema");
    s.commit();
    black_box(cat.snapshot().is_consistent());
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("depkit-bench-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn bench_durable_commit(c: &mut Criterion) {
    let (schema, sigma, db) = referential_workload(EMPS, DEPTS);
    let delta = scoped_churn_delta(EMPS, DEPTS, BATCH, 0);
    let inverse = delta.inverse();
    let mut group = c.benchmark_group("durable_commit");
    // Each iteration commits the batch and its inverse.
    group.throughput(Throughput::Elements(2 * delta.len() as u64));

    group.bench_with_input(BenchmarkId::new("in_memory", EMPS), &EMPS, |b, _| {
        let cat = CatalogState::new(&schema, &sigma).expect("FD/IND sigma compiles");
        cat.seed(&db).expect("workload rows fit the schema");
        b.iter(|| {
            commit_round(&cat, &delta);
            commit_round(&cat, &inverse);
        })
    });

    for (tag, fsync) in [
        ("wal_never", FsyncPolicy::Never),
        ("wal_interval64", FsyncPolicy::Interval(64)),
        ("wal_always", FsyncPolicy::Always),
    ] {
        group.bench_with_input(BenchmarkId::new(tag, EMPS), &EMPS, |b, _| {
            let dir = bench_dir(tag);
            let (cat, dur, _report) = Durability::open(
                &schema,
                &sigma,
                DurabilityConfig {
                    dir: dir.clone(),
                    fsync,
                    // Manual checkpointing only: the bench prices the
                    // append path, not checkpoint serialization.
                    checkpoint_every: 0,
                },
            )
            .expect("fresh data dir opens");
            cat.seed(&db).expect("workload rows fit the schema");
            // Keep the replay-on-reopen cost out of scope and the log
            // from growing across the whole sample run.
            dur.checkpoint(&cat).expect("seed checkpoint");
            b.iter(|| {
                commit_round(&cat, &delta);
                commit_round(&cat, &inverse);
            });
            drop(cat);
            drop(dur);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_durable_commit);
criterion_main!(benches);
