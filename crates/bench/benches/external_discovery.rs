//! Criterion bench: out-of-core dependency discovery under a fixed memory
//! budget on the columnar referential workload (`EMP(EID, DNO)` /
//! `DEPT(DNO, MGR)` at 1M–10M employee rows).
//!
//! Every point runs `discover_store` with the same 8 MiB budget while the
//! data grows past it — the 10M-row point carries ≥ 10× the budget in raw
//! column bytes — so the scaling table reads as how the spill layer
//! degrades: runs written per column grow linearly with rows, the k-way
//! merge stays single-pass until the fan-in cap, and the per-row cost
//! should stay near-flat (sequential run I/O, not random access).
//!
//! Setup asserts the acceptance contract before timing anything: the
//! budgeted result is byte-identical to the unbounded in-memory run at
//! every scale, and the ≥ 10×-budget point actually spilled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use depkit_bench::referential_columns;
use depkit_solver::discover::{discover_store, DiscoveryConfig};
use std::hint::black_box;

const DEPTS: usize = 64;
/// Fixed budget all scale points run under: 8 MiB. The 10M-row point holds
/// ~80 MiB of EMP column data alone, ≥ 10× this.
const BUDGET_BYTES: usize = 8 << 20;

fn config(memory_budget: usize) -> DiscoveryConfig {
    DiscoveryConfig {
        memory_budget,
        ..DiscoveryConfig::default()
    }
}

fn bench_external_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("external_discovery");
    for &n in &[1_000_000usize, 4_000_000, 10_000_000] {
        let (schema, store) = referential_columns(n, DEPTS);

        // Acceptance gate, not a measurement: budgeted == unbounded,
        // byte for byte, and the largest point really hit the disk path.
        let budgeted = discover_store(&schema, &store, &config(BUDGET_BYTES)).expect("spill I/O");
        let unbounded = discover_store(&schema, &store, &config(0)).expect("no I/O when unbounded");
        assert_eq!(budgeted.raw, unbounded.raw);
        assert_eq!(budgeted.cover, unbounded.cover);
        assert_eq!(budgeted.stats, unbounded.stats);
        assert!(!unbounded.spill.spilled());
        if n >= 10_000_000 {
            assert!(budgeted.spill.spilled(), "10x-budget point must spill");
        }

        group.throughput(Throughput::Elements((n + DEPTS) as u64));
        group.bench_with_input(BenchmarkId::new("discover", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    discover_store(black_box(&schema), black_box(&store), &config(BUDGET_BYTES))
                        .expect("spill I/O"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_external_discovery);
criterion_main!(benches);
