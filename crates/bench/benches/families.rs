//! Criterion bench: the negative-result families — Figure 6.1 Armstrong
//! database construction + verification (experiment E6.1), the Section 7
//! lemma pipeline (experiment E7.1), and the Theorem 4.4 symbolic
//! witnesses (experiment E4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depkit_axiom::families::section6::Section6;
use depkit_axiom::families::section7::Section7;
use depkit_axiom::families::theorem44::Theorem44;
use depkit_chase::fdind_chase::ChaseBudget;
use std::hint::black_box;

fn bench_section6(c: &mut Criterion) {
    let mut group = c.benchmark_group("section6");
    for &k in &[1usize, 2, 4] {
        let fam = Section6::new(k);
        group.bench_with_input(BenchmarkId::new("armstrong_build", k), &k, |b, _| {
            b.iter(|| black_box(fam.armstrong_database(black_box(k))))
        });
        group.bench_with_input(BenchmarkId::new("property_6_1", k), &k, |b, _| {
            b.iter(|| fam.verify_armstrong_property(black_box(0)).expect("holds"))
        });
        group.bench_with_input(BenchmarkId::new("finite_engine", k), &k, |b, _| {
            b.iter(|| {
                assert!(black_box(fam.finite_implication_holds()));
            })
        });
    }
    group.finish();
}

fn bench_section7(c: &mut Criterion) {
    let mut group = c.benchmark_group("section7");
    group.sample_size(20);
    for &n in &[1usize, 2] {
        let fam = Section7::new(n);
        group.bench_with_input(BenchmarkId::new("lemma_7_2_chase", n), &n, |b, _| {
            b.iter(|| {
                fam.verify_lemma_7_2(ChaseBudget {
                    max_rounds: 64,
                    max_tuples: 500_000,
                })
                .expect("chase proves")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("lemma_7_6_ind_exactness", n),
            &n,
            |b, _| b.iter(|| fam.verify_lemma_7_6().expect("exact")),
        );
    }
    group.finish();
}

fn bench_theorem44(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem44");
    let fam = Theorem44::new();
    group.bench_function("full_verification", |b| {
        b.iter(|| {
            let report = fam.verify();
            assert!(black_box(report).all_verified());
        })
    });
    let fig41 = fam.figure_4_1();
    group.bench_function("symbolic_ind_check", |b| {
        b.iter(|| {
            black_box(
                fig41
                    .satisfies(black_box(&fam.target_ind))
                    .expect("decidable"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_section6, bench_section7, bench_theorem44);
criterion_main!(benches);
