//! Criterion bench: the Beeri–Bernstein linear-time attribute closure
//! (experiment E3.5). Time per FD should stay flat as the chain grows —
//! the linear contrast to the PSPACE-complete IND problem.
//!
//! Every workload runs against **both representations**: `compiled` is the
//! interned-id [`FdEngine`] (bitset closure, dense watcher table) and
//! `reference` is the pre-refactor string-based engine from
//! `depkit_solver::reference`. The compiled path must win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use depkit_bench::fd_chain;
use depkit_solver::fd::FdEngine;
use depkit_solver::reference::ReferenceFdEngine;
use std::hint::black_box;

fn bench_fd_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_closure");
    for &len in &[64usize, 256, 1024, 4096] {
        let (_scheme, fds, target) = fd_chain(len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("chain_compiled", len), &len, |b, _| {
            let engine = FdEngine::new("R", &fds);
            b.iter(|| black_box(engine.implies(black_box(&target))))
        });
        group.bench_with_input(BenchmarkId::new("chain_reference", len), &len, |b, _| {
            let engine = ReferenceFdEngine::new("R", &fds);
            b.iter(|| black_box(engine.implies(black_box(&target))))
        });
        group.bench_with_input(
            BenchmarkId::new("build_and_query_compiled", len),
            &len,
            |b, _| {
                b.iter(|| {
                    let engine = FdEngine::new("R", black_box(&fds));
                    black_box(engine.implies(black_box(&target)))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("build_and_query_reference", len),
            &len,
            |b, _| {
                b.iter(|| {
                    let engine = ReferenceFdEngine::new("R", black_box(&fds));
                    black_box(engine.implies(black_box(&target)))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fd_closure);
criterion_main!(benches);
