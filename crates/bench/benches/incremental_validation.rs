//! Criterion bench: delta-batch validation vs full recheck on a mutating
//! database (the serving workload of `depkit_solver::incremental`).
//!
//! The workload is the paper's Section 1 referential-integrity scenario
//! scaled up: `EMP(EID, DNO)` / `DEPT(DNO, MGR)` with the IND
//! `EMP[DNO] ⊆ DEPT[DNO]` and the two key FDs, a database of `n` employee
//! rows, and a steady-state churn batch of 64 delete+insert pairs per
//! iteration.
//!
//! Expected asymptotics — the acceptance criterion of the incremental
//! engine: `delta_incremental` stays flat as `n` grows (cost proportional
//! to the 128-op batch, independent of the database), while
//! `full_recheck` grows linearly with `n` (every iteration rescans all
//! rows). The crossover is immediate at every size measured here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use depkit_bench::{employee_churn_delta, referential_workload};
use depkit_solver::incremental::{full_violations, Validator};
use std::hint::black_box;

const DEPTS: usize = 64;
const BATCH: usize = 64;

fn bench_incremental_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_validation");
    for &n in &[1_000usize, 4_000, 16_000, 64_000] {
        let (schema, sigma, db) = referential_workload(n, DEPTS);
        let delta = employee_churn_delta(n, DEPTS, BATCH);
        let inverse = delta.inverse();
        // Each iteration applies the churn batch and its inverse, so both
        // paths validate twice per iteration from an identical steady state.
        group.throughput(Throughput::Elements(2 * delta.len() as u64));
        group.bench_with_input(BenchmarkId::new("delta_incremental", n), &n, |b, _| {
            let mut v = Validator::new(&schema, &sigma).expect("FD/IND sigma compiles");
            v.seed(&db).expect("workload rows fit the schema");
            b.iter(|| {
                v.apply(black_box(&delta)).expect("delta applies");
                black_box(v.is_consistent());
                v.apply(black_box(&inverse)).expect("inverse applies");
                black_box(v.is_consistent())
            })
        });
        group.bench_with_input(BenchmarkId::new("full_recheck", n), &n, |b, _| {
            let mut db = db.clone();
            b.iter(|| {
                db.apply_delta(black_box(&delta)).expect("delta applies");
                black_box(
                    full_violations(&db, &sigma)
                        .expect("sigma checks")
                        .is_empty(),
                );
                db.apply_delta(black_box(&inverse))
                    .expect("inverse applies");
                black_box(
                    full_violations(&db, &sigma)
                        .expect("sigma checks")
                        .is_empty(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_validation);
criterion_main!(benches);
