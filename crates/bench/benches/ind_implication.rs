//! Criterion bench: the IND decision procedure of Section 3 on random
//! instances, with the Rule (*) chase as the semantic comparator.
//! (Experiment E3.1: both must agree; the bench tracks their costs.)
//!
//! The syntactic search runs against **both representations**: `compiled`
//! is the interned-id [`IndSolver`] (positional-gather IND2, `(RelId,
//! IdSeq)` visited keys, automatic typed dispatch) and `reference` is the
//! pre-refactor string-hashing solver from `depkit_solver::reference`. The
//! `typed_chain` group exercises the workload where the automatic typed
//! fast path matters most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depkit_bench::typed_chain;
use depkit_chase::ind_chase::ind_chase;
use depkit_core::generate::{random_ind, random_ind_set, random_schema, Rng, SchemaConfig};
use depkit_solver::ind::IndSolver;
use depkit_solver::reference::ReferenceIndSolver;
use std::hint::black_box;

fn bench_ind_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("ind_implication");
    for &n_inds in &[4usize, 8, 16] {
        let mut rng = Rng::new(42 + n_inds as u64);
        let schema = random_schema(
            &mut rng,
            &SchemaConfig {
                relations: 4,
                min_arity: 2,
                max_arity: 4,
            },
        );
        let sigma = random_ind_set(&mut rng, &schema, n_inds, 2);
        let targets: Vec<_> = (0..16)
            .filter_map(|_| random_ind(&mut rng, &schema, 2))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("syntactic_compiled", n_inds),
            &n_inds,
            |b, _| {
                let solver = IndSolver::new(&sigma);
                b.iter(|| {
                    for t in &targets {
                        black_box(solver.implies(black_box(t)));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("syntactic_reference", n_inds),
            &n_inds,
            |b, _| {
                let solver = ReferenceIndSolver::new(&sigma);
                b.iter(|| {
                    for t in &targets {
                        black_box(solver.implies(black_box(t)));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rule_star_chase", n_inds),
            &n_inds,
            |b, _| {
                b.iter(|| {
                    for t in &targets {
                        black_box(
                            ind_chase(&schema, &sigma, black_box(t), 1_000_000)
                                .expect("within cap")
                                .implied,
                        );
                    }
                })
            },
        );
    }
    group.finish();

    // The typed-chain workload: all-typed Σ, end-to-end target. The
    // compiled solver dispatches to relation-id reachability automatically;
    // the reference solver runs the full expression search.
    let mut group = c.benchmark_group("typed_chain");
    for &len in &[64usize, 256, 1024] {
        let (_schema, sigma, target) = typed_chain(len, 3);
        group.bench_with_input(BenchmarkId::new("compiled", len), &len, |b, _| {
            let solver = IndSolver::new(&sigma);
            b.iter(|| black_box(solver.implies(black_box(&target))))
        });
        group.bench_with_input(BenchmarkId::new("reference", len), &len, |b, _| {
            let solver = ReferenceIndSolver::new(&sigma);
            b.iter(|| black_box(solver.implies(black_box(&target))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ind_implication);
criterion_main!(benches);
