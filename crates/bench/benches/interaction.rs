//! Criterion bench: the Section 4 interaction saturator and the finite
//! counting engine on random mixed FD+IND sets (experiment E4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depkit_core::generate::{random_mixed_set, random_schema, Rng, SchemaConfig};
use depkit_solver::finite::FiniteEngine;
use depkit_solver::interact::Saturator;
use std::hint::black_box;

fn bench_interaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("interaction");
    for &size in &[4usize, 8, 12] {
        let mut rng = Rng::new(1000 + size as u64);
        let schema = random_schema(
            &mut rng,
            &SchemaConfig {
                relations: 3,
                min_arity: 2,
                max_arity: 3,
            },
        );
        let sigma = random_mixed_set(&mut rng, &schema, size / 2, size / 2);

        group.bench_with_input(BenchmarkId::new("saturate", size), &size, |b, _| {
            b.iter(|| {
                let mut sat = Saturator::new(black_box(&sigma));
                sat.saturate();
                black_box(sat.derived().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("finite_engine", size), &size, |b, _| {
            b.iter(|| {
                let engine = FiniteEngine::new(black_box(&sigma));
                black_box(engine.derived().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interaction);
criterion_main!(benches);
