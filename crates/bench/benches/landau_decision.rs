//! Criterion bench: the Section 3 superpolynomial family — deciding
//! `σ(γ) ⊨ σ(γ^{f(m)−1})` walks `f(m) − 1` expression steps
//! (experiment E3.2). Time should grow with Landau's `f(m)`, not
//! polynomially in `m`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depkit_perm::landau_pair;
use depkit_solver::ind::IndSolver;
use std::hint::black_box;

fn bench_landau(c: &mut Criterion) {
    let mut group = c.benchmark_group("landau_decision");
    for &m in &[8usize, 12, 16, 20, 24] {
        let (sigma, target, f) = landau_pair(m);
        let solver = IndSolver::new(&[sigma]);
        group.bench_with_input(BenchmarkId::new(format!("m{m}_f{f}"), m), &m, |b, _| {
            b.iter(|| {
                let (yes, stats) = solver.implies_with_stats(black_box(&target));
                assert!(yes);
                black_box(stats)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_landau);
criterion_main!(benches);
