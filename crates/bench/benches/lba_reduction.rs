//! Criterion bench: the Theorem 3.3 reduction pipeline — reduce an LBA
//! instance to INDs and decide it, versus deciding acceptance directly
//! (experiment E3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depkit_lba::{reduce, zoo};
use depkit_solver::ind::IndSolver;
use std::hint::black_box;

fn bench_lba(c: &mut Criterion) {
    let mut group = c.benchmark_group("lba_reduction");
    let machine = zoo::parity();
    for n in [2usize, 3, 4] {
        // Alternating input of length n over {0, 1} (glyphs 1, 2).
        let input: Vec<usize> = (0..n).map(|i| 1 + (i % 2)).collect();

        group.bench_with_input(BenchmarkId::new("direct_bfs", n), &n, |b, _| {
            b.iter(|| black_box(machine.accepts(black_box(&input), 5_000_000)))
        });
        group.bench_with_input(BenchmarkId::new("reduce_only", n), &n, |b, _| {
            b.iter(|| black_box(reduce(&machine, black_box(&input)).expect("well-formed")))
        });
        let red = reduce(&machine, &input).expect("well-formed");
        group.bench_with_input(BenchmarkId::new("solve_reduced", n), &n, |b, _| {
            let solver = IndSolver::new(&red.sigma);
            b.iter(|| black_box(solver.implies(black_box(&red.target))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lba);
criterion_main!(benches);
