//! Criterion bench: cross-process sharded discovery vs the in-process
//! pipeline on the columnar referential workload (`EMP(EID, DNO)` /
//! `DEPT(DNO, MGR)` at 1M and 10M employee rows).
//!
//! The sharded points measure the whole deployment round-trip — bind a
//! coordinator, spin up 3 workers speaking the real TCP shard protocol,
//! profile every column into published runs, merge back, validate, shut
//! down — so the table reads as the coordination tax over `local`: run
//! publication, checksum verification, and lockstep task framing, all of
//! which the single-process points skip entirely.
//!
//! Workers here are threads sharing the interned store behind an `Arc`
//! (a `depkit shard-worker` process would re-intern its own copy; the
//! deterministic-interning contract makes the two indistinguishable on
//! the wire), which keeps setup from cloning ~80 MiB of columns per
//! worker at the 10M point.
//!
//! Setup asserts the acceptance contract before timing anything: at the
//! 1M-row workload the sharded cover is byte-identical to the
//! single-process one, with every shard completing exactly once and no
//! retries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use depkit_bench::referential_columns;
use depkit_core::column::ColumnStore;
use depkit_core::DatabaseSchema;
use depkit_serve::shard::{Coordinator, FaultPlan, ShardConfig};
use depkit_solver::discover::{discover_store, Discovery, DiscoveryConfig};
use std::hint::black_box;
use std::sync::Arc;

const DEPTS: usize = 64;
const WORKERS: usize = 3;

/// One full sharded deployment: coordinator + `WORKERS` thread-backed
/// workers over the real TCP protocol, torn down before returning.
fn discover_sharded(schema: &Arc<DatabaseSchema>, store: &Arc<ColumnStore>) -> Discovery {
    let coordinator = Coordinator::bind("127.0.0.1:0", ShardConfig::default()).expect("bind");
    let addr = coordinator.local_addr().to_string();
    let handles: Vec<_> = (0..WORKERS)
        .map(|_| {
            let addr = addr.clone();
            let schema = Arc::clone(schema);
            let store = Arc::clone(store);
            std::thread::spawn(move || {
                depkit_serve::run_worker(&addr, &schema, &store, &FaultPlan::none())
            })
        })
        .collect();
    let (found, stats) = coordinator
        .run(schema, store, &DiscoveryConfig::default(), WORKERS)
        .expect("sharded discovery");
    for h in handles {
        h.join().unwrap().expect("worker");
    }
    coordinator.shutdown().expect("shutdown");
    assert_eq!(stats.completed, stats.shards);
    found
}

fn bench_sharded_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_discovery");
    for &n in &[1_000_000usize, 10_000_000] {
        let (schema, store) = referential_columns(n, DEPTS);
        let schema = Arc::new(schema);
        let store = Arc::new(store);

        // Acceptance gate, not a measurement: the 1M-row bench workload
        // must shard to the byte-identical cover before anything is timed.
        if n == 1_000_000 {
            let local =
                discover_store(&schema, &store, &DiscoveryConfig::default()).expect("local");
            let sharded = discover_sharded(&schema, &store);
            assert_eq!(local.raw, sharded.raw);
            assert_eq!(local.cover, sharded.cover);
            assert_eq!(local.stats, sharded.stats);
        }

        group.throughput(Throughput::Elements((n + DEPTS) as u64));
        group.bench_with_input(BenchmarkId::new("local", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    discover_store(
                        black_box(&schema),
                        black_box(&store),
                        &DiscoveryConfig::default(),
                    )
                    .expect("local discovery"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &n, |b, _| {
            b.iter(|| black_box(discover_sharded(&schema, &store)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_discovery);
criterion_main!(benches);
