//! `paper-tables` — regenerate every figure and result shape of
//! Casanova–Fagin–Papadimitriou (1982/84).
//!
//! Usage: `cargo run --release -p depkit-bench --bin paper-tables [SECTION]`
//! where SECTION is one of `landau`, `pspace`, `special-cases`,
//! `fd-closure`, `fig4`, `interaction`, `kary`, `emvd`, `fig61`, `fig7`,
//! or `all` (default).
//!
//! Absolute timings depend on the host; the *shapes* — who wins, what
//! grows superpolynomially, which implication holds where — are the
//! reproduced results.

use depkit_axiom::families::emvd::SagivWalecka;
use depkit_axiom::families::section6::{Section6, Section6Oracle};
use depkit_axiom::families::section7::Section7;
use depkit_axiom::families::theorem44::Theorem44;
use depkit_axiom::kary::{close_under_k_ary, implication_closure_witness, FdOracle};
use depkit_bench::{fd_chain, timed, typed_chain};
use depkit_core::Dependency;
use depkit_lba::{reduce, zoo};
use depkit_perm::landau_pair;
use depkit_solver::fd::FdEngine;
use depkit_solver::ind::IndSolver;
use depkit_solver::interact::{SaturationLimits, SaturationOptions, Saturator};
use std::collections::BTreeSet;

fn main() {
    let section = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = section == "all";
    if all || section == "landau" {
        landau();
    }
    if all || section == "pspace" {
        pspace();
    }
    if all || section == "special-cases" {
        special_cases();
    }
    if all || section == "fd-closure" {
        fd_closure();
    }
    if all || section == "fig4" {
        fig4();
    }
    if all || section == "interaction" {
        interaction();
    }
    if all || section == "kary" {
        kary();
    }
    if all || section == "emvd" {
        emvd();
    }
    if all || section == "fig61" {
        fig61();
    }
    if all || section == "fig7" {
        fig7();
    }
    if all || section == "ablation" {
        ablation();
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// E3.2 — Section 3's superpolynomial lower bound for the IND decision
/// procedure: deciding σ(γ) ⊨ σ(γ^{f(m)−1}) walks f(m) − 1 steps, where
/// f is Landau's function, log f(m) ~ √(m log m).
fn landau() {
    header("E3.2  Landau lower bound: steps to decide σ(γ) ⊨ σ(δ)  [Section 3]");
    println!(
        "{:>4} {:>14} {:>12} {:>12} {:>11} {:>10} {:>22}",
        "m", "f(m)", "walk len", "expressions", "short proof", "time (s)", "log f / sqrt(m log m)"
    );
    for m in [3usize, 5, 7, 10, 13, 16, 19, 24, 30, 36, 42, 48] {
        let (sigma, target, f) = landau_pair(m);
        let sigma_vec = vec![sigma];
        let solver = IndSolver::new(&sigma_vec);
        let ((implied, stats), secs) = timed(|| solver.implies_with_stats(&target));
        assert!(implied);
        // The paper's remark: certificates stay short (repeated squaring)
        // even though the procedure walks f(m) − 1 steps.
        let short =
            depkit_axiom::proof::prove_permutation_power(&sigma_vec, 0, f - 1).expect("applicable");
        short.check(&sigma_vec).expect("short proof checks");
        assert_eq!(short.conclusion(), Some(&target));
        let ratio = (f as f64).ln() / ((m as f64) * (m as f64).ln()).sqrt();
        println!(
            "{:>4} {:>14} {:>12} {:>12} {:>11} {:>10.4} {:>22.3}",
            m,
            f,
            stats.walk_length.unwrap_or(0),
            stats.expressions_visited,
            short.len(),
            secs,
            ratio
        );
    }
    println!("shape: walk length = f(m), superpolynomial in m (paper: f(m) − 1 applications);");
    println!("checked proof certificates stay O(log f(m)) — the paper's 'short proofs' remark.");
}

/// E3.3 — Theorem 3.3: LBA acceptance reduced to IND implication; the
/// direct configuration-graph decider and the IND solver must agree.
fn pspace() {
    header("E3.3  PSPACE reduction: LBA acceptance as IND implication  [Theorem 3.3]");
    println!(
        "{:>10} {:>8} {:>4} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "machine", "input", "n", "direct", "via-IND", "agree", "|Σ|", "time (s)"
    );
    let machines: Vec<(&str, depkit_lba::Machine)> = vec![
        ("blanker", zoo::blanker()),
        ("never", zoo::never_accept()),
        ("parity", zoo::parity()),
        ("allzeros", zoo::all_zeros()),
    ];
    let inputs: Vec<(&str, Vec<usize>)> = vec![
        ("00", vec![1, 1]),
        ("11", vec![2, 2]),
        ("101", vec![2, 1, 2]),
        ("0000", vec![1, 1, 1, 1]),
        ("1011", vec![2, 1, 2, 2]),
    ];
    for (mname, machine) in &machines {
        for (iname, input) in &inputs {
            let direct = machine.accepts(input, 5_000_000).expect("budget");
            let red = reduce(machine, input).expect("well-formed");
            let solver = IndSolver::new(&red.sigma);
            let (via, secs) = timed(|| solver.implies(&red.target));
            println!(
                "{:>10} {:>8} {:>4} {:>8} {:>8} {:>8} {:>10} {:>10.4}",
                mname,
                iname,
                input.len(),
                direct,
                via,
                direct == via,
                red.sigma.len(),
                secs
            );
            assert_eq!(direct, via);
        }
    }
    println!("shape: perfect agreement; Σ grows as |Δ|·(n−1) INDs of arity |Γ|(n−2)+3.");
}

/// E3.4 — Section 3's polynomial special cases: typed INDs and
/// bounded-arity INDs against the general procedure.
fn special_cases() {
    header("E3.4  Polynomial special cases: typed and bounded-arity INDs  [Section 3]");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>10}",
        "chain", "width", "general (s)", "typed path (s)", "speedup"
    );
    for len in [16usize, 64, 256, 1024] {
        let (_schema, sigma, target) = typed_chain(len, 3);
        // `IndSolver::implies` dispatches to the typed path automatically,
        // so the general-procedure column uses the reference solver (the
        // pre-refactor string-based expression search).
        let general_solver = depkit_solver::reference::ReferenceIndSolver::new(&sigma);
        let solver = IndSolver::new(&sigma);
        let (r1, general) = timed(|| general_solver.implies(&target));
        let (r2, typed) = timed(|| solver.implies_typed(&target));
        assert!(r1 && r2 == Some(true));
        println!(
            "{:>8} {:>8} {:>14.6} {:>14.6} {:>10.1}x",
            len,
            3,
            general,
            typed,
            general / typed.max(1e-9)
        );
    }
    println!("shape: both polynomial on typed chains; the dedicated path is reachability-fast.");
    println!("(bounded arity k: the expression space is O(relations · arity^k), polynomial —");
    println!(" the same worklist search, automatically; cf. KCV NLOGSPACE-completeness.)");
}

/// E3.5 — the Beeri–Bernstein FD closure is linear time (contrast with
/// the PSPACE-complete IND problem).
fn fd_closure() {
    header("E3.5  FD attribute closure scales linearly  [BB, cited in Section 3]");
    println!("{:>8} {:>12} {:>16}", "|FDs|", "time (s)", "ns per FD");
    for len in [64usize, 256, 1024, 4096, 16384] {
        let (_scheme, fds, target) = fd_chain(len);
        let engine = FdEngine::new("R", &fds);
        let (ok, secs) = timed(|| engine.implies(&target));
        assert!(ok);
        println!(
            "{:>8} {:>12.6} {:>16.1}",
            len,
            secs,
            secs * 1e9 / len as f64
        );
    }
    println!("shape: ns/FD roughly flat — linear total time.");
}

/// E4.4 — Theorem 4.4 and Figures 4.1/4.2: finite vs unrestricted
/// implication separate.
fn fig4() {
    header("E4.4  Finite vs unrestricted implication  [Theorem 4.4, Figures 4.1-4.2]");
    let fam = Theorem44::new();
    let report = fam.verify();
    println!("Σ = {{R: A -> B, R[A] <= R[B]}}");
    println!(
        "  (a) σ = R[B] <= R[A]:  ⊨_fin {}   |   Figure 4.1 satisfies Σ: {}, violates σ: {}",
        report.finite_implies_ind, report.fig41_satisfies_sigma, report.fig41_violates_ind
    );
    println!(
        "  (b) σ = R: B -> A:     ⊨_fin {}   |   Figure 4.2 satisfies Σ: {}, violates σ: {}",
        report.finite_implies_fd, report.fig42_satisfies_sigma, report.fig42_violates_fd
    );
    assert!(report.all_verified());
    println!("shape: both finite implications hold; both infinite witnesses separate — verified.");
}

/// E4.1 — the Section 4 interaction rules at work.
fn interaction() {
    header("E4.1  FD/IND interaction rules  [Propositions 4.1-4.3]");
    let cases: Vec<(&str, Vec<&str>, &str)> = vec![
        (
            "Prop 4.1",
            vec!["R[X, Y] <= S[T, U]", "S: T -> U"],
            "R: X -> Y",
        ),
        (
            "Prop 4.2",
            vec!["R[X, Y] <= S[T, U]", "R[X, Z] <= S[T, V]", "S: T -> U"],
            "R[X, Y, Z] <= S[T, U, V]",
        ),
        (
            "Prop 4.3",
            vec!["R[X, Y] <= S[T, U]", "R[X, Z] <= S[T, U]", "S: T -> U"],
            "R[Y = Z]",
        ),
    ];
    println!(
        "{:>10} {:>3} {:>40} {:>8} {:>10}",
        "rule", "|Σ|", "derived", "holds", "time (s)"
    );
    for (name, sigma_src, tau_src) in cases {
        let sigma: Vec<Dependency> = sigma_src.iter().map(|s| s.parse().unwrap()).collect();
        let tau: Dependency = tau_src.parse().unwrap();
        let (holds, secs) = timed(|| {
            let mut sat = Saturator::new(&sigma);
            sat.saturate();
            sat.implies(&tau)
        });
        println!(
            "{:>10} {:>3} {:>40} {:>8} {:>10.5}",
            name,
            sigma.len(),
            tau_src,
            holds,
            secs
        );
        assert!(holds);
    }
    println!("shape: all three paper propositions derived by the saturation engine.");
}

/// E5.1 — Theorem 5.1 controls: FDs have a 2-ary axiomatization, so 2-ary
/// closure = implication closure; 1-ary closure is strictly weaker.
fn kary() {
    header("E5.1  Theorem 5.1 controls on FDs: 1-ary vs 2-ary closure");
    let universe: Vec<Dependency> = {
        let names = ["A", "B", "C"];
        let mut out = Vec::new();
        for l in names {
            for r in names {
                out.push(format!("R: {l} -> {r}").parse().unwrap());
            }
        }
        out
    };
    let start: BTreeSet<Dependency> = ["R: A -> B".parse().unwrap(), "R: B -> C".parse().unwrap()]
        .into_iter()
        .collect();
    let oracle = FdOracle;
    for k in [0usize, 1, 2] {
        let closed = close_under_k_ary(&universe, &start, k, &oracle);
        let witness = implication_closure_witness(&universe, &closed, &oracle);
        println!(
            "k = {k}: closure size {} / universe {}; implication-closure gap: {}",
            closed.len(),
            universe.len(),
            witness
                .map(|w| w.to_string())
                .unwrap_or_else(|| "none (closed)".into())
        );
    }
    println!("shape: the gap closes exactly at k = 2 — transitivity is genuinely binary.");
}

/// E5.3 — the Sagiv–Walecka EMVD family (Theorem 5.3).
fn emvd() {
    header("E5.3  Sagiv-Walecka EMVD family  [Theorem 5.3]");
    println!(
        "{:>3} {:>6} {:>14} {:>14} {:>10}",
        "k", "|Σ|", "chase rounds", "countermodels", "time (s)"
    );
    for k in [2usize, 3, 4] {
        let fam = SagivWalecka::new(k);
        let (report, secs) = timed(|| fam.verify(32).expect("conditions (i)-(ii) hold"));
        println!(
            "{:>3} {:>6} {:>14} {:>14} {:>10.4}",
            k, report.members, report.chase_rounds, report.members, secs
        );
    }
    println!("shape: Σ_k ⊨ σ_k needs the whole (k+1)-cycle; every single member has a");
    println!("countermodel — conditions (i)-(ii) of Corollary 5.2 (condition (iii) is [SW]).");
}

/// E6.1 — Theorem 6.1 and Figure 6.1: the finite-implication family and
/// its Armstrong databases.
fn fig61() {
    header("E6.1  No k-ary axiomatization, finite implication  [Theorem 6.1, Figure 6.1]");
    println!(
        "{:>3} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "k", "|Σ|", "σ ⊨_fin", "Armstrong dbs", "universe", "time (s)"
    );
    for k in [1usize, 2, 3, 4, 5, 6] {
        let fam = Section6::new(k);
        let (report, secs) = timed(|| fam.verify().expect("theorem ingredients verify"));
        println!(
            "{:>3} {:>8} {:>10} {:>12} {:>12} {:>10.4}",
            k,
            2 * (k + 1),
            true,
            report.armstrong_databases_checked,
            report.universe_size,
            secs
        );
    }
    // The Theorem 5.1 pipeline at small k.
    for k in [1usize, 2] {
        let fam = Section6::new(k);
        let oracle = Section6Oracle::new(&fam);
        let universe = fam.universe();
        let gamma: BTreeSet<Dependency> = universe
            .iter()
            .filter(|d| fam.in_gamma(d))
            .cloned()
            .collect();
        let closed = close_under_k_ary(&universe, &gamma, k, &oracle);
        let witness = implication_closure_witness(&universe, &gamma, &oracle);
        println!(
            "Theorem 5.1 pipeline at k = {k}: Γ k-ary-closed? {}; implication gap: {}",
            closed == gamma,
            witness.map(|w| w.to_string()).unwrap_or_default()
        );
    }
    println!("shape: every rotation of Figure 6.1 satisfies exactly Γ − δ (property 6.1);");
    println!("Γ is k-ary closed yet implies σ — no k-ary axiomatization (finite case).");
}

/// E7.1 — Theorem 7.1, Lemmas 7.2–7.9, Figures 7.1–7.5.
fn fig7() {
    header("E7.1  No k-ary axiomatization, unrestricted implication  [Theorem 7.1, Figs 7.1-7.5]");
    println!(
        "{:>3} {:>6} {:>14} {:>12} {:>12} {:>10}",
        "n", "|λ|", "chase rounds", "FD universe", "IND universe", "time (s)"
    );
    for n in [1usize, 2, 3] {
        let fam = Section7::new(n);
        let (report, secs) = timed(|| fam.verify().expect("all lemmas verify"));
        println!(
            "{:>3} {:>6} {:>14} {:>12} {:>12} {:>10.4}",
            n,
            fam.lambda.len(),
            report.chase_rounds,
            report.fd_universe,
            report.ind_universe,
            secs
        );
    }
    let fam = Section7::new(2);
    depkit_axiom::families::section7::verify_kary_gap(&fam, 1).expect("gap at k=1 < n=2");
    println!("Theorem 5.1 pipeline at n = 2, k = 1: Γ 1-ary-closed, implies σ ∉ Γ ✓");
    let mut sat = Saturator::new(&fam.sigma());
    sat.saturate();
    println!(
        "sound Section-4 saturator derives σ? {} (must be false — Theorem 7.1)",
        sat.implies(&fam.target.clone().into())
    );
    println!("shape: chase proves Σ ⊨ σ; every lemma's witness database checks exactly;");
    println!("no bounded rule set can span the n-step equality chain.");
}

/// Ablation — which interaction rule earns which derivation (DESIGN.md
/// design-choice ablations): rerun the three Section 4 propositions and a
/// composed-feeding case with each rule disabled in turn.
fn ablation() {
    header("Ablation  Section 4 rule contributions in the saturation engine");
    let cases: Vec<(&str, Vec<&str>, &str)> = vec![
        (
            "4.1 pullback",
            vec!["R[X, Y] <= S[T, U]", "S: T -> U"],
            "R: X -> Y",
        ),
        (
            "4.2 augment",
            vec!["R[X, Y] <= S[T, U]", "R[X, Z] <= S[T, V]", "S: T -> U"],
            "R[X, Y, Z] <= S[T, U, V]",
        ),
        (
            "4.3 rd-gen",
            vec!["R[X, Y] <= S[T, U]", "R[X, Z] <= S[T, U]", "S: T -> U"],
            "R[Y = Z]",
        ),
        (
            "pullback-thru-composed",
            vec!["R[X, Y] <= M[P, Q]", "M[P, Q] <= S[T, U]", "S: T -> U"],
            "R: X -> Y",
        ),
    ];
    let configs: Vec<(&str, SaturationOptions)> = vec![
        ("all rules", SaturationOptions::default()),
        (
            "-pullback",
            SaturationOptions {
                pullback: false,
                ..SaturationOptions::default()
            },
        ),
        (
            "-augment",
            SaturationOptions {
                augmentation: false,
                ..SaturationOptions::default()
            },
        ),
        (
            "-rd rules",
            SaturationOptions {
                rd_rules: false,
                ..SaturationOptions::default()
            },
        ),
        (
            "-composition",
            SaturationOptions {
                composition: false,
                ..SaturationOptions::default()
            },
        ),
    ];
    print!("{:>26}", "case \\ config");
    for (name, _) in &configs {
        print!(" {name:>14}");
    }
    println!();
    for (case, sigma_src, tau_src) in &cases {
        let sigma: Vec<Dependency> = sigma_src.iter().map(|s| s.parse().unwrap()).collect();
        let tau: Dependency = tau_src.parse().unwrap();
        print!("{case:>26}");
        for (_, opts) in &configs {
            let mut sat = Saturator::with_options(&sigma, SaturationLimits::default(), *opts);
            sat.saturate();
            print!(
                " {:>14}",
                if sat.implies(&tau) { "derived" } else { "lost" }
            );
        }
        println!();
    }
    println!("shape: each rule is load-bearing for its proposition; composition feeds 4.1");
    println!("through IND chains. (All configurations remain sound — they only derive less.)");
}
