//! Shared workload builders for the benchmark suite and the
//! `paper-tables` harness.

use depkit_core::attr::{attrs, Attr, AttrSeq};
use depkit_core::column::{ColumnStore, RelationColumns};
use depkit_core::database::Database;
use depkit_core::delta::Delta;
use depkit_core::dependency::{Dependency, Fd, Ind};
use depkit_core::index::ValueInterner;
use depkit_core::schema::{DatabaseSchema, RelationScheme};
use depkit_core::value::Value;

/// A chain of typed INDs `R_0[A..] ⊆ R_1[A..] ⊆ ... ⊆ R_len[A..]` over
/// `width`-attribute schemes, plus the end-to-end target. Exercises both
/// the general solver and the typed fast path.
pub fn typed_chain(len: usize, width: usize) -> (DatabaseSchema, Vec<Ind>, Ind) {
    let names: Vec<String> = (0..width).map(|i| format!("A{i}")).collect();
    let attr_seq =
        AttrSeq::new(names.iter().map(Attr::new).collect()).expect("distinct generated names");
    let schemes = (0..=len)
        .map(|i| RelationScheme::new(format!("R{i}").as_str(), attr_seq.clone()))
        .collect();
    let schema = DatabaseSchema::new(schemes).expect("distinct names");
    let sigma: Vec<Ind> = (0..len)
        .map(|i| {
            Ind::new(
                format!("R{i}").as_str(),
                attr_seq.clone(),
                format!("R{}", i + 1).as_str(),
                attr_seq.clone(),
            )
            .expect("equal arity")
        })
        .collect();
    let target = Ind::new("R0", attr_seq.clone(), format!("R{len}").as_str(), attr_seq)
        .expect("equal arity");
    (schema, sigma, target)
}

/// An FD chain `A_0 → A_1 → ... → A_len` over one wide relation, with the
/// end-to-end closure query. The Beeri–Bernstein algorithm should scale
/// linearly in `len`.
pub fn fd_chain(len: usize) -> (RelationScheme, Vec<Fd>, Fd) {
    let names: Vec<String> = (0..=len).map(|i| format!("A{i}")).collect();
    let scheme = RelationScheme::new(
        "R",
        AttrSeq::new(names.iter().map(Attr::new).collect()).expect("distinct"),
    );
    let fds: Vec<Fd> = (0..len)
        .map(|i| {
            Fd::new(
                "R",
                attrs(&[&format!("A{i}")]),
                attrs(&[&format!("A{}", i + 1)]),
            )
        })
        .collect();
    let target = Fd::new("R", attrs(&["A0"]), attrs(&[&format!("A{len}")]));
    (scheme, fds, target)
}

/// The referential-integrity serving workload of the `incremental_validation`
/// bench: `EMP(EID, DNO)` and `DEPT(DNO, MGR)` with the paper's Section 1
/// constraints — IND `EMP[DNO] ⊆ DEPT[DNO]` (every employee's department
/// exists), FD `EMP: EID → DNO` (employee ids are keys), and FD
/// `DEPT: DNO → MGR` (one manager per department).
///
/// The returned database holds `emps` employee rows spread round-robin over
/// `depts` departments and satisfies all three dependencies.
pub fn referential_workload(
    emps: usize,
    depts: usize,
) -> (DatabaseSchema, Vec<Dependency>, Database) {
    let schema =
        DatabaseSchema::parse(&["EMP(EID, DNO)", "DEPT(DNO, MGR)"]).expect("static schema parses");
    let sigma: Vec<Dependency> = vec![
        "EMP[DNO] <= DEPT[DNO]".parse().expect("static dep parses"),
        "EMP: EID -> DNO".parse().expect("static dep parses"),
        "DEPT: DNO -> MGR".parse().expect("static dep parses"),
    ];
    let mut db = Database::empty(schema.clone());
    for d in 0..depts {
        db.insert_ints("DEPT", &[&[d as i64, 1_000_000 + d as i64]])
            .expect("rows fit the schema");
    }
    for e in 0..emps {
        db.insert_ints("EMP", &[&[e as i64, (e % depts) as i64]])
            .expect("rows fit the schema");
    }
    (schema, sigma, db)
}

/// The [`referential_workload`] shape compiled straight to columnar form,
/// for scales where materializing a row [`Database`] first would dominate
/// the build (every cell a heap [`Value`]): the interner and dense `u32`
/// id columns are assembled directly and handed to
/// [`ColumnStore::from_raw_parts`], so multi-10M-row stores for the
/// out-of-core discovery benches cost one `Vec<u32>` per column.
///
/// Same dependencies hold as in [`referential_workload`] — IND
/// `EMP[DNO] ⊆ DEPT[DNO]`, FDs `EMP: EID → DNO` and `DEPT: DNO → MGR` —
/// with one deliberate difference: manager values live in a disjoint
/// (negative) integer space, so `MGR` never reads as included in
/// `EID`/`DNO` at any scale and the mined raw set has the same shape for
/// every `emps`.
pub fn referential_columns(emps: usize, depts: usize) -> (DatabaseSchema, ColumnStore) {
    assert!(depts > 0 && depts <= emps, "need 0 < depts <= emps");
    let schema =
        DatabaseSchema::parse(&["EMP(EID, DNO)", "DEPT(DNO, MGR)"]).expect("static schema parses");
    let mut interner = ValueInterner::new();
    interner.reserve_distinct(emps + depts);
    let eid: Vec<u32> = (0..emps)
        .map(|e| interner.intern(&Value::Int(e as i64)))
        .collect();
    let mgr: Vec<u32> = (0..depts)
        .map(|d| interner.intern(&Value::Int(-1 - d as i64)))
        .collect();
    let mut emp = RelationColumns::with_capacity(2, emps);
    for e in 0..emps {
        emp.push_row(&[eid[e], eid[e % depts]]);
    }
    let mut dept = RelationColumns::with_capacity(2, depts);
    for d in 0..depts {
        dept.push_row(&[eid[d], mgr[d]]);
    }
    let store = ColumnStore::from_raw_parts(interner, vec![emp, dept]);
    (schema, store)
}

/// [`referential_columns`] with `dirty` corrupt employee rows appended:
/// employee `i < dirty` gains a second row pointing at a dangling
/// department id (`emps + i`, disjoint from every EID, DNO, and MGR
/// value in the clean workload), so the key FD misses on exactly `dirty`
/// rows (one extra department per corrupted EID, g3 error 1 each) and
/// the foreign key misses on exactly the same `dirty` dangling rows.
/// The workload of the `approximate_discovery` bench: exact discovery
/// must drop both planted dependencies, tolerant discovery re-mines them
/// with predictable confidence `1 − dirty / (emps + dirty)`.
pub fn dirty_referential_columns(
    emps: usize,
    depts: usize,
    dirty: usize,
) -> (DatabaseSchema, ColumnStore) {
    assert!(dirty <= emps, "need dirty <= emps");
    let schema =
        DatabaseSchema::parse(&["EMP(EID, DNO)", "DEPT(DNO, MGR)"]).expect("static schema parses");
    let mut interner = ValueInterner::new();
    interner.reserve_distinct(emps + depts + dirty);
    let eid: Vec<u32> = (0..emps)
        .map(|e| interner.intern(&Value::Int(e as i64)))
        .collect();
    let mgr: Vec<u32> = (0..depts)
        .map(|d| interner.intern(&Value::Int(-1 - d as i64)))
        .collect();
    let mut emp = RelationColumns::with_capacity(2, emps + dirty);
    for e in 0..emps {
        emp.push_row(&[eid[e], eid[e % depts]]);
    }
    for (i, &e) in eid.iter().enumerate().take(dirty) {
        let dangling = interner.intern(&Value::Int((emps + i) as i64));
        emp.push_row(&[e, dangling]);
    }
    let mut dept = RelationColumns::with_capacity(2, depts);
    for d in 0..depts {
        dept.push_row(&[eid[d], mgr[d]]);
    }
    let store = ColumnStore::from_raw_parts(interner, vec![emp, dept]);
    (schema, store)
}

/// A steady-state churn batch against [`referential_workload`]: replace the
/// first `batch` employees (`EID = 0..batch`) with fresh hires
/// (`EID = emps..emps+batch`), keeping every constraint satisfied and the
/// database size constant. Applying [`Delta::inverse`] afterwards restores
/// the original database, so benches can iterate the pair indefinitely.
pub fn employee_churn_delta(emps: usize, depts: usize, batch: usize) -> Delta {
    scoped_churn_delta(emps, depts, batch, 0)
}

/// A churn batch scoped to the EID range starting at `range_start`:
/// replace employees `range_start..range_start+batch` with fresh hires
/// `emps+range_start..`, keeping every constraint satisfied. Distinct
/// `range_start` values at least `batch` apart touch disjoint row sets,
/// so N concurrent sessions (one range each) never conflict — the
/// workload of the `concurrent_validation` bench.
pub fn scoped_churn_delta(emps: usize, depts: usize, batch: usize, range_start: usize) -> Delta {
    assert!(
        range_start + batch <= emps,
        "cannot churn more employees than exist"
    );
    let mut d = Delta::new();
    for i in 0..batch {
        let old = range_start + i;
        d.delete_ints("EMP", &[old as i64, (old % depts) as i64]);
        let hire = emps + old;
        d.insert_ints("EMP", &[hire as i64, (hire % depts) as i64]);
    }
    d
}

/// Wall-clock a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// A counting wrapper around the system allocator, for allocation-count
/// regression tests (e.g. pinning that `merge_run_set` consolidation
/// recycles its cursor buffers instead of allocating fresh ones per
/// pass). Install it in a test binary with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: depkit_bench::alloc_counter::CountingAlloc =
///     depkit_bench::alloc_counter::CountingAlloc;
/// ```
///
/// and wrap the region under measurement in
/// [`alloc_counter::measure`]. Counting is off outside `measure`, so the
/// wrapper adds one relaxed atomic load per allocation to everything
/// else in the process.
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// The pass-through allocator; see the module docs for installation.
    pub struct CountingAlloc;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static THRESHOLD: AtomicUsize = AtomicUsize::new(0);
    static TOTAL: AtomicU64 = AtomicU64::new(0);
    static LARGE: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    /// Serializes [`measure`] calls: the counters are process-global, so
    /// concurrent measured regions would bleed into each other.
    static MEASURING: Mutex<()> = Mutex::new(());

    fn record(size: usize) {
        if ENABLED.load(Ordering::Relaxed) {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(size as u64, Ordering::Relaxed);
            if size >= THRESHOLD.load(Ordering::Relaxed) {
                LARGE.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A growing realloc is a fresh reservation of `new_size`.
            record(new_size);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc_zeroed(layout)
        }
    }

    /// Allocation counts observed during one [`measure`] region.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct AllocStats {
        /// Every allocation (and growing reallocation).
        pub total: u64,
        /// Allocations of at least the `large_threshold` passed to
        /// [`measure`] — the interesting ones when small bookkeeping
        /// allocations would otherwise drown the signal.
        pub large: u64,
        /// Bytes requested across all counted allocations.
        pub bytes: u64,
    }

    /// Run `f` with counting enabled and return its result plus the
    /// allocation stats for the region. Only allocations made by this
    /// thread's work *and anything else running concurrently* are
    /// counted — callers serialize through an internal lock, so keep
    /// measured regions single-threaded for exact counts.
    pub fn measure<T>(large_threshold: usize, f: impl FnOnce() -> T) -> (T, AllocStats) {
        let _guard = MEASURING.lock().unwrap();
        THRESHOLD.store(large_threshold, Ordering::Relaxed);
        TOTAL.store(0, Ordering::Relaxed);
        LARGE.store(0, Ordering::Relaxed);
        BYTES.store(0, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Release);
        let out = f();
        ENABLED.store(false, Ordering::Release);
        (
            out,
            AllocStats {
                total: TOTAL.load(Ordering::Relaxed),
                large: LARGE.load(Ordering::Relaxed),
                bytes: BYTES.load(Ordering::Relaxed),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_solver::ind::IndSolver;

    #[test]
    fn typed_chain_is_implied() {
        let (_schema, sigma, target) = typed_chain(6, 2);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&target));
        assert_eq!(solver.implies_typed(&target), Some(true));
    }

    #[test]
    fn fd_chain_closure_reaches_end() {
        let (_scheme, fds, target) = fd_chain(10);
        assert!(depkit_solver::fd::implies_fd(&fds, &target));
    }

    #[test]
    fn referential_columns_mines_the_same_dependencies_as_the_row_workload() {
        use depkit_solver::discover::{discover_store, discover_with_config, DiscoveryConfig};
        let (emps, depts) = (200, 7);
        let config = DiscoveryConfig::default();
        let (schema, store) = referential_columns(emps, depts);
        let columnar = discover_store(&schema, &store, &config).unwrap();
        let (_schema, _sigma, db) = referential_workload(emps, depts);
        let rowwise = discover_with_config(&db, &config);
        // Manager values differ (disjoint negative space vs 1_000_000+d)
        // but both are disjoint from EID/DNO at this scale, so the mined
        // sets coincide exactly.
        assert_eq!(columnar.raw, rowwise.raw);
        assert_eq!(columnar.cover, rowwise.cover);

        // A tiny budget must not change what is mined, only where the
        // intermediate state lives.
        let budgeted = discover_store(
            &schema,
            &store,
            &DiscoveryConfig {
                memory_budget: 1,
                ..DiscoveryConfig::default()
            },
        )
        .unwrap();
        assert!(budgeted.spill.spilled());
        assert_eq!(budgeted.raw, columnar.raw);
        assert_eq!(budgeted.cover, columnar.cover);
    }

    #[test]
    fn referential_workload_is_consistent_and_churns_cleanly() {
        use depkit_solver::incremental::{full_violations, Validator};
        let (schema, sigma, mut db) = referential_workload(100, 7);
        assert!(full_violations(&db, &sigma).unwrap().is_empty());

        let delta = employee_churn_delta(100, 7, 16);
        let mut v = Validator::new(&schema, &sigma).unwrap();
        v.seed(&db).unwrap();
        let before = db.clone();
        // Churn forward and back: consistent at every checkpoint, and the
        // inverse restores the exact database.
        for d in [&delta, &delta.inverse()] {
            v.apply(d).unwrap();
            db.apply_delta(d).unwrap();
            assert!(v.is_consistent());
            assert_eq!(v.violations(), full_violations(&db, &sigma).unwrap());
        }
        assert_eq!(db, before);
    }
}
