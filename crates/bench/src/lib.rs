//! Shared workload builders for the benchmark suite and the
//! `paper-tables` harness.

use depkit_core::attr::{attrs, Attr, AttrSeq};
use depkit_core::dependency::{Fd, Ind};
use depkit_core::schema::{DatabaseSchema, RelationScheme};

/// A chain of typed INDs `R_0[A..] ⊆ R_1[A..] ⊆ ... ⊆ R_len[A..]` over
/// `width`-attribute schemes, plus the end-to-end target. Exercises both
/// the general solver and the typed fast path.
pub fn typed_chain(len: usize, width: usize) -> (DatabaseSchema, Vec<Ind>, Ind) {
    let names: Vec<String> = (0..width).map(|i| format!("A{i}")).collect();
    let attr_seq =
        AttrSeq::new(names.iter().map(Attr::new).collect()).expect("distinct generated names");
    let schemes = (0..=len)
        .map(|i| RelationScheme::new(format!("R{i}").as_str(), attr_seq.clone()))
        .collect();
    let schema = DatabaseSchema::new(schemes).expect("distinct names");
    let sigma: Vec<Ind> = (0..len)
        .map(|i| {
            Ind::new(
                format!("R{i}").as_str(),
                attr_seq.clone(),
                format!("R{}", i + 1).as_str(),
                attr_seq.clone(),
            )
            .expect("equal arity")
        })
        .collect();
    let target = Ind::new("R0", attr_seq.clone(), format!("R{len}").as_str(), attr_seq)
        .expect("equal arity");
    (schema, sigma, target)
}

/// An FD chain `A_0 → A_1 → ... → A_len` over one wide relation, with the
/// end-to-end closure query. The Beeri–Bernstein algorithm should scale
/// linearly in `len`.
pub fn fd_chain(len: usize) -> (RelationScheme, Vec<Fd>, Fd) {
    let names: Vec<String> = (0..=len).map(|i| format!("A{i}")).collect();
    let scheme = RelationScheme::new(
        "R",
        AttrSeq::new(names.iter().map(Attr::new).collect()).expect("distinct"),
    );
    let fds: Vec<Fd> = (0..len)
        .map(|i| {
            Fd::new(
                "R",
                attrs(&[&format!("A{i}")]),
                attrs(&[&format!("A{}", i + 1)]),
            )
        })
        .collect();
    let target = Fd::new("R", attrs(&["A0"]), attrs(&[&format!("A{len}")]));
    (scheme, fds, target)
}

/// Wall-clock a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_solver::ind::IndSolver;

    #[test]
    fn typed_chain_is_implied() {
        let (_schema, sigma, target) = typed_chain(6, 2);
        let solver = IndSolver::new(&sigma);
        assert!(solver.implies(&target));
        assert_eq!(solver.implies_typed(&target), Some(true));
    }

    #[test]
    fn fd_chain_closure_reaches_end() {
        let (_scheme, fds, target) = fd_chain(10);
        assert!(depkit_solver::fd::implies_fd(&fds, &target));
    }
}
