//! Allocation-count regression for `merge_run_set`: fan-in consolidation
//! used to open every `RunCursor` with a freshly allocated 64 KiB read
//! buffer — one per run per pass — so wide merges churned megabytes of
//! short-lived buffers. The [`BufferPool`] fix recycles buffers across
//! consolidation groups and passes, capping large allocations near
//! [`MAX_FAN_IN`] no matter how many runs flow through. This test pins
//! that cap with a counting global allocator.

use depkit_bench::alloc_counter::{measure, CountingAlloc};
use depkit_core::spill::{
    merge_run_set, write_sorted_runs, SpillDir, SpillStats, MAX_FAN_IN, READ_BUF_BYTES,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn consolidation_recycles_read_buffers_instead_of_allocating_per_run() {
    // MAX_FAN_IN * 2 + 2 runs of 16 ids each: wide enough to force a
    // consolidation pass (3 groups), small enough that nothing but the
    // cursor read buffers reaches 64 KiB.
    let runs = MAX_FAN_IN * 2 + 2;
    let chunk = 16;
    let values: Vec<u32> = (0..(runs * chunk) as u32).rev().collect();
    let dir = SpillDir::create_in(&std::env::temp_dir()).unwrap();
    let mut stats = SpillStats::default();
    let set = write_sorted_runs(&values, chunk, &dir, 0, &mut stats).unwrap();
    assert_eq!(set.runs.len(), runs, "workload shape drifted");

    let ((merged, merge_stats), allocs) = measure(READ_BUF_BYTES, || {
        let mut stats = SpillStats::default();
        let merged: Vec<u32> = merge_run_set(&set, &dir, &mut stats)
            .expect("merge I/O")
            .collect();
        (merged, stats)
    });

    // Correctness first: the merge still yields the full sorted range,
    // through an actual consolidation pass.
    let expected: Vec<u32> = (0..(runs * chunk) as u32).collect();
    assert_eq!(merged, expected);
    assert!(
        merge_stats.merge_passes >= 1,
        "workload must exercise consolidation: {merge_stats:?}"
    );

    // The pin: every cursor across all passes draws from the pool, so
    // buffer-sized allocations stay near one pool's worth (MAX_FAN_IN)
    // instead of one per run per pass (~2x the run count here). Slack
    // covers the consolidated runs' cursors and incidental large
    // allocations, while staying far below the unpooled count.
    let cap = (MAX_FAN_IN + 8) as u64;
    assert!(
        allocs.large <= cap,
        "{} buffer-sized allocations for {} runs — the read-buffer pool \
         regressed (expected <= {cap})",
        allocs.large,
        runs
    );
}

#[test]
fn counting_allocator_measures_its_region() {
    // Shim self-check: a region that allocates twice over the threshold
    // reports at least those two, and a no-op region reports none large.
    let (_, quiet) = measure(1 << 20, || 0u8);
    assert_eq!(quiet.large, 0);
    let (v, stats) = measure(1 << 10, || {
        let a = vec![0u8; 4 << 10];
        let b = vec![0u8; 8 << 10];
        a.len() + b.len()
    });
    assert_eq!(v, 12 << 10);
    assert!(stats.large >= 2, "{stats:?}");
    assert!(stats.bytes >= (12 << 10), "{stats:?}");
}
