//! Weakly acyclic IND sets: a decidable fragment of the (generally
//! undecidable) FD+IND implication problem.
//!
//! Section 8 of the paper calls for "restricted forms of inclusion
//! dependencies, with an easier decision problem". One modern answer is
//! **weak acyclicity** (Fagin–Kolaitis–Miller–Popa): build a graph over
//! *positions* `(relation, column)` where an IND `R[X] ⊆ S[Y]`
//! contributes
//!
//! * a regular edge `(R, X_k) → (S, Y_k)` for each component (values are
//!   copied), and
//! * a special edge `(R, X_k) → (S, c)` for every column `c` of `S`
//!   outside `Y` (fresh nulls are invented at those positions).
//!
//! If no cycle passes through a special edge, the chase terminates on
//! every instance, so [`decide`] turns the goal-directed chase of
//! [`crate::fdind_chase`] into an **exact decision procedure** for
//! FD+IND(+RD) implication on this fragment. The cyclic family of
//! Theorem 4.4 (`R[A] ⊆ R[B]`) is exactly what the criterion rejects; the
//! Section 7 family is weakly acyclic, which is why its Lemma 7.2 chase
//! proof terminates.

use crate::fdind_chase::{ChaseBudget, ChaseOutcome, FdIndChase};
use depkit_core::dependency::{Dependency, Ind};
use depkit_core::error::CoreError;
use depkit_core::schema::DatabaseSchema;
use std::collections::HashMap;

/// A position: (relation index, column index).
type Pos = (usize, usize);

/// The position graph of an IND set.
#[derive(Debug, Clone)]
pub struct PositionGraph {
    nodes: usize,
    /// `(from, to, special)` edges.
    edges: Vec<(usize, usize, bool)>,
}

impl PositionGraph {
    /// Build the position graph for `inds` over `schema`.
    pub fn new(schema: &DatabaseSchema, inds: &[Ind]) -> Result<Self, CoreError> {
        let mut index: HashMap<Pos, usize> = HashMap::new();
        let mut nodes = 0usize;
        for (r, scheme) in schema.schemes().iter().enumerate() {
            for c in 0..scheme.arity() {
                index.insert((r, c), nodes);
                nodes += 1;
            }
        }
        let mut edges = Vec::new();
        for ind in inds {
            ind.is_well_formed(schema)?;
            let lr = schema.scheme_index(&ind.lhs_rel).expect("well-formed");
            let rr = schema.scheme_index(&ind.rhs_rel).expect("well-formed");
            let lcols = schema.schemes()[lr].columns(&ind.lhs_attrs)?;
            let rcols = schema.schemes()[rr].columns(&ind.rhs_attrs)?;
            let fresh_cols: Vec<usize> = (0..schema.schemes()[rr].arity())
                .filter(|c| !rcols.contains(c))
                .collect();
            for (&lc, &rc) in lcols.iter().zip(&rcols) {
                edges.push((index[&(lr, lc)], index[&(rr, rc)], false));
                for &fc in &fresh_cols {
                    edges.push((index[&(lr, lc)], index[&(rr, fc)], true));
                }
            }
        }
        Ok(PositionGraph { nodes, edges })
    }

    /// Whether the IND set is weakly acyclic: no cycle contains a special
    /// edge (checked via strongly connected components).
    pub fn weakly_acyclic(&self) -> bool {
        let scc = scc_of(self.nodes, &self.edges);
        self.edges
            .iter()
            .all(|&(u, v, special)| !special || scc[u] != scc[v])
    }
}

fn scc_of(n: usize, edges: &[(usize, usize, bool)]) -> Vec<usize> {
    // Kosaraju: two DFS passes, iterative.
    let mut adj = vec![Vec::new(); n];
    let mut radj = vec![Vec::new(); n];
    for &(u, v, _) in edges {
        adj[u].push(v);
        radj[v].push(u);
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut child)) = stack.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut current = 0usize;
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = current;
        while let Some(v) = stack.pop() {
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    comp[w] = current;
                    stack.push(w);
                }
            }
        }
        current += 1;
    }
    comp
}

/// Whether `sigma`'s INDs form a weakly acyclic set over `schema`.
pub fn weakly_acyclic(schema: &DatabaseSchema, sigma: &[Dependency]) -> Result<bool, CoreError> {
    let inds: Vec<Ind> = sigma.iter().filter_map(|d| d.as_ind().cloned()).collect();
    Ok(PositionGraph::new(schema, &inds)?.weakly_acyclic())
}

/// Exact FD+IND(+RD) implication for weakly acyclic `sigma`: the chase is
/// guaranteed to terminate, so the outcome is a definite answer.
///
/// Returns `Err` for malformed input, `Ok(None)` when `sigma` is **not**
/// weakly acyclic (the caller must fall back to the budgeted chase), and
/// `Ok(Some(answer))` otherwise.
pub fn decide(
    schema: &DatabaseSchema,
    sigma: &[Dependency],
    target: &Dependency,
) -> Result<Option<bool>, CoreError> {
    if !weakly_acyclic(schema, sigma)? {
        return Ok(None);
    }
    let chase = FdIndChase::new(schema, sigma)?;
    // Termination is guaranteed; the budget is a defensive ceiling far
    // above the polynomial bound for the sizes this library handles.
    let out = chase.implies(
        target,
        ChaseBudget {
            max_rounds: 100_000,
            max_tuples: 5_000_000,
        },
    )?;
    match out {
        ChaseOutcome::Proved { .. } => Ok(Some(true)),
        ChaseOutcome::Disproved { .. } => Ok(Some(false)),
        ChaseOutcome::Exhausted => Err(CoreError::SymbolicTooComplex(
            "weakly acyclic chase exceeded its defensive ceiling".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::{parse_dependencies, parse_dependency};
    use depkit_solver::ind::IndSolver;

    fn deps(srcs: &[&str]) -> Vec<Dependency> {
        parse_dependencies(srcs).unwrap()
    }

    #[test]
    fn cyclic_self_ind_is_rejected() {
        // Theorem 4.4's family: R[A] ⊆ R[B] invents a fresh A value per
        // round — the special self-edge the criterion exists to catch.
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let sigma = deps(&["R: A -> B", "R[A] <= R[B]"]);
        assert!(!weakly_acyclic(&schema, &sigma).unwrap());
        assert_eq!(decide(&schema, &sigma, &sigma[0]).unwrap(), None);
    }

    #[test]
    fn full_width_cycle_is_weakly_acyclic() {
        // A cycle that copies EVERY position invents no nulls: weakly
        // acyclic even though the relation graph has a cycle.
        let schema = DatabaseSchema::parse(&["R(A, B)", "S(C, D)"]).unwrap();
        let sigma = deps(&["R[A, B] <= S[C, D]", "S[C, D] <= R[A, B]"]);
        assert!(weakly_acyclic(&schema, &sigma).unwrap());
        let target = parse_dependency("R[A] <= S[C]").unwrap();
        assert_eq!(decide(&schema, &sigma, &target).unwrap(), Some(true));
    }

    #[test]
    fn null_feedback_cycle_is_rejected() {
        // R[A] ⊆ S[C] invents a fresh value at (S, D); S[D] ⊆ R[A] copies
        // that null back into the inventing position — divergence.
        let schema = DatabaseSchema::parse(&["R(A, B)", "S(C, D)"]).unwrap();
        let sigma = deps(&["R[A] <= S[C]", "S[D] <= R[A]"]);
        assert!(!weakly_acyclic(&schema, &sigma).unwrap());
    }

    #[test]
    fn null_flow_without_feedback_is_accepted() {
        // Nulls invented at (S, D) flow to (R, B) but (R, B) never feeds
        // an invention: the chase terminates and the criterion knows it.
        let schema = DatabaseSchema::parse(&["R(A, B)", "S(C, D)"]).unwrap();
        let sigma = deps(&["R[A] <= S[C]", "S[C, D] <= R[A, B]"]);
        assert!(weakly_acyclic(&schema, &sigma).unwrap());
        let target = parse_dependency("S[C] <= R[A]").unwrap();
        assert_eq!(decide(&schema, &sigma, &target).unwrap(), Some(true));
    }

    #[test]
    fn hr_constraints_are_weakly_acyclic_and_decidable() {
        let schema =
            DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNAME, HEAD)", "MGR(NAME, DEPT)"])
                .unwrap();
        let sigma = deps(&[
            "MGR[NAME, DEPT] <= EMP[NAME, DEPT]",
            "EMP[DEPT] <= DEPT[DNAME]",
            "DEPT[HEAD, DNAME] <= MGR[NAME, DEPT]",
            "EMP: NAME -> DEPT",
        ]);
        assert!(weakly_acyclic(&schema, &sigma).unwrap());
        // Exact decisions, both polarities.
        let yes = parse_dependency("DEPT[HEAD] <= EMP[NAME]").unwrap();
        let no = parse_dependency("EMP[NAME] <= MGR[NAME]").unwrap();
        assert_eq!(decide(&schema, &sigma, &yes).unwrap(), Some(true));
        assert_eq!(decide(&schema, &sigma, &no).unwrap(), Some(false));
    }

    #[test]
    fn section7_family_is_weakly_acyclic() {
        // Lemma 7.2's chase terminates because the Section 7 λ is weakly
        // acyclic; verify the criterion agrees.
        let fam_schema = DatabaseSchema::parse(&[
            "F(A, B, C)",
            "G0(A, B, C)",
            "G1(B, C)",
            "H0(B, C)",
            "H1(B, C, D)",
        ])
        .unwrap();
        let sigma = deps(&[
            "F[A, B] <= G0[A, B]",
            "F[B] <= G1[B]",
            "F[B] <= H0[B]",
            "F[B, C] <= H1[B, D]",
            "H0[B, C] <= G0[B, C]",
            "H0[B, C] <= G1[B, C]",
            "H1[B, C] <= G1[B, C]",
            "G0: A -> C",
            "G0: B -> C",
            "G1: B -> C",
            "H1: C -> D",
        ]);
        assert!(weakly_acyclic(&fam_schema, &sigma).unwrap());
        let target = parse_dependency("F: A -> C").unwrap();
        assert_eq!(decide(&fam_schema, &sigma, &target).unwrap(), Some(true));
    }

    #[test]
    fn agrees_with_ind_solver_on_acyclic_ind_sets() {
        // Pure-IND sigma, acyclic by construction (edges only i -> j with
        // i < j): the exact decision must match Theorem 3.1's solver.
        use depkit_core::generate::{random_schema, Rng, SchemaConfig};
        let mut rng = Rng::new(0xACE);
        for _ in 0..40 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 4,
                    min_arity: 2,
                    max_arity: 3,
                },
            );
            let mut inds = Vec::new();
            for _ in 0..5 {
                if let Some(ind) = depkit_core::generate::random_ind(&mut rng, &schema, 2) {
                    let li = schema.scheme_index(&ind.lhs_rel).unwrap();
                    let ri = schema.scheme_index(&ind.rhs_rel).unwrap();
                    if li < ri {
                        inds.push(ind);
                    }
                }
            }
            let sigma: Vec<Dependency> = inds.iter().cloned().map(Into::into).collect();
            if !weakly_acyclic(&schema, &sigma).unwrap() {
                continue; // narrow-width forward INDs can still invent nulls forward; skip
            }
            let Some(target) = depkit_core::generate::random_ind(&mut rng, &schema, 2) else {
                continue;
            };
            let expected = IndSolver::new(&inds).implies(&target);
            let got = decide(&schema, &sigma, &target.clone().into()).unwrap();
            assert_eq!(got, Some(expected), "target {target}");
        }
    }
}
