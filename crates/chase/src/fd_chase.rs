//! The classical two-tuple equality chase for FD implication.
//!
//! To decide `Σ ⊨ R: X → Y` semantically, build a two-row tableau over
//! `R`'s attributes that agrees exactly on `X`, then repeatedly apply the
//! FDs of `Σ` as equality-generating rules (merging cell values with a
//! union–find); at the fixpoint, the FD is implied iff the two rows agree
//! on all of `Y`. This is the standard chase specialization that
//! cross-validates the syntactic Beeri–Bernstein closure of
//! `depkit-solver::fd` (Armstrong completeness, machine-checked).

use depkit_core::attr::Attr;
use depkit_core::dependency::Fd;
use depkit_core::schema::RelationScheme;
use std::collections::HashMap;

/// A small union–find over `usize` ids.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Create a union–find with `n` singleton classes.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Add a fresh element, returning its id.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        id
    }

    /// Canonical representative of `x`.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merge the classes of `a` and `b`; returns `true` when they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same class.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Decide `Σ ⊨ target` for FDs by the two-tuple equality chase.
///
/// Only FDs of `Σ` about `target.rel` participate (others cannot matter).
/// The tableau rows are indexed cells; FDs merge cells until fixpoint.
pub fn implies_fd_semantic(sigma: &[Fd], scheme: &RelationScheme, target: &Fd) -> bool {
    if target.rel != *scheme.name() {
        return target.is_trivial();
    }
    let arity = scheme.arity();
    let col_of: HashMap<&Attr, usize> = scheme
        .attrs()
        .attrs()
        .iter()
        .enumerate()
        .map(|(i, a)| (a, i))
        .collect();

    // Cell ids: row 0 -> 0..arity, row 1 -> arity..2*arity.
    let mut uf = UnionFind::new(2 * arity);
    for a in target.lhs.attrs() {
        let Some(&c) = col_of.get(a) else {
            return false; // malformed target for this scheme
        };
        uf.union(c, arity + c);
    }

    let relevant: Vec<&Fd> = sigma.iter().filter(|f| f.rel == target.rel).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in &relevant {
            let agree = fd.lhs.attrs().iter().all(|a| {
                col_of
                    .get(a)
                    .map(|&c| uf.same(c, arity + c))
                    .unwrap_or(false)
            });
            if !agree {
                continue;
            }
            for a in fd.rhs.attrs() {
                if let Some(&c) = col_of.get(a) {
                    changed |= uf.union(c, arity + c);
                }
            }
        }
    }

    target.rhs.attrs().iter().all(|a| {
        col_of
            .get(a)
            .map(|&c| uf.same(c, arity + c))
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::attr::attrs;
    use depkit_core::parser::parse_dependency;
    use depkit_core::Dependency;

    fn fd(src: &str) -> Fd {
        match parse_dependency(src).unwrap() {
            Dependency::Fd(f) => f,
            _ => panic!("not an FD"),
        }
    }

    fn scheme(name: &str, names: &[&str]) -> RelationScheme {
        RelationScheme::new(name, attrs(names))
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        uf.union(2, 3);
        uf.union(1, 3);
        assert!(uf.same(0, 3));
        let fresh = uf.push();
        assert!(!uf.same(0, fresh));
    }

    #[test]
    fn chase_decides_transitivity() {
        let s = scheme("R", &["A", "B", "C"]);
        let sigma = vec![fd("R: A -> B"), fd("R: B -> C")];
        assert!(implies_fd_semantic(&sigma, &s, &fd("R: A -> C")));
        assert!(!implies_fd_semantic(&sigma, &s, &fd("R: C -> A")));
    }

    #[test]
    fn chase_handles_empty_lhs() {
        let s = scheme("R", &["A", "B"]);
        let sigma = vec![fd("R: -> A"), fd("R: A -> B")];
        assert!(implies_fd_semantic(&sigma, &s, &fd("R: -> B")));
    }

    #[test]
    fn agreement_with_closure_on_random_fd_sets() {
        // Armstrong completeness, machine-checked: closure-based and
        // chase-based implication agree on random instances.
        use depkit_core::generate::{random_fd, random_schema, Rng, SchemaConfig};
        use depkit_solver::fd::FdEngine;
        let mut rng = Rng::new(0xFD_CAFE);
        for round in 0..100 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 1,
                    min_arity: 3,
                    max_arity: 5,
                },
            );
            let s = schema.schemes()[0].clone();
            let mut sigma = Vec::new();
            for _ in 0..4 {
                let lhs_size = 1 + rng.below(2);
                if let Some(f) = random_fd(&mut rng, &schema, lhs_size, 1) {
                    sigma.push(f);
                }
            }
            let Some(target) = random_fd(&mut rng, &schema, 1, 1) else {
                continue;
            };
            let closure_based = FdEngine::new(target.rel.clone(), &sigma).implies(&target);
            let chase_based = implies_fd_semantic(&sigma, &s, &target);
            assert_eq!(
                closure_based, chase_based,
                "round {round}: disagree on {target} under {sigma:?}"
            );
        }
    }
}
