//! A goal-directed chase for FDs and INDs together.
//!
//! The combined implication problem for FDs and INDs is **undecidable**
//! (Mitchell \[Mi2\]; Chandra–Vardi \[CV\], both cited in the paper's
//! introduction), so no terminating complete procedure exists. This module
//! implements the standard chase with labeled nulls as a *semi-decision
//! procedure* with three outcomes:
//!
//! * [`ChaseOutcome::Proved`] — the goal became true after finitely many
//!   steps: `Σ ⊨ target` (sound, a genuine proof);
//! * [`ChaseOutcome::Disproved`] — the chase *terminated* without reaching
//!   the goal; the final instance is a universal model of `Σ` ∪ {tableau}
//!   violating `target` (sound refutation, countermodel returned);
//! * [`ChaseOutcome::Exhausted`] — the step budget ran out (no answer).
//!
//! FDs act as equality-generating rules (merging null ids via union–find);
//! INDs act as tuple-generating rules (adding a tuple with fresh nulls in
//! the unconstrained columns). Rounds interleave an FD fixpoint with one
//! breadth-first layer of IND applications, which keeps the procedure fair.
//!
//! The flagship use is the mechanical verification of the paper's
//! **Lemma 7.2**: for the Section 7 family, the chase proves
//! `Σ ⊨ F: A → C` in finitely many rounds (see `depkit-axiom`).

use crate::fd_chase::UnionFind;
use depkit_core::database::Database;
use depkit_core::dependency::{Dependency, Fd, Ind, Rd};
use depkit_core::error::CoreError;
use depkit_core::relation::Tuple;
use depkit_core::schema::{DatabaseSchema, RelName};
use depkit_core::value::Value;
use std::collections::HashSet;

/// Step budget for the (potentially nonterminating) combined chase.
#[derive(Debug, Clone, Copy)]
pub struct ChaseBudget {
    /// Maximum interleaved rounds.
    pub max_rounds: usize,
    /// Maximum total tuples across all relations.
    pub max_tuples: usize,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget {
            max_rounds: 64,
            max_tuples: 100_000,
        }
    }
}

/// Result of a goal-directed chase.
#[derive(Debug, Clone)]
pub enum ChaseOutcome {
    /// The goal was derived: `Σ ⊨ target`.
    Proved {
        /// Rounds executed before the goal held.
        rounds: usize,
    },
    /// The chase saturated without the goal: `Σ ⊭ target`, with the
    /// universal countermodel (nulls materialized as [`Value::Null`]).
    Disproved {
        /// A database satisfying `Σ` and violating the target.
        model: Database,
    },
    /// Budget exhausted; no answer.
    Exhausted,
}

impl ChaseOutcome {
    /// Whether this outcome is a proof.
    pub fn proved(&self) -> bool {
        matches!(self, ChaseOutcome::Proved { .. })
    }

    /// Whether this outcome is a refutation.
    pub fn disproved(&self) -> bool {
        matches!(self, ChaseOutcome::Disproved { .. })
    }
}

/// The chase engine for a fixed `Σ` of FDs, INDs, and RDs.
#[derive(Debug, Clone)]
pub struct FdIndChase {
    schema: DatabaseSchema,
    fds: Vec<Fd>,
    rds: Vec<Rd>,
    inds: Vec<Ind>,
}

/// Internal chase state: relations of id-tuples plus the null union–find.
struct State {
    /// `tuples[r]` = list of tuples (vectors of value ids) in relation `r`.
    tuples: Vec<Vec<Vec<usize>>>,
    uf: UnionFind,
}

impl State {
    fn fresh(&mut self) -> usize {
        self.uf.push()
    }

    fn canonical(&mut self, t: &[usize]) -> Vec<usize> {
        t.iter().map(|&v| self.uf.find(v)).collect()
    }

    /// Canonicalize all tuples and drop duplicates (within each relation).
    fn normalize(&mut self) {
        for r in 0..self.tuples.len() {
            let mut seen: HashSet<Vec<usize>> = HashSet::new();
            let old = std::mem::take(&mut self.tuples[r]);
            for t in old {
                let c: Vec<usize> = t.iter().map(|&v| self.uf.find(v)).collect();
                if seen.insert(c.clone()) {
                    self.tuples[r].push(c);
                }
            }
        }
    }

    fn total_tuples(&self) -> usize {
        self.tuples.iter().map(|r| r.len()).sum()
    }
}

impl FdIndChase {
    /// Build a chase engine. `Σ` may contain FDs, INDs, and RDs; EMVDs are
    /// rejected (the chase does not implement them).
    pub fn new(schema: &DatabaseSchema, sigma: &[Dependency]) -> Result<Self, CoreError> {
        let mut fds = Vec::new();
        let mut inds = Vec::new();
        let mut rds = Vec::new();
        for d in sigma {
            d.is_well_formed(schema)?;
            match d {
                Dependency::Fd(f) => fds.push(f.clone()),
                Dependency::Ind(i) => inds.push(i.clone()),
                Dependency::Rd(r) => rds.push(r.clone()),
                Dependency::Emvd(_) => {
                    return Err(CoreError::SymbolicTooComplex(
                        "the FD+IND chase does not support EMVDs".into(),
                    ))
                }
            }
        }
        Ok(FdIndChase {
            schema: schema.clone(),
            fds,
            rds,
            inds,
        })
    }

    /// Run the goal-directed chase for `Σ ⊨ target`.
    pub fn implies(
        &self,
        target: &Dependency,
        budget: ChaseBudget,
    ) -> Result<ChaseOutcome, CoreError> {
        target.is_well_formed(&self.schema)?;
        let mut state = State {
            tuples: vec![Vec::new(); self.schema.schemes().len()],
            uf: UnionFind::new(0),
        };

        // Seed the tableau and capture the goal cells.
        let goal: Goal = self.seed(target, &mut state)?;

        for round in 0..budget.max_rounds {
            self.fd_fixpoint(&mut state);
            if self.goal_holds(&goal, &mut state) {
                return Ok(ChaseOutcome::Proved { rounds: round });
            }
            let added = self.ind_round(&mut state);
            if state.total_tuples() > budget.max_tuples {
                return Ok(ChaseOutcome::Exhausted);
            }
            if !added {
                // Saturated: the instance is a universal model.
                let model = self.materialize(&mut state);
                debug_assert!(
                    self.sigma_holds(&model),
                    "saturated chase instance must satisfy Σ"
                );
                return Ok(ChaseOutcome::Disproved { model });
            }
        }
        Ok(ChaseOutcome::Exhausted)
    }

    fn sigma_holds(&self, db: &Database) -> bool {
        self.fds
            .iter()
            .all(|f| db.satisfies(&f.clone().into()).unwrap_or(false))
            && self
                .inds
                .iter()
                .all(|i| db.satisfies(&i.clone().into()).unwrap_or(false))
            && self
                .rds
                .iter()
                .all(|r| db.satisfies(&r.clone().into()).unwrap_or(false))
    }

    fn seed(&self, target: &Dependency, state: &mut State) -> Result<Goal, CoreError> {
        Ok(match target {
            Dependency::Fd(fd) => {
                let scheme = self.schema.require(&fd.rel)?;
                let rel_idx = self.schema.scheme_index(&fd.rel).expect("checked");
                let lhs_cols = scheme.columns(&fd.lhs)?;
                let rhs_cols = scheme.columns(&fd.rhs)?;
                let t1: Vec<usize> = (0..scheme.arity()).map(|_| state.fresh()).collect();
                let mut t2: Vec<usize> = (0..scheme.arity()).map(|_| state.fresh()).collect();
                for &c in &lhs_cols {
                    t2[c] = t1[c];
                }
                let goal_pairs = rhs_cols.iter().map(|&c| (t1[c], t2[c])).collect();
                state.tuples[rel_idx].push(t1);
                state.tuples[rel_idx].push(t2);
                Goal::CellsEqual(goal_pairs)
            }
            Dependency::Rd(rd) => {
                let scheme = self.schema.require(&rd.rel)?;
                let rel_idx = self.schema.scheme_index(&rd.rel).expect("checked");
                let lhs_cols = scheme.columns(&rd.lhs)?;
                let rhs_cols = scheme.columns(&rd.rhs)?;
                let t: Vec<usize> = (0..scheme.arity()).map(|_| state.fresh()).collect();
                let goal_pairs = lhs_cols
                    .iter()
                    .zip(&rhs_cols)
                    .map(|(&a, &b)| (t[a], t[b]))
                    .collect();
                state.tuples[rel_idx].push(t);
                Goal::CellsEqual(goal_pairs)
            }
            Dependency::Ind(ind) => {
                let lscheme = self.schema.require(&ind.lhs_rel)?;
                let rel_idx = self.schema.scheme_index(&ind.lhs_rel).expect("checked");
                let lhs_cols = lscheme.columns(&ind.lhs_attrs)?;
                let rscheme = self.schema.require(&ind.rhs_rel)?;
                let rhs_rel_idx = self.schema.scheme_index(&ind.rhs_rel).expect("checked");
                let rhs_cols = rscheme.columns(&ind.rhs_attrs)?;
                let t: Vec<usize> = (0..lscheme.arity()).map(|_| state.fresh()).collect();
                let wanted: Vec<usize> = lhs_cols.iter().map(|&c| t[c]).collect();
                state.tuples[rel_idx].push(t);
                Goal::TupleExists {
                    rel: rhs_rel_idx,
                    cols: rhs_cols,
                    wanted,
                }
            }
            Dependency::Emvd(_) => {
                return Err(CoreError::SymbolicTooComplex(
                    "the FD+IND chase does not support EMVD targets".into(),
                ))
            }
        })
    }

    fn goal_holds(&self, goal: &Goal, state: &mut State) -> bool {
        match goal {
            Goal::CellsEqual(pairs) => pairs.iter().all(|&(a, b)| state.uf.same(a, b)),
            Goal::TupleExists { rel, cols, wanted } => {
                let want: Vec<usize> = wanted.iter().map(|&v| state.uf.find(v)).collect();
                let tuples = state.tuples[*rel].clone();
                tuples.iter().any(|t| {
                    cols.iter()
                        .zip(&want)
                        .all(|(&c, &w)| state.uf.find(t[c]) == w)
                })
            }
        }
    }

    /// Apply all FDs and RDs of `Σ` as equality-generating rules until no
    /// merge happens. Terminates (merges strictly decrease class count).
    fn fd_fixpoint(&self, state: &mut State) {
        loop {
            let mut merged = false;
            for fd in &self.fds {
                let rel_idx = self.schema.scheme_index(&fd.rel).expect("well-formed");
                let scheme = &self.schema.schemes()[rel_idx];
                let lhs_cols = scheme.columns(&fd.lhs).expect("well-formed");
                let rhs_cols = scheme.columns(&fd.rhs).expect("well-formed");
                let tuples = state.tuples[rel_idx].clone();
                for i in 0..tuples.len() {
                    for j in (i + 1)..tuples.len() {
                        let agree = lhs_cols
                            .iter()
                            .all(|&c| state.uf.same(tuples[i][c], tuples[j][c]));
                        if agree {
                            for &c in &rhs_cols {
                                merged |= state.uf.union(tuples[i][c], tuples[j][c]);
                            }
                        }
                    }
                }
            }
            for rd in &self.rds {
                let rel_idx = self.schema.scheme_index(&rd.rel).expect("well-formed");
                let scheme = &self.schema.schemes()[rel_idx];
                let lhs_cols = scheme.columns(&rd.lhs).expect("well-formed");
                let rhs_cols = scheme.columns(&rd.rhs).expect("well-formed");
                let tuples = state.tuples[rel_idx].clone();
                for t in &tuples {
                    for (&a, &b) in lhs_cols.iter().zip(&rhs_cols) {
                        merged |= state.uf.union(t[a], t[b]);
                    }
                }
            }
            state.normalize();
            if !merged {
                return;
            }
        }
    }

    /// One breadth-first layer of IND applications: for every IND and every
    /// left tuple whose projection is unmatched, add the required right
    /// tuple with fresh nulls elsewhere. Returns whether anything was added.
    fn ind_round(&self, state: &mut State) -> bool {
        let mut added = false;
        for ind in &self.inds {
            let l_idx = self.schema.scheme_index(&ind.lhs_rel).expect("well-formed");
            let r_idx = self.schema.scheme_index(&ind.rhs_rel).expect("well-formed");
            let lhs_cols = self.schema.schemes()[l_idx]
                .columns(&ind.lhs_attrs)
                .expect("well-formed");
            let rhs_cols = self.schema.schemes()[r_idx]
                .columns(&ind.rhs_attrs)
                .expect("well-formed");
            let rhs_arity = self.schema.schemes()[r_idx].arity();

            // Snapshot of canonical right-side projections.
            let rhs_tuples = state.tuples[r_idx].clone();
            let mut rhs_proj: HashSet<Vec<usize>> = HashSet::new();
            for t in &rhs_tuples {
                rhs_proj.insert(rhs_cols.iter().map(|&c| state.uf.find(t[c])).collect());
            }

            let lhs_tuples = state.tuples[l_idx].clone();
            for u in &lhs_tuples {
                let proj: Vec<usize> = lhs_cols.iter().map(|&c| state.uf.find(u[c])).collect();
                if rhs_proj.contains(&proj) {
                    continue;
                }
                let mut t: Vec<usize> = Vec::with_capacity(rhs_arity);
                for c in 0..rhs_arity {
                    if let Some(k) = rhs_cols.iter().position(|&rc| rc == c) {
                        t.push(proj[k]);
                    } else {
                        t.push(state.fresh());
                    }
                }
                rhs_proj.insert(proj);
                state.tuples[r_idx].push(t);
                added = true;
            }
        }
        if added {
            state.normalize();
        }
        added
    }

    /// Materialize the chase instance as a database with labeled nulls.
    fn materialize(&self, state: &mut State) -> Database {
        let mut db = Database::empty(self.schema.clone());
        let names: Vec<RelName> = self
            .schema
            .schemes()
            .iter()
            .map(|s| s.name().clone())
            .collect();
        for (r, name) in names.iter().enumerate() {
            let tuples = state.tuples[r].clone();
            for t in tuples {
                let vals: Vec<Value> = state
                    .canonical(&t)
                    .into_iter()
                    .map(|id| Value::Null(id as u64))
                    .collect();
                db.insert(name, Tuple::new(vals)).expect("arity matches");
            }
        }
        db
    }
}

/// The goal condition tracked through the chase.
enum Goal {
    /// All listed cell pairs must become equal (FD and RD targets).
    CellsEqual(Vec<(usize, usize)>),
    /// Some tuple in `rel` must match `wanted` on `cols` (IND targets).
    TupleExists {
        rel: usize,
        cols: Vec<usize>,
        wanted: Vec<usize>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::{parse_dependencies, parse_dependency};

    fn deps(srcs: &[&str]) -> Vec<Dependency> {
        parse_dependencies(srcs).unwrap()
    }

    #[test]
    fn proves_proposition_4_1() {
        // {R[X Y] ⊆ S[T U], S: T -> U} ⊨ R: X -> Y.
        let schema = DatabaseSchema::parse(&["R(X, Y)", "S(T, U)"]).unwrap();
        let sigma = deps(&["R[X, Y] <= S[T, U]", "S: T -> U"]);
        let chase = FdIndChase::new(&schema, &sigma).unwrap();
        let out = chase
            .implies(
                &parse_dependency("R: X -> Y").unwrap(),
                ChaseBudget::default(),
            )
            .unwrap();
        assert!(out.proved(), "expected proof, got {out:?}");
    }

    #[test]
    fn disproves_with_countermodel() {
        let schema = DatabaseSchema::parse(&["R(X, Y)", "S(T, U)"]).unwrap();
        let sigma = deps(&["R[X] <= S[T]"]);
        let chase = FdIndChase::new(&schema, &sigma).unwrap();
        let target = parse_dependency("R: X -> Y").unwrap();
        match chase.implies(&target, ChaseBudget::default()).unwrap() {
            ChaseOutcome::Disproved { model } => {
                assert!(model.satisfies(&sigma[0]).unwrap());
                assert!(!model.satisfies(&target).unwrap());
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn proves_proposition_4_3_rd() {
        let schema = DatabaseSchema::parse(&["R(X, Y, Z)", "S(T, U)"]).unwrap();
        let sigma = deps(&["R[X, Y] <= S[T, U]", "R[X, Z] <= S[T, U]", "S: T -> U"]);
        let chase = FdIndChase::new(&schema, &sigma).unwrap();
        let out = chase
            .implies(
                &parse_dependency("R[Y = Z]").unwrap(),
                ChaseBudget::default(),
            )
            .unwrap();
        assert!(out.proved(), "expected proof, got {out:?}");
    }

    #[test]
    fn proves_ind_targets_via_transitivity() {
        let schema = DatabaseSchema::parse(&["R(A)", "S(B)", "T(C)"]).unwrap();
        let sigma = deps(&["R[A] <= S[B]", "S[B] <= T[C]"]);
        let chase = FdIndChase::new(&schema, &sigma).unwrap();
        let out = chase
            .implies(
                &parse_dependency("R[A] <= T[C]").unwrap(),
                ChaseBudget::default(),
            )
            .unwrap();
        assert!(out.proved());
        let out2 = chase
            .implies(
                &parse_dependency("T[C] <= R[A]").unwrap(),
                ChaseBudget::default(),
            )
            .unwrap();
        assert!(out2.disproved());
    }

    #[test]
    fn proves_proposition_4_2_ind() {
        let schema = DatabaseSchema::parse(&["R(X, Y, Z)", "S(T, U, V)"]).unwrap();
        let sigma = deps(&["R[X, Y] <= S[T, U]", "R[X, Z] <= S[T, V]", "S: T -> U"]);
        let chase = FdIndChase::new(&schema, &sigma).unwrap();
        let out = chase
            .implies(
                &parse_dependency("R[X, Y, Z] <= S[T, U, V]").unwrap(),
                ChaseBudget::default(),
            )
            .unwrap();
        assert!(out.proved(), "expected proof, got {out:?}");
    }

    #[test]
    fn nonterminating_family_exhausts_budget() {
        // R[A] ⊆ R[B] with R: A -> B keeps the chase producing fresh
        // nulls forever (this is exactly the unrestricted-implication side
        // of Theorem 4.4: Figure 4.1 is the infinite model the chase is
        // trying to build). The budget must trip, NOT report either answer.
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let sigma = deps(&["R: A -> B", "R[A] <= R[B]"]);
        let chase = FdIndChase::new(&schema, &sigma).unwrap();
        let out = chase
            .implies(
                &parse_dependency("R[B] <= R[A]").unwrap(),
                ChaseBudget {
                    max_rounds: 12,
                    max_tuples: 1_000,
                },
            )
            .unwrap();
        assert!(matches!(out, ChaseOutcome::Exhausted), "got {out:?}");
    }

    #[test]
    fn chase_agrees_with_fd_engine_on_pure_fds() {
        use depkit_core::generate::{random_fd, random_schema, Rng, SchemaConfig};
        use depkit_solver::fd::FdEngine;
        let mut rng = Rng::new(0xABCD);
        for _ in 0..40 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 1,
                    min_arity: 3,
                    max_arity: 4,
                },
            );
            let mut sigma: Vec<Dependency> = Vec::new();
            let mut fds = Vec::new();
            for _ in 0..3 {
                if let Some(f) = random_fd(&mut rng, &schema, 1, 1) {
                    fds.push(f.clone());
                    sigma.push(f.into());
                }
            }
            let Some(target) = random_fd(&mut rng, &schema, 1, 1) else {
                continue;
            };
            let expected = FdEngine::new(target.rel.clone(), &fds).implies(&target);
            let chase = FdIndChase::new(&schema, &sigma).unwrap();
            match chase
                .implies(&target.clone().into(), ChaseBudget::default())
                .unwrap()
            {
                ChaseOutcome::Proved { .. } => assert!(expected, "chase over-proved {target}"),
                ChaseOutcome::Disproved { .. } => {
                    assert!(!expected, "chase under-proved {target}")
                }
                ChaseOutcome::Exhausted => panic!("pure-FD chase must terminate"),
            }
        }
    }
}
