//! The Rule (*) chase from the proof of Theorem 3.1.
//!
//! Given INDs `Σ` and a candidate `σ = R_a[A_1..A_m] ⊆ R_b[B_1..B_m]`, the
//! paper constructs a finite database by seeding `r_a` with the tuple `p`
//! having `p[A_i] = i` and `0` elsewhere, then repeatedly applying
//!
//! > **Rule (\*).** If `R_i[C_1..C_k] ⊆ R_j[D_1..D_k]` is in `Σ` and tuple
//! > `u` is in `r_i`, add to `r_j` the tuple `t` with `t[D_v] = u[C_v]` and
//! > `t[A] = 0` for every other attribute `A` of `R_j`.
//!
//! The construction terminates because every entry lies in `{0, 1, ..., m}`.
//! The resulting database always satisfies `Σ`, and it satisfies `σ` iff
//! `Σ ⊨ σ` — so this is a *semantic* decision procedure for IND
//! implication, independent of the syntactic search in `depkit-solver`.
//! Because the database is finite, agreement of the two procedures is
//! exactly the paper's Theorem 3.1 equivalence `⊨ = ⊨_fin = ⊢` for INDs.

use depkit_core::column::RelationColumns;
use depkit_core::database::Database;
use depkit_core::dependency::Ind;
use depkit_core::error::CoreError;
use depkit_core::index::RowSet;
use depkit_core::intern::{Catalog, RelId};
use depkit_core::relation::Tuple;
use depkit_core::schema::DatabaseSchema;
use depkit_core::value::Value;
use std::collections::VecDeque;

/// Outcome of the Rule (*) chase.
#[derive(Debug, Clone)]
pub struct IndChaseResult {
    /// Whether `Σ ⊨ σ` (equivalently, whether the constructed database
    /// satisfies `σ`).
    pub implied: bool,
    /// The constructed database. It satisfies `Σ`; when `implied` is false
    /// it is a finite counterexample witnessing `Σ ⊭ σ`.
    pub database: Database,
    /// Number of tuples added by Rule (*) applications (excluding the seed).
    pub tuples_added: usize,
}

/// Run the Rule (*) chase for `sigma ⊨ target` over `schema`.
///
/// `max_tuples` caps the construction (the intrinsic bound is
/// `Σ_R (m+1)^arity(R)`, which can be astronomically large for wide
/// schemas); exceeding the cap returns an error rather than a wrong answer.
///
/// The chase runs entirely on the compiled representation: relations are
/// addressed by dense [`RelId`]s from a schema [`Catalog`], every tuple is a
/// bare `Vec<u32>` (Rule (*) entries all lie in `{0, ..., m}`), and each IND
/// of `Σ` is pre-compiled to a column gather. The [`Database`] with
/// [`Value`]-typed tuples is materialized once at the end.
pub fn ind_chase(
    schema: &DatabaseSchema,
    sigma: &[Ind],
    target: &Ind,
    max_tuples: usize,
) -> Result<IndChaseResult, CoreError> {
    target.is_well_formed(schema)?;
    for ind in sigma {
        ind.is_well_formed(schema)?;
    }

    // `Catalog::from_schema` guarantees RelId::index = scheme index, so the
    // per-relation state vectors below are addressed by RelId.
    let catalog = Catalog::from_schema(schema);
    let n_rels = schema.schemes().len();
    let rel_id = |name| {
        catalog
            .rel_id(name)
            .expect("well-formedness guarantees the relation is in the schema")
    };

    let m = target.arity();
    let ra = schema.require(&target.lhs_rel)?;
    let start_rel = rel_id(&target.lhs_rel);

    // Seed tuple p: p[A_i] = i (1-based), 0 elsewhere.
    let a_cols = ra.columns(&target.lhs_attrs)?;
    let mut seed = vec![0u32; ra.arity()];
    for (i, &c) in a_cols.iter().enumerate() {
        seed[c] = (i + 1) as u32;
    }

    // Compile each IND of Σ to a column gather, grouped by left relation id.
    struct Mapping {
        rhs_rel: RelId,
        lhs_cols: Vec<usize>,
        rhs_cols: Vec<usize>,
        rhs_arity: usize,
    }
    let mut by_lhs_rel: Vec<Vec<Mapping>> = (0..n_rels).map(|_| Vec::new()).collect();
    for ind in sigma {
        let l = schema.require(&ind.lhs_rel)?;
        let r = schema.require(&ind.rhs_rel)?;
        by_lhs_rel[rel_id(&ind.lhs_rel).index()].push(Mapping {
            rhs_rel: rel_id(&ind.rhs_rel),
            lhs_cols: l.columns(&ind.lhs_attrs)?,
            rhs_cols: r.columns(&ind.rhs_attrs)?,
            rhs_arity: r.arity(),
        });
    }

    // Per-relation state: a `RowSet` of raw u32 rows for O(1) dedup (the
    // shared serving-layer representation from `depkit_core::index`), a
    // struct-of-arrays arena accumulating every *accepted* row in
    // insertion order (the columnar storage the materialization below
    // consumes), and the worklist.
    let mut rows: Vec<RowSet> = vec![RowSet::new(); n_rels];
    let mut arenas: Vec<RelationColumns> = schema
        .schemes()
        .iter()
        .map(|s| RelationColumns::new(s.arity()))
        .collect();
    rows[start_rel.index()].insert(seed.clone());
    arenas[start_rel.index()].push_row(&seed);
    let mut total_tuples = 1usize;
    let mut tuples_added = 0usize;
    let mut queue: VecDeque<(RelId, Vec<u32>)> = VecDeque::from([(start_rel, seed)]);

    while let Some((rel, u)) = queue.pop_front() {
        for map in &by_lhs_rel[rel.index()] {
            let mut t = vec![0u32; map.rhs_arity];
            for (&lc, &rc) in map.lhs_cols.iter().zip(&map.rhs_cols) {
                t[rc] = u[lc];
            }
            if rows[map.rhs_rel.index()].insert(t.clone()) {
                arenas[map.rhs_rel.index()].push_row(&t);
                tuples_added += 1;
                total_tuples += 1;
                if total_tuples > max_tuples {
                    return Err(CoreError::SymbolicTooComplex(format!(
                        "Rule (*) chase exceeded the cap of {max_tuples} tuples"
                    )));
                }
                queue.push_back((map.rhs_rel, t));
            }
        }
    }

    // σ holds iff r_b contains a tuple p' with p'[B_i] = i for all i —
    // checked as one scan down the goal relation's B columns.
    let b_cols = schema
        .require(&target.rhs_rel)?
        .columns(&target.rhs_attrs)?;
    let goal = &arenas[rel_id(&target.rhs_rel).index()];
    let implied = (0..goal.row_count()).any(|r| {
        b_cols
            .iter()
            .enumerate()
            .all(|(i, &c)| goal.column(c)[r] as usize == i + 1)
    });
    debug_assert!(m == b_cols.len());

    // Materialize the value-typed database once, at the boundary: every
    // chase entry lies in {0, ..., m}, so the Value table is built once
    // and each arena row is gathered straight from its columns — no
    // per-row name resolution, no intermediate row vectors.
    let int_values: Vec<Value> = (0..=m as u32).map(|v| Value::Int(v as i64)).collect();
    let mut db = Database::empty(schema.clone());
    for (r, arena) in arenas.iter().enumerate() {
        let name = schema.schemes()[r].name().clone();
        let relation = db.relation_mut(&name)?;
        for row in 0..arena.row_count() {
            let vals: Vec<Value> = (0..arena.arity())
                .map(|c| int_values[arena.column(c)[row] as usize].clone())
                .collect();
            relation.insert(Tuple::new(vals))?;
        }
    }

    Ok(IndChaseResult {
        implied,
        database: db,
        tuples_added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::parser::parse_dependency;
    use depkit_core::Dependency;

    fn ind(src: &str) -> Ind {
        match parse_dependency(src).unwrap() {
            Dependency::Ind(i) => i,
            _ => panic!("not an IND"),
        }
    }

    fn schema(decls: &[&str]) -> DatabaseSchema {
        DatabaseSchema::parse(decls).unwrap()
    }

    #[test]
    fn chase_agrees_on_transitivity() {
        let s = schema(&["R(A)", "S(B)", "T(C)"]);
        let sigma = vec![ind("R[A] <= S[B]"), ind("S[B] <= T[C]")];
        let res = ind_chase(&s, &sigma, &ind("R[A] <= T[C]"), 10_000).unwrap();
        assert!(res.implied);
        let res2 = ind_chase(&s, &sigma, &ind("T[C] <= R[A]"), 10_000).unwrap();
        assert!(!res2.implied);
    }

    #[test]
    fn constructed_database_satisfies_sigma() {
        let s = schema(&["R(A, B)", "S(C, D)"]);
        let sigma = vec![ind("R[A, B] <= S[C, D]"), ind("S[D] <= R[A]")];
        let res = ind_chase(&s, &sigma, &ind("R[B] <= S[D]"), 10_000).unwrap();
        for i in &sigma {
            assert!(
                res.database.satisfies(&i.clone().into()).unwrap(),
                "chase database must satisfy Σ, violated {i}"
            );
        }
        assert!(res.implied);
    }

    #[test]
    fn counterexample_database_refutes_sigma() {
        let s = schema(&["R(A, B)", "S(C, D)"]);
        let sigma = vec![ind("R[A] <= S[C]")];
        let target = ind("R[B] <= S[D]");
        let res = ind_chase(&s, &sigma, &target, 10_000).unwrap();
        assert!(!res.implied);
        // The database is a genuine countermodel.
        assert!(res.database.satisfies(&sigma[0].clone().into()).unwrap());
        assert!(!res.database.satisfies(&target.clone().into()).unwrap());
    }

    #[test]
    fn permutation_example_walks_the_cycle() {
        // σ(γ) with γ a 3-cycle: chase adds 2 tuples to reach the goal,
        // plus continues to closure.
        let s = schema(&["R(A, B, C)"]);
        let sigma = vec![ind("R[A, B, C] <= R[B, C, A]")];
        let res = ind_chase(&s, &sigma, &ind("R[A, B, C] <= R[C, A, B]"), 10_000).unwrap();
        assert!(res.implied);
        // The chase closes the full cycle: tuples (1,2,3), (3,1,2), (2,3,1).
        assert_eq!(res.database.total_tuples(), 3);
    }

    #[test]
    fn reflexive_target_is_trivially_implied() {
        let s = schema(&["R(A, B)"]);
        let res = ind_chase(&s, &[], &ind("R[A, B] <= R[A, B]"), 100).unwrap();
        assert!(res.implied);
        assert_eq!(res.tuples_added, 0);
    }

    #[test]
    fn cap_is_enforced() {
        // Wide fanout: each application creates new padded tuples.
        let s = schema(&["R(A, B)", "S(C, D)"]);
        let sigma = vec![
            ind("R[A] <= S[C]"),
            ind("S[C] <= R[B]"),
            ind("R[B] <= S[D]"),
            ind("S[D] <= R[A]"),
        ];
        // A cap of 1 must trip immediately.
        let err = ind_chase(&s, &sigma, &ind("R[A] <= S[D]"), 1);
        assert!(err.is_err());
    }

    #[test]
    fn agreement_with_syntactic_solver_on_random_instances() {
        // Theorem 3.1's equivalence (1) ⇔ (3), machine-checked on random
        // IND sets.
        use depkit_core::generate::{random_ind_set, random_schema, Rng, SchemaConfig};
        use depkit_solver::ind::IndSolver;
        let mut rng = Rng::new(0xC0FFEE);
        for round in 0..60 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 3,
                    min_arity: 2,
                    max_arity: 3,
                },
            );
            let sigma = random_ind_set(&mut rng, &schema, 4, 2);
            let Some(target) = depkit_core::generate::random_ind(&mut rng, &schema, 2) else {
                continue;
            };
            let syntactic = IndSolver::new(&sigma).implies(&target);
            let semantic = ind_chase(&schema, &sigma, &target, 200_000)
                .unwrap()
                .implied;
            assert_eq!(
                syntactic, semantic,
                "round {round}: solver and Rule (*) chase disagree on {target} under {sigma:?}"
            );
        }
    }
}
