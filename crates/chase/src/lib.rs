//! # depkit-chase — chase engines for dependency reasoning
//!
//! Three chase variants, each tied to a construction in the paper
//! (Casanova–Fagin–Papadimitriou 1982/84):
//!
//! * [`ind_chase`](mod@crate::ind_chase) — the **Rule (\*) construction** from the proof of
//!   Theorem 3.1: a chase that pads with the constant `0` instead of fresh
//!   nulls. It decides IND implication *semantically* and produces the
//!   finite counterexample database of the completeness proof; agreement
//!   with the syntactic search of `depkit-solver` is the machine-checked
//!   content of Theorem 3.1 (and of the finite = unrestricted claim).
//! * [`fd_chase`] — the classical two-tuple equality chase for FDs, used to
//!   cross-validate the Beeri–Bernstein closure (Armstrong completeness).
//! * [`fdind_chase`] — a goal-directed chase for FDs and INDs **together**,
//!   with labeled nulls and a step budget. The combined implication problem
//!   is undecidable (Mitchell; Chandra–Vardi), so this is a semi-decision
//!   procedure: it proves goals (e.g. Lemma 7.2's `Σ ⊨ F: A → C`) or, when
//!   it saturates, refutes them with a universal countermodel.

//!
//! A fourth module, [`acyclic`], answers the paper's Section 8 call for
//! restricted IND classes with easier decision problems: for **weakly
//! acyclic** IND sets the chase terminates, making [`acyclic::decide`] an
//! exact decision procedure on that fragment.

pub mod acyclic;
pub mod fd_chase;
pub mod fdind_chase;
pub mod ind_chase;

pub use acyclic::{decide as decide_weakly_acyclic, weakly_acyclic};
pub use fd_chase::implies_fd_semantic;
pub use fdind_chase::{ChaseBudget, ChaseOutcome, FdIndChase};
pub use ind_chase::{ind_chase, IndChaseResult};
