//! `depkit` — command-line front end for the dependency toolkit.
//!
//! ```text
//! depkit check <spec.dep>                  validate the inline data against the constraints
//! depkit implies <spec.dep> <DEP>          does the constraint set imply DEP?
//! depkit keys <spec.dep> <RELATION>        candidate keys of a relation under its FDs
//! depkit design <spec.dep> <RELATION>      BCNF check, 3NF synthesis, decomposition
//! depkit validate <spec.dep> <deltas.dep>  stream mutation batches through the
//!                                          incremental validator
//! depkit discover <spec.dep> [--threads N] mine the FDs/INDs the inline data
//!         [--workers N]                    satisfies, minimized to a cover
//!         [--memory-budget BYTES]          (N worker threads; 0 or omitted =
//!         [--spill-dir PATH] [--stats]     all cores — the result is
//!                                          identical either way). A positive
//!                                          --workers N shards the discovery
//!                                          across N `shard-worker` child
//!                                          processes (cover still identical).
//!                                          A positive --memory-budget (plain
//!                                          bytes or human form: 512M, 64K,
//!                                          2G) bounds the working set by
//!                                          spilling sorted runs under
//!                                          --spill-dir (default: the system
//!                                          temp dir); the mined cover is
//!                                          byte-identical to the unbounded
//!                                          run. --stats prints the spill
//!                                          counters (runs written, bytes
//!                                          spilled, merge passes) and, when
//!                                          sharded, the coordinator counters.
//!         [--max-error E] [--top-k K]      A positive --max-error E (fraction
//!                                          `0.05` or percentage `5%`) also
//!                                          mines *approximate* dependencies
//!                                          violated by at most a fraction E
//!                                          of their support (g3 error for
//!                                          FDs, missing rows for INDs), and
//!                                          ranks everything mined by
//!                                          confidence × support (--top-k
//!                                          truncates the ranking; 0 = all)
//! depkit shard-worker <spec.dep>           run one discovery shard worker
//!         --connect HOST:PORT              against a `discover --workers`
//!                                          coordinator (spawned by the
//!                                          coordinator; honors DEPKIT_FAULT
//!                                          for fault-injection tests)
//! depkit serve <spec.dep> [--addr A]       run the line-JSON session server
//!         [--data-dir D]                   on A (default 127.0.0.1:4227)
//!         [--fsync always|never|           against the spec's constraints
//!                 interval:N]              and seed data; with --data-dir the
//!         [--checkpoint-every N]           catalog is durable: commits are
//!                                          write-ahead logged (fsync policy
//!                                          --fsync, default `always`) and
//!                                          checkpointed every N commits
//!                                          (default 512), and a restart
//!                                          recovers checkpoint + WAL replay,
//!                                          printing `recovered: ...` before
//!                                          the `serving ...` line
//! depkit client <addr> [script]            drive a server: send each line of
//!                                          script (a file, or stdin when
//!                                          omitted) as a request, print each
//!                                          response
//! depkit client <addr> health              one-shot health query: print each
//!                                          dependency's live satisfaction
//!                                          ratio (exit 1 if any is violated)
//! ```
//!
//! Spec files are plain text (see `spec.rs`): `schema R(A, B)` /
//! `dep R: A -> B` / `row R 1 2` lines; delta scripts are `insert R 1 2` /
//! `delete R 1 2` / `commit` lines. Exit code 0 = success/consistent,
//! 1 = violations or "not implied", 2 = usage or parse errors.

mod spec;

use depkit_chase::acyclic;
use depkit_chase::fdind_chase::{ChaseBudget, ChaseOutcome, FdIndChase};
use depkit_core::prelude::*;
use depkit_solver::design::{bcnf_decompose, is_bcnf, threenf_synthesis};
use depkit_solver::fd::FdEngine;
use depkit_solver::incremental::Validator;
use depkit_solver::interact::Saturator;
use spec::{parse_deltas, parse_spec};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<spec::Spec, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_spec(&text)?)
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match args {
        [cmd, path] if cmd == "check" => check(path),
        [cmd, path, dep] if cmd == "implies" => implies(path, dep),
        [cmd, path, rel] if cmd == "keys" => keys(path, rel),
        [cmd, path, rel] if cmd == "design" => design(path, rel),
        [cmd, path, deltas] if cmd == "validate" => validate(path, deltas),
        [cmd, path, rest @ ..] if cmd == "discover" => discover(path, rest),
        [cmd, path, flag, addr] if cmd == "shard-worker" && flag == "--connect" => {
            shard_worker(path, addr)
        }
        [cmd, path, rest @ ..] if cmd == "serve" => serve(path, rest),
        [cmd, addr] if cmd == "client" => client(addr, None),
        [cmd, addr, word] if cmd == "client" && word == "health" => client_health(addr),
        [cmd, addr, script] if cmd == "client" => client(addr, Some(script)),
        _ => {
            eprintln!(
                "usage: depkit check <spec.dep>\n       depkit implies <spec.dep> <DEP>\n       \
                 depkit keys <spec.dep> <RELATION>\n       depkit design <spec.dep> <RELATION>\n       \
                 depkit validate <spec.dep> <deltas.dep>\n       \
                 depkit discover <spec.dep> [--threads N] [--workers N] [--memory-budget BYTES] [--spill-dir PATH] [--stats] [--max-error E] [--top-k K]\n       \
                 depkit shard-worker <spec.dep> --connect <HOST:PORT>\n       \
                 depkit serve <spec.dep> [--addr HOST:PORT] [--data-dir DIR] [--fsync always|never|interval:N] [--checkpoint-every N]\n       \
                 depkit client <HOST:PORT> [script | health]"
            );
            Ok(ExitCode::from(2))
        }
    }
}

fn serve(path: &str, rest: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut addr = String::from("127.0.0.1:4227");
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut fsync = depkit_core::wal::FsyncPolicy::Always;
    let mut checkpoint_every = 512u64;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = |v: Option<&String>| -> Result<String, String> {
            v.cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value(it.next())?,
            "--data-dir" => data_dir = Some(std::path::PathBuf::from(value(it.next())?)),
            "--fsync" => fsync = depkit_core::wal::FsyncPolicy::parse(&value(it.next())?)?,
            "--checkpoint-every" => {
                checkpoint_every = value(it.next())?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            other => return Err(format!("unknown serve flag `{other}`").into()),
        }
    }
    let spec = load(path)?;
    let sigma = spec.constraints.dependencies().to_vec();
    let schema = spec.constraints.schema();
    let (cat, durability, seeded_rows) = match data_dir {
        Some(dir) => {
            let mut cfg = depkit_solver::incremental::DurabilityConfig::new(dir);
            cfg.fsync = fsync;
            cfg.checkpoint_every = checkpoint_every;
            let (cat, dur, report) =
                depkit_solver::incremental::Durability::open(schema, &sigma, cfg)?;
            // A fresh data dir starts from the spec's seed rows; the seed
            // bypasses the commit sink, so checkpoint immediately to make
            // it durable. A recovered dir keeps its own state — the
            // spec's rows are already in it (or were deleted since).
            let seeded = if report.fresh {
                let out = cat.seed(&spec.database)?;
                dur.checkpoint(&cat)?;
                out.applied.inserted
            } else {
                0
            };
            // Harnesses parse this line to learn what recovery did.
            println!("{report}");
            (cat, Some(dur), seeded)
        }
        None => {
            let cat = depkit_solver::incremental::CatalogState::new(schema, &sigma)?;
            let seeded = cat.seed(&spec.database)?;
            (cat, None, seeded.applied.inserted)
        }
    };
    let server = depkit_serve::Server::start_durable(
        cat,
        &addr,
        depkit_serve::ServeConfig::default(),
        durability,
    )?;
    // CI and scripts wait for this line before connecting.
    println!(
        "serving {} on {} ({} rows seeded, {} dependencies)",
        path,
        server.local_addr(),
        seeded_rows,
        sigma.len()
    );
    // Serve until killed; the accept loop owns the listener.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn client(addr: &str, script: Option<&str>) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let text = match script {
        Some(path) => std::fs::read_to_string(path)?,
        None => std::io::read_to_string(std::io::stdin())?,
    };
    let stdout = std::io::stdout();
    depkit_serve::run_script(addr, &text, &mut stdout.lock())?;
    Ok(ExitCode::SUCCESS)
}

/// One-shot `client <addr> health`: send a single health query and
/// render each dependency's live satisfaction for humans. Exit code 1
/// when any dependency is below 100%.
fn client_health(addr: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut raw = Vec::new();
    depkit_serve::run_script(addr, r#"{"cmd":"health"}"#, &mut raw)?;
    let text = String::from_utf8(raw)?;
    let v = depkit_serve::json::parse(text.trim())
        .map_err(|e| format!("malformed health response: {e}"))?;
    let deps = v
        .get("deps")
        .and_then(depkit_serve::Json::as_arr)
        .ok_or("health response has no `deps` array")?;
    println!(
        "health at generation {}:",
        v.get("generation")
            .and_then(depkit_serve::Json::as_i64)
            .unwrap_or(-1)
    );
    let mut all_clean = true;
    for d in deps {
        let name = d
            .get("dep")
            .and_then(depkit_serve::Json::as_str)
            .unwrap_or("?");
        let violating = d
            .get("violating")
            .and_then(depkit_serve::Json::as_i64)
            .unwrap_or(0);
        let satisfied = d
            .get("satisfied")
            .and_then(depkit_serve::Json::as_str)
            .unwrap_or("?");
        let tracked = d
            .get("tracked")
            .and_then(depkit_serve::Json::as_i64)
            .unwrap_or(0);
        println!("  {name} is {satisfied} satisfied ({violating} of {tracked} keys violating)");
        all_clean &= violating == 0;
    }
    Ok(if all_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn check(path: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let spec = load(path)?;
    let violations = spec.constraints.validate(&spec.database)?;
    if violations.is_empty() {
        println!(
            "consistent: {} tuples satisfy {} dependencies",
            spec.database.total_tuples(),
            spec.constraints.dependencies().len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            println!("violation: {v}");
        }
        println!("{} violation(s)", violations.len());
        Ok(ExitCode::FAILURE)
    }
}

fn consistency_status(validator: &Validator) -> String {
    if validator.is_consistent() {
        "consistent".to_string()
    } else {
        format!("{} violation(s)", validator.violation_count())
    }
}

fn validate(path: &str, deltas_path: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let spec = load(path)?;
    let script = std::fs::read_to_string(deltas_path)?;
    let batches = parse_deltas(&script)?;

    let sigma = spec.constraints.dependencies().to_vec();
    let mut validator = Validator::new(spec.constraints.schema(), &sigma)?;
    validator.seed(&spec.database)?;
    println!(
        "seeded {} rows under {} dependencies: {}",
        validator.total_rows(),
        sigma.len(),
        consistency_status(&validator)
    );

    for (i, delta) in batches.iter().enumerate() {
        let out = validator.apply(delta)?;
        println!(
            "batch {}: {delta} applied (+{} -{} effective), {} rows, {}",
            i + 1,
            out.inserted,
            out.deleted,
            validator.total_rows(),
            consistency_status(&validator)
        );
        for v in validator.violations() {
            println!("  {}", validator.explain(&v));
        }
    }

    Ok(if validator.is_consistent() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Parsed `discover` flags.
struct DiscoverOpts {
    threads: usize,
    workers: usize,
    memory_budget: usize,
    spill_dir: Option<std::path::PathBuf>,
    stats: bool,
    max_error: f64,
    top_k: usize,
}

fn parse_discover_opts(rest: &[String]) -> Result<DiscoverOpts, String> {
    let mut opts = DiscoverOpts {
        threads: 0,
        workers: 0,
        memory_budget: 0,
        spill_dir: None,
        stats: false,
        max_error: 0.0,
        top_k: 0,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => {
                let n = it.next().ok_or("--threads expects a number")?;
                opts.threads = n
                    .parse()
                    .map_err(|_| format!("--threads expects a number, got `{n}`"))?;
            }
            "--workers" => {
                let n = it.next().ok_or("--workers expects a number")?;
                opts.workers = n
                    .parse()
                    .map_err(|_| format!("--workers expects a number, got `{n}`"))?;
            }
            "--memory-budget" => {
                let n = it.next().ok_or("--memory-budget expects a byte count")?;
                opts.memory_budget = parse_bytes(n).map_err(|e| format!("--memory-budget: {e}"))?;
            }
            "--spill-dir" => {
                let p = it.next().ok_or("--spill-dir expects a path")?;
                opts.spill_dir = Some(std::path::PathBuf::from(p));
            }
            "--stats" => opts.stats = true,
            "--max-error" => {
                let n = it.next().ok_or("--max-error expects a tolerance")?;
                opts.max_error =
                    parse_error_tolerance(n).map_err(|e| format!("--max-error: {e}"))?;
            }
            "--top-k" => {
                let n = it.next().ok_or("--top-k expects a count")?;
                opts.top_k = n
                    .parse()
                    .map_err(|_| format!("--top-k expects a count, got `{n}`"))?;
            }
            other => return Err(format!("unknown discover flag `{other}`")),
        }
    }
    Ok(opts)
}

/// Parse a nonnegative decimal literal — digits with an optional
/// fractional part (`12`, `1.5`), no sign, exponent, or locale forms.
/// The shared numeric core of [`parse_bytes`] and
/// [`parse_error_tolerance`]: both accept exactly this shape, so their
/// error messages can promise it.
fn parse_decimal(src: &str) -> Option<f64> {
    let (int, frac) = match src.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (src, None),
    };
    let all_digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if !all_digits(int) || !frac.is_none_or(all_digits) {
        return None;
    }
    src.parse::<f64>().ok()
}

/// Parse a byte count: digits, or a decimal with a human suffix
/// `K`/`M`/`G` (binary multiples, optional trailing `B`, any case) —
/// `512M`, `64kb`, `1.5G` (= 1610612736). A bare `B` counts plain bytes
/// (`12B` = 12); a fractional count needs a unit to round against
/// (`12.5` alone is rejected, `12.5K` is 12800).
fn parse_bytes(src: &str) -> Result<usize, String> {
    let upper = src.trim().to_ascii_uppercase();
    let body = upper.strip_suffix('B').unwrap_or(&upper);
    let (digits, mult) = match body.chars().last() {
        Some('K') => (&body[..body.len() - 1], 1usize << 10),
        Some('M') => (&body[..body.len() - 1], 1 << 20),
        Some('G') => (&body[..body.len() - 1], 1 << 30),
        _ => (body, 1),
    };
    let value = parse_decimal(digits).ok_or_else(|| {
        format!(
            "expected a byte count: digits with an optional K/M/G unit and B suffix \
             (e.g. 536870912, `512M`, `1.5G`), got `{src}`"
        )
    })?;
    if digits.contains('.') {
        if mult == 1 {
            return Err(format!(
                "fractional byte counts need a unit suffix to round against (`1.5G`, not `{src}`)"
            ));
        }
        let bytes = value * mult as f64;
        if bytes > usize::MAX as f64 {
            return Err(format!("byte count overflows usize: `{src}`"));
        }
        return Ok(bytes as usize);
    }
    let n: usize = digits
        .parse()
        .map_err(|_| format!("byte count overflows usize: `{src}`"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("byte count overflows usize: `{src}`"))
}

/// Parse an error tolerance: a fraction (`0.05`) or a percentage
/// (`5%`), in `[0, 1)` — a tolerance of 1 would score every candidate
/// as vacuously satisfied.
fn parse_error_tolerance(src: &str) -> Result<f64, String> {
    let trimmed = src.trim();
    let (body, scale) = match trimmed.strip_suffix('%') {
        Some(p) => (p.trim_end(), 0.01),
        None => (trimmed, 1.0),
    };
    let v = parse_decimal(body).ok_or_else(|| {
        format!("expected an error tolerance as a fraction or percentage (e.g. 0.05 or `5%`), got `{src}`")
    })? * scale;
    if !(0.0..1.0).contains(&v) {
        return Err(format!("error tolerance must lie in [0, 1), got `{src}`"));
    }
    Ok(v)
}

fn discover(path: &str, rest: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let opts = parse_discover_opts(rest)?;
    let spec = load(path)?;
    let config = depkit_solver::discover::DiscoveryConfig {
        threads: opts.threads,
        memory_budget: opts.memory_budget,
        spill_dir: opts.spill_dir,
        max_error: opts.max_error,
        top_k: opts.top_k,
        ..Default::default()
    };
    let (found, shard_stats) = if opts.workers > 0 {
        let (found, stats) = discover_sharded(path, &spec, &config, opts.workers)?;
        (found, Some(stats))
    } else {
        (
            depkit_solver::discover::try_discover_with_config(&spec.database, &config)?,
            None,
        )
    };
    let s = &found.stats;
    println!(
        "profiled {} rows, {} columns, {} distinct values",
        s.rows, s.columns, s.distinct_values
    );
    println!(
        "raw: {} FDs + {} INDs ({} FD candidates, {} composed IND candidates checked)",
        s.raw_fds, s.raw_inds, s.fd_candidates, s.ind_candidates
    );
    println!(
        "cover: {} dependencies ({} pruned as implied by the rest)",
        found.cover.len(),
        s.pruned
    );
    if opts.stats {
        let sp = &found.spill;
        println!(
            "spill: {} column(s) spilled, {} run(s) written, {} bytes, {} merge pass(es)",
            sp.spilled_columns, sp.runs_written, sp.bytes_spilled, sp.merge_passes
        );
        if let Some(sh) = &shard_stats {
            println!(
                "shard: {} shard(s), {} assigned, {} completed, {} retried, {} reassigned, {} checksum-rejected, {} stale",
                sh.shards, sh.assigned, sh.completed, sh.retried, sh.reassigned,
                sh.checksum_rejected, sh.stale_results
            );
        }
    }
    // `dep`-prefixed lines so the output pastes straight back into a spec.
    for d in &found.cover {
        println!("dep {d}");
    }
    // With a tolerance, rank everything mined by confidence × support so
    // the strongest near-dependencies of a dirty table surface first.
    if config.max_error > 0.0 {
        let ranked = found.ranked(opts.top_k);
        println!(
            "ranked: top {} of {} scored dependencies (by confidence × support):",
            ranked.len(),
            found.scored.len()
        );
        for (i, s) in ranked.iter().enumerate() {
            println!(
                "  #{} {}  confidence {:.4}, support {}, misses {}",
                i + 1,
                s.dep,
                s.confidence(),
                s.support,
                s.misses
            );
        }
    }
    // Cross-check against any constraints the spec declared. Under a
    // tolerance, a declared dependency the data *nearly* satisfies is
    // reported with its confidence — dirty data reads differently from a
    // wrong schema. Exact runs keep the original wording byte-for-byte.
    for declared in spec.constraints.dependencies() {
        if depkit_solver::discover::implied_by(&found.cover, declared) {
            continue;
        }
        let approx = found
            .scored
            .iter()
            .find(|s| s.dep == *declared && s.misses > 0);
        match approx {
            Some(s) => println!(
                "note: declared `{declared}` approximately holds (confidence {:.4} < 1.0)",
                s.confidence()
            ),
            None => println!("note: declared `{declared}` is not implied by the discovered cover"),
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Drive one sharded discovery: bind a coordinator on an ephemeral local
/// port, spawn `workers` child `shard-worker` processes pointed at this
/// same spec file (each re-parses it and interns its own identical
/// [`depkit_core::ColumnStore`]), run, then reap the children. The
/// returned cover is byte-identical to the in-process pipeline's.
fn discover_sharded(
    path: &str,
    spec: &spec::Spec,
    config: &depkit_solver::discover::DiscoveryConfig,
    workers: usize,
) -> Result<
    (depkit_solver::discover::Discovery, depkit_serve::ShardStats),
    Box<dyn std::error::Error>,
> {
    let shard_cfg = depkit_serve::ShardConfig {
        shard_root: config.spill_dir.clone(),
        ..Default::default()
    };
    let coordinator = depkit_serve::Coordinator::bind("127.0.0.1:0", shard_cfg)?;
    let addr = coordinator.local_addr().to_string();
    let exe = std::env::current_exe()?;
    let mut children = Vec::new();
    for _ in 0..workers {
        children.push(
            std::process::Command::new(&exe)
                .args(["shard-worker", path, "--connect", &addr])
                .spawn()?,
        );
    }
    let schema = spec.database.schema().clone();
    let store = depkit_core::ColumnStore::new(&spec.database);
    let result = coordinator.run(&schema, &store, config, workers);
    // run() has told workers to shut down (even on error); reap them
    // before surfacing the result so no child outlives the parent.
    for mut child in children {
        let _ = child.wait();
    }
    coordinator.shutdown()?;
    Ok(result?)
}

/// The worker half of `discover --workers`: parse the same spec the
/// coordinator holds, build this process's own column store (row-major
/// interning makes it identical to the coordinator's), and poll the
/// coordinator for shards until told to shut down. `DEPKIT_FAULT`
/// injects deterministic faults for the crash-safety tests.
fn shard_worker(path: &str, addr: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let spec = load(path)?;
    let fault = depkit_serve::FaultPlan::from_env().map_err(|e| format!("DEPKIT_FAULT: {e}"))?;
    let schema = spec.database.schema().clone();
    let store = depkit_core::ColumnStore::new(&spec.database);
    depkit_serve::run_worker(addr, &schema, &store, &fault)?;
    Ok(ExitCode::SUCCESS)
}

fn implies(path: &str, dep_src: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let spec = load(path)?;
    let target: Dependency = dep_src.parse()?;
    target.is_well_formed(spec.constraints.schema())?;
    let sigma = spec.constraints.dependencies().to_vec();

    // 1. Exact decision on the weakly acyclic fragment.
    if let Some(answer) = acyclic::decide(spec.constraints.schema(), &sigma, &target)? {
        println!(
            "{} (exact: IND set is weakly acyclic, chase terminates)",
            if answer { "implied" } else { "not implied" }
        );
        return Ok(if answer {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }

    // 2. Sound saturation (k-ary rules; may under-approximate).
    let mut sat = Saturator::new(&sigma);
    sat.saturate();
    if sat.implies(&target) {
        println!("implied (derived by the sound interaction rules)");
        return Ok(ExitCode::SUCCESS);
    }

    // 3. Budgeted chase: may prove, refute, or give up (the combined
    // problem is undecidable in general).
    let chase = FdIndChase::new(spec.constraints.schema(), &sigma)?;
    match chase.implies(&target, ChaseBudget::default())? {
        ChaseOutcome::Proved { rounds } => {
            println!("implied (chase proof in {rounds} rounds)");
            Ok(ExitCode::SUCCESS)
        }
        ChaseOutcome::Disproved { .. } => {
            println!("not implied (chase countermodel found)");
            Ok(ExitCode::FAILURE)
        }
        ChaseOutcome::Exhausted => {
            println!(
                "unknown (chase budget exhausted; FD+IND implication is undecidable in general)"
            );
            Ok(ExitCode::FAILURE)
        }
    }
}

fn keys(path: &str, rel: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let spec = load(path)?;
    let scheme = spec
        .constraints
        .schema()
        .require(&RelName::new(rel))?
        .clone();
    let (fds, _, _, _) = spec.constraints.partition();
    let engine = FdEngine::new(rel, &fds);
    for key in engine.candidate_keys(&scheme) {
        let names: Vec<&str> = key.iter().map(|a| a.name()).collect();
        println!("key: {{{}}}", names.join(", "));
    }
    Ok(ExitCode::SUCCESS)
}

fn design(path: &str, rel: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let spec = load(path)?;
    let scheme = spec
        .constraints
        .schema()
        .require(&RelName::new(rel))?
        .clone();
    let (all_fds, _, _, _) = spec.constraints.partition();
    let fds: Vec<Fd> = all_fds
        .into_iter()
        .filter(|f| f.rel.name() == rel)
        .collect();
    let engine = FdEngine::new(rel, &fds);

    println!("relation: {scheme}");
    println!("BCNF: {}", is_bcnf(&engine, &scheme));

    println!("3NF synthesis:");
    for frag in threenf_synthesis(&fds, &scheme) {
        println!("  {}   embeds via {}", frag.scheme, frag.embedding);
    }
    println!("BCNF decomposition:");
    for frag in bcnf_decompose(&fds, &scheme) {
        println!("  {}   embeds via {}", frag.scheme, frag.embedding);
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("depkit-test-{name}-{}.dep", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const HR: &str = "\
schema EMP(NAME, DEPT)
schema MGR(NAME, DEPT)
dep MGR[NAME, DEPT] <= EMP[NAME, DEPT]
dep EMP: NAME -> DEPT
row EMP hilbert math
row MGR hilbert math
";

    #[test]
    fn check_consistent_spec() {
        let path = write_temp("ok", HR);
        let code = run(&["check".into(), path.clone()]).unwrap();
        assert_eq!(code, ExitCode::SUCCESS);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn check_detects_violations() {
        let bad = format!("{HR}row MGR ghost cs\n");
        let path = write_temp("bad", &bad);
        let code = run(&["check".into(), path.clone()]).unwrap();
        assert_eq!(code, ExitCode::FAILURE);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn implies_answers_exactly_on_acyclic_specs() {
        let path = write_temp("imp", HR);
        let yes = run(&[
            "implies".into(),
            path.clone(),
            "MGR[NAME] <= EMP[NAME]".into(),
        ])
        .unwrap();
        assert_eq!(yes, ExitCode::SUCCESS);
        let no = run(&[
            "implies".into(),
            path.clone(),
            "EMP[NAME] <= MGR[NAME]".into(),
        ])
        .unwrap();
        assert_eq!(no, ExitCode::FAILURE);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn keys_and_design_run() {
        let path = write_temp("keys", HR);
        assert_eq!(
            run(&["keys".into(), path.clone(), "EMP".into()]).unwrap(),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&["design".into(), path.clone(), "EMP".into()]).unwrap(),
            ExitCode::SUCCESS
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn validate_streams_deltas() {
        let spec_path = write_temp("val-spec", HR);
        // Break the IND, then repair it: final state is consistent.
        let good = "\
insert MGR ghost cs
commit
insert EMP ghost cs
commit
";
        let deltas_path = write_temp("val-good", good);
        // write_temp appends .dep; reuse it for the delta script.
        assert_eq!(
            run(&["validate".into(), spec_path.clone(), deltas_path.clone()]).unwrap(),
            ExitCode::SUCCESS
        );
        // Ending on the broken state exits 1.
        let bad = "insert MGR ghost cs\n";
        let bad_path = write_temp("val-bad", bad);
        assert_eq!(
            run(&["validate".into(), spec_path.clone(), bad_path.clone()]).unwrap(),
            ExitCode::FAILURE
        );
        for p in [spec_path, deltas_path, bad_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn discover_mines_the_running_example() {
        let path = write_temp("disc", HR);
        assert_eq!(
            run(&["discover".into(), path.clone()]).unwrap(),
            ExitCode::SUCCESS
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn discover_accepts_a_thread_count() {
        let path = write_temp("disc-threads", HR);
        for n in ["1", "2", "0"] {
            assert_eq!(
                run(&[
                    "discover".into(),
                    path.clone(),
                    "--threads".into(),
                    n.into()
                ])
                .unwrap(),
                ExitCode::SUCCESS
            );
        }
        // A non-numeric thread count is a usage error (exit 2 via main).
        assert!(run(&[
            "discover".into(),
            path.clone(),
            "--threads".into(),
            "lots".into()
        ])
        .is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn discover_accepts_a_memory_budget_and_spill_dir() {
        let path = write_temp("disc-budget", HR);
        let spill = std::env::temp_dir().join(format!("depkit-cli-spill-{}", std::process::id()));
        // A 1-byte budget forces the disk path on any nonempty spec; the
        // mined cover is identical regardless (printed output aside, the
        // exit code is the observable here).
        assert_eq!(
            run(&[
                "discover".into(),
                path.clone(),
                "--memory-budget".into(),
                "1".into(),
                "--spill-dir".into(),
                spill.to_string_lossy().into_owned(),
                "--stats".into(),
            ])
            .unwrap(),
            ExitCode::SUCCESS
        );
        // Human byte forms parse; unbounded budget with --stats also runs.
        for budget in ["512M", "64kb", "2G", "0"] {
            assert_eq!(
                run(&[
                    "discover".into(),
                    path.clone(),
                    "--memory-budget".into(),
                    budget.into(),
                    "--stats".into(),
                ])
                .unwrap(),
                ExitCode::SUCCESS
            );
        }
        // Malformed budgets and unknown flags are usage errors.
        assert!(run(&[
            "discover".into(),
            path.clone(),
            "--memory-budget".into(),
            "lots".into()
        ])
        .is_err());
        assert!(run(&["discover".into(), path.clone(), "--bogus".into()]).is_err());
        std::fs::remove_file(path).ok();
        std::fs::remove_dir_all(spill).ok();
    }

    #[test]
    fn discover_parses_a_worker_count() {
        let opts = parse_discover_opts(&["--workers".into(), "4".into()]).unwrap();
        assert_eq!(opts.workers, 4);
        let opts = parse_discover_opts(&[]).unwrap();
        assert_eq!(opts.workers, 0);
        assert!(parse_discover_opts(&["--workers".into(), "many".into()]).is_err());
        assert!(parse_discover_opts(&["--workers".into()]).is_err());
    }

    #[test]
    fn parse_bytes_handles_human_suffixes() {
        assert_eq!(parse_bytes("1234").unwrap(), 1234);
        assert_eq!(parse_bytes("64K").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("512M").unwrap(), 512 << 20);
        assert_eq!(parse_bytes("2g").unwrap(), 2 << 30);
        assert_eq!(parse_bytes("8kb").unwrap(), 8 << 10);
        // A bare B counts plain bytes; fractional counts take a unit.
        assert_eq!(parse_bytes("12B").unwrap(), 12);
        assert_eq!(parse_bytes("1.5G").unwrap(), 3 << 29);
        assert_eq!(parse_bytes("12.5K").unwrap(), 12_800);
        assert_eq!(parse_bytes("0.5mb").unwrap(), 1 << 19);
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("12X").is_err());
        assert!(parse_bytes("M").is_err());
        assert!(parse_bytes("1.2.3K").is_err());
        assert!(parse_bytes(".5G").is_err());
        assert!(parse_bytes("1.G").is_err());
        // A unitless fraction is ambiguous; the error says what to do.
        let e = parse_bytes("12.5").unwrap_err();
        assert!(e.contains("unit suffix"), "got: {e}");
    }

    #[test]
    fn parse_error_tolerance_accepts_fractions_and_percentages() {
        assert_eq!(parse_error_tolerance("0.05").unwrap(), 0.05);
        assert_eq!(parse_error_tolerance("0").unwrap(), 0.0);
        assert!((parse_error_tolerance("5%").unwrap() - 0.05).abs() < 1e-12);
        assert!((parse_error_tolerance("0.5%").unwrap() - 0.005).abs() < 1e-12);
        assert!(parse_error_tolerance("1").is_err(), "1 is out of range");
        assert!(parse_error_tolerance("100%").is_err());
        assert!(parse_error_tolerance("-0.1").is_err());
        assert!(parse_error_tolerance("lots").is_err());
        assert!(parse_error_tolerance("%").is_err());
        let e = parse_error_tolerance("1.5").unwrap_err();
        assert!(e.contains("[0, 1)"), "got: {e}");
    }

    #[test]
    fn discover_accepts_a_tolerance_and_top_k() {
        let opts = parse_discover_opts(&[
            "--max-error".into(),
            "5%".into(),
            "--top-k".into(),
            "3".into(),
        ])
        .unwrap();
        assert!((opts.max_error - 0.05).abs() < 1e-12);
        assert_eq!(opts.top_k, 3);
        assert!(parse_discover_opts(&["--max-error".into(), "2".into()]).is_err());
        assert!(parse_discover_opts(&["--top-k".into(), "few".into()]).is_err());
        // End to end on a dirtied spec: the declared FD is only
        // approximately satisfied, and the run still exits 0.
        let dirty = format!("{HR}row EMP hilbert cs\nrow MGR hilbert cs\n");
        let path = write_temp("disc-approx", &dirty);
        assert_eq!(
            run(&[
                "discover".into(),
                path.clone(),
                "--max-error".into(),
                "0.5".into(),
                "--top-k".into(),
                "5".into(),
            ])
            .unwrap(),
            ExitCode::SUCCESS
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn usage_error_on_bad_args() {
        assert_eq!(run(&[]).unwrap(), ExitCode::from(2));
        assert_eq!(run(&["bogus".into()]).unwrap(), ExitCode::from(2));
    }

    #[test]
    fn client_subcommand_drives_a_live_server() {
        let spec = parse_spec(HR).unwrap();
        let sigma = spec.constraints.dependencies().to_vec();
        let cat = depkit_solver::incremental::CatalogState::new(spec.constraints.schema(), &sigma)
            .unwrap();
        cat.seed(&spec.database).unwrap();
        let server =
            depkit_serve::Server::start(cat, "127.0.0.1:0", depkit_serve::ServeConfig::default())
                .unwrap();
        let addr = server.local_addr().to_string();
        let script = "{\"cmd\":\"begin\"}\n{\"cmd\":\"query\"}\n{\"cmd\":\"abort\"}\n";
        let script_path = write_temp("client-script", script);
        assert_eq!(
            run(&["client".into(), addr, script_path.clone()]).unwrap(),
            ExitCode::SUCCESS
        );
        std::fs::remove_file(script_path).ok();
        server.stop().unwrap();
    }

    #[test]
    fn client_health_reports_live_satisfaction() {
        // Seeded consistent: health exits 0. After a commit breaks the
        // IND, the one-shot health query exits 1.
        let spec = parse_spec(HR).unwrap();
        let sigma = spec.constraints.dependencies().to_vec();
        let cat = depkit_solver::incremental::CatalogState::new(spec.constraints.schema(), &sigma)
            .unwrap();
        cat.seed(&spec.database).unwrap();
        let server =
            depkit_serve::Server::start(cat, "127.0.0.1:0", depkit_serve::ServeConfig::default())
                .unwrap();
        let addr = server.local_addr().to_string();
        assert_eq!(
            run(&["client".into(), addr.clone(), "health".into()]).unwrap(),
            ExitCode::SUCCESS
        );
        let break_it = "{\"cmd\":\"begin\"}\n\
                        {\"cmd\":\"insert\",\"rel\":\"MGR\",\"row\":[\"ghost\",\"cs\"]}\n\
                        {\"cmd\":\"commit\"}\n";
        let script_path = write_temp("health-break", break_it);
        run(&["client".into(), addr.clone(), script_path.clone()]).unwrap();
        assert_eq!(
            run(&["client".into(), addr, "health".into()]).unwrap(),
            ExitCode::FAILURE
        );
        std::fs::remove_file(script_path).ok();
        server.stop().unwrap();
    }
}
