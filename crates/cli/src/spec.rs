//! The `.dep` spec file format: schema, dependencies, and data in one
//! plain-text file.
//!
//! ```text
//! # comments start with '#'; blank lines are ignored
//! schema EMP(NAME, DEPT)
//! schema MGR(NAME, DEPT)
//!
//! dep MGR[NAME, DEPT] <= EMP[NAME, DEPT]
//! dep EMP: NAME -> DEPT
//!
//! row EMP hilbert math
//! row MGR hilbert math
//! ```
//!
//! `row` entries are whitespace-separated values; an entry parses as an
//! integer when it looks like one, otherwise as a string.
//!
//! The `validate` subcommand additionally reads a *delta script* — the
//! streaming-mutation companion format parsed by [`parse_deltas`]:
//!
//! ```text
//! insert EMP noether math    # queue an insertion
//! delete MGR hilbert math    # queue a deletion
//! commit                     # apply the batch, report violations
//! ```
//!
//! `commit` ends a batch; trailing operations form a final implicit batch.

use depkit_core::constraint::ConstraintSet;
use depkit_core::delta::Delta;
use depkit_core::prelude::*;
use depkit_core::schema::RelationScheme;

/// A parsed spec file: constraints plus the optional inline database.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Schema + dependencies.
    pub constraints: ConstraintSet,
    /// The inline database (empty when the file has no `row` lines).
    pub database: Database,
}

/// A parse error with its line number (1-based) and the offending text,
/// so a bad line in a long script is diagnosable from the message alone.
#[derive(Debug)]
pub struct SpecError {
    /// 1-based line number (0 for whole-file errors with no single line).
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// The offending line, trimmed (empty for whole-file errors).
    pub text: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if !self.text.is_empty() {
            write!(f, " (in `{}`)", self.text)?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, text: &str, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
        text: text.trim().to_owned(),
    }
}

/// Parse a spec from text.
pub fn parse_spec(text: &str) -> Result<Spec, SpecError> {
    let mut schemes: Vec<RelationScheme> = Vec::new();
    let mut deps: Vec<(usize, String, Dependency)> = Vec::new();
    let mut rows: Vec<(usize, String, String, Vec<Value>)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "schema" => {
                let scheme = depkit_core::parser::parse_scheme(rest)
                    .map_err(|e| err(line_no, line, e.to_string()))?;
                schemes.push(scheme);
            }
            "dep" => {
                let dep: Dependency = rest
                    .parse()
                    .map_err(|e: CoreError| err(line_no, line, e.to_string()))?;
                deps.push((line_no, line.to_owned(), dep));
            }
            "row" => {
                let mut parts = rest.split_whitespace();
                let rel = parts
                    .next()
                    .ok_or_else(|| err(line_no, line, "row needs a relation name"))?
                    .to_string();
                rows.push((line_no, line.to_owned(), rel, parse_values(parts)));
            }
            other => {
                return Err(err(
                    line_no,
                    line,
                    format!("unknown directive `{other}` (expected schema/dep/row)"),
                ))
            }
        }
    }

    let schema = DatabaseSchema::new(schemes).map_err(|e| err(0, "", e.to_string()))?;
    let mut constraints =
        ConstraintSet::new(schema.clone(), Vec::new()).map_err(|e| err(0, "", e.to_string()))?;
    for (line_no, text, dep) in deps {
        constraints
            .push(dep)
            .map_err(|e| err(line_no, &text, e.to_string()))?;
    }
    let mut database = Database::empty(schema);
    for (line_no, text, rel, values) in rows {
        database
            .insert(&RelName::new(&rel), Tuple::new(values))
            .map_err(|e| err(line_no, &text, e.to_string()))?;
    }
    Ok(Spec {
        constraints,
        database,
    })
}

fn parse_values(parts: std::str::SplitWhitespace<'_>) -> Vec<Value> {
    parts
        .map(|p| match p.parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::str(p),
        })
        .collect()
}

/// Parse a delta script into mutation batches: `insert R v...` /
/// `delete R v...` lines, batches separated by `commit`. Trailing
/// operations without a final `commit` form a last batch; empty batches
/// (e.g. consecutive `commit` lines) are dropped. Everything from a `#`
/// to the end of the line is a comment (so values cannot contain `#`).
pub fn parse_deltas(text: &str) -> Result<Vec<Delta>, SpecError> {
    let mut batches: Vec<Delta> = Vec::new();
    let mut current = Delta::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let uncommented = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let line = uncommented.trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "commit" => {
                if !current.is_empty() {
                    batches.push(std::mem::take(&mut current));
                }
            }
            "insert" | "delete" => {
                let mut parts = rest.split_whitespace();
                let rel = parts
                    .next()
                    .ok_or_else(|| err(line_no, line, format!("{keyword} needs a relation name")))?
                    .to_string();
                let t = Tuple::new(parse_values(parts));
                if keyword == "insert" {
                    current.insert(rel.as_str(), t);
                } else {
                    current.delete(rel.as_str(), t);
                }
            }
            other => {
                return Err(err(
                    line_no,
                    line,
                    format!("unknown directive `{other}` (expected insert/delete/commit)"),
                ))
            }
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# example
schema EMP(NAME, DEPT)
schema MGR(NAME, DEPT)

dep MGR[NAME, DEPT] <= EMP[NAME, DEPT]
dep EMP: NAME -> DEPT

row EMP hilbert math
row EMP noether math
row MGR hilbert math
";

    #[test]
    fn parses_sample() {
        let spec = parse_spec(SAMPLE).unwrap();
        assert_eq!(spec.constraints.dependencies().len(), 2);
        assert_eq!(spec.database.total_tuples(), 3);
        assert!(spec.constraints.is_consistent(&spec.database).unwrap());
    }

    #[test]
    fn integer_values_parse_as_ints() {
        let spec = parse_spec("schema R(A, B)\nrow R 1 x\n").unwrap();
        let r = spec.database.relation(&RelName::new("R")).unwrap();
        let t = r.tuples().next().unwrap();
        assert_eq!(t.at(0), &Value::Int(1));
        assert_eq!(t.at(1), &Value::str("x"));
    }

    #[test]
    fn errors_carry_line_numbers_and_offending_text() {
        let e = parse_spec("schema R(A)\nbogus directive\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.text, "bogus directive");
        assert!(e.to_string().contains("(in `bogus directive`)"), "{e}");
        let e2 = parse_spec("schema R(A)\nrow R 1 2\n").unwrap_err();
        assert_eq!(e2.line, 2); // arity mismatch
        assert_eq!(e2.text, "row R 1 2");
        let e3 = parse_spec("schema R(A)\ndep S[A] <= R[A]\n").unwrap_err();
        assert_eq!(e3.line, 2); // unknown relation in dep
        assert_eq!(e3.text, "dep S[A] <= R[A]");
    }

    #[test]
    fn parses_delta_batches() {
        let script = "\
# warm-up
insert EMP noether math   # inline comments are stripped
delete MGR hilbert math
commit                    # batch boundary
commit
insert EMP banach 7
";
        let batches = parse_deltas(script).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].inserts.len(), 1);
        assert_eq!(batches[0].deletes.len(), 1);
        // Trailing ops without `commit` form a final batch.
        assert_eq!(batches[1].inserts.len(), 1);
        assert_eq!(
            batches[1].inserts[0].1,
            Tuple::new(vec![Value::str("banach"), Value::Int(7)])
        );
    }

    #[test]
    fn delta_errors_carry_line_numbers_and_offending_text() {
        let e = parse_deltas("insert R 1\nupsert R 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.text, "upsert R 2");
        assert!(e.to_string().contains("(in `upsert R 2`)"), "{e}");
        let e2 = parse_deltas("insert\n").unwrap_err();
        assert_eq!(e2.line, 1);
        assert_eq!(e2.text, "insert");
    }

    #[test]
    fn violations_detected() {
        let spec = parse_spec("schema R(A, B)\ndep R: A -> B\nrow R 1 2\nrow R 1 3\n").unwrap();
        let v = spec.constraints.validate(&spec.database).unwrap();
        assert_eq!(v.len(), 1);
    }
}
