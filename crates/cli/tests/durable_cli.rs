//! The crash-fault harness: real `depkit serve --data-dir` child
//! processes, aborted *by the server itself* at every `DEPKIT_CRASH`
//! injection point, restarted, and differentially compared — the
//! recovered server's `dump` and `health` must be byte-identical to an
//! in-process oracle server that applied exactly the acknowledged
//! batches once each.
//!
//! The client side is the real [`ResilientClient`]: when the crash eats
//! an ack, the harness retries the batch under its original token after
//! the restart, exactly as a production writer would — so these tests
//! also prove the token table survives recovery.

use depkit_core::dependency::Dependency;
use depkit_core::schema::DatabaseSchema;
use depkit_serve::{ResilientClient, RetryConfig, ServeConfig, Server};
use depkit_solver::incremental::CatalogState;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

const SPEC: &str = "\
schema EMP(NAME, DEPT)
schema DEPT(DNO)
dep EMP[DEPT] <= DEPT[DNO]
row DEPT math
row EMP hilbert math
";

fn tpath(tag: &str, suffix: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "depkit-durable-cli-{tag}-{}{suffix}",
        std::process::id()
    ))
}

struct ServeChild {
    child: Child,
    addr: String,
    recovered: Option<String>,
    _reader: BufReader<ChildStdout>,
}

/// Spawn `depkit serve --data-dir` and wait for its `serving ...` line,
/// collecting the `recovered: ...` line if one precedes it.
fn start_serve(spec: &PathBuf, dir: &PathBuf, crash: Option<&str>) -> ServeChild {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_depkit"));
    cmd.arg("serve")
        .arg(spec)
        .args(["--addr", "127.0.0.1:0"])
        .arg("--data-dir")
        .arg(dir)
        .args(["--fsync", "always", "--checkpoint-every", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(c) = crash {
        cmd.env("DEPKIT_CRASH", c);
    }
    let mut child = cmd.spawn().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut recovered = None;
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            panic!(
                "server exited before its serving line: {:?}",
                child.wait().unwrap()
            );
        }
        if line.starts_with("recovered:") {
            recovered = Some(line.trim().to_owned());
        }
        if let Some(rest) = line.split(" on ").nth(1) {
            if line.starts_with("serving ") {
                break rest.split_whitespace().next().unwrap().to_owned();
            }
        }
    };
    ServeChild {
        child,
        addr,
        recovered,
        _reader: reader,
    }
}

fn harness_client(addr: &str) -> ResilientClient {
    ResilientClient::with_retry(
        addr,
        "harness",
        RetryConfig {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
        },
    )
}

/// Deterministic batches: every batch inserts 1–3 `DEPT` rows and, on
/// odd batches, an `EMP` row referencing the seeded `math` department.
fn batches(seed: u64, count: usize) -> Vec<Vec<String>> {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..count)
        .map(|k| {
            let mut ops = Vec::new();
            for j in 0..=(next() % 3) {
                ops.push(format!(
                    r#"{{"cmd":"insert","rel":"DEPT","row":["d{k}-{j}-{}"]}}"#,
                    next() % 100
                ));
            }
            if k % 2 == 1 {
                ops.push(format!(
                    r#"{{"cmd":"insert","rel":"EMP","row":["e{k}","math"]}}"#
                ));
            }
            ops
        })
        .collect()
}

/// One-shot request against a live server, returning the raw reply line.
fn one_shot(addr: &str, cmd: &str) -> String {
    let mut out = Vec::new();
    depkit_serve::run_script(addr, cmd, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// Run the full crash/recover/differential cycle for one injection
/// point. The crash is armed to fire during the second client batch (the
/// seed checkpoint is occurrence 1 for the checkpoint points); the
/// harness then restarts the server, retries the orphaned batch under
/// its original token, finishes the schedule, and diffs `dump` +
/// `health` byte-for-byte against an oracle server that applied exactly
/// the acknowledged batches.
fn crash_recover_differential(tag: &str, crash_spec: &str) {
    let spec = tpath(tag, ".dep");
    std::fs::write(&spec, SPEC).unwrap();
    let dir = tpath(tag, ".data");
    let _ = std::fs::remove_dir_all(&dir);

    let server = start_serve(&spec, &dir, Some(crash_spec));
    assert!(
        server
            .recovered
            .as_deref()
            .is_some_and(|r| r.ends_with("fresh=true")),
        "a fresh dir announces itself as fresh: {:?}",
        server.recovered
    );
    let mut client = harness_client(&server.addr);
    let all = batches(tag.len() as u64 + 1, 5);

    // Drive batches until the armed crash eats one.
    let mut acked = 0;
    let mut crashed = false;
    for batch in &all {
        match client.commit_batch(batch) {
            Ok(ack) => {
                assert!(!ack.replayed);
                acked += 1;
            }
            Err(_) => {
                crashed = true;
                break;
            }
        }
    }
    assert!(crashed, "{tag}: the armed crash never fired");
    let mut child = server.child;
    let status = child.wait().unwrap();
    assert!(
        !status.success(),
        "{tag}: the server must have died by abort, got {status:?}"
    );

    // Restart: recovery must report, and the orphaned batch must replay
    // (every injection point fires after the WAL append, so the commit
    // was durable even though its ack never arrived).
    let server2 = start_serve(&spec, &dir, None);
    let recovered = server2
        .recovered
        .as_deref()
        .unwrap_or_else(|| panic!("{tag}: restart must print a recovery line"));
    assert!(
        recovered.starts_with("recovered: checkpoint_gen="),
        "{tag}: {recovered}"
    );
    client.reconnect_to(&server2.addr);
    let ack = client.commit_batch(&all[acked]).unwrap();
    assert!(
        ack.replayed,
        "{tag}: the orphaned batch was durable; the retry must hit the \
         recovered token table, not re-apply (ack: {ack:?})"
    );
    for batch in &all[acked + 1..] {
        assert!(!client.commit_batch(batch).unwrap().replayed);
    }

    // The oracle: an in-process, in-memory server fed the seed plus
    // every batch exactly once.
    let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
    let sigma: Vec<Dependency> = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
    let cat = CatalogState::new(&schema, &sigma).unwrap();
    let oracle = Server::start(cat, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let oracle_addr = oracle.local_addr().to_string();
    let mut feeder = harness_client(&oracle_addr);
    feeder
        .commit_batch(&[
            r#"{"cmd":"insert","rel":"DEPT","row":["math"]}"#.to_owned(),
            r#"{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}"#.to_owned(),
        ])
        .unwrap();
    for batch in &all {
        feeder.commit_batch(batch).unwrap();
    }

    // The headline invariant: recovered state is byte-identical to the
    // oracle's — rows, generation, and live health counters.
    assert_eq!(
        one_shot(&server2.addr, r#"{"cmd":"dump"}"#),
        one_shot(&oracle_addr, r#"{"cmd":"dump"}"#),
        "{tag}: recovered dump diverged from the acked-commit oracle"
    );
    assert_eq!(
        one_shot(&server2.addr, r#"{"cmd":"health"}"#),
        one_shot(&oracle_addr, r#"{"cmd":"health"}"#),
        "{tag}: recovered health diverged from the acked-commit oracle"
    );

    let mut child2 = server2.child;
    child2.kill().ok();
    child2.wait().ok();
    oracle.stop().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn crash_after_wal_write_recovers_to_the_oracle() {
    // Occurrence 2: the seed bypasses the WAL, so appends count client
    // batches — the crash lands inside the second batch's commit.
    crash_recover_differential("wal-write", "after-wal-write:2");
}

#[test]
fn crash_before_ack_recovers_to_the_oracle() {
    crash_recover_differential("before-ack", "before-ack:2");
}

#[test]
fn crash_mid_checkpoint_recovers_to_the_oracle() {
    // Occurrence 2: the fresh-dir seed checkpoint is occurrence 1; with
    // `--checkpoint-every 2` the second client batch triggers the next
    // checkpoint, which aborts between the tmp write and the rename.
    crash_recover_differential("mid-ckpt", "mid-checkpoint:2");
}

#[test]
fn crash_after_checkpoint_rename_recovers_to_the_oracle() {
    // Aborts after the checkpoint is published but before the WAL is
    // reset — recovery must skip replaying frames the checkpoint
    // already holds.
    crash_recover_differential("post-ckpt", "after-checkpoint-rename:2");
}

#[test]
fn a_hard_kill_while_idle_restarts_cleanly() {
    let spec = tpath("kill", ".dep");
    std::fs::write(&spec, SPEC).unwrap();
    let dir = tpath("kill", ".data");
    let _ = std::fs::remove_dir_all(&dir);

    let server = start_serve(&spec, &dir, None);
    let mut client = harness_client(&server.addr);
    for batch in batches(99, 3) {
        client.commit_batch(&batch).unwrap();
    }
    let before = one_shot(&server.addr, r#"{"cmd":"dump"}"#);
    let mut child = server.child;
    child.kill().unwrap();
    child.wait().unwrap();

    let server2 = start_serve(&spec, &dir, None);
    assert!(server2.recovered.is_some(), "a restart reports recovery");
    assert_eq!(
        one_shot(&server2.addr, r#"{"cmd":"dump"}"#),
        before,
        "state survives SIGKILL byte-for-byte"
    );
    let mut child2 = server2.child;
    child2.kill().ok();
    child2.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&spec).ok();
}
