//! End-to-end tests of `depkit discover --workers N` with *real* child
//! processes: the coordinator spawns `depkit shard-worker` children of
//! the actual binary, so these exercise the cross-process path the
//! in-process (thread-backed) differential suites cannot — process
//! startup, spec re-parsing in a separate address space, `DEPKIT_FAULT`
//! arriving through the environment, and child reaping.

use std::path::PathBuf;
use std::process::Command;

fn depkit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_depkit"))
}

const SPEC: &str = "\
schema EMP(NAME, DEPT, MGR)
schema DEPT(DNO, HEAD)
row EMP hilbert math klein
row EMP noether math klein
row EMP curie phys curie
row DEPT math klein
row DEPT phys curie
";

fn write_spec(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("depkit-shard-cli-{tag}-{}.dep", std::process::id()));
    std::fs::write(&path, SPEC).unwrap();
    path
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "command failed: status {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn sharded_discover_output_is_byte_identical_to_local() {
    let spec = write_spec("ident");
    let local = run_ok(depkit().arg("discover").arg(&spec));
    for workers in ["2", "3"] {
        let sharded = run_ok(
            depkit()
                .arg("discover")
                .arg(&spec)
                .args(["--workers", workers]),
        );
        assert_eq!(
            local, sharded,
            "--workers {workers} output diverged from local"
        );
    }
    std::fs::remove_file(spec).ok();
}

#[test]
fn killed_process_worker_retries_to_the_identical_cover() {
    let spec = write_spec("fault");
    let local = run_ok(depkit().arg("discover").arg(&spec));
    let sharded = run_ok(
        depkit()
            .arg("discover")
            .arg(&spec)
            .args(["--workers", "2", "--stats"])
            .env("DEPKIT_FAULT", "kill:profile:0"),
    );
    // The dep lines (the cover) must match local exactly despite the
    // mid-run worker death...
    let deps = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.starts_with("dep "))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(deps(&local), deps(&sharded));
    // ...and the coordinator counters must show the retry path ran.
    let shard_line = sharded
        .lines()
        .find(|l| l.starts_with("shard: "))
        .expect("--stats prints a shard: line in sharded mode");
    assert!(
        !shard_line.contains(" 0 retried, 0 reassigned"),
        "the injected kill should surface as a retry or reassignment: {shard_line}"
    );
    std::fs::remove_file(spec).ok();
}

#[test]
fn malformed_fault_plan_is_a_usage_error() {
    let spec = write_spec("badfault");
    let out = depkit()
        .arg("shard-worker")
        .arg(&spec)
        .args(["--connect", "127.0.0.1:9"])
        .env("DEPKIT_FAULT", "explode:everywhere")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DEPKIT_FAULT"), "got: {stderr}");
    std::fs::remove_file(spec).ok();
}
