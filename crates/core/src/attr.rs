//! Attributes and attribute sequences.
//!
//! The paper (Section 2) defines relation schemes over *sequences* of
//! attributes, and both sides of every dependency are sequences of
//! **distinct** attributes. [`AttrSeq`] enforces the distinctness invariant
//! at construction time so the rest of the workspace can rely on it.

use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An attribute name.
///
/// Attributes are cheap to clone (shared, immutable string) and are compared,
/// ordered, and hashed by name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Create an attribute with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Attr(Arc::from(name.as_ref()))
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The shared backing string (cheap `Arc` handle for the interner).
    pub(crate) fn shared(&self) -> &Arc<str> {
        &self.0
    }

    /// Build an attribute from an already-shared string without copying.
    pub(crate) fn from_shared(s: Arc<str>) -> Self {
        Attr(s)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr::new(s)
    }
}

/// A sequence of **distinct** attributes, as used on either side of an FD,
/// IND, or RD, and as the attribute list of a relation scheme.
///
/// The distinctness invariant is established by [`AttrSeq::new`] and
/// preserved by every method. `AttrSeq` dereferences to `[Attr]` so slice
/// methods are available directly.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "Vec<Attr>", into = "Vec<Attr>")]
pub struct AttrSeq(Vec<Attr>);

impl AttrSeq {
    /// Create an attribute sequence, checking that all attributes are
    /// distinct.
    pub fn new(attrs: Vec<Attr>) -> Result<Self, CoreError> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(CoreError::DuplicateAttribute(a.name().to_owned()));
            }
        }
        Ok(AttrSeq(attrs))
    }

    /// Create an attribute sequence from names, checking distinctness.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Result<Self, CoreError> {
        Self::new(names.iter().map(|n| Attr::new(n.as_ref())).collect())
    }

    /// The empty attribute sequence (used, e.g., for FDs with an empty
    /// left-hand side, which assert that the right-hand side is constant).
    pub fn empty() -> Self {
        AttrSeq(Vec::new())
    }

    /// The underlying attributes, in order.
    pub fn attrs(&self) -> &[Attr] {
        &self.0
    }

    /// Position of `attr` within this sequence, if present.
    pub fn position(&self, attr: &Attr) -> Option<usize> {
        self.0.iter().position(|a| a == attr)
    }

    /// Whether `attr` occurs in this sequence.
    pub fn contains_attr(&self, attr: &Attr) -> bool {
        self.0.contains(attr)
    }

    /// Whether every attribute of `self` occurs in `other` (set inclusion;
    /// order is ignored).
    pub fn subset_of(&self, other: &AttrSeq) -> bool {
        self.0.iter().all(|a| other.contains_attr(a))
    }

    /// Whether `self` and `other` contain the same attributes, ignoring
    /// order.
    pub fn same_set(&self, other: &AttrSeq) -> bool {
        self.len() == other.len() && self.subset_of(other)
    }

    /// Whether `self` and `other` share no attribute.
    pub fn disjoint_from(&self, other: &AttrSeq) -> bool {
        self.0.iter().all(|a| !other.contains_attr(a))
    }

    /// Concatenate two sequences. Fails if they share an attribute.
    pub fn concat(&self, other: &AttrSeq) -> Result<AttrSeq, CoreError> {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        AttrSeq::new(v)
    }

    /// The subsequence at the given positions. Positions must be distinct and
    /// in range; this is the `i_1, ..., i_k` selection of rule IND2.
    pub fn select(&self, positions: &[usize]) -> Result<AttrSeq, CoreError> {
        let mut v = Vec::with_capacity(positions.len());
        for &p in positions {
            let a = self.0.get(p).ok_or_else(|| CoreError::UnknownAttribute {
                relation: String::from("<sequence>"),
                attribute: format!("position {p}"),
            })?;
            v.push(a.clone());
        }
        AttrSeq::new(v)
    }

    /// A canonical (sorted) copy of this sequence. Useful as a set key.
    pub fn sorted(&self) -> AttrSeq {
        let mut v = self.0.clone();
        v.sort();
        AttrSeq(v)
    }

    /// Attributes of `self` that do not occur in `other`, in order.
    pub fn minus(&self, other: &AttrSeq) -> AttrSeq {
        AttrSeq(
            self.0
                .iter()
                .filter(|a| !other.contains_attr(a))
                .cloned()
                .collect(),
        )
    }
}

impl Deref for AttrSeq {
    type Target = [Attr];
    fn deref(&self) -> &[Attr] {
        &self.0
    }
}

impl fmt::Display for AttrSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl TryFrom<Vec<Attr>> for AttrSeq {
    type Error = CoreError;
    fn try_from(v: Vec<Attr>) -> Result<Self, CoreError> {
        AttrSeq::new(v)
    }
}

impl From<AttrSeq> for Vec<Attr> {
    fn from(s: AttrSeq) -> Vec<Attr> {
        s.0
    }
}

impl<'a> IntoIterator for &'a AttrSeq {
    type Item = &'a Attr;
    type IntoIter = std::slice::Iter<'a, Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Shorthand for building an [`AttrSeq`] from string literals in tests and
/// examples. Panics on duplicates, so only use with literal input.
pub fn attrs<S: AsRef<str>>(names: &[S]) -> AttrSeq {
    AttrSeq::from_names(names).expect("attribute names must be distinct")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinctness_enforced() {
        assert!(AttrSeq::from_names(&["A", "B", "A"]).is_err());
        assert!(AttrSeq::from_names(&["A", "B", "C"]).is_ok());
    }

    #[test]
    fn empty_sequence_allowed() {
        let e = AttrSeq::empty();
        assert_eq!(e.len(), 0);
        assert!(e.subset_of(&attrs(&["A"])));
    }

    #[test]
    fn select_positions() {
        let s = attrs(&["A", "B", "C", "D"]);
        let t = s.select(&[2, 0]).unwrap();
        assert_eq!(t.attrs(), &[Attr::new("C"), Attr::new("A")]);
        assert!(s.select(&[4]).is_err());
    }

    #[test]
    fn select_rejects_duplicate_positions() {
        let s = attrs(&["A", "B"]);
        assert!(s.select(&[0, 0]).is_err());
    }

    #[test]
    fn set_operations() {
        let x = attrs(&["A", "B"]);
        let y = attrs(&["B", "A"]);
        let z = attrs(&["C"]);
        assert!(x.same_set(&y));
        assert!(!x.same_set(&z));
        assert!(x.disjoint_from(&z));
        assert!(!x.disjoint_from(&y));
        assert_eq!(x.concat(&z).unwrap().len(), 3);
        assert!(x.concat(&y).is_err());
    }

    #[test]
    fn minus_preserves_order() {
        let x = attrs(&["A", "B", "C", "D"]);
        let y = attrs(&["B", "D"]);
        assert_eq!(x.minus(&y), attrs(&["A", "C"]));
    }

    #[test]
    fn display_roundtrip_shape() {
        let s = attrs(&["A", "B"]);
        assert_eq!(s.to_string(), "A, B");
    }
}
