//! Columnar (struct-of-arrays) storage: a [`Database`] compiled into one
//! dense `Vec<u32>` of interned value ids **per attribute**.
//!
//! The paper's checking problems are naturally *columnar*: IND satisfaction
//! is set containment of column projections, FD satisfaction is partition
//! refinement by columns. The row-major
//! [`CompiledRows`](crate::index::CompiledRows) representation pays a
//! pointer chase and a heap allocation per row and re-materializes every
//! projection per call; this module stores each relation
//! column-at-a-time, so the hot scans of the discovery engine, the
//! incremental validator's bulk index builds, and the Rule (*) chase
//! materialization walk contiguous `u32` runs at memory bandwidth.
//!
//! * [`ColumnStore`] — the whole database compiled once: a shared
//!   [`ValueInterner`] plus one [`RelationColumns`] per relation, in schema
//!   order. Interning is row-major (tuple by tuple), so ids coincide
//!   exactly with what [`CompiledRows`](crate::index::CompiledRows) would
//!   assign — the two representations are interchangeable views of the
//!   same id space, which is what the columnar-vs-rows differential tests
//!   pin down.
//! * [`RelationColumns`] — one relation's tuples as parallel columns, with
//!   cheap multi-column key gathers ([`ColumnCursor`]), a sort-based
//!   [`RelationColumns::group_by`], and a sorted-deduplicated per-column
//!   view ([`RelationColumns::sorted_distinct`]) that turns SPIDER-style
//!   unary IND discovery into merge work over sorted id runs.
//! * [`Refiner`] — the radix-style stripped-partition refinement scratch
//!   replacing the per-level `HashMap<u32, Vec<u32>>` of TANE `refine`:
//!   counting over the dense value-id domain with epoch stamping, zero
//!   hashing, zero clearing between classes.
//! * [`KeySet`] — a membership set of fixed-arity projection keys that
//!   packs short keys into machine words (`u64`/`u128`) so validating an
//!   IND candidate allocates nothing per row.

use crate::database::Database;
use crate::hashing::{FastMap, FastSet};
use crate::index::ValueInterner;
use crate::spill::{self, DistinctStream, SpillDir, SpillStats};
use std::io;
use std::sync::Arc;

/// Rows per sealed chunk of a [`ChunkedColumn`]. Small enough that the
/// copy-on-write clone triggered by mutating a shared sealed chunk stays
/// cheap, large enough that a snapshot of an `n`-row column clones only
/// `n / 1024` [`Arc`]s.
pub const CHUNK_ROWS: usize = 1024;

/// An append-mostly column of `Copy` cells split into `Arc`-shared sealed
/// chunks plus a mutable tail — the copy-on-write storage unit of the
/// snapshot-isolated catalog.
///
/// The write side ([`ChunkedColumn::push`] / [`ChunkedColumn::set`]) is
/// single-owner, exactly like a `Vec`. What changes is the *read* side:
/// [`ChunkedColumn::snapshot`] produces a [`ChunkedColumnSnapshot`] in
/// `O(len / CHUNK_ROWS)` — it clones the `Arc` per sealed chunk and copies
/// the short tail — and that snapshot stays byte-stable forever:
///
/// * later [`push`](ChunkedColumn::push)es land in the tail (or a fresh
///   chunk), which the snapshot copied;
/// * later [`set`](ChunkedColumn::set)s on a sealed chunk go through
///   [`Arc::make_mut`], so a chunk still referenced by any snapshot is
///   cloned before mutation (copy-on-write) and the snapshot keeps the
///   pre-write cells.
///
/// The catalog stores committed rows this way (one column per attribute
/// plus birth/death generation columns): appends are commits, in-place
/// `set`s only ever touch the death-generation column, and readers scan
/// their pinned snapshot without any lock.
#[derive(Debug, Clone, Default)]
pub struct ChunkedColumn<T: Copy> {
    sealed: Vec<Arc<Vec<T>>>,
    tail: Vec<T>,
}

impl<T: Copy> ChunkedColumn<T> {
    /// An empty column.
    pub fn new() -> Self {
        ChunkedColumn {
            sealed: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.sealed.len() * CHUNK_ROWS + self.tail.len()
    }

    /// Whether the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Append a cell; seals the tail into an `Arc` chunk when it fills.
    pub fn push(&mut self, v: T) {
        self.tail.push(v);
        if self.tail.len() == CHUNK_ROWS {
            let chunk = std::mem::replace(&mut self.tail, Vec::with_capacity(CHUNK_ROWS));
            self.sealed.push(Arc::new(chunk));
        }
    }

    /// The cell at `i` (panics when out of bounds).
    pub fn get(&self, i: usize) -> T {
        let (c, o) = (i / CHUNK_ROWS, i % CHUNK_ROWS);
        if c < self.sealed.len() {
            self.sealed[c][o]
        } else {
            self.tail[i - self.sealed.len() * CHUNK_ROWS]
        }
    }

    /// Overwrite the cell at `i`. A sealed chunk still shared with a
    /// snapshot is cloned first ([`Arc::make_mut`]), so existing snapshots
    /// keep the pre-write value — this is the copy-on-write edge.
    pub fn set(&mut self, i: usize, v: T) {
        let (c, o) = (i / CHUNK_ROWS, i % CHUNK_ROWS);
        if c < self.sealed.len() {
            Arc::make_mut(&mut self.sealed[c])[o] = v;
        } else {
            self.tail[i - self.sealed.len() * CHUNK_ROWS] = v;
        }
    }

    /// A frozen view of the current cells: `Arc` clones of the sealed
    /// chunks plus a copy of the tail. `O(len / CHUNK_ROWS + tail)`.
    pub fn snapshot(&self) -> ChunkedColumnSnapshot<T> {
        ChunkedColumnSnapshot {
            sealed: self.sealed.clone(),
            tail: self.tail.clone(),
        }
    }
}

/// A frozen view of a [`ChunkedColumn`]: immutable, cheaply cloneable, and
/// unaffected by any later write to the column it was taken from.
#[derive(Debug, Clone)]
pub struct ChunkedColumnSnapshot<T: Copy> {
    sealed: Vec<Arc<Vec<T>>>,
    tail: Vec<T>,
}

impl<T: Copy> ChunkedColumnSnapshot<T> {
    /// Number of cells the snapshot captured.
    pub fn len(&self) -> usize {
        self.sealed.len() * CHUNK_ROWS + self.tail.len()
    }

    /// Whether the snapshot captured no cells.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// The cell at `i` as of snapshot time (panics when out of bounds).
    pub fn get(&self, i: usize) -> T {
        let (c, o) = (i / CHUNK_ROWS, i % CHUNK_ROWS);
        if c < self.sealed.len() {
            self.sealed[c][o]
        } else {
            self.tail[i - self.sealed.len() * CHUNK_ROWS]
        }
    }

    /// Iterate the captured cells in index order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.sealed
            .iter()
            .flat_map(|c| c.iter().copied())
            .chain(self.tail.iter().copied())
    }
}

/// The spill plan for one column's distinct sweep: where runs go and how
/// many bytes of in-memory distinct state the column is allowed before it
/// goes external. Produced by the discovery pipeline from its global
/// `memory_budget`; consumed by
/// [`RelationColumns::sorted_distinct_stream`].
#[derive(Debug, Clone, Copy)]
pub struct ColumnSpill<'a> {
    /// Scratch directory the sorted runs are written into.
    pub dir: &'a SpillDir,
    /// This column's byte share of the discovery memory budget.
    pub share_bytes: usize,
}

/// One relation's tuples stored column-at-a-time: `columns[c][r]` is the
/// interned id of row `r`'s entry in attribute position `c`. All columns
/// have the same length ([`RelationColumns::row_count`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationColumns {
    rows: usize,
    columns: Vec<Vec<u32>>,
}

impl RelationColumns {
    /// Empty storage for a relation of the given arity.
    pub fn new(arity: usize) -> Self {
        RelationColumns {
            rows: 0,
            columns: vec![Vec::new(); arity],
        }
    }

    /// Empty storage with per-column capacity for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        RelationColumns {
            rows: 0,
            columns: vec![Vec::with_capacity(rows); arity],
        }
    }

    /// Append one row (panics unless `row.len()` equals the arity).
    pub fn push_row(&mut self, row: &[u32]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Whether the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of attribute positions.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The dense id run of one column.
    pub fn column(&self, c: usize) -> &[u32] {
        &self.columns[c]
    }

    /// All columns, in attribute order.
    pub fn columns(&self) -> &[Vec<u32>] {
        &self.columns
    }

    /// Gather row `r`'s entries at `cols` into `out` (cleared first).
    pub fn gather(&self, cols: &[usize], r: usize, out: &mut Vec<u32>) {
        out.clear();
        out.extend(cols.iter().map(|&c| self.columns[c][r]));
    }

    /// The distinct ids of one column, ascending — the sorted run SPIDER's
    /// unary pass merges over. Empty columns yield an empty run.
    ///
    /// Interned ids are dense, so this is a presence-bitmap sweep — two
    /// linear passes, no comparison sort.
    pub fn sorted_distinct(&self, c: usize) -> Vec<u32> {
        let col = &self.columns[c];
        let Some(&max) = col.iter().max() else {
            return Vec::new();
        };
        let mut present = vec![0u64; (max as usize + 1).div_ceil(64)];
        for &v in col {
            present[v as usize / 64] |= 1 << (v % 64);
        }
        let mut out = Vec::new();
        for (w, &word) in present.iter().enumerate() {
            let mut rest = word;
            while rest != 0 {
                out.push((w * 64) as u32 + rest.trailing_zeros());
                rest &= rest - 1;
            }
        }
        out
    }

    /// Bytes the in-memory [`RelationColumns::sorted_distinct`] sweep
    /// needs for a column of `rows` cells over a dense id domain of size
    /// `domain`: the presence bitmap plus the distinct output vector
    /// (at most `min(rows, domain)` ids).
    ///
    /// This estimate is the spill decision's only input, and it is
    /// deliberately a function of the *data alone* — never of thread
    /// count, timing, or actual allocator state — so whether a column
    /// spills is deterministic and `threads=1 == threads=N` holds
    /// byte-for-byte even when the disk path engages.
    pub fn distinct_bytes_estimate(rows: usize, domain: usize) -> usize {
        domain.div_ceil(8) + 4 * rows.min(domain)
    }

    /// The distinct ids of one column as a stream: the uniform entry point
    /// behind memory-budgeted discovery. Under budget (or with no spill
    /// plan) this is the in-memory [`RelationColumns::sorted_distinct`]
    /// sweep; over budget the column is written as sorted runs of at most
    /// `share_bytes / 8` ids each and merged back via
    /// [`RunMerger`](crate::spill::RunMerger). Both backings yield the
    /// identical ascending duplicate-free sequence.
    ///
    /// `domain` is the dense id domain size (the store's
    /// [`distinct_values`](ColumnStore::distinct_values)); `global_col`
    /// names the run files, so it must be unique per column within one
    /// [`SpillDir`].
    pub fn sorted_distinct_stream(
        &self,
        c: usize,
        domain: usize,
        global_col: usize,
        plan: Option<ColumnSpill<'_>>,
    ) -> io::Result<(DistinctStream, SpillStats)> {
        let mut stats = SpillStats::default();
        let col = &self.columns[c];
        if let Some(plan) = plan {
            if Self::distinct_bytes_estimate(col.len(), domain) > plan.share_bytes {
                let chunk_ids = (plan.share_bytes / 8).max(16);
                let set =
                    spill::write_sorted_runs(col, chunk_ids, plan.dir, global_col, &mut stats)?;
                let merger = spill::merge_run_set(&set, plan.dir, &mut stats)?;
                return Ok((DistinctStream::Spilled(merger), stats));
            }
        }
        Ok((
            DistinctStream::Mem(self.sorted_distinct(c).into_iter()),
            stats,
        ))
    }

    /// Group the rows by their key at `cols`: a sort-based partition of
    /// `0..row_count()` into classes of key-equal rows, classes ordered by
    /// key and rows ascending within each class — deterministic, no
    /// hashing. Singleton classes are kept; strip them with
    /// [`Refiner::refine_stripped`] when chasing FD violations only.
    pub fn group_by(&self, cols: &[usize]) -> Vec<Vec<u32>> {
        let n = self.rows;
        let mut order: Vec<u32> = (0..n as u32).collect();
        let key_cmp = |&a: &u32, &b: &u32| {
            cols.iter()
                .map(|&c| {
                    let col = &self.columns[c];
                    col[a as usize].cmp(&col[b as usize])
                })
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        };
        order.sort_unstable_by(key_cmp);
        let mut out: Vec<Vec<u32>> = Vec::new();
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n
                && cols.iter().all(|&c| {
                    self.columns[c][order[i] as usize] == self.columns[c][order[j] as usize]
                })
            {
                j += 1;
            }
            out.push(order[i..j].to_vec());
            i = j;
        }
        out
    }
}

/// A borrowed multi-column cursor: the selected column slices of one
/// relation, for repeated key gathers without re-indexing the column table
/// per row.
#[derive(Debug, Clone)]
pub struct ColumnCursor<'a> {
    sel: Vec<&'a [u32]>,
}

impl<'a> ColumnCursor<'a> {
    /// Select `cols` of `rel`.
    pub fn new(rel: &'a RelationColumns, cols: &[usize]) -> Self {
        ColumnCursor {
            sel: cols.iter().map(|&c| rel.column(c)).collect(),
        }
    }

    /// Number of selected columns.
    pub fn width(&self) -> usize {
        self.sel.len()
    }

    /// Write row `r`'s key into `out` (cleared first).
    pub fn fill(&self, r: usize, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.sel.iter().map(|col| col[r]));
    }
}

/// A whole [`Database`] compiled to columnar form: a shared
/// [`ValueInterner`] plus each relation's tuples as parallel id columns, in
/// schema order.
///
/// Like [`CompiledRows`](crate::index::CompiledRows), nothing is ever
/// released, so ids are dense (`0..interner().len()`) and stable for the
/// compilation's lifetime; per-value side tables (occurrence bit sets,
/// refinement scratch) may be addressed by id. Interning order is row-major
/// within each relation, in schema order — identical to `CompiledRows`, so
/// the two views assign the same id to the same value.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    interner: ValueInterner,
    relations: Vec<RelationColumns>,
}

impl ColumnStore {
    /// Compile every tuple of `db`, relation by relation in schema order.
    pub fn new(db: &Database) -> Self {
        let mut interner = ValueInterner::new();
        // Reserve the cell count — an upper bound on distinct values — so
        // the id table never rehashes mid-compilation.
        interner.reserve(
            db.relations()
                .iter()
                .map(|r| r.len() * r.scheme().arity())
                .sum(),
        );
        let relations = db
            .relations()
            .iter()
            .map(|r| {
                let mut cols = RelationColumns::with_capacity(r.scheme().arity(), r.len());
                for t in r.tuples() {
                    for (col, v) in cols.columns.iter_mut().zip(t.values()) {
                        col.push(interner.intern(v));
                    }
                    cols.rows += 1;
                }
                cols
            })
            .collect();
        ColumnStore {
            interner,
            relations,
        }
    }

    /// Assemble a store from an interner and pre-built columns, without a
    /// [`Database`] round trip. This is how synthetic at-scale workloads
    /// (the out-of-core discovery benches) build multi-10M-row stores: id
    /// columns are cheap dense `u32`s, while the equivalent `Database`
    /// would materialize every cell as a heap [`Value`](crate::Value).
    ///
    /// Contract (debug-asserted): every id in every column must resolve in
    /// `interner`, i.e. be `< interner.epoch()`.
    pub fn from_raw_parts(interner: ValueInterner, relations: Vec<RelationColumns>) -> Self {
        debug_assert!(
            relations
                .iter()
                .flat_map(|r| r.columns.iter().flatten())
                .all(|&id| (id as u64) < interner.epoch()),
            "column id outside the interner's id space"
        );
        ColumnStore {
            interner,
            relations,
        }
    }

    /// The shared value table. Ids are dense: `0..interner().len()`.
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// The columns of the relation at schema index `rel`.
    pub fn relation(&self, rel: usize) -> &RelationColumns {
        &self.relations[rel]
    }

    /// All relations' columns, in schema order.
    pub fn relations(&self) -> &[RelationColumns] {
        &self.relations
    }

    /// Number of relations (= number of schema schemes).
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Number of distinct values across the whole database — the size of
    /// the dense id domain every per-value side table is addressed by.
    pub fn distinct_values(&self) -> usize {
        self.interner.len()
    }

    /// Total number of rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.iter().map(RelationColumns::row_count).sum()
    }

    /// Streaming sorted-distinct view of one column (see
    /// [`RelationColumns::sorted_distinct_stream`]), with the dense id
    /// domain filled in from this store.
    pub fn sorted_distinct_stream(
        &self,
        rel: usize,
        c: usize,
        global_col: usize,
        plan: Option<ColumnSpill<'_>>,
    ) -> io::Result<(DistinctStream, SpillStats)> {
        self.relations[rel].sorted_distinct_stream(c, self.distinct_values(), global_col, plan)
    }
}

/// Radix-style stripped-partition refinement scratch over the dense value
/// id domain — the columnar replacement for TANE `refine`'s per-level
/// `HashMap<u32, Vec<u32>>`.
///
/// A *stripped partition* is the set of equivalence classes of rows under
/// projection to some columns, with singleton classes dropped (a singleton
/// can never witness an FD violation). Refining by one more column is a
/// counting pass per class: `count[v]` and `group[v]` are dense tables
/// indexed by value id, validity tracked by an epoch stamp so nothing is
/// cleared between classes. Zero hashing, zero allocation beyond the
/// output classes themselves.
#[derive(Debug, Clone)]
pub struct Refiner {
    count: Vec<u32>,
    group: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl Refiner {
    /// Scratch for value ids in `0..domain`.
    pub fn new(domain: usize) -> Self {
        Refiner {
            count: vec![0; domain],
            group: vec![0; domain],
            stamp: vec![0; domain],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// Grow the scratch to cover ids in `0..domain` (no-op when already
    /// large enough) — lets one scratch serve stores of different sizes.
    pub fn ensure_domain(&mut self, domain: usize) {
        if self.count.len() < domain {
            self.count.resize(domain, 0);
            self.group.resize(domain, 0);
            self.stamp.resize(domain, 0);
        }
    }

    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Refine a stripped partition by `column`, appending the refined
    /// classes to `out` in deterministic order: classes of the input in
    /// order, sub-classes by first row occurrence within each class.
    pub fn refine_into(&mut self, classes: &[Vec<u32>], column: &[u32], out: &mut Vec<Vec<u32>>) {
        for class in classes {
            let epoch = self.next_epoch();
            self.touched.clear();
            for &r in class {
                let v = column[r as usize] as usize;
                if self.stamp[v] != epoch {
                    self.stamp[v] = epoch;
                    self.count[v] = 1;
                    self.touched.push(v as u32);
                } else {
                    self.count[v] += 1;
                }
            }
            let base = out.len();
            for &v in &self.touched {
                let v = v as usize;
                if self.count[v] >= 2 {
                    self.group[v] = out.len() as u32;
                    out.push(Vec::with_capacity(self.count[v] as usize));
                }
            }
            if out.len() == base {
                continue; // every sub-class is a singleton
            }
            for &r in class {
                let v = column[r as usize] as usize;
                if self.count[v] >= 2 {
                    out[self.group[v] as usize].push(r);
                }
            }
        }
    }

    /// [`Refiner::refine_into`] returning a fresh partition.
    pub fn refine_stripped(&mut self, classes: &[Vec<u32>], column: &[u32]) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        self.refine_into(classes, column, &mut out);
        out
    }

    /// Whether every class agrees on `column` — i.e. the partition's
    /// defining columns functionally determine `column`.
    pub fn determines(classes: &[Vec<u32>], column: &[u32]) -> bool {
        classes.iter().all(|class| {
            let v = column[class[0] as usize];
            class[1..].iter().all(|&r| column[r as usize] == v)
        })
    }

    /// The g3 error of `X → column` against the stripped partition of `X`:
    /// the minimum number of rows to remove before the FD holds exactly.
    /// Per class that is `|class| −` (the highest multiplicity of a single
    /// `column` value in it) — singleton classes, stripped away, agree
    /// vacuously and contribute zero, so the stripped partition already
    /// carries everything the measure needs. Zero iff [`Refiner::determines`].
    ///
    /// g3 is monotone non-increasing as `X` grows (refining classes can
    /// only raise the per-class agreement), which is what lets the FD
    /// lattice walk keep its minimality and superkey pruning at any error
    /// threshold.
    pub fn g3_error(classes: &[Vec<u32>], column: &[u32]) -> u64 {
        let mut err = 0u64;
        let mut freq: FastMap<u32, u32> = FastMap::default();
        for class in classes {
            freq.clear();
            let mut best = 0u32;
            for &r in class {
                let n = freq.entry(column[r as usize]).or_insert(0);
                *n += 1;
                best = best.max(*n);
            }
            err += class.len() as u64 - u64::from(best);
        }
        err
    }
}

/// A membership set of fixed-arity `u32` projection keys.
///
/// Keys of arity ≤ 2 pack into a `u64` and arity ≤ 4 into a `u128`, so the
/// overwhelmingly common short projections hash a single machine word and
/// allocate nothing per row; wider keys fall back to boxed slices. All
/// variants hash through the deterministic
/// [`FxHasher`](crate::hashing::FxHasher).
#[derive(Debug, Clone)]
pub enum KeySet {
    /// Keys of arity ≤ 2, packed big-endian into one word.
    Packed64(FastSet<u64>),
    /// Keys of arity 3–4, packed big-endian into one double word.
    Packed128(FastSet<u128>),
    /// Wider keys, stored as boxed slices.
    Wide(FastSet<Box<[u32]>>),
}

#[inline]
fn pack64(key: &[u32]) -> u64 {
    key.iter().fold(0u64, |acc, &v| (acc << 32) | v as u64)
}

#[inline]
fn pack128(key: &[u32]) -> u128 {
    key.iter().fold(0u128, |acc, &v| (acc << 32) | v as u128)
}

impl KeySet {
    /// An empty set for keys of exactly `arity` columns.
    pub fn with_arity(arity: usize) -> Self {
        match arity {
            0..=2 => KeySet::Packed64(FastSet::default()),
            3..=4 => KeySet::Packed128(FastSet::default()),
            _ => KeySet::Wide(FastSet::default()),
        }
    }

    /// Insert a key; returns whether it was new.
    pub fn insert(&mut self, key: &[u32]) -> bool {
        match self {
            KeySet::Packed64(s) => s.insert(pack64(key)),
            KeySet::Packed128(s) => s.insert(pack128(key)),
            KeySet::Wide(s) => {
                if s.contains(key) {
                    false
                } else {
                    s.insert(key.into())
                }
            }
        }
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &[u32]) -> bool {
        match self {
            KeySet::Packed64(s) => s.contains(&pack64(key)),
            KeySet::Packed128(s) => s.contains(&pack128(key)),
            KeySet::Wide(s) => s.contains(key),
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        match self {
            KeySet::Packed64(s) => s.len(),
            KeySet::Packed128(s) => s.len(),
            KeySet::Wide(s) => s.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::CompiledRows;
    use crate::schema::DatabaseSchema;
    use crate::value::Value;

    fn sample_db() -> Database {
        let schema = DatabaseSchema::parse(&["R(A, B, C)", "S(B)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_ints(
            "R",
            &[&[1, 10, 100], &[2, 10, 100], &[3, 20, 100], &[4, 20, 300]],
        )
        .unwrap();
        db.insert_ints("S", &[&[10], &[20]]).unwrap();
        db
    }

    #[test]
    fn distinct_stream_spilled_equals_in_memory() {
        let db = sample_db();
        let store = ColumnStore::new(&db);
        let dir = SpillDir::create_in(&std::env::temp_dir().join("depkit-column-tests")).unwrap();
        for rel in 0..store.relation_count() {
            for c in 0..store.relation(rel).arity() {
                let expect = store.relation(rel).sorted_distinct(c);
                // Under budget: memory-backed.
                let (mem, stats) = store
                    .sorted_distinct_stream(
                        rel,
                        c,
                        rel * 8 + c,
                        Some(ColumnSpill {
                            dir: &dir,
                            share_bytes: usize::MAX,
                        }),
                    )
                    .unwrap();
                assert!(!mem.is_spilled());
                assert!(!stats.spilled());
                assert_eq!(mem.collect::<Vec<_>>(), expect);
                // A 0-byte share forces the disk path; identical output.
                let (spilled, stats) = store
                    .sorted_distinct_stream(
                        rel,
                        c,
                        100 + rel * 8 + c,
                        Some(ColumnSpill {
                            dir: &dir,
                            share_bytes: 0,
                        }),
                    )
                    .unwrap();
                assert!(spilled.is_spilled());
                assert!(stats.spilled() && stats.merge_passes >= 1);
                assert_eq!(spilled.collect::<Vec<_>>(), expect);
            }
        }
    }

    #[test]
    fn from_raw_parts_matches_compiled_store() {
        let db = sample_db();
        let built = ColumnStore::new(&db);
        let raw = ColumnStore::from_raw_parts(built.interner().clone(), built.relations().to_vec());
        assert_eq!(raw.distinct_values(), built.distinct_values());
        assert_eq!(raw.total_rows(), built.total_rows());
        for rel in 0..built.relation_count() {
            assert_eq!(raw.relation(rel), built.relation(rel));
        }
    }

    #[test]
    fn columns_agree_with_compiled_rows() {
        let db = sample_db();
        let store = ColumnStore::new(&db);
        let rows = CompiledRows::new(&db);
        assert_eq!(store.distinct_values(), rows.distinct_values());
        assert_eq!(store.total_rows(), rows.total_rows());
        for rel in 0..store.relation_count() {
            let cols = store.relation(rel);
            for (r, row) in rows.rows(rel).iter().enumerate() {
                for (c, &id) in row.iter().enumerate() {
                    // Same id space: row-major interning in both views.
                    assert_eq!(cols.column(c)[r], id);
                }
            }
        }
    }

    #[test]
    fn gather_and_cursor_read_the_same_keys() {
        let db = sample_db();
        let store = ColumnStore::new(&db);
        let rel = store.relation(0);
        let cursor = ColumnCursor::new(rel, &[2, 0]);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for r in 0..rel.row_count() {
            rel.gather(&[2, 0], r, &mut a);
            cursor.fill(r, &mut b);
            assert_eq!(a, b);
            assert_eq!(a.len(), 2);
        }
    }

    #[test]
    fn sorted_distinct_is_sorted_and_deduped() {
        let db = sample_db();
        let store = ColumnStore::new(&db);
        let ids = store.relation(0).sorted_distinct(1); // B: {10, 20}
        assert_eq!(ids.len(), 2);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let b10 = store.interner().lookup(&Value::Int(10)).unwrap();
        assert!(ids.contains(&b10));
    }

    #[test]
    fn group_by_partitions_rows_deterministically() {
        let db = sample_db();
        let store = ColumnStore::new(&db);
        let rel = store.relation(0);
        // Group by B: {rows 0,1} (B=10) and {rows 2,3} (B=20).
        let groups = rel.group_by(&[1]);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
        // Group by (B, C): splits the B=20 class.
        let groups = rel.group_by(&[1, 2]);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.windows(2).all(|w| w[0] < w[1])));
        // Empty column selection: one class of all rows.
        assert_eq!(rel.group_by(&[]), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn refiner_matches_hashmap_refinement() {
        let db = sample_db();
        let store = ColumnStore::new(&db);
        let rel = store.relation(0);
        let mut refiner = Refiner::new(store.distinct_values());
        // Root: all four rows; refine by B → {0,1}, {2,3}.
        let root = vec![vec![0u32, 1, 2, 3]];
        let by_b = refiner.refine_stripped(&root, rel.column(1));
        assert_eq!(by_b, vec![vec![0, 1], vec![2, 3]]);
        // Refine further by C → {0,1} survives, {2,3} splits to singletons.
        let by_bc = refiner.refine_stripped(&by_b, rel.column(2));
        assert_eq!(by_bc, vec![vec![0, 1]]);
        // B determines C on the {0,1} class only after stripping: full
        // check over the B-partition fails on class {2,3}.
        assert!(!Refiner::determines(&by_b, rel.column(2)));
        assert!(Refiner::determines(&by_bc, rel.column(2)));
        // A (all distinct) refines everything to singletons.
        assert!(refiner.refine_stripped(&root, rel.column(0)).is_empty());
    }

    #[test]
    fn g3_error_counts_minimum_row_removals() {
        // One class of five rows: values {5:3, 7:2} → removing the two
        // 7-rows makes the class agree, so g3 = 2.
        let column = vec![5u32, 5, 7, 7, 5];
        let classes = vec![vec![0u32, 1, 2, 3, 4]];
        assert_eq!(Refiner::g3_error(&classes, &column), 2);
        // Agreement is per class: {0,1,4} and {2,3} each agree → g3 = 0,
        // and zero coincides exactly with `determines`.
        let split = vec![vec![0u32, 1, 4], vec![2, 3]];
        assert_eq!(Refiner::g3_error(&split, &column), 0);
        assert!(Refiner::determines(&split, &column));
        // Monotone: refining a partition never raises the error.
        let coarse = Refiner::g3_error(&classes, &column);
        let fine = Refiner::g3_error(&split, &column);
        assert!(fine <= coarse);
        // Empty (fully stripped) partitions are vacuously exact.
        assert_eq!(Refiner::g3_error(&[], &column), 0);
    }

    #[test]
    fn refiner_epoch_reuse_is_sound() {
        let column = vec![5u32, 5, 7, 7, 5];
        let mut refiner = Refiner::new(8);
        let classes = vec![vec![0u32, 1, 2], vec![3, 4]];
        // Run twice with the same scratch: identical results.
        let a = refiner.refine_stripped(&classes, &column);
        let b = refiner.refine_stripped(&classes, &column);
        assert_eq!(a, b);
        assert_eq!(a, vec![vec![0, 1]]);
        refiner.ensure_domain(100);
        assert_eq!(refiner.refine_stripped(&classes, &column), a);
    }

    #[test]
    fn keyset_packs_all_widths() {
        for arity in 1..=6usize {
            let mut set = KeySet::with_arity(arity);
            let a: Vec<u32> = (0..arity as u32).collect();
            let b: Vec<u32> = (1..=arity as u32).collect();
            assert!(set.insert(&a));
            assert!(!set.insert(&a));
            assert!(set.contains(&a));
            assert!(!set.contains(&b));
            assert!(set.insert(&b));
            assert_eq!(set.len(), 2);
            assert!(!set.is_empty());
        }
        // Packing must not conflate (0, 1) with (1) << shifted layouts.
        let mut s2 = KeySet::with_arity(2);
        s2.insert(&[0, 1]);
        assert!(!s2.contains(&[1, 0]));
    }

    #[test]
    fn chunked_column_roundtrips_across_chunk_boundaries() {
        let mut col = ChunkedColumn::new();
        assert!(col.is_empty());
        let n = CHUNK_ROWS * 2 + 17;
        for i in 0..n {
            col.push(i as u32);
        }
        assert_eq!(col.len(), n);
        assert!(!col.is_empty());
        for i in [0, CHUNK_ROWS - 1, CHUNK_ROWS, n - 1] {
            assert_eq!(col.get(i), i as u32);
        }
        col.set(0, 999); // sealed chunk
        col.set(n - 1, 888); // tail
        assert_eq!(col.get(0), 999);
        assert_eq!(col.get(n - 1), 888);
    }

    #[test]
    fn chunked_snapshot_is_immune_to_later_writes() {
        let mut col = ChunkedColumn::new();
        let n = CHUNK_ROWS + 10;
        for i in 0..n {
            col.push(i as u64);
        }
        let snap = col.snapshot();
        assert_eq!(snap.len(), n);
        assert!(!snap.is_empty());
        // Mutate a sealed cell (copy-on-write), a tail cell, and append.
        col.set(5, 12345);
        col.set(n - 1, 54321);
        col.push(777);
        assert_eq!(col.get(5), 12345);
        assert_eq!(col.len(), n + 1);
        // The snapshot still sees the pre-write world.
        assert_eq!(snap.get(5), 5);
        assert_eq!(snap.get(n - 1), (n - 1) as u64);
        assert_eq!(snap.len(), n);
        let collected: Vec<u64> = snap.iter().collect();
        assert_eq!(collected.len(), n);
        assert_eq!(collected[5], 5);
        // A second snapshot sees the new world; the first is unchanged.
        let snap2 = col.snapshot();
        assert_eq!(snap2.get(5), 12345);
        assert_eq!(snap.get(5), 5);
    }

    #[test]
    fn push_row_builds_soa() {
        let mut rc = RelationColumns::new(3);
        rc.push_row(&[1, 2, 3]);
        rc.push_row(&[4, 5, 6]);
        assert_eq!(rc.row_count(), 2);
        assert_eq!(rc.arity(), 3);
        assert_eq!(rc.column(1), &[2, 5]);
        assert!(!rc.is_empty());
        let mut buf = Vec::new();
        rc.gather(&[2, 1], 1, &mut buf);
        assert_eq!(buf, vec![6, 5]);
    }
}
