//! A user-facing bundle of a schema and its integrity constraints.
//!
//! [`ConstraintSet`] is the "production" entry point: declare a schema and
//! dependencies once (optionally from text), then validate databases
//! against all of them, collecting every violation with its witness. It
//! serializes with `serde`, so constraint catalogs can live beside the
//! data they govern.

use crate::database::Database;
use crate::dependency::Dependency;
use crate::error::CoreError;
use crate::satisfy::Violation;
use crate::schema::DatabaseSchema;
use serde::{Deserialize, Serialize};

/// A schema together with the dependencies that must hold over it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstraintSet {
    schema: DatabaseSchema,
    dependencies: Vec<Dependency>,
}

impl ConstraintSet {
    /// Create a constraint set, checking every dependency is well formed
    /// for the schema.
    pub fn new(schema: DatabaseSchema, dependencies: Vec<Dependency>) -> Result<Self, CoreError> {
        for d in &dependencies {
            d.is_well_formed(&schema)?;
        }
        Ok(ConstraintSet {
            schema,
            dependencies,
        })
    }

    /// Parse a constraint set from schema declarations and dependency
    /// strings.
    ///
    /// ```
    /// use depkit_core::constraint::ConstraintSet;
    /// let cs = ConstraintSet::parse(
    ///     &["EMP(NAME, DEPT)", "MGR(NAME, DEPT)"],
    ///     &["MGR[NAME, DEPT] <= EMP[NAME, DEPT]", "EMP: NAME -> DEPT"],
    /// ).unwrap();
    /// assert_eq!(cs.dependencies().len(), 2);
    /// ```
    pub fn parse<S1: AsRef<str>, S2: AsRef<str>>(
        schema_decls: &[S1],
        dep_decls: &[S2],
    ) -> Result<Self, CoreError> {
        let schema = DatabaseSchema::parse(schema_decls)?;
        let dependencies = dep_decls
            .iter()
            .map(|d| crate::parser::parse_dependency(d.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        ConstraintSet::new(schema, dependencies)
    }

    /// The schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The dependencies, in declaration order.
    pub fn dependencies(&self) -> &[Dependency] {
        &self.dependencies
    }

    /// Add a dependency (validated against the schema).
    pub fn push(&mut self, dep: Dependency) -> Result<(), CoreError> {
        dep.is_well_formed(&self.schema)?;
        self.dependencies.push(dep);
        Ok(())
    }

    /// An empty database over this schema.
    pub fn empty_database(&self) -> Database {
        Database::empty(self.schema.clone())
    }

    /// Validate `db` against every dependency, returning all violations
    /// (empty means the database is consistent).
    pub fn validate(&self, db: &Database) -> Result<Vec<Violation>, CoreError> {
        let mut out = Vec::new();
        for d in &self.dependencies {
            if let Some(v) = db.check(d)? {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// Whether `db` satisfies every dependency.
    pub fn is_consistent(&self, db: &Database) -> Result<bool, CoreError> {
        for d in &self.dependencies {
            if !db.satisfies(d)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Split the dependencies by kind: (FDs, INDs, RDs, EMVDs) — handy for
    /// feeding the specialized engines in `depkit-solver`.
    pub fn partition(
        &self,
    ) -> (
        Vec<crate::Fd>,
        Vec<crate::Ind>,
        Vec<crate::Rd>,
        Vec<crate::Emvd>,
    ) {
        let mut fds = Vec::new();
        let mut inds = Vec::new();
        let mut rds = Vec::new();
        let mut emvds = Vec::new();
        for d in &self.dependencies {
            match d {
                Dependency::Fd(x) => fds.push(x.clone()),
                Dependency::Ind(x) => inds.push(x.clone()),
                Dependency::Rd(x) => rds.push(x.clone()),
                Dependency::Emvd(x) => emvds.push(x.clone()),
            }
        }
        (fds, inds, rds, emvds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hr() -> ConstraintSet {
        ConstraintSet::parse(
            &["EMP(NAME, DEPT)", "MGR(NAME, DEPT)"],
            &["MGR[NAME, DEPT] <= EMP[NAME, DEPT]", "EMP: NAME -> DEPT"],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_dependencies() {
        let err = ConstraintSet::parse(&["R(A)"], &["R: A -> B"]);
        assert!(err.is_err());
        let err2 = ConstraintSet::parse(&["R(A)"], &["S[A] <= R[A]"]);
        assert!(err2.is_err());
    }

    #[test]
    fn validate_collects_all_violations() {
        let cs = hr();
        let mut db = cs.empty_database();
        db.insert_str("EMP", &[&["a", "x"], &["a", "y"]]).unwrap(); // FD violation
        db.insert_str("MGR", &[&["ghost", "z"]]).unwrap(); // IND violation
        let violations = cs.validate(&db).unwrap();
        assert_eq!(violations.len(), 2);
        assert!(!cs.is_consistent(&db).unwrap());
    }

    #[test]
    fn push_validates() {
        let mut cs = hr();
        assert!(cs.push("EMP[NAME] <= MGR[NAME]".parse().unwrap()).is_ok());
        assert!(cs
            .push("EMP: NOPE -> DEPT".parse::<Dependency>().unwrap())
            .is_err());
        assert_eq!(cs.dependencies().len(), 3);
    }

    #[test]
    fn partition_by_kind() {
        let cs = ConstraintSet::parse(
            &["R(A, B, C)"],
            &["R: A -> B", "R[A] <= R[B]", "R[A = B]", "R: A ->> B | C"],
        )
        .unwrap();
        let (fds, inds, rds, emvds) = cs.partition();
        assert_eq!(
            (fds.len(), inds.len(), rds.len(), emvds.len()),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn serde_roundtrip() {
        let cs = hr();
        let json = serde_json_like(&cs);
        assert!(json.contains("EMP"));
    }

    // Minimal smoke for Serialize without pulling serde_json: use the
    // debug formatter as a stand-in shape check, and ensure Serialize is
    // at least derivable by touching the trait bound.
    fn serde_json_like<T: Serialize + std::fmt::Debug>(t: &T) -> String {
        format!("{t:?}")
    }
}
