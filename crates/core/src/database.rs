//! Databases: an assignment of a relation to each relation scheme.

use crate::dependency::Dependency;
use crate::error::CoreError;
use crate::relation::{Relation, Tuple};
use crate::satisfy::Violation;
use crate::schema::{DatabaseSchema, RelName};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A database over a [`DatabaseSchema`]: one relation per scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    schema: DatabaseSchema,
    relations: Vec<Relation>,
}

impl Database {
    /// The empty database over `schema` (every relation empty).
    pub fn empty(schema: DatabaseSchema) -> Self {
        let relations = schema
            .schemes()
            .iter()
            .map(|s| Relation::empty(s.clone()))
            .collect();
        Database { schema, relations }
    }

    /// The database's schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The relation for `name`.
    pub fn relation(&self, name: &RelName) -> Result<&Relation, CoreError> {
        let i = self
            .schema
            .scheme_index(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.name().to_owned()))?;
        Ok(&self.relations[i])
    }

    /// Mutable access to the relation for `name`.
    pub fn relation_mut(&mut self, name: &RelName) -> Result<&mut Relation, CoreError> {
        let i = self
            .schema
            .scheme_index(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.name().to_owned()))?;
        Ok(&mut self.relations[i])
    }

    /// All relations in schema order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Insert a tuple into the named relation. Returns whether it was new.
    pub fn insert(&mut self, name: &RelName, t: Tuple) -> Result<bool, CoreError> {
        self.relation_mut(name)?.insert(t)
    }

    /// Remove a tuple from the named relation. Returns whether it was
    /// present.
    pub fn remove(&mut self, name: &RelName, t: &Tuple) -> Result<bool, CoreError> {
        Ok(self.relation_mut(name)?.remove(t))
    }

    /// Insert integer tuples into the named relation (test convenience).
    pub fn insert_ints(&mut self, name: &str, rows: &[&[i64]]) -> Result<(), CoreError> {
        let name = RelName::new(name);
        for row in rows {
            self.insert(&name, Tuple::ints(row))?;
        }
        Ok(())
    }

    /// Insert string tuples into the named relation (test convenience).
    pub fn insert_str<S: AsRef<str>>(
        &mut self,
        name: &str,
        rows: &[&[S]],
    ) -> Result<(), CoreError> {
        let name = RelName::new(name);
        for row in rows {
            self.insert(&name, Tuple::strs(row))?;
        }
        Ok(())
    }

    /// Insert [`Value`] tuples into the named relation.
    pub fn insert_values(&mut self, name: &str, rows: Vec<Vec<Value>>) -> Result<(), CoreError> {
        let name = RelName::new(name);
        for row in rows {
            self.insert(&name, Tuple::new(row))?;
        }
        Ok(())
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Whether the database satisfies `dep` (see [`crate::satisfy`]).
    pub fn satisfies(&self, dep: &Dependency) -> Result<bool, CoreError> {
        Ok(self.check(dep)?.is_none())
    }

    /// Whether the database satisfies every dependency in `deps`.
    pub fn satisfies_all<'a>(
        &self,
        deps: impl IntoIterator<Item = &'a Dependency>,
    ) -> Result<bool, CoreError> {
        for d in deps {
            if !self.satisfies(d)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Check `dep`, returning a violation witness when it fails.
    pub fn check(&self, dep: &Dependency) -> Result<Option<Violation>, CoreError> {
        crate::satisfy::check(self, dep)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.relations {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let schema = DatabaseSchema::parse(&["R(A, B)", "S(C)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_ints("R", &[&[1, 2], &[3, 4]]).unwrap();
        db.insert_ints("S", &[&[1]]).unwrap();
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.relation(&RelName::new("R")).unwrap().len(), 2);
        assert!(db.relation(&RelName::new("T")).is_err());
        assert!(db.insert_ints("R", &[&[1, 2, 3]]).is_err());
    }
}
