//! Mutation batches against a [`Database`].
//!
//! A [`Delta`] is the unit of change a serving system applies between
//! validation checkpoints: a set of deletions `Δ⁻` followed by a set of
//! insertions `Δ⁺` (the view-maintenance convention — deletes apply first,
//! so a delta that deletes and re-inserts the same tuple leaves it
//! present). Relations are sets, so a duplicate insert or an absent delete
//! is a no-op; [`Database::apply_delta`] reports how many operations
//! actually changed the database, which is what the incremental validator
//! keys its index maintenance on.

use crate::database::Database;
use crate::error::CoreError;
use crate::relation::Tuple;
use crate::schema::RelName;
use std::fmt;

/// One mutation batch: deletions applied first, then insertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Tuples to delete (applied first; absent tuples are no-ops).
    pub deletes: Vec<(RelName, Tuple)>,
    /// Tuples to insert (applied second; present tuples are no-ops).
    pub inserts: Vec<(RelName, Tuple)>,
}

impl Delta {
    /// The empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Queue an insertion.
    pub fn insert(&mut self, rel: impl Into<RelName>, t: Tuple) -> &mut Self {
        self.inserts.push((rel.into(), t));
        self
    }

    /// Queue a deletion.
    pub fn delete(&mut self, rel: impl Into<RelName>, t: Tuple) -> &mut Self {
        self.deletes.push((rel.into(), t));
        self
    }

    /// Queue an integer-tuple insertion (test/bench convenience).
    pub fn insert_ints(&mut self, rel: &str, row: &[i64]) -> &mut Self {
        self.insert(rel, Tuple::ints(row))
    }

    /// Queue an integer-tuple deletion (test/bench convenience).
    pub fn delete_ints(&mut self, rel: &str, row: &[i64]) -> &mut Self {
        self.delete(rel, Tuple::ints(row))
    }

    /// Total number of queued operations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the delta queues no operations. Consumers use this as the
    /// empty-commit fast path: applying an empty delta must touch no index
    /// and advance no generation (the session catalog and the incremental
    /// validator both test this contract).
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Drop every queued operation, keeping the allocations — the
    /// staging-reuse path of session `abort` (and of commit loops that
    /// recycle one staging delta across batches).
    pub fn clear(&mut self) {
        self.inserts.clear();
        self.deletes.clear();
    }

    /// The delta that undoes this one against the database it was applied
    /// to, assuming every operation took effect (no no-ops): inserts become
    /// deletes and vice versa.
    pub fn inverse(&self) -> Delta {
        Delta {
            deletes: self.inserts.clone(),
            inserts: self.deletes.clone(),
        }
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-{} +{}", self.deletes.len(), self.inserts.len())
    }
}

/// What [`Database::apply_delta`] actually changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Insertions that added a new tuple (duplicates excluded).
    pub inserted: usize,
    /// Deletions that removed a present tuple (absent excluded).
    pub deleted: usize,
}

impl Database {
    /// Apply a [`Delta`]: all deletions first, then all insertions.
    ///
    /// Errors (unknown relation, arity mismatch) abort mid-batch with the
    /// earlier operations already applied — validate deltas upfront when
    /// atomicity matters. Returns how many operations changed the database.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<DeltaOutcome, CoreError> {
        let mut outcome = DeltaOutcome::default();
        for (rel, t) in &delta.deletes {
            if self.remove(rel, t)? {
                outcome.deleted += 1;
            }
        }
        for (rel, t) in &delta.inserts {
            if self.insert(rel, t.clone())? {
                outcome.inserted += 1;
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;

    #[test]
    fn apply_delta_deletes_then_inserts() {
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_ints("R", &[&[1, 2], &[3, 4]]).unwrap();

        let mut d = Delta::new();
        d.delete_ints("R", &[1, 2])
            .delete_ints("R", &[9, 9]) // absent: no-op
            .insert_ints("R", &[5, 6])
            .insert_ints("R", &[3, 4]); // duplicate: no-op
        let out = db.apply_delta(&d).unwrap();
        assert_eq!(
            out,
            DeltaOutcome {
                inserted: 1,
                deleted: 1
            }
        );
        assert_eq!(db.total_tuples(), 2);

        // Delete-then-insert of the same tuple keeps it present.
        let mut redo = Delta::new();
        redo.delete_ints("R", &[5, 6]).insert_ints("R", &[5, 6]);
        db.apply_delta(&redo).unwrap();
        assert!(db
            .relation(&RelName::new("R"))
            .unwrap()
            .contains(&Tuple::ints(&[5, 6])));

        // The inverse of an effective delta restores the database.
        let before = db.clone();
        let mut eff = Delta::new();
        eff.delete_ints("R", &[3, 4]).insert_ints("R", &[7, 8]);
        db.apply_delta(&eff).unwrap();
        db.apply_delta(&eff.inverse()).unwrap();
        assert_eq!(db, before);
    }

    #[test]
    fn clear_keeps_the_delta_reusable() {
        let mut d = Delta::new();
        d.insert_ints("R", &[1]).delete_ints("R", &[2]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        d.insert_ints("R", &[3]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn empty_delta_is_a_noop_fast_path() {
        let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_ints("R", &[&[1]]).unwrap();
        let before = db.clone();
        let out = db.apply_delta(&Delta::new()).unwrap();
        assert_eq!(out, DeltaOutcome::default());
        assert_eq!(db, before);
    }

    #[test]
    fn apply_delta_rejects_bad_ops() {
        let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
        let mut db = Database::empty(schema);
        let mut d = Delta::new();
        d.insert_ints("S", &[1]);
        assert!(db.apply_delta(&d).is_err());
        let mut d2 = Delta::new();
        d2.insert_ints("R", &[1, 2]);
        assert!(db.apply_delta(&d2).is_err());
    }
}
