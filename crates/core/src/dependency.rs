//! Dependency terms: FDs, INDs, RDs, and EMVDs.
//!
//! All four classes appear in the paper: FDs and INDs are the subject
//! matter, repeating dependencies (RDs) arise from their interaction
//! (Section 4), and embedded multivalued dependencies (EMVDs) are used in
//! Section 5 to re-derive the Sagiv–Walecka non-axiomatizability result.

use crate::attr::AttrSeq;
use crate::error::CoreError;
use crate::schema::{DatabaseSchema, RelName};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A functional dependency `R: X -> Y`.
///
/// `X` and `Y` are sequences of distinct attributes of `R`. The paper allows
/// an empty left-hand side (`R: ∅ -> Y`), which asserts that every `Y` entry
/// of the relation is constant (see the proof of Theorem 6.1, Case 1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fd {
    /// The relation the FD speaks about.
    pub rel: RelName,
    /// Left-hand side `X`.
    pub lhs: AttrSeq,
    /// Right-hand side `Y`.
    pub rhs: AttrSeq,
}

impl Fd {
    /// Create an FD.
    pub fn new(rel: impl Into<RelName>, lhs: AttrSeq, rhs: AttrSeq) -> Self {
        Fd {
            rel: rel.into(),
            lhs,
            rhs,
        }
    }

    /// An FD is *trivial* (holds in every relation) iff every right-hand
    /// side attribute already occurs on the left-hand side.
    pub fn is_trivial(&self) -> bool {
        self.rhs.subset_of(&self.lhs)
    }

    /// An FD is *unary* if each side has exactly one attribute (Section 6).
    pub fn is_unary(&self) -> bool {
        self.lhs.len() == 1 && self.rhs.len() == 1
    }

    /// Check well-formedness against a schema: the relation exists and both
    /// sides mention only its attributes.
    pub fn is_well_formed(&self, schema: &DatabaseSchema) -> Result<(), CoreError> {
        let s = schema.require(&self.rel)?;
        s.columns(&self.lhs)?;
        s.columns(&self.rhs)?;
        Ok(())
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.rel, self.lhs, self.rhs)
    }
}

/// An inclusion dependency `R[X] ⊆ S[Y]` (written `R[X] <= S[Y]` in the
/// text syntax).
///
/// `X` and `Y` are equal-length sequences of distinct attributes of `R` and
/// `S` respectively; `R` and `S` may be the same relation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ind {
    /// Left relation `R`.
    pub lhs_rel: RelName,
    /// Left attribute sequence `X`.
    pub lhs_attrs: AttrSeq,
    /// Right relation `S`.
    pub rhs_rel: RelName,
    /// Right attribute sequence `Y`.
    pub rhs_attrs: AttrSeq,
}

impl Ind {
    /// Create an IND, checking that the two sides have equal length.
    pub fn new(
        lhs_rel: impl Into<RelName>,
        lhs_attrs: AttrSeq,
        rhs_rel: impl Into<RelName>,
        rhs_attrs: AttrSeq,
    ) -> Result<Self, CoreError> {
        if lhs_attrs.len() != rhs_attrs.len() {
            return Err(CoreError::ArityMismatch {
                left: lhs_attrs.len(),
                right: rhs_attrs.len(),
            });
        }
        if lhs_attrs.is_empty() {
            return Err(CoreError::EmptyInd);
        }
        Ok(Ind {
            lhs_rel: lhs_rel.into(),
            lhs_attrs,
            rhs_rel: rhs_rel.into(),
            rhs_attrs,
        })
    }

    /// The common length of the two sides (the IND's arity).
    pub fn arity(&self) -> usize {
        self.lhs_attrs.len()
    }

    /// An IND is *trivial* iff it is an instance of rule IND1 (reflexivity):
    /// `R[X] ⊆ R[X]` with identical sequences.
    pub fn is_trivial(&self) -> bool {
        self.lhs_rel == self.rhs_rel && self.lhs_attrs == self.rhs_attrs
    }

    /// An IND is *unary* if each side has exactly one attribute.
    pub fn is_unary(&self) -> bool {
        self.arity() == 1
    }

    /// An IND is *typed* if both sides carry the same attribute sequence
    /// (`R[X] ⊆ S[X]`); Section 3 notes the decision problem for typed INDs
    /// is polynomial.
    pub fn is_typed(&self) -> bool {
        self.lhs_attrs == self.rhs_attrs
    }

    /// `IND2` (projection and permutation): the IND obtained by selecting
    /// the given positions on both sides.
    pub fn select(&self, positions: &[usize]) -> Result<Ind, CoreError> {
        Ind::new(
            self.lhs_rel.clone(),
            self.lhs_attrs.select(positions)?,
            self.rhs_rel.clone(),
            self.rhs_attrs.select(positions)?,
        )
    }

    /// The reversed inclusion `S[Y] ⊆ R[X]` (sound only in special
    /// situations, e.g. the finite-implication counting rule of Section 6).
    pub fn reversed(&self) -> Ind {
        Ind {
            lhs_rel: self.rhs_rel.clone(),
            lhs_attrs: self.rhs_attrs.clone(),
            rhs_rel: self.lhs_rel.clone(),
            rhs_attrs: self.lhs_attrs.clone(),
        }
    }

    /// Check well-formedness against a schema.
    pub fn is_well_formed(&self, schema: &DatabaseSchema) -> Result<(), CoreError> {
        let l = schema.require(&self.lhs_rel)?;
        l.columns(&self.lhs_attrs)?;
        let r = schema.require(&self.rhs_rel)?;
        r.columns(&self.rhs_attrs)?;
        Ok(())
    }
}

impl fmt::Display for Ind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] <= {}[{}]",
            self.lhs_rel, self.lhs_attrs, self.rhs_rel, self.rhs_attrs
        )
    }
}

/// A repeating dependency `R[X = Y]` (Section 4).
///
/// A relation obeys `R[X = Y]` iff every tuple `t` has `t[X] = t[Y]`.
/// `X` and `Y` are equal-length sequences of distinct attributes (they may
/// overlap each other). The paper notes `R[A_1...A_m = B_1...B_m]` is
/// equivalent to the set of unary RDs `{R[A_i = B_i]}` — see
/// [`Rd::unary_decomposition`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rd {
    /// The relation the RD speaks about.
    pub rel: RelName,
    /// Left sequence `X`.
    pub lhs: AttrSeq,
    /// Right sequence `Y`.
    pub rhs: AttrSeq,
}

impl Rd {
    /// Create an RD, checking the two sides have equal length.
    pub fn new(rel: impl Into<RelName>, lhs: AttrSeq, rhs: AttrSeq) -> Result<Self, CoreError> {
        if lhs.len() != rhs.len() {
            return Err(CoreError::ArityMismatch {
                left: lhs.len(),
                right: rhs.len(),
            });
        }
        Ok(Rd {
            rel: rel.into(),
            lhs,
            rhs,
        })
    }

    /// An RD is *trivial* iff the two sequences are identical (`X = Y`
    /// positionwise), in which case it holds in every relation.
    pub fn is_trivial(&self) -> bool {
        self.lhs == self.rhs
    }

    /// The equivalent set of unary RDs `R[A_i = B_i]`, skipping positions
    /// where the attributes coincide (those unary RDs are trivial).
    pub fn unary_decomposition(&self) -> Vec<Rd> {
        self.lhs
            .attrs()
            .iter()
            .zip(self.rhs.attrs())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Rd {
                rel: self.rel.clone(),
                lhs: AttrSeq::new(vec![a.clone()]).expect("single attribute"),
                rhs: AttrSeq::new(vec![b.clone()]).expect("single attribute"),
            })
            .collect()
    }

    /// Canonical form of a unary RD: attributes ordered so `lhs <= rhs`.
    /// (`R[A = B]` and `R[B = A]` are logically equivalent.)
    pub fn canonical(&self) -> Rd {
        if self.lhs.len() == 1 && self.rhs.len() == 1 && self.lhs.attrs()[0] > self.rhs.attrs()[0] {
            Rd {
                rel: self.rel.clone(),
                lhs: self.rhs.clone(),
                rhs: self.lhs.clone(),
            }
        } else {
            self.clone()
        }
    }

    /// Check well-formedness against a schema.
    pub fn is_well_formed(&self, schema: &DatabaseSchema) -> Result<(), CoreError> {
        let s = schema.require(&self.rel)?;
        s.columns(&self.lhs)?;
        s.columns(&self.rhs)?;
        Ok(())
    }
}

impl fmt::Display for Rd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} = {}]", self.rel, self.lhs, self.rhs)
    }
}

/// An embedded multivalued dependency `R: X ->> Y | Z` (Section 5).
///
/// A relation obeys it iff whenever `t1[X] = t2[X]` there is a tuple `t3`
/// with `t3[XY] = t1[XY]` and `t3[XZ] = t2[XZ]`. `Y` and `Z` must be
/// disjoint; all three are treated as attribute sets here (order is
/// irrelevant to EMVD semantics).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Emvd {
    /// The relation the EMVD speaks about.
    pub rel: RelName,
    /// The fixed set `X`.
    pub x: AttrSeq,
    /// The first swapped set `Y`.
    pub y: AttrSeq,
    /// The second swapped set `Z`.
    pub z: AttrSeq,
}

impl Emvd {
    /// Create an EMVD, checking that `Y` and `Z` are disjoint.
    pub fn new(
        rel: impl Into<RelName>,
        x: AttrSeq,
        y: AttrSeq,
        z: AttrSeq,
    ) -> Result<Self, CoreError> {
        if !y.disjoint_from(&z) {
            return Err(CoreError::EmvdOverlap);
        }
        Ok(Emvd {
            rel: rel.into(),
            x,
            y,
            z,
        })
    }

    /// Sufficient triviality test: the EMVD holds in every relation if
    /// `Y ⊆ X` (choose `t3 = t2`) or `Z ⊆ X` (choose `t3 = t1`).
    pub fn is_trivial(&self) -> bool {
        self.y.subset_of(&self.x) || self.z.subset_of(&self.x)
    }

    /// Check well-formedness against a schema.
    pub fn is_well_formed(&self, schema: &DatabaseSchema) -> Result<(), CoreError> {
        let s = schema.require(&self.rel)?;
        s.columns(&self.x)?;
        s.columns(&self.y)?;
        s.columns(&self.z)?;
        Ok(())
    }
}

impl fmt::Display for Emvd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ->> {} | {}", self.rel, self.x, self.y, self.z)
    }
}

/// Any dependency handled by this workspace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dependency {
    /// A functional dependency.
    Fd(Fd),
    /// An inclusion dependency.
    Ind(Ind),
    /// A repeating dependency.
    Rd(Rd),
    /// An embedded multivalued dependency.
    Emvd(Emvd),
}

impl Dependency {
    /// Whether the dependency holds in every database (is a tautology).
    pub fn is_trivial(&self) -> bool {
        match self {
            Dependency::Fd(d) => d.is_trivial(),
            Dependency::Ind(d) => d.is_trivial(),
            Dependency::Rd(d) => d.is_trivial(),
            Dependency::Emvd(d) => d.is_trivial(),
        }
    }

    /// Check well-formedness against a schema.
    pub fn is_well_formed(&self, schema: &DatabaseSchema) -> Result<(), CoreError> {
        match self {
            Dependency::Fd(d) => d.is_well_formed(schema),
            Dependency::Ind(d) => d.is_well_formed(schema),
            Dependency::Rd(d) => d.is_well_formed(schema),
            Dependency::Emvd(d) => d.is_well_formed(schema),
        }
    }

    /// The inner FD, if any.
    pub fn as_fd(&self) -> Option<&Fd> {
        match self {
            Dependency::Fd(d) => Some(d),
            _ => None,
        }
    }

    /// The inner IND, if any.
    pub fn as_ind(&self) -> Option<&Ind> {
        match self {
            Dependency::Ind(d) => Some(d),
            _ => None,
        }
    }

    /// The inner RD, if any.
    pub fn as_rd(&self) -> Option<&Rd> {
        match self {
            Dependency::Rd(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dependency::Fd(d) => write!(f, "{d}"),
            Dependency::Ind(d) => write!(f, "{d}"),
            Dependency::Rd(d) => write!(f, "{d}"),
            Dependency::Emvd(d) => write!(f, "{d}"),
        }
    }
}

impl From<Fd> for Dependency {
    fn from(d: Fd) -> Self {
        Dependency::Fd(d)
    }
}

impl From<Ind> for Dependency {
    fn from(d: Ind) -> Self {
        Dependency::Ind(d)
    }
}

impl From<Rd> for Dependency {
    fn from(d: Rd) -> Self {
        Dependency::Rd(d)
    }
}

impl From<Emvd> for Dependency {
    fn from(d: Emvd) -> Self {
        Dependency::Emvd(d)
    }
}

impl std::str::FromStr for Dependency {
    type Err = CoreError;
    fn from_str(s: &str) -> Result<Self, CoreError> {
        crate::parser::parse_dependency(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    #[test]
    fn fd_triviality() {
        assert!(Fd::new("R", attrs(&["A", "B"]), attrs(&["A"])).is_trivial());
        assert!(!Fd::new("R", attrs(&["A"]), attrs(&["B"])).is_trivial());
        // Empty RHS is trivially implied.
        assert!(Fd::new("R", attrs(&["A"]), AttrSeq::empty()).is_trivial());
        // Empty LHS ("Y is constant") is not trivial.
        assert!(!Fd::new("R", AttrSeq::empty(), attrs(&["A"])).is_trivial());
    }

    #[test]
    fn ind_construction_and_classification() {
        let i = Ind::new("R", attrs(&["A", "B"]), "S", attrs(&["C", "D"])).unwrap();
        assert_eq!(i.arity(), 2);
        assert!(!i.is_trivial());
        assert!(!i.is_typed());
        assert!(Ind::new("R", attrs(&["A"]), "S", attrs(&["C", "D"])).is_err());

        let t = Ind::new("R", attrs(&["A", "B"]), "S", attrs(&["A", "B"])).unwrap();
        assert!(t.is_typed());
        assert!(!t.is_trivial());

        let refl = Ind::new("R", attrs(&["A", "B"]), "R", attrs(&["A", "B"])).unwrap();
        assert!(refl.is_trivial());

        // Same relation, permuted attributes: NOT trivial.
        let perm = Ind::new("R", attrs(&["A", "B"]), "R", attrs(&["B", "A"])).unwrap();
        assert!(!perm.is_trivial());
    }

    #[test]
    fn ind_select_is_ind2() {
        let i = Ind::new("R", attrs(&["A", "B", "C"]), "S", attrs(&["D", "E", "F"])).unwrap();
        let j = i.select(&[2, 0]).unwrap();
        assert_eq!(j.to_string(), "R[C, A] <= S[F, D]");
    }

    #[test]
    fn rd_decomposition() {
        let rd = Rd::new("R", attrs(&["A", "B"]), attrs(&["B", "C"])).unwrap();
        let unary = rd.unary_decomposition();
        assert_eq!(unary.len(), 2);
        assert_eq!(unary[0].to_string(), "R[A = B]");
        assert_eq!(unary[1].to_string(), "R[B = C]");
        assert!(Rd::new("R", attrs(&["A", "B"]), attrs(&["A", "B"]))
            .unwrap()
            .is_trivial());
    }

    #[test]
    fn rd_canonical_orders_sides() {
        let rd = Rd::new("R", attrs(&["B"]), attrs(&["A"])).unwrap();
        assert_eq!(rd.canonical().to_string(), "R[A = B]");
    }

    #[test]
    fn emvd_checks() {
        assert!(Emvd::new("R", attrs(&["A"]), attrs(&["B"]), attrs(&["B", "C"])).is_err());
        let e = Emvd::new("R", attrs(&["A"]), attrs(&["B"]), attrs(&["C"])).unwrap();
        assert!(!e.is_trivial());
        let t = Emvd::new("R", attrs(&["A", "B"]), attrs(&["B"]), attrs(&["C"])).unwrap();
        assert!(t.is_trivial());
    }

    #[test]
    fn well_formedness() {
        let schema = DatabaseSchema::parse(&["R(A, B)", "S(C, D)"]).unwrap();
        let ok = Ind::new("R", attrs(&["A"]), "S", attrs(&["D"])).unwrap();
        assert!(ok.is_well_formed(&schema).is_ok());
        let bad_rel = Ind::new("R", attrs(&["A"]), "T", attrs(&["D"])).unwrap();
        assert!(bad_rel.is_well_formed(&schema).is_err());
        let bad_attr = Ind::new("R", attrs(&["C"]), "S", attrs(&["D"])).unwrap();
        assert!(bad_attr.is_well_formed(&schema).is_err());
    }
}
