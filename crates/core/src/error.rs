//! Error types shared across the core crate.

use std::fmt;

/// Errors produced by schema construction, parsing, and model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An attribute sequence contained a repeated attribute.
    DuplicateAttribute(String),
    /// A relation name was declared twice in a database schema.
    DuplicateRelation(String),
    /// A referenced relation does not exist in the schema.
    UnknownRelation(String),
    /// A referenced attribute does not exist in the given relation scheme.
    UnknownAttribute {
        /// The relation that was searched.
        relation: String,
        /// The attribute that was not found.
        attribute: String,
    },
    /// The two sides of an IND or RD have different lengths.
    ArityMismatch {
        /// Length of the left-hand side.
        left: usize,
        /// Length of the right-hand side.
        right: usize,
    },
    /// A tuple's length does not match its relation scheme's arity.
    TupleArity {
        /// The relation whose scheme was violated.
        relation: String,
        /// The scheme's arity.
        expected: usize,
        /// The offending tuple's length.
        actual: usize,
    },
    /// A parse error with position information.
    Parse {
        /// Human-readable description of what went wrong.
        message: String,
        /// Byte offset into the input at which the error was detected.
        offset: usize,
    },
    /// The EMVD sides `Y` and `Z` are not disjoint.
    EmvdOverlap,
    /// An IND was constructed with empty sides (the paper requires arity
    /// at least one).
    EmptyInd,
    /// A symbolic-relation decision problem fell outside the decidable
    /// fragment implemented by [`crate::symbolic`].
    SymbolicTooComplex(String),
    /// An engine was given a dependency kind it does not handle (e.g. the
    /// incremental validator only maintains FDs and INDs).
    UnsupportedDependency(String),
    /// A durability operation failed: a write-ahead-log append, a
    /// checkpoint, or a recovery step. The message names the file and
    /// offset where known, so crash diagnostics stand on their own.
    Durability(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute `{a}` in attribute sequence")
            }
            CoreError::DuplicateRelation(r) => {
                write!(f, "duplicate relation scheme `{r}` in database schema")
            }
            CoreError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            CoreError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            CoreError::ArityMismatch { left, right } => write!(
                f,
                "arity mismatch: left side has {left} attributes, right side has {right}"
            ),
            CoreError::TupleArity {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "tuple of length {actual} inserted into `{relation}` of arity {expected}"
            ),
            CoreError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            CoreError::EmvdOverlap => write!(f, "EMVD sides Y and Z must be disjoint"),
            CoreError::EmptyInd => write!(f, "INDs must have at least one attribute per side"),
            CoreError::SymbolicTooComplex(why) => {
                write!(f, "symbolic decision outside decidable fragment: {why}")
            }
            CoreError::UnsupportedDependency(what) => {
                write!(f, "unsupported dependency kind: {what}")
            }
            CoreError::Durability(what) => write!(f, "durability failure: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}
