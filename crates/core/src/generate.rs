//! Deterministic generators for schemas, dependencies, and databases.
//!
//! Property tests and benchmarks need reproducible random instances. To keep
//! `depkit-core` dependency-free, this module ships a tiny SplitMix64 PRNG
//! ([`Rng`]) rather than pulling in an external crate; downstream crates that
//! prefer the `rand` ecosystem can seed from the same integers.

use crate::attr::{Attr, AttrSeq};
use crate::database::Database;
use crate::dependency::{Dependency, Fd, Ind, Rd};
use crate::relation::Tuple;
use crate::schema::{DatabaseSchema, RelName, RelationScheme};
use crate::value::Value;

/// A SplitMix64 pseudo-random number generator: tiny, fast, and entirely
/// deterministic from its seed.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Choose a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A random subsequence of `k` distinct indices from `0..n`
    /// (Fisher–Yates prefix), in random order.
    pub fn distinct_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i, n - 1);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// Configuration for random schema generation.
#[derive(Debug, Clone)]
pub struct SchemaConfig {
    /// Number of relation schemes.
    pub relations: usize,
    /// Minimum attributes per scheme.
    pub min_arity: usize,
    /// Maximum attributes per scheme.
    pub max_arity: usize,
}

impl Default for SchemaConfig {
    fn default() -> Self {
        SchemaConfig {
            relations: 3,
            min_arity: 2,
            max_arity: 4,
        }
    }
}

/// Generate a random database schema with relations `R0, R1, ...` and
/// attributes `A0, A1, ...` (attribute names are shared across relations, so
/// typed INDs are expressible).
pub fn random_schema(rng: &mut Rng, cfg: &SchemaConfig) -> DatabaseSchema {
    let schemes = (0..cfg.relations)
        .map(|r| {
            let arity = rng.range(cfg.min_arity, cfg.max_arity);
            let attrs: Vec<Attr> = (0..arity).map(|a| Attr::new(format!("A{a}"))).collect();
            RelationScheme::new(
                format!("R{r}").as_str(),
                AttrSeq::new(attrs).expect("generated attributes are distinct"),
            )
        })
        .collect();
    DatabaseSchema::new(schemes).expect("generated relation names are distinct")
}

/// Generate a random IND of the given arity over `schema`, if the schema has
/// two (not necessarily distinct) relations wide enough.
pub fn random_ind(rng: &mut Rng, schema: &DatabaseSchema, arity: usize) -> Option<Ind> {
    let wide: Vec<&RelationScheme> = schema
        .schemes()
        .iter()
        .filter(|s| s.arity() >= arity)
        .collect();
    if wide.is_empty() {
        return None;
    }
    let lhs = *rng.choose(&wide);
    let rhs = *rng.choose(&wide);
    let lpos = rng.distinct_indices(lhs.arity(), arity);
    let rpos = rng.distinct_indices(rhs.arity(), arity);
    let lattrs = lhs.attrs().select(&lpos).expect("positions are distinct");
    let rattrs = rhs.attrs().select(&rpos).expect("positions are distinct");
    Some(
        Ind::new(lhs.name().clone(), lattrs, rhs.name().clone(), rattrs)
            .expect("equal lengths by construction"),
    )
}

/// Generate a random FD over `schema` with the given side sizes.
pub fn random_fd(rng: &mut Rng, schema: &DatabaseSchema, lhs: usize, rhs: usize) -> Option<Fd> {
    let wide: Vec<&RelationScheme> = schema
        .schemes()
        .iter()
        .filter(|s| s.arity() >= lhs.max(rhs))
        .collect();
    if wide.is_empty() {
        return None;
    }
    let s = *rng.choose(&wide);
    let lpos = rng.distinct_indices(s.arity(), lhs);
    let rpos = rng.distinct_indices(s.arity(), rhs);
    Some(Fd::new(
        s.name().clone(),
        s.attrs().select(&lpos).expect("distinct positions"),
        s.attrs().select(&rpos).expect("distinct positions"),
    ))
}

/// Generate a random unary RD over `schema`.
pub fn random_rd(rng: &mut Rng, schema: &DatabaseSchema) -> Option<Rd> {
    let wide: Vec<&RelationScheme> = schema.schemes().iter().filter(|s| s.arity() >= 2).collect();
    if wide.is_empty() {
        return None;
    }
    let s = *rng.choose(&wide);
    let pos = rng.distinct_indices(s.arity(), 2);
    Some(
        Rd::new(
            s.name().clone(),
            s.attrs().select(&pos[..1]).expect("distinct"),
            s.attrs().select(&pos[1..]).expect("distinct"),
        )
        .expect("equal lengths"),
    )
}

/// Generate a random set of INDs.
pub fn random_ind_set(
    rng: &mut Rng,
    schema: &DatabaseSchema,
    count: usize,
    max_arity: usize,
) -> Vec<Ind> {
    let mut out = Vec::with_capacity(count);
    let mut guard = 0;
    while out.len() < count && guard < count * 20 {
        guard += 1;
        let arity = rng.range(1, max_arity.max(1));
        if let Some(ind) = random_ind(rng, schema, arity) {
            out.push(ind);
        }
    }
    out
}

/// Generate a random mixed set of FDs and INDs.
pub fn random_mixed_set(
    rng: &mut Rng,
    schema: &DatabaseSchema,
    fds: usize,
    inds: usize,
) -> Vec<Dependency> {
    let mut out: Vec<Dependency> = Vec::with_capacity(fds + inds);
    let mut guard = 0;
    while out.iter().filter(|d| d.as_fd().is_some()).count() < fds && guard < fds * 20 {
        guard += 1;
        if let Some(fd) = random_fd(rng, schema, 1, 1) {
            out.push(fd.into());
        }
    }
    guard = 0;
    while out.iter().filter(|d| d.as_ind().is_some()).count() < inds && guard < inds * 20 {
        guard += 1;
        let arity = rng.range(1, 2);
        if let Some(ind) = random_ind(rng, schema, arity) {
            out.push(ind.into());
        }
    }
    out
}

/// Generate a random database over `schema` with up to `max_tuples` tuples
/// per relation and integer entries in `0..domain`.
pub fn random_database(
    rng: &mut Rng,
    schema: &DatabaseSchema,
    max_tuples: usize,
    domain: i64,
) -> Database {
    let mut db = Database::empty(schema.clone());
    for scheme in schema.schemes() {
        let n = rng.below(max_tuples + 1);
        for _ in 0..n {
            let t = Tuple::new(
                (0..scheme.arity())
                    .map(|_| Value::Int(rng.below(domain as usize) as i64))
                    .collect(),
            );
            db.insert(scheme.name(), t).expect("arity correct");
        }
    }
    db
}

/// Mutate `db` in place until it satisfies every FD and IND in `deps`
/// (other dependency kinds, and dependencies not well-formed for the
/// database's schema, are ignored).
///
/// The repair runs in three phases, ordered so each phase preserves what
/// the previous one established:
///
/// 1. **FD canonicalization** — for each FD `R: X → Y`, rewrite every
///    tuple's `Y` entries to those of its `X`-group's representative (the
///    lexicographically least tuple, so the result is deterministic).
///    Rewriting one FD can disturb another, so this iterates a bounded
///    number of passes.
/// 2. **FD deletion fallback** — tuples still disagreeing with their
///    group representative are deleted. Deletion can never *create* an FD
///    violation (FD satisfaction is closed under subsets), so iterating
///    over the FDs until no pass deletes anything terminates with every FD
///    satisfied.
/// 3. **IND deletion fixpoint** — left-side tuples whose projection is
///    missing on the right are deleted. Deletion preserves phase 2 (FDs
///    stay satisfied) but can break an IND whose *right* side lost tuples,
///    hence the fixpoint loop; each productive pass strictly shrinks the
///    database, so it terminates.
///
/// This is the "planting" primitive behind [`random_satisfying_database`]:
/// the discovery tests use it to build instances where a chosen Σ holds by
/// construction.
pub fn repair_to_satisfy(db: &mut Database, deps: &[Dependency]) {
    let fds: Vec<&Fd> = deps.iter().filter_map(Dependency::as_fd).collect();
    let inds: Vec<&Ind> = deps.iter().filter_map(Dependency::as_ind).collect();

    for _pass in 0..8 {
        let mut changed = false;
        for fd in &fds {
            changed |= repair_fd(db, fd, RepairMode::Rewrite);
        }
        if !changed {
            break;
        }
    }
    loop {
        let mut changed = false;
        for fd in &fds {
            changed |= repair_fd(db, fd, RepairMode::Delete);
        }
        if !changed {
            break;
        }
    }
    loop {
        let mut changed = false;
        for ind in &inds {
            changed |= delete_ind_violators(db, ind);
        }
        if !changed {
            break;
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RepairMode {
    /// Rewrite a disagreeing tuple's `Y` entries to the representative's.
    Rewrite,
    /// Delete disagreeing tuples outright.
    Delete,
}

/// One FD repair pass; returns whether the relation changed.
fn repair_fd(db: &mut Database, fd: &Fd, mode: RepairMode) -> bool {
    let Ok(relation) = db.relation(&fd.rel) else {
        return false;
    };
    let scheme = relation.scheme();
    let (Ok(x), Ok(y)) = (scheme.columns(&fd.lhs), scheme.columns(&fd.rhs)) else {
        return false;
    };
    // Representative per X-group: the lexicographically least tuple (the
    // BTreeSet iterates in sorted order, so first wins).
    let tuples: Vec<Tuple> = relation.tuples().cloned().collect();
    let mut rep: std::collections::HashMap<Vec<Value>, &Tuple> = std::collections::HashMap::new();
    let mut xbuf: Vec<Value> = Vec::with_capacity(x.len());
    for t in &tuples {
        xbuf.clear();
        xbuf.extend(t.project_ref(&x).cloned());
        if !rep.contains_key(xbuf.as_slice()) {
            rep.insert(xbuf.clone(), t);
        }
    }
    let mut changed = false;
    for t in &tuples {
        xbuf.clear();
        xbuf.extend(t.project_ref(&x).cloned());
        let rep_t = rep[xbuf.as_slice()];
        if t.project_ref(&y).eq(rep_t.project_ref(&y)) {
            continue;
        }
        changed = true;
        db.remove(&fd.rel, t).expect("relation exists");
        if mode == RepairMode::Rewrite {
            let wanted = rep_t.project(&y);
            let mut fixed = t.clone();
            for (i, &col) in y.iter().enumerate() {
                fixed = fixed.with(col, wanted[i].clone());
            }
            db.insert(&fd.rel, fixed).expect("arity unchanged");
        }
    }
    changed
}

/// Delete left-side tuples violating `ind`; returns whether any were.
fn delete_ind_violators(db: &mut Database, ind: &Ind) -> bool {
    let Ok(rhs) = db.relation(&ind.rhs_rel) else {
        return false;
    };
    let Ok(rcols) = rhs.scheme().columns(&ind.rhs_attrs) else {
        return false;
    };
    let present = rhs.project(&rcols);
    let Ok(lhs) = db.relation(&ind.lhs_rel) else {
        return false;
    };
    let Ok(lcols) = lhs.scheme().columns(&ind.lhs_attrs) else {
        return false;
    };
    let mut buf: Vec<Value> = Vec::with_capacity(lcols.len());
    let victims: Vec<Tuple> = lhs
        .tuples()
        .filter(|t| {
            buf.clear();
            buf.extend(t.project_ref(&lcols).cloned());
            !present.contains(buf.as_slice())
        })
        .cloned()
        .collect();
    for t in &victims {
        db.remove(&ind.lhs_rel, t).expect("relation exists");
    }
    !victims.is_empty()
}

/// A random database over `schema` repaired (via [`repair_to_satisfy`]) to
/// satisfy every FD and IND in `deps` — the planting generator for the
/// discovery round-trip tests: plant Σ, mine the database, and check the
/// discovered cover implies Σ.
pub fn random_satisfying_database(
    rng: &mut Rng,
    schema: &DatabaseSchema,
    deps: &[Dependency],
    max_tuples: usize,
    domain: i64,
) -> Database {
    let mut db = random_database(rng, schema, max_tuples, domain);
    repair_to_satisfy(&mut db, deps);
    db
}

/// Enumerate all databases over `schema` whose relations contain at most
/// `max_tuples` tuples with entries drawn from `0..domain`, invoking `f` on
/// each; stops early when `f` returns `false`.
///
/// This is the exhaustive small-model search used as a refutation oracle:
/// exponential, so keep `schema`, `max_tuples`, and `domain` tiny.
pub fn for_each_small_database(
    schema: &DatabaseSchema,
    max_tuples: usize,
    domain: i64,
    f: &mut dyn FnMut(&Database) -> bool,
) -> bool {
    // All candidate tuples per relation.
    let candidate_sets: Vec<Vec<Tuple>> = schema
        .schemes()
        .iter()
        .map(|s| all_tuples(s.arity(), domain))
        .collect();
    // Choose, per relation, a subset of candidates of size <= max_tuples.
    let mut db = Database::empty(schema.clone());
    rec(schema, &candidate_sets, max_tuples, 0, &mut db, f)
}

fn all_tuples(arity: usize, domain: i64) -> Vec<Tuple> {
    let mut out = Vec::new();
    let mut current = vec![0i64; arity];
    loop {
        out.push(Tuple::ints(&current));
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == arity {
                return out;
            }
            current[k] += 1;
            if current[k] < domain {
                break;
            }
            current[k] = 0;
            k += 1;
        }
    }
}

fn rec(
    schema: &DatabaseSchema,
    candidates: &[Vec<Tuple>],
    max_tuples: usize,
    rel: usize,
    db: &mut Database,
    f: &mut dyn FnMut(&Database) -> bool,
) -> bool {
    if rel == schema.schemes().len() {
        return f(db);
    }
    let name = schema.schemes()[rel].name().clone();
    // Choose subsets by recursive inclusion with a size bound.
    #[allow(clippy::too_many_arguments)]
    fn subsets(
        schema: &DatabaseSchema,
        candidates: &[Vec<Tuple>],
        max_tuples: usize,
        rel: usize,
        idx: usize,
        used: usize,
        name: &RelName,
        db: &mut Database,
        f: &mut dyn FnMut(&Database) -> bool,
    ) -> bool {
        if idx == candidates[rel].len() || used == max_tuples {
            return rec(schema, candidates, max_tuples, rel + 1, db, f);
        }
        // Exclude candidate idx.
        if !subsets(
            schema,
            candidates,
            max_tuples,
            rel,
            idx + 1,
            used,
            name,
            db,
            f,
        ) {
            return false;
        }
        // Include candidate idx.
        let t = candidates[rel][idx].clone();
        db.insert(name, t.clone()).expect("arity matches");
        let cont = subsets(
            schema,
            candidates,
            max_tuples,
            rel,
            idx + 1,
            used + 1,
            name,
            db,
            f,
        );
        db.relation_mut(name)
            .expect("relation exists")
            .retain(|u| u != &t);
        cont
    }
    subsets(schema, candidates, max_tuples, rel, 0, 0, &name, db, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_indices_are_distinct() {
        let mut rng = Rng::new(7);
        for _ in 0..50 {
            let v = rng.distinct_indices(8, 5);
            assert_eq!(v.len(), 5);
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 5, "indices must be distinct: {v:?}");
            assert!(v.iter().all(|&i| i < 8));
        }
    }

    #[test]
    fn generated_dependencies_are_well_formed() {
        let mut rng = Rng::new(123);
        let schema = random_schema(&mut rng, &SchemaConfig::default());
        for _ in 0..100 {
            if let Some(ind) = random_ind(&mut rng, &schema, 2) {
                ind.is_well_formed(&schema).unwrap();
            }
            if let Some(fd) = random_fd(&mut rng, &schema, 1, 1) {
                fd.is_well_formed(&schema).unwrap();
            }
            if let Some(rd) = random_rd(&mut rng, &schema) {
                rd.is_well_formed(&schema).unwrap();
            }
        }
    }

    #[test]
    fn random_database_respects_schema() {
        let mut rng = Rng::new(5);
        let schema = random_schema(&mut rng, &SchemaConfig::default());
        let db = random_database(&mut rng, &schema, 5, 3);
        for r in db.relations() {
            for t in r.tuples() {
                assert_eq!(t.len(), r.scheme().arity());
            }
        }
    }

    #[test]
    fn repair_makes_planted_dependencies_hold() {
        let mut rng = Rng::new(0xABCDEF);
        for _ in 0..50 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 2,
                    min_arity: 2,
                    max_arity: 3,
                },
            );
            let deps = random_mixed_set(&mut rng, &schema, 2, 2);
            let db = random_satisfying_database(&mut rng, &schema, &deps, 6, 3);
            for d in &deps {
                assert!(db.satisfies(d).unwrap(), "repair left {d} violated");
            }
        }
    }

    #[test]
    fn repair_is_deterministic_and_keeps_satisfying_rows() {
        // A→B violated by rows (1,2) and (1,3): canonicalization rewrites
        // the larger tuple's B to the representative's (the least tuple).
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_ints("R", &[&[1, 2], &[1, 3], &[4, 5]]).unwrap();
        let fd: Dependency = "R: A -> B".parse().unwrap();
        repair_to_satisfy(&mut db, std::slice::from_ref(&fd));
        assert!(db.satisfies(&fd).unwrap());
        let r = db.relation(&crate::schema::RelName::new("R")).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::ints(&[1, 2])));
        assert!(r.contains(&Tuple::ints(&[4, 5])));
    }

    #[test]
    fn ind_repair_reaches_a_fixpoint_across_relations() {
        // T[C] ⊆ R[A] and R[A] ⊆ S[B]: deleting from R to fix the second
        // IND re-breaks the first, so repair must iterate.
        let schema = DatabaseSchema::parse(&["R(A)", "S(B)", "T(C)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_ints("R", &[&[1], &[2]]).unwrap();
        db.insert_ints("S", &[&[1]]).unwrap();
        db.insert_ints("T", &[&[2]]).unwrap();
        let deps: Vec<Dependency> = vec![
            "T[C] <= R[A]".parse().unwrap(),
            "R[A] <= S[B]".parse().unwrap(),
        ];
        repair_to_satisfy(&mut db, &deps);
        for d in &deps {
            assert!(db.satisfies(d).unwrap());
        }
        assert!(db
            .relation(&crate::schema::RelName::new("T"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn small_model_enumeration_counts() {
        // One unary relation, domain 2, up to 2 tuples: subsets of {0, 1}
        // of size <= 2: {}, {0}, {1}, {0,1} = 4 databases.
        let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
        let mut count = 0;
        for_each_small_database(&schema, 2, 2, &mut |_db| {
            count += 1;
            true
        });
        assert_eq!(count, 4);
    }

    #[test]
    fn small_model_enumeration_early_stop() {
        let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
        let mut count = 0;
        let completed = for_each_small_database(&schema, 1, 3, &mut |_db| {
            count += 1;
            count < 2
        });
        assert!(!completed);
        assert_eq!(count, 2);
    }
}
