//! A fast, deterministic hasher for the compiled hot paths.
//!
//! The serving and discovery layers hash small integer keys (dense `u32`
//! ids, short projection rows) millions of times per scan. The standard
//! library's default SipHash is DoS-resistant but costs an order of
//! magnitude more per small key than the workloads here can afford, and its
//! per-process random seed makes map iteration order vary run to run. This
//! module provides an FxHash-style multiply-rotate hasher (the folklore
//! design used by rustc's internal tables): a few cycles per word,
//! **deterministic across runs** — which is exactly what the differential
//! tests and the `threads=1` vs `threads=N` reproducibility contract want —
//! and entirely self-contained (the workspace vendors no external hashing
//! crate).
//!
//! The keys hashed through it are trusted internal data (interned ids,
//! projection rows), never attacker-controlled input, so the loss of DoS
//! resistance is immaterial.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash folklore design (the golden
/// ratio scaled to 64 bits, forced odd).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// An FxHash-style streaming hasher: each word is folded in with a
/// rotate-xor-multiply step. Fast on short keys, deterministic, not
/// collision-resistant against adversaries (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so every map built
/// from it hashes identically — across maps *and* across runs).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m1: FastMap<Vec<u32>, u32> = FastMap::default();
        let mut m2: FastMap<Vec<u32>, u32> = FastMap::default();
        for i in 0..100u32 {
            m1.insert(vec![i, i + 1], i);
            m2.insert(vec![i, i + 1], i);
        }
        let k1: Vec<_> = m1.keys().cloned().collect();
        let k2: Vec<_> = m2.keys().cloned().collect();
        assert_eq!(k1, k2, "same inserts must give the same iteration order");
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let mut s: FastSet<u64> = FastSet::default();
        for i in 0..10_000u64 {
            s.insert(i);
        }
        assert_eq!(s.len(), 10_000);
        let mut h1 = FxHasher::default();
        h1.write(b"abc");
        let mut h2 = FxHasher::default();
        h2.write(b"abd");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn tail_bytes_affect_the_hash() {
        // Keys differing only past the last full word must hash apart.
        let mut a = FxHasher::default();
        a.write(b"12345678x");
        let mut b = FxHasher::default();
        b.write(b"12345678y");
        assert_ne!(a.finish(), b.finish());
        // And a shorter prefix differs from its zero-padded extension.
        let mut c = FxHasher::default();
        c.write(b"1234");
        let mut d = FxHasher::default();
        d.write(b"1234\0\0\0\0");
        assert_ne!(c.finish(), d.finish());
    }
}
