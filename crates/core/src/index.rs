//! Mutation-oriented index structures over raw `u32` rows.
//!
//! The offline engines (the Rule (*) chase, the satisfaction scans in
//! [`crate::satisfy`]) process a database once and throw their state away.
//! A *serving* workload is different: the database mutates continuously and
//! constraints must be re-checked per delta, in time proportional to the
//! delta — so the indexes have to be persistent, refcounted, and cheap to
//! update in both directions. This module provides the three building
//! blocks, all operating on rows of dense `u32` ids rather than heap
//! [`Value`]s:
//!
//! * [`ValueInterner`] — a bidirectional [`Value`] ↔ `u32` table with
//!   per-id reference counts. Interning happens once per distinct value at
//!   the mutation boundary; every comparison after that is integer
//!   equality. Deletions use the non-allocating [`ValueInterner::lookup`]:
//!   a value the interner has never seen cannot be in any row, so the
//!   delete is a no-op. Callers bracket each live row with
//!   [`ValueInterner::retain_row`] / [`ValueInterner::release_row`]; ids
//!   whose count drops to zero are recycled, so a delete-heavy serving
//!   workload does not grow the table past the live value set.
//! * [`RowSet`] — a per-relation set of raw `u32` rows with set semantics
//!   (duplicate insert and absent delete are no-ops, mirroring
//!   [`crate::relation::Relation`]). This is the same representation the
//!   Rule (*) chase of `depkit-chase` addresses by
//!   [`RelId`](crate::intern::RelId); the chase and the incremental
//!   validator share it.
//! * [`ProjectionIndex`] — a refcounted multiset of projection keys
//!   (`key → number of rows projecting to it`). [`ProjectionIndex::add`]
//!   and [`ProjectionIndex::remove`] return the count *after* the
//!   operation, so callers can detect the `0 → 1` and `1 → 0` transitions
//!   that flip a constraint between satisfied and violated.
//!
//! The incremental validator (`depkit_solver::incremental`) composes these
//! into per-IND left/right projection indexes and per-FD witness maps.

use crate::database::Database;
use crate::hashing::{FastMap, FastSet};
use crate::value::Value;
use std::collections::hash_map::Entry;

/// A bidirectional [`Value`] ↔ `u32` table with per-id reference counts,
/// for compiling tuples into raw rows.
///
/// Ids are dense and only meaningful against the interner that produced
/// them (the same contract as [`crate::intern::Catalog`]). Unlike the
/// symbol catalog — whose vocabulary is fixed by `Σ` — the value table
/// tracks *data*, which churns under a serving workload. Callers therefore
/// bracket each live row: [`ValueInterner::retain_row`] after an effective
/// insert, [`ValueInterner::release_row`] after an effective delete. An id
/// whose count drops to zero is unmapped and its slot recycled by the next
/// [`ValueInterner::intern`], so the table stays proportional to the
/// values of *live* rows no matter how many mutations stream past.
///
/// Resolving an id with no retained reference is a caller bug: the slot
/// may hold a placeholder or a recycled, unrelated value.
#[derive(Debug, Clone, Default)]
pub struct ValueInterner {
    /// Fast path for [`Value::Int`] — the dominant case in compiled
    /// workloads. A bare `i64` key hashes one word and packs 16-byte
    /// entries, so bulk interning probes a table half the size of the
    /// general map's.
    int_ids: FastMap<i64, u32>,
    /// All other value kinds.
    ids: FastMap<Value, u32>,
    values: Vec<Value>,
    /// `refs[id]` = number of retained row references to `values[id]`.
    refs: Vec<u32>,
    /// Zero-ref slots available for reuse.
    free: Vec<u32>,
    /// Append-only mode: ids are never unmapped or recycled, so any id
    /// below the current [`ValueInterner::epoch`] resolves to the same
    /// value forever — the contract pinned snapshots rely on.
    append_only: bool,
}

impl ValueInterner {
    /// An empty interner.
    pub fn new() -> Self {
        ValueInterner::default()
    }

    /// An empty **append-only** interner: [`ValueInterner::release_row`]
    /// never unmaps ids and slots are never recycled, so the table grows
    /// monotonically and every id below [`ValueInterner::epoch`] stays
    /// resolvable forever. This is the mode the snapshot-isolated catalog
    /// uses — a reader pinned at an old generation may resolve ids whose
    /// rows have long been deleted at the head.
    pub fn new_append_only() -> Self {
        ValueInterner {
            append_only: true,
            ..ValueInterner::default()
        }
    }

    /// The interner's epoch: the number of slots ever allocated. In
    /// append-only mode this is monotone and ids `0..epoch()` are frozen —
    /// a reader that recorded `epoch()` at pin time may resolve any id it
    /// saw then without coordinating with writers that have since
    /// interned more values.
    pub fn epoch(&self) -> u64 {
        self.values.len() as u64
    }

    /// Number of distinct values currently mapped (retained or freshly
    /// interned, excluding recycled slots).
    pub fn len(&self) -> usize {
        self.values.len() - self.free.len()
    }

    /// Whether no value is currently mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-size the table for `additional` more distinct values. Bulk
    /// compilers ([`CompiledRows`], the columnar
    /// [`ColumnStore`](crate::column::ColumnStore)) reserve the cell count
    /// up front so interning never pays an incremental rehash.
    pub fn reserve(&mut self, additional: usize) {
        self.int_ids.reserve(additional);
        self.values.reserve(additional);
        self.refs.reserve(additional);
    }

    /// Pre-size **both** hash tables for `additional` more distinct values
    /// of any kind. [`ValueInterner::reserve`] deliberately sizes only the
    /// `Int` fast path — right for row compilers, whose non-int vocabulary
    /// is a handful of column names' worth — but the spill/merge re-read
    /// path ([`crate::spill::reintern_merged`]) bulk-interns runs of
    /// arbitrary values, and feeding those through an unsized general
    /// table rehashes it repeatedly mid-stream. With a sized hint from the
    /// run manifest, the intake allocates once and never rehashes (see the
    /// capacity-stability unit test).
    pub fn reserve_distinct(&mut self, additional: usize) {
        self.int_ids.reserve(additional);
        self.ids.reserve(additional);
        self.values.reserve(additional);
        self.refs.reserve(additional);
    }

    /// Current capacities of the `(int, general)` hash tables. This is the
    /// observability hook for the no-rehash contract of sized bulk
    /// intakes: capacities that are unchanged after an intake prove no
    /// rehash happened.
    pub fn table_capacities(&self) -> (usize, usize) {
        (self.int_ids.capacity(), self.ids.capacity())
    }

    /// Allocate (or recycle) a slot for a fresh value.
    fn fresh_slot(
        values: &mut Vec<Value>,
        refs: &mut Vec<u32>,
        free: &mut Vec<u32>,
        v: &Value,
    ) -> u32 {
        match free.pop() {
            Some(id) => {
                values[id as usize] = v.clone();
                id
            }
            None => {
                let id = u32::try_from(values.len()).expect("fewer than 2^32 live values");
                values.push(v.clone());
                refs.push(0);
                id
            }
        }
    }

    /// Intern a value, returning its (possibly pre-existing) id. Fresh
    /// values reuse a recycled slot when one is available. The returned id
    /// starts with no retained references; pin it with
    /// [`ValueInterner::retain_row`] once the referencing row is live.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Value::Int(i) = v {
            // One probe for hit and miss alike (the key is `Copy`).
            let (values, refs, free) = (&mut self.values, &mut self.refs, &mut self.free);
            return *self
                .int_ids
                .entry(*i)
                .or_insert_with(|| Self::fresh_slot(values, refs, free, v));
        }
        if let Some(&id) = self.ids.get(v) {
            return id;
        }
        let id = Self::fresh_slot(&mut self.values, &mut self.refs, &mut self.free, v);
        self.ids.insert(v.clone(), id);
        id
    }

    /// Id of an already-interned value, without allocating.
    pub fn lookup(&self, v: &Value) -> Option<u32> {
        match v {
            Value::Int(i) => self.int_ids.get(i).copied(),
            _ => self.ids.get(v).copied(),
        }
    }

    /// The value behind an id. Panics on ids from another interner; stale
    /// for ids released back to zero references.
    pub fn resolve(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// Intern every entry of a tuple slice into a raw row.
    pub fn intern_row(&mut self, values: &[Value]) -> Vec<u32> {
        values.iter().map(|v| self.intern(v)).collect()
    }

    /// Look up every entry of a tuple slice; `None` when any entry has
    /// never been interned (so the row cannot exist in any [`RowSet`]).
    pub fn lookup_row(&self, values: &[Value]) -> Option<Vec<u32>> {
        values.iter().map(|v| self.lookup(v)).collect()
    }

    /// Resolve a raw row back to values.
    pub fn resolve_row(&self, row: &[u32]) -> Vec<Value> {
        row.iter().map(|&id| self.resolve(id).clone()).collect()
    }

    /// Add one retained reference per entry of a live row.
    pub fn retain_row(&mut self, row: &[u32]) {
        for &id in row {
            self.refs[id as usize] += 1;
        }
    }

    /// Drop one reference per entry of a deleted row; ids reaching zero
    /// references are unmapped and their slots recycled.
    ///
    /// In [append-only](ValueInterner::new_append_only) mode this is a
    /// no-op: deleted rows' values stay mapped so pinned snapshots keep
    /// resolving them (the table is only ever compacted by rebuilding the
    /// catalog).
    pub fn release_row(&mut self, row: &[u32]) {
        if self.append_only {
            return;
        }
        for &id in row {
            let r = &mut self.refs[id as usize];
            debug_assert!(*r > 0, "released a row that was never retained");
            *r -= 1;
            if *r == 0 {
                let v = std::mem::replace(&mut self.values[id as usize], Value::Null(id as u64));
                match v {
                    Value::Int(i) => {
                        self.int_ids.remove(&i);
                    }
                    other => {
                        self.ids.remove(&other);
                    }
                }
                self.free.push(id);
            }
        }
    }
}

/// A set of raw `u32` rows — one relation's live tuples in compiled form.
///
/// Mirrors the set semantics of [`crate::relation::Relation`]: inserting a
/// present row and removing an absent row are no-ops, and both report
/// whether they changed the set so callers can skip index maintenance for
/// no-op mutations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowSet {
    rows: FastSet<Vec<u32>>,
}

impl RowSet {
    /// An empty row set.
    pub fn new() -> Self {
        RowSet::default()
    }

    /// Insert a row; returns whether it was new.
    pub fn insert(&mut self, row: Vec<u32>) -> bool {
        self.rows.insert(row)
    }

    /// Remove a row; returns whether it was present.
    pub fn remove(&mut self, row: &[u32]) -> bool {
        self.rows.remove(row)
    }

    /// Whether the row is present.
    pub fn contains(&self, row: &[u32]) -> bool {
        self.rows.contains(row)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate the rows (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Vec<u32>> {
        self.rows.iter()
    }
}

impl<'a> IntoIterator for &'a RowSet {
    type Item = &'a Vec<u32>;
    type IntoIter = std::collections::hash_set::Iter<'a, Vec<u32>>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

/// A [`Database`] compiled once into raw rows for whole-database scans: a
/// shared [`ValueInterner`] plus each relation's tuples as `u32` rows, in
/// schema order.
///
/// This is the read-only sibling of the incremental validator's mutable
/// state, kept as the row-major **reference representation**: the hot
/// scans now run over the struct-of-arrays
/// [`ColumnStore`](crate::column::ColumnStore) (same interner, same
/// row-major id assignment), and the differential tests compare the two.
/// Nothing is ever released, so the ids stay dense
/// (`0..self.interner().len()`) and stable for the lifetime of the
/// compilation; callers may address per-value side tables by id. Rows of
/// the relation at schema index `i` follow the same
/// [`RelId::index`](crate::intern::RelId::index) addressing convention as
/// the chase and the validator, and preserve the relation's deterministic
/// tuple order.
#[derive(Debug, Clone)]
pub struct CompiledRows {
    interner: ValueInterner,
    rows: Vec<Vec<Vec<u32>>>,
}

impl CompiledRows {
    /// Compile every tuple of `db`, relation by relation in schema order.
    pub fn new(db: &Database) -> Self {
        let mut interner = ValueInterner::new();
        interner.reserve(
            db.relations()
                .iter()
                .map(|r| r.len() * r.scheme().arity())
                .sum(),
        );
        let rows = db
            .relations()
            .iter()
            .map(|r| {
                r.tuples()
                    .map(|t| interner.intern_row(t.values()))
                    .collect()
            })
            .collect();
        CompiledRows { interner, rows }
    }

    /// The shared value table. Ids are dense: `0..interner().len()`.
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// The raw rows of the relation at schema index `rel`.
    pub fn rows(&self, rel: usize) -> &[Vec<u32>] {
        &self.rows[rel]
    }

    /// Number of relations (= number of schema schemes).
    pub fn relation_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of distinct values across the whole database.
    pub fn distinct_values(&self) -> usize {
        self.interner.len()
    }

    /// Total number of compiled rows.
    pub fn total_rows(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// A refcounted multiset of projection keys: `key → count of rows
/// projecting to it`.
///
/// This is the index the incremental validator keeps per IND side (and,
/// nested, per FD group): satisfaction only depends on whether a key's
/// count is zero, so [`add`](ProjectionIndex::add) /
/// [`remove`](ProjectionIndex::remove) return the post-operation count and
/// callers react to the `0 ↔ 1` transitions alone. Keys with count zero
/// are evicted eagerly, keeping the map proportional to the *live* rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProjectionIndex {
    counts: FastMap<Vec<u32>, u32>,
}

impl ProjectionIndex {
    /// An empty index.
    pub fn new() -> Self {
        ProjectionIndex::default()
    }

    /// Add one reference to `key`, returning the count after the add (so
    /// `1` means the key just became present).
    pub fn add(&mut self, key: Vec<u32>) -> u32 {
        match self.counts.entry(key) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += 1;
                *e.get()
            }
            Entry::Vacant(e) => {
                e.insert(1);
                1
            }
        }
    }

    /// Borrow-keyed [`ProjectionIndex::add`]: the key is cloned into the
    /// table only on its `0 → 1` transition, so bulk builders that gather
    /// keys into a reused buffer allocate once per *distinct* key instead
    /// of once per row.
    pub fn add_ref(&mut self, key: &[u32]) -> u32 {
        match self.counts.get_mut(key) {
            Some(c) => {
                *c += 1;
                *c
            }
            None => {
                self.counts.insert(key.to_vec(), 1);
                1
            }
        }
    }

    /// Drop one reference to `key`, returning the count after the drop (so
    /// `0` means the key just disappeared). Removing an absent key is a
    /// logic error upstream; it debug-panics and returns `0` in release.
    pub fn remove(&mut self, key: &[u32]) -> u32 {
        match self.counts.get_mut(key) {
            Some(c) if *c > 1 => {
                *c -= 1;
                *c
            }
            Some(_) => {
                self.counts.remove(key);
                0
            }
            None => {
                debug_assert!(false, "removed a key that was never added");
                0
            }
        }
    }

    /// Current reference count of `key` (zero when absent).
    pub fn count(&self, key: &[u32]) -> u32 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys with a nonzero count.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether no key is referenced.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate the live keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = &Vec<u32>> {
        self.counts.keys()
    }
}

/// A generation-stamped `u32` value: the full history of `(generation,
/// value)` changes, pruned below a caller-supplied watermark.
///
/// This is the cell type of [`VersionedIndex`] — the multi-version sibling
/// of a plain refcount. Readers ask for the value *as of* a pinned
/// generation ([`GenValue::at`]); writers stamp a new value at the commit
/// generation ([`GenValue::set`]). History below the watermark — the
/// oldest generation any reader still has pinned — is unobservable and is
/// pruned on every touch, so a hot cell's history stays as short as the
/// snapshot horizon, not as long as the commit log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenValue {
    /// `(generation, value)` entries, strictly ascending by generation.
    hist: Vec<(u64, u32)>,
}

impl GenValue {
    /// The value as of generation `gen`: the last entry stamped at or
    /// before `gen`, or `0` when the cell had not been written yet (zero
    /// is the universal initial state of every counter here).
    pub fn at(&self, gen: u64) -> u32 {
        match self.hist.partition_point(|e| e.0 <= gen) {
            0 => 0,
            i => self.hist[i - 1].1,
        }
    }

    /// The most recently stamped value (`0` when never written).
    pub fn latest(&self) -> u32 {
        self.hist.last().map_or(0, |e| e.1)
    }

    /// Stamp `value` at `gen`, then prune history that no reader at or
    /// above `watermark` can observe. Re-stamping the current generation
    /// overwrites in place (several changes within one commit collapse to
    /// the committed outcome); stamping a generation below the newest is a
    /// caller bug.
    pub fn set(&mut self, gen: u64, value: u32, watermark: u64) {
        match self.hist.last_mut() {
            Some(last) if last.0 == gen => last.1 = value,
            Some(last) => {
                debug_assert!(last.0 < gen, "generation stamps must be monotone");
                self.hist.push((gen, value));
            }
            None => self.hist.push((gen, value)),
        }
        self.prune(watermark);
    }

    /// Drop entries no reader at or above `watermark` can observe: entry
    /// `0` is dead as soon as entry `1` is already visible at the
    /// watermark. Histories are short (they are pruned on every touch), so
    /// the front-removal is cheap.
    pub fn prune(&mut self, watermark: u64) {
        while self.hist.len() >= 2 && self.hist[1].0 <= watermark {
            self.hist.remove(0);
        }
    }

    /// Drop entries no *live* reader can observe, given the full sorted
    /// set of pinned generations rather than just their minimum.
    ///
    /// [`GenValue::prune`]'s single watermark keeps every entry above the
    /// oldest pin — so one long-lived snapshot pinned below an oscillating
    /// counter makes its history grow with the commit log even though the
    /// generations between the pin and the head are unobservable. Here an
    /// entry `(g_i, v)` survives only if it is the newest (it serves the
    /// head and every future snapshot) or some pin `p` satisfies
    /// `g_i ≤ p < g_{i+1}`: exactly the entries some reader can still
    /// resolve through [`GenValue::at`]. With no pins the history
    /// collapses to its newest entry.
    pub fn prune_sparse(&mut self, pins: &[u64]) {
        debug_assert!(pins.windows(2).all(|w| w[0] <= w[1]), "pins must be sorted");
        if self.hist.len() <= 1 {
            return;
        }
        let last = self.hist.len() - 1;
        let mut kept = 0;
        for i in 0..self.hist.len() {
            let observable = i == last || {
                let lo = self.hist[i].0;
                let hi = self.hist[i + 1].0;
                let p = pins.partition_point(|&p| p < lo);
                p < pins.len() && pins[p] < hi
            };
            if observable {
                self.hist[kept] = self.hist[i];
                kept += 1;
            }
        }
        self.hist.truncate(kept);
    }

    /// Whether the cell is unobservable at every generation at or above
    /// the pruning watermark — a single all-zero entry (or none), i.e. a
    /// candidate for eviction by [`VersionedIndex::vacuum`].
    pub fn is_dead(&self) -> bool {
        match self.hist.as_slice() {
            [] => true,
            [(_, v)] => *v == 0,
            _ => false,
        }
    }

    /// Number of retained history entries (diagnostics and tests).
    pub fn depth(&self) -> usize {
        self.hist.len()
    }
}

/// The generation-counted sibling of [`ProjectionIndex`]: a multiset of
/// projection keys whose per-key count is a full [`GenValue`] history
/// instead of a single `u32`.
///
/// This is what lets one catalog serve snapshot reads *during* writes: a
/// writer commits generation `g+1` by stamping new counts at `g+1`
/// ([`VersionedIndex::add`] / [`VersionedIndex::remove`]), while a reader
/// pinned at `g` keeps probing [`VersionedIndex::count_at`]`(key, g)` and
/// observes the exact pre-commit counts. The `0 ↔ 1` transition discipline
/// of [`ProjectionIndex`] carries over unchanged — both mutators return
/// the post-operation count at the head.
///
/// Space discipline: histories are pruned against the snapshot watermark
/// on every touch, and [`VersionedIndex::vacuum`] evicts keys whose entire
/// observable history is zero. Between vacuums a dead key costs one map
/// entry — the price of readers being allowed to lag.
#[derive(Debug, Clone, Default)]
pub struct VersionedIndex {
    counts: FastMap<Vec<u32>, GenValue>,
}

impl VersionedIndex {
    /// An empty index.
    pub fn new() -> Self {
        VersionedIndex::default()
    }

    /// The count of `key` as of generation `gen` (zero when absent).
    pub fn count_at(&self, key: &[u32], gen: u64) -> u32 {
        self.counts.get(key).map_or(0, |g| g.at(gen))
    }

    /// The count of `key` at the newest generation (zero when absent).
    pub fn latest(&self, key: &[u32]) -> u32 {
        self.counts.get(key).map_or(0, GenValue::latest)
    }

    /// Add one reference to `key`, stamped at `gen`; returns the count
    /// after the add (so `1` means the key just became present at `gen`).
    pub fn add(&mut self, key: &[u32], gen: u64, watermark: u64) -> u32 {
        match self.counts.get_mut(key) {
            Some(g) => {
                let c = g.latest() + 1;
                g.set(gen, c, watermark);
                c
            }
            None => {
                let mut g = GenValue::default();
                g.set(gen, 1, watermark);
                self.counts.insert(key.to_vec(), g);
                1
            }
        }
    }

    /// Drop one reference to `key`, stamped at `gen`; returns the count
    /// after the drop (so `0` means the key just disappeared at `gen`).
    /// Removing an absent key is a logic error upstream; it debug-panics
    /// and returns `0` in release.
    pub fn remove(&mut self, key: &[u32], gen: u64, watermark: u64) -> u32 {
        match self.counts.get_mut(key) {
            Some(g) if g.latest() > 0 => {
                let c = g.latest() - 1;
                g.set(gen, c, watermark);
                c
            }
            _ => {
                debug_assert!(false, "removed a key that was never added");
                0
            }
        }
    }

    /// Stamp an explicit count for `key` at `gen` (used for 0/1-valued
    /// membership and violation flags).
    pub fn set(&mut self, key: &[u32], gen: u64, value: u32, watermark: u64) {
        match self.counts.get_mut(key) {
            Some(g) => g.set(gen, value, watermark),
            None => {
                if value == 0 {
                    return; // absent and zero: nothing to record
                }
                let mut g = GenValue::default();
                g.set(gen, value, watermark);
                self.counts.insert(key.to_vec(), g);
            }
        }
    }

    /// Iterate the keys whose count at generation `gen` is positive
    /// (arbitrary order).
    pub fn keys_at(&self, gen: u64) -> impl Iterator<Item = &Vec<u32>> {
        self.counts
            .iter()
            .filter(move |(_, g)| g.at(gen) > 0)
            .map(|(k, _)| k)
    }

    /// Iterate every key with its count as of generation `gen`, zero
    /// counts included (arbitrary order) — the enumeration primitive
    /// violation reporting filters over.
    pub fn iter_at(&self, gen: u64) -> impl Iterator<Item = (&Vec<u32>, u32)> {
        self.counts.iter().map(move |(k, g)| (k, g.at(gen)))
    }

    /// Prune every history against `watermark` and evict keys left with no
    /// observable nonzero count. `O(keys)` — run occasionally, not per
    /// commit.
    pub fn vacuum(&mut self, watermark: u64) {
        self.counts.retain(|_, g| {
            g.prune(watermark);
            !g.is_dead()
        });
    }

    /// [`VersionedIndex::vacuum`] against the full pinned-generation set
    /// (see [`GenValue::prune_sparse`]): drops the history entries between
    /// pins that a min-watermark prune would retain forever under a
    /// long-lived snapshot.
    pub fn vacuum_sparse(&mut self, pins: &[u64]) {
        self.counts.retain(|_, g| {
            g.prune_sparse(pins);
            !g.is_dead()
        });
    }

    /// Number of keys currently stored, dead histories included
    /// (diagnostics and tests; see [`VersionedIndex::vacuum`]).
    pub fn key_count(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_distinct_prevents_rehash_during_bulk_intake() {
        let n = 10_000;
        let mut vi = ValueInterner::new();
        vi.reserve_distinct(2 * n);
        let (int_cap, gen_cap) = vi.table_capacities();
        assert!(int_cap >= n && gen_cap >= n);
        // A merged-run-sized intake of mixed kinds: with the sized hint in
        // place, neither table may grow (capacity growth == a rehash).
        for i in 0..n as i64 {
            vi.intern(&Value::Int(i));
            vi.intern(&Value::Str(format!("s{i}").into()));
        }
        assert_eq!(
            vi.table_capacities(),
            (int_cap, gen_cap),
            "bulk intake rehashed a table despite the sized hint"
        );
        // Contrast: the row-compiler `reserve` leaves the general table
        // unsized, so the same intake without `reserve_distinct` *does*
        // grow it — the bug the sized-hint intake exists to fix.
        let mut unsized_vi = ValueInterner::new();
        unsized_vi.reserve(2 * n);
        let (_, gen_before) = unsized_vi.table_capacities();
        for i in 0..n as i64 {
            unsized_vi.intern(&Value::Str(format!("s{i}").into()));
        }
        let (_, gen_after) = unsized_vi.table_capacities();
        assert!(gen_after > gen_before);
    }

    #[test]
    fn interner_roundtrip_and_lookup() {
        let mut vi = ValueInterner::new();
        let a = vi.intern(&Value::Int(7));
        let b = vi.intern(&Value::str("x"));
        assert_eq!(vi.intern(&Value::Int(7)), a);
        assert_ne!(a, b);
        assert_eq!(vi.len(), 2);
        assert_eq!(vi.resolve(a), &Value::Int(7));
        assert_eq!(vi.lookup(&Value::str("x")), Some(b));
        assert_eq!(vi.lookup(&Value::Int(8)), None);

        let row = vi.intern_row(&[Value::Int(7), Value::str("x")]);
        assert_eq!(
            vi.lookup_row(&[Value::Int(7), Value::str("x")]),
            Some(row.clone())
        );
        assert_eq!(vi.lookup_row(&[Value::Int(9)]), None);
        assert_eq!(vi.resolve_row(&row), vec![Value::Int(7), Value::str("x")]);
    }

    #[test]
    fn interner_recycles_released_ids() {
        let mut vi = ValueInterner::new();
        let row = vi.intern_row(&[Value::Int(1), Value::Int(2)]);
        vi.retain_row(&row);
        assert_eq!(vi.len(), 2);

        // Shared value: a second row retains id 1 again.
        let row2 = vi.intern_row(&[Value::Int(2), Value::Int(3)]);
        vi.retain_row(&row2);
        assert_eq!(vi.len(), 3);

        // Releasing the first row frees only the now-unreferenced Int(1).
        vi.release_row(&row);
        assert_eq!(vi.len(), 2);
        assert_eq!(vi.lookup(&Value::Int(1)), None);
        assert_eq!(vi.lookup(&Value::Int(2)), Some(row[1]));

        // The freed slot is recycled for the next fresh value, so churn
        // does not grow the table.
        let recycled = vi.intern(&Value::str("fresh"));
        assert_eq!(recycled, row[0]);
        assert_eq!(vi.len(), 3);
        assert_eq!(vi.resolve(recycled), &Value::str("fresh"));
    }

    #[test]
    fn compiled_rows_share_one_interner() {
        use crate::database::Database;
        use crate::schema::DatabaseSchema;

        let schema = DatabaseSchema::parse(&["R(A, B)", "S(B)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_ints("R", &[&[1, 2], &[3, 2]]).unwrap();
        db.insert_ints("S", &[&[2]]).unwrap();

        let compiled = CompiledRows::new(&db);
        assert_eq!(compiled.relation_count(), 2);
        assert_eq!(compiled.total_rows(), 3);
        // Values 1, 2, 3 — the shared 2 interned once.
        assert_eq!(compiled.distinct_values(), 3);
        let two = compiled.interner().lookup(&Value::Int(2)).unwrap();
        assert!(compiled.rows(0).iter().all(|row| row[1] == two));
        assert_eq!(compiled.rows(1), &[vec![two]]);
    }

    #[test]
    fn rowset_has_set_semantics() {
        let mut rs = RowSet::new();
        assert!(rs.insert(vec![1, 2]));
        assert!(!rs.insert(vec![1, 2]));
        assert!(rs.contains(&[1, 2]));
        assert_eq!(rs.len(), 1);
        assert!(rs.remove(&[1, 2]));
        assert!(!rs.remove(&[1, 2]));
        assert!(rs.is_empty());
    }

    #[test]
    fn append_only_interner_never_recycles() {
        let mut vi = ValueInterner::new_append_only();
        assert_eq!(vi.epoch(), 0);
        let row = vi.intern_row(&[Value::Int(1), Value::Int(2)]);
        assert_eq!(vi.epoch(), 2);
        // Releasing is a no-op: the ids stay resolvable (a pinned snapshot
        // may still hold them) and no slot is recycled.
        vi.release_row(&row);
        assert_eq!(vi.resolve(row[0]), &Value::Int(1));
        assert_eq!(vi.lookup(&Value::Int(1)), Some(row[0]));
        let fresh = vi.intern(&Value::str("later"));
        assert!(fresh > row[1], "no slot recycling in append-only mode");
        assert_eq!(vi.epoch(), 3);
        // Epoch is monotone: re-interning existing values does not move it.
        vi.intern(&Value::Int(1));
        assert_eq!(vi.epoch(), 3);
    }

    #[test]
    fn gen_value_reads_as_of_any_generation() {
        let mut g = GenValue::default();
        assert_eq!(g.at(0), 0);
        assert_eq!(g.latest(), 0);
        g.set(3, 5, 0);
        g.set(7, 2, 0);
        g.set(7, 9, 0); // same-generation overwrite collapses
        assert_eq!(g.at(2), 0);
        assert_eq!(g.at(3), 5);
        assert_eq!(g.at(6), 5);
        assert_eq!(g.at(7), 9);
        assert_eq!(g.at(100), 9);
        assert_eq!(g.latest(), 9);
        assert_eq!(g.depth(), 2);
        // Pruning at watermark 7: the (3, 5) entry is unobservable.
        g.prune(7);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.at(7), 9);
        // Readers at/above the watermark still see the same world; a read
        // below the watermark would be a protocol violation anyway.
        assert!(!g.is_dead());
        g.set(9, 0, 9);
        assert!(g.is_dead());
    }

    #[test]
    fn sparse_prune_keeps_exactly_what_pins_can_observe() {
        // An oscillating counter stamped at generations 1..=8.
        let mut g = GenValue::default();
        for gen in 1..=8u64 {
            g.set(gen, (gen % 2) as u32, 0);
        }
        assert_eq!(g.depth(), 8);
        // A pin at 3 and one at 6: every pinned read and every read at or
        // past the head must survive the prune; everything else may go.
        let before: Vec<u32> = [3u64, 6, 8, 100].iter().map(|&p| g.at(p)).collect();
        g.prune_sparse(&[3, 6]);
        let after: Vec<u32> = [3u64, 6, 8, 100].iter().map(|&p| g.at(p)).collect();
        assert_eq!(before, after);
        assert_eq!(g.depth(), 3, "entries at 3, 6, and the head remain");
        // No pins at all: only the newest entry is observable.
        g.prune_sparse(&[]);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.at(100), 0);
    }

    #[test]
    fn sparse_vacuum_evicts_dead_keys_like_the_watermark_form() {
        let mut idx = VersionedIndex::new();
        assert_eq!(idx.add(&[1], 1, 0), 1);
        assert_eq!(idx.remove(&[1], 2, 0), 0);
        assert_eq!(idx.add(&[2], 2, 0), 1);
        // A pin at generation 1 keeps key [1] observable.
        idx.vacuum_sparse(&[1]);
        assert_eq!(idx.count_at(&[1], 1), 1);
        assert_eq!(idx.key_count(), 2);
        // Pin released: the dead key is evicted, the live one survives.
        idx.vacuum_sparse(&[]);
        assert_eq!(idx.key_count(), 1);
        assert_eq!(idx.latest(&[2]), 1);
    }

    #[test]
    fn versioned_index_serves_old_generations_during_writes() {
        let mut idx = VersionedIndex::new();
        assert_eq!(idx.add(&[1], 1, 0), 1);
        assert_eq!(idx.add(&[1], 2, 0), 2);
        assert_eq!(idx.add(&[2], 2, 0), 1);
        // A reader pinned at generation 1 sees the pre-commit counts.
        assert_eq!(idx.count_at(&[1], 1), 1);
        assert_eq!(idx.count_at(&[2], 1), 0);
        assert_eq!(idx.count_at(&[1], 2), 2);
        assert_eq!(idx.latest(&[2]), 1);
        // Removal stamps a new generation without disturbing old readers.
        assert_eq!(idx.remove(&[1], 3, 0), 1);
        assert_eq!(idx.remove(&[1], 4, 0), 0);
        assert_eq!(idx.count_at(&[1], 2), 2);
        assert_eq!(idx.count_at(&[1], 4), 0);
        let at2: Vec<_> = idx.keys_at(2).collect();
        assert_eq!(at2.len(), 2);
        let at4: Vec<_> = idx.keys_at(4).collect();
        assert_eq!(at4, vec![&vec![2]]);
        // Vacuum at watermark 4 evicts the dead key entirely.
        assert_eq!(idx.key_count(), 2);
        idx.vacuum(4);
        assert_eq!(idx.key_count(), 1);
        assert_eq!(idx.count_at(&[2], 4), 1);
    }

    #[test]
    fn versioned_index_set_skips_dead_zero_writes() {
        let mut idx = VersionedIndex::new();
        idx.set(&[7], 1, 0, 0); // absent + zero: not recorded
        assert_eq!(idx.key_count(), 0);
        idx.set(&[7], 2, 1, 0);
        idx.set(&[7], 3, 0, 0);
        assert_eq!(idx.count_at(&[7], 2), 1);
        assert_eq!(idx.count_at(&[7], 3), 0);
    }

    #[test]
    fn projection_index_refcounts() {
        let mut idx = ProjectionIndex::new();
        assert_eq!(idx.add(vec![1]), 1);
        assert_eq!(idx.add(vec![1]), 2);
        assert_eq!(idx.add(vec![2]), 1);
        assert_eq!(idx.count(&[1]), 2);
        assert_eq!(idx.distinct(), 2);
        assert_eq!(idx.remove(&[1]), 1);
        assert_eq!(idx.remove(&[1]), 0);
        assert_eq!(idx.count(&[1]), 0);
        // Count-zero keys are evicted.
        assert_eq!(idx.distinct(), 1);
        assert!(!idx.is_empty());
        assert_eq!(idx.remove(&[2]), 0);
        assert!(idx.is_empty());
    }
}
