//! The interned symbol catalog: dense ids for attributes and relation
//! names, plus the compact id-level containers the compiled engines run on.
//!
//! Every hot path in the workspace — the Beeri–Bernstein FD closure, the
//! Corollary 3.2 IND worklist search, the Rule (*) chase — is a fixpoint
//! computation over a *fixed* vocabulary of symbols. Comparing and hashing
//! heap strings inside those loops costs far more than the arithmetic the
//! paper's complexity analysis counts, so the engines intern once at the
//! boundary and compute over ids:
//!
//! * [`Catalog`] — a bidirectional symbol table mapping [`Attr`]/[`RelName`]
//!   to dense [`AttrId`]/[`RelId`] (assigned `0, 1, 2, ...` in first-seen
//!   order) and back. Interning is explicit and local: each engine owns the
//!   catalog for its own `Σ`, so ids are never valid across engines.
//! * [`AttrBitSet`] — an attribute set over `u64` blocks; insert, member,
//!   union, and subset are word operations, which is what makes the FD
//!   closure's working set cache-resident.
//! * [`IdSeq`] — an immutable ordered sequence of [`AttrId`]s, the compiled
//!   form of [`AttrSeq`]. Cheap to hash and compare, it is the visited-set
//!   key of the IND solver's expression search.
//!
//! String-typed public APIs stay as thin wrappers: they intern at the call
//! boundary (`Catalog::lookup_*` for queries, `Catalog::intern_*` during
//! construction) and resolve ids back to names only when producing output.

use crate::attr::{Attr, AttrSeq};
use crate::schema::{DatabaseSchema, RelName};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense id of an interned attribute (index into its [`Catalog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(u32);

impl AttrId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build an id from an index (caller promises it came from a catalog).
    pub fn from_index(i: usize) -> Self {
        AttrId(u32::try_from(i).expect("catalog holds fewer than 2^32 attributes"))
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Dense id of an interned relation name (index into its [`Catalog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(u32);

impl RelId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build an id from an index (caller promises it came from a catalog).
    pub fn from_index(i: usize) -> Self {
        RelId(u32::try_from(i).expect("catalog holds fewer than 2^32 relations"))
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A bidirectional symbol table assigning dense ids to attributes and
/// relation names.
///
/// Ids are handed out in first-intern order, so `Catalog::from_schema`
/// guarantees `RelId::index` equals the scheme's declaration index — the
/// chase engines rely on that to address per-relation state by `RelId`.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    attrs: Vec<Arc<str>>,
    rels: Vec<Arc<str>>,
    attr_ids: HashMap<Arc<str>, AttrId>,
    rel_ids: HashMap<Arc<str>, RelId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// A catalog pre-seeded with every relation name and attribute of
    /// `schema`, in declaration order (so `RelId::index` = scheme index).
    pub fn from_schema(schema: &DatabaseSchema) -> Self {
        let mut cat = Catalog::new();
        for scheme in schema.schemes() {
            cat.intern_rel(scheme.name());
            for a in scheme.attrs() {
                cat.intern_attr(a);
            }
        }
        cat
    }

    /// Number of interned attributes (= the exclusive upper bound on
    /// `AttrId::index`).
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of interned relation names.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// Intern an attribute, returning its (possibly pre-existing) id.
    pub fn intern_attr(&mut self, attr: &Attr) -> AttrId {
        if let Some(&id) = self.attr_ids.get(attr.shared()) {
            return id;
        }
        let id = AttrId::from_index(self.attrs.len());
        let s = Arc::clone(attr.shared());
        self.attrs.push(Arc::clone(&s));
        self.attr_ids.insert(s, id);
        id
    }

    /// Intern a relation name, returning its (possibly pre-existing) id.
    pub fn intern_rel(&mut self, rel: &RelName) -> RelId {
        if let Some(&id) = self.rel_ids.get(rel.shared()) {
            return id;
        }
        let id = RelId::from_index(self.rels.len());
        let s = Arc::clone(rel.shared());
        self.rels.push(Arc::clone(&s));
        self.rel_ids.insert(s, id);
        id
    }

    /// Intern every attribute of `seq`, in order.
    pub fn intern_attrs(&mut self, seq: &AttrSeq) -> IdSeq {
        seq.attrs().iter().map(|a| self.intern_attr(a)).collect()
    }

    /// Id of an already-interned attribute.
    pub fn attr_id(&self, attr: &Attr) -> Option<AttrId> {
        self.attr_ids.get(attr.shared()).copied()
    }

    /// Id of an already-interned relation name.
    pub fn rel_id(&self, rel: &RelName) -> Option<RelId> {
        self.rel_ids.get(rel.shared()).copied()
    }

    /// Ids of an attribute sequence, or `None` if any attribute is unknown
    /// to this catalog (the query-boundary lookup).
    pub fn lookup_attrs(&self, seq: &AttrSeq) -> Option<IdSeq> {
        seq.attrs().iter().map(|a| self.attr_id(a)).collect()
    }

    /// The attribute behind an id. Panics on ids from another catalog.
    pub fn resolve_attr(&self, id: AttrId) -> Attr {
        Attr::from_shared(Arc::clone(&self.attrs[id.index()]))
    }

    /// The relation name behind an id. Panics on ids from another catalog.
    pub fn resolve_rel(&self, id: RelId) -> RelName {
        RelName::from_shared(Arc::clone(&self.rels[id.index()]))
    }

    /// Resolve an id sequence back to an attribute sequence.
    ///
    /// Panics if `ids` contains duplicates (catalog ids are injective, so a
    /// sequence interned from a valid [`AttrSeq`] never does).
    pub fn resolve_attrs(&self, ids: &IdSeq) -> AttrSeq {
        AttrSeq::new(ids.ids().iter().map(|&id| self.resolve_attr(id)).collect())
            .expect("distinct ids resolve to distinct attributes")
    }
}

/// An attribute set over dense [`AttrId`]s, stored as `u64` blocks.
///
/// All operations are branch-light word arithmetic; the set grows on demand
/// so callers may insert ids beyond the initial capacity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttrBitSet {
    blocks: Vec<u64>,
}

impl AttrBitSet {
    /// An empty set.
    pub fn new() -> Self {
        AttrBitSet::default()
    }

    /// An empty set pre-sized for ids `0..n` (avoids growth in hot loops).
    pub fn with_capacity(n: usize) -> Self {
        AttrBitSet {
            blocks: vec![0; n.div_ceil(64)],
        }
    }

    /// Insert an id; returns whether it was newly added.
    pub fn insert(&mut self, id: AttrId) -> bool {
        let (block, bit) = (id.index() / 64, id.index() % 64);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: AttrId) -> bool {
        let (block, bit) = (id.index() / 64, id.index() % 64);
        self.blocks.get(block).is_some_and(|b| b & (1 << bit) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Set union in place; returns whether `self` changed.
    pub fn union_with(&mut self, other: &AttrBitSet) -> bool {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        let mut changed = false;
        for (dst, &src) in self.blocks.iter_mut().zip(&other.blocks) {
            let next = *dst | src;
            changed |= next != *dst;
            *dst = next;
        }
        changed
    }

    /// Whether every id of `self` is in `other`.
    pub fn is_subset(&self, other: &AttrBitSet) -> bool {
        self.blocks.iter().enumerate().all(|(i, &b)| {
            let o = other.blocks.get(i).copied().unwrap_or(0);
            b & !o == 0
        })
    }

    /// Iterate the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut rest = block;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(AttrId::from_index(bi * 64 + bit))
            })
        })
    }
}

impl FromIterator<AttrId> for AttrBitSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        let mut s = AttrBitSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

/// An immutable ordered sequence of [`AttrId`]s — the compiled form of
/// [`AttrSeq`], and the visited-set key of the IND expression search.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdSeq(Box<[AttrId]>);

impl IdSeq {
    /// The ids, in order.
    pub fn ids(&self) -> &[AttrId] {
        &self.0
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Position of `id` within the sequence, if present.
    pub fn position(&self, id: AttrId) -> Option<usize> {
        self.0.iter().position(|&x| x == id)
    }

    /// The ids as a bit set (order forgotten).
    pub fn to_bitset(&self) -> AttrBitSet {
        self.0.iter().copied().collect()
    }
}

impl From<Vec<AttrId>> for IdSeq {
    fn from(v: Vec<AttrId>) -> Self {
        IdSeq(v.into_boxed_slice())
    }
}

impl FromIterator<AttrId> for IdSeq {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        IdSeq(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a IdSeq {
    type Item = &'a AttrId;
    type IntoIter = std::slice::Iter<'a, AttrId>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut cat = Catalog::new();
        let a = cat.intern_attr(&Attr::new("A"));
        let b = cat.intern_attr(&Attr::new("B"));
        assert_eq!(cat.intern_attr(&Attr::new("A")), a);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(cat.attr_count(), 2);
        assert_eq!(cat.resolve_attr(a), Attr::new("A"));
        assert_eq!(cat.attr_id(&Attr::new("B")), Some(b));
        assert_eq!(cat.attr_id(&Attr::new("Z")), None);
    }

    #[test]
    fn rel_interning_mirrors_attrs() {
        let mut cat = Catalog::new();
        let r = cat.intern_rel(&RelName::new("R"));
        let s = cat.intern_rel(&RelName::new("S"));
        assert_eq!(cat.intern_rel(&RelName::new("R")), r);
        assert_eq!((r.index(), s.index()), (0, 1));
        assert_eq!(cat.resolve_rel(s), RelName::new("S"));
    }

    #[test]
    fn seq_roundtrip_through_ids() {
        let mut cat = Catalog::new();
        let seq = attrs(&["C", "A", "B"]);
        let ids = cat.intern_attrs(&seq);
        assert_eq!(ids.len(), 3);
        assert_eq!(cat.resolve_attrs(&ids), seq);
        assert_eq!(cat.lookup_attrs(&seq), Some(ids));
        assert_eq!(cat.lookup_attrs(&attrs(&["A", "Z"])), None);
    }

    #[test]
    fn from_schema_ids_match_declaration_order() {
        let schema = DatabaseSchema::parse(&["R(A, B)", "S(B, C)"]).unwrap();
        let cat = Catalog::from_schema(&schema);
        assert_eq!(cat.rel_id(&RelName::new("R")).unwrap().index(), 0);
        assert_eq!(cat.rel_id(&RelName::new("S")).unwrap().index(), 1);
        // Shared attribute B interned once.
        assert_eq!(cat.attr_count(), 3);
    }

    #[test]
    fn bitset_operations() {
        let mut s = AttrBitSet::with_capacity(100);
        assert!(s.is_empty());
        assert!(s.insert(AttrId::from_index(3)));
        assert!(!s.insert(AttrId::from_index(3)));
        assert!(s.insert(AttrId::from_index(70)));
        // Growth past the initial capacity.
        assert!(s.insert(AttrId::from_index(200)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(AttrId::from_index(70)));
        assert!(!s.contains(AttrId::from_index(71)));
        let collected: Vec<usize> = s.iter().map(AttrId::index).collect();
        assert_eq!(collected, vec![3, 70, 200]);

        let small: AttrBitSet = [AttrId::from_index(3), AttrId::from_index(70)]
            .into_iter()
            .collect();
        assert!(small.is_subset(&s));
        assert!(!s.is_subset(&small));

        let mut u = small.clone();
        assert!(u.union_with(&s));
        assert!(!u.union_with(&s));
        assert_eq!(u, s);
    }

    #[test]
    fn idseq_position_and_bitset() {
        let ids: IdSeq = (0..4).map(AttrId::from_index).rev().collect();
        assert_eq!(ids.position(AttrId::from_index(3)), Some(0));
        assert_eq!(ids.position(AttrId::from_index(9)), None);
        assert_eq!(ids.to_bitset().len(), 4);
    }
}
