//! # depkit-core — dependency terms and the relational model layer
//!
//! This crate implements the definitions of Section 2 of Casanova, Fagin &
//! Papadimitriou, *Inclusion Dependencies and Their Interaction with
//! Functional Dependencies* (PODS 1982 / JCSS 28(1), 1984), together with
//! exact satisfaction checking and supporting machinery used by the rest of
//! the `depkit` workspace.
//!
//! ## The model
//!
//! Following the paper, a *relation scheme* is a named finite **sequence** of
//! attributes (not a set — sequences are essential so that functional and
//! inclusion dependencies can be interrelated positionally), a *tuple* over a
//! scheme is a sequence of values of the same length, and a *relation* is a
//! set of tuples. A *database schema* is a finite set of relation schemes and
//! a *database* assigns a relation to each scheme.
//!
//! ## Dependencies
//!
//! * [`Fd`] — functional dependency `R: X -> Y` with `X`, `Y` sequences of
//!   distinct attributes of `R`.
//! * [`Ind`] — inclusion dependency `R[X] ⊆ S[Y]` with `|X| = |Y|`.
//! * [`Rd`] — repeating dependency `R[X = Y]` (Section 4 of the paper).
//! * [`Emvd`] — embedded multivalued dependency `R: X ->> Y | Z`
//!   (used by Theorem 5.3, the Sagiv–Walecka family).
//!
//! ## The interned symbol catalog
//!
//! The [`intern`] module provides the compiled-representation layer the
//! implication engines run on: a [`Catalog`] mapping attribute and relation
//! names to dense `u32` ids, bit-set attribute sets ([`AttrBitSet`]), and
//! compact id sequences ([`IdSeq`]). String-typed APIs intern at their call
//! boundary and compute over ids; see the module docs for the contract.
//!
//! ## Mutation: deltas and serving indexes
//!
//! The [`delta`] module defines the mutation unit of the online-validation
//! workload — a [`Delta`] of deletions-then-insertions applied by
//! [`Database::apply_delta`] — and the [`index`] module provides the
//! refcounted structures over raw `u32` rows ([`ValueInterner`],
//! [`RowSet`], [`ProjectionIndex`]) that `depkit_solver::incremental`
//! composes into the delta-time constraint validator.
//!
//! ## Columnar storage and parallel scans
//!
//! The [`mod@column`] module compiles a whole database into struct-of-arrays
//! form — one dense `u32` id column per attribute ([`ColumnStore`]), with
//! sort-based grouping, sorted-distinct column views, and the radix-style
//! stripped-partition [`Refiner`] — so the hot whole-database scans
//! (dependency discovery above all) run over contiguous id runs instead of
//! per-row heap vectors. The [`pool`] module provides the scoped-thread
//! indexed parallel map those scans fan out on, and [`hashing`] the
//! deterministic fast hasher the id-keyed tables use.
//!
//! ## Out-of-core spill runs
//!
//! The [`spill`] module is the external-memory layer beneath memory-budgeted
//! discovery: sorted little-endian `u32` run files plus a per-attribute
//! manifest ([`RunSet`]), buffered streaming readers ([`RunCursor`]), a
//! deduplicating k-way merge ([`RunMerger`]) with fan-in-capped
//! consolidation passes, and the uniform [`DistinctStream`] iterator that
//! hides whether an attribute's sorted distinct ids come from RAM or disk.
//!
//! ## Durability: write-ahead log and checkpoints
//!
//! The [`wal`] module is the on-disk durability layer under the serve
//! catalog: length-prefixed FNV-1a64-checksummed commit frames
//! ([`scan_wal`], [`WalWriter`]), checksummed whole-state checkpoints
//! ([`CheckpointDoc`]) published via the spill-style atomic tmp→rename
//! protocol, torn-tail vs mid-log-corruption discrimination, and the
//! [`CrashPlan`] process-abort injection hook the crash-recovery
//! harness drives.
//!
//! ## Infinite relations
//!
//! Theorem 4.4 of the paper separates finite from unrestricted implication by
//! exhibiting *infinite* relations (Figures 4.1 and 4.2). The [`symbolic`]
//! module provides affine-pattern relations — a decidable class of infinite
//! relations closed under the reasoning the paper needs — so those witnesses
//! can be represented and checked exactly.
//!
//! ## Quick example
//!
//! ```
//! use depkit_core::prelude::*;
//!
//! let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "MGR(NAME, DEPT)"]).unwrap();
//! let ind: Dependency = "MGR[NAME, DEPT] <= EMP[NAME, DEPT]".parse().unwrap();
//! assert!(ind.is_well_formed(&schema).is_ok());
//!
//! let mut db = Database::empty(schema);
//! db.insert_str("EMP", &[&["hilbert", "math"], &["noether", "math"]]).unwrap();
//! db.insert_str("MGR", &[&["hilbert", "math"]]).unwrap();
//! assert!(db.satisfies(&ind).unwrap());
//! ```

pub mod attr;
pub mod column;
pub mod constraint;
pub mod database;
pub mod delta;
pub mod dependency;
pub mod error;
pub mod generate;
pub mod hashing;
pub mod index;
pub mod intern;
pub mod parser;
pub mod pool;
pub mod relation;
pub mod satisfy;
pub mod schema;
pub mod spill;
pub mod symbolic;
pub mod value;
pub mod wal;

pub use attr::{Attr, AttrSeq};
pub use column::{
    ChunkedColumn, ChunkedColumnSnapshot, ColumnCursor, ColumnSpill, ColumnStore, KeySet, Refiner,
    RelationColumns,
};
pub use constraint::ConstraintSet;
pub use database::Database;
pub use delta::{Delta, DeltaOutcome};
pub use dependency::{Dependency, Emvd, Fd, Ind, Rd};
pub use error::CoreError;
pub use index::{GenValue, ProjectionIndex, RowSet, ValueInterner, VersionedIndex};
pub use intern::{AttrBitSet, AttrId, Catalog, IdSeq, RelId};
pub use relation::{Relation, Tuple};
pub use schema::{DatabaseSchema, RelName, RelationScheme};
pub use spill::{
    load_verified_run_set, verify_run_set, DistinctStream, RunCursor, RunMerger, RunMeta, RunSet,
    SpillDir, SpillStats,
};
pub use value::Value;
pub use wal::{
    read_checkpoint, scan_wal, CheckpointDoc, CommitFrame, CrashPlan, CrashPoint, FsyncPolicy,
    WalHeader, WalScan, WalTail, WalWriter,
};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::attr::{Attr, AttrSeq};
    pub use crate::constraint::ConstraintSet;
    pub use crate::database::Database;
    pub use crate::delta::{Delta, DeltaOutcome};
    pub use crate::dependency::{Dependency, Emvd, Fd, Ind, Rd};
    pub use crate::error::CoreError;
    pub use crate::relation::{Relation, Tuple};
    pub use crate::satisfy::Violation;
    pub use crate::schema::{DatabaseSchema, RelName, RelationScheme};
    pub use crate::value::Value;
}
