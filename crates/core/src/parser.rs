//! A small text syntax for schemas and dependencies.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! scheme     := NAME '(' attrlist ')'
//! dependency := ind | fd | rd | emvd
//! ind        := NAME '[' attrlist ']' ('<=' | '⊆') NAME '[' attrlist ']'
//! fd         := NAME ':' attrlist? '->' attrlist
//! rd         := NAME '[' attrlist '=' attrlist ']'
//! emvd       := NAME ':' attrlist '->>' attrlist '|' attrlist
//! attrlist   := NAME (',' NAME)*
//! ```
//!
//! Examples: `MGR[NAME] <= EMP[NAME]`, `R: A, B -> C`, `R: -> C`
//! (constant column), `R[A = B]`, `R: A ->> B | C`.

use crate::attr::{Attr, AttrSeq};
use crate::dependency::{Dependency, Emvd, Fd, Ind, Rd};
use crate::error::CoreError;
use crate::schema::RelationScheme;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Name(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Eq,
    Pipe,
    Arrow,       // ->
    DoubleArrow, // ->>
    Subseteq,    // <= or ⊆
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, usize)>, CoreError> {
        let bytes = self.src.as_bytes();
        let mut out = Vec::new();
        while self.pos < bytes.len() {
            let start = self.pos;
            let rest = &self.src[self.pos..];
            let c = rest.chars().next().expect("non-empty remainder");
            if c.is_whitespace() {
                self.pos += c.len_utf8();
                continue;
            }
            let tok = if rest.starts_with("->>") {
                self.pos += 3;
                Tok::DoubleArrow
            } else if rest.starts_with("->") {
                self.pos += 2;
                Tok::Arrow
            } else if rest.starts_with("<=") {
                self.pos += 2;
                Tok::Subseteq
            } else if rest.starts_with('⊆') {
                self.pos += '⊆'.len_utf8();
                Tok::Subseteq
            } else if c.is_alphanumeric() || c == '_' {
                let len = rest
                    .char_indices()
                    .take_while(|(_, ch)| ch.is_alphanumeric() || *ch == '_' || *ch == '\'')
                    .last()
                    .map(|(i, ch)| i + ch.len_utf8())
                    .unwrap_or(0);
                self.pos += len;
                Tok::Name(rest[..len].to_owned())
            } else {
                self.pos += c.len_utf8();
                match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ':' => Tok::Colon,
                    '=' => Tok::Eq,
                    '|' => Tok::Pipe,
                    other => {
                        return Err(CoreError::Parse {
                            message: format!("unexpected character `{other}`"),
                            offset: start,
                        })
                    }
                }
            };
            out.push((tok, start));
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
    end: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, CoreError> {
        let toks = Lexer::new(src).tokenize()?;
        Ok(Parser {
            toks,
            idx: 0,
            end: src.len(),
        })
    }

    fn offset(&self) -> usize {
        self.toks.get(self.idx).map(|(_, o)| *o).unwrap_or(self.end)
    }

    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(t, _)| t.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), CoreError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn name(&mut self, what: &str) -> Result<String, CoreError> {
        match self.next() {
            Some(Tok::Name(n)) => Ok(n),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    /// Parse `NAME (',' NAME)*`; empty when the next token is not a name.
    fn attrlist(&mut self) -> Result<AttrSeq, CoreError> {
        let mut names: Vec<Attr> = Vec::new();
        if matches!(self.peek(), Some(Tok::Name(_))) {
            loop {
                names.push(Attr::new(self.name("attribute name")?));
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        AttrSeq::new(names)
    }

    fn finish(&self) -> Result<(), CoreError> {
        if self.idx < self.toks.len() {
            Err(self.error("unexpected trailing input"))
        } else {
            Ok(())
        }
    }
}

/// Parse a relation scheme declaration `R(A, B, C)`.
pub fn parse_scheme(src: &str) -> Result<RelationScheme, CoreError> {
    let mut p = Parser::new(src)?;
    let rel = p.name("relation name")?;
    p.expect(Tok::LParen, "`(`")?;
    let attrs = p.attrlist()?;
    p.expect(Tok::RParen, "`)`")?;
    p.finish()?;
    Ok(RelationScheme::new(rel.as_str(), attrs))
}

/// Parse a dependency in the syntax documented at module level.
pub fn parse_dependency(src: &str) -> Result<Dependency, CoreError> {
    let mut p = Parser::new(src)?;
    let rel = p.name("relation name")?;
    match p.next() {
        Some(Tok::LBracket) => {
            let lhs = p.attrlist()?;
            match p.next() {
                Some(Tok::Eq) => {
                    // RD: R[X = Y]
                    let rhs = p.attrlist()?;
                    p.expect(Tok::RBracket, "`]`")?;
                    p.finish()?;
                    Ok(Rd::new(rel.as_str(), lhs, rhs)?.into())
                }
                Some(Tok::RBracket) => {
                    // IND: R[X] <= S[Y]
                    p.expect(Tok::Subseteq, "`<=`")?;
                    let rhs_rel = p.name("relation name")?;
                    p.expect(Tok::LBracket, "`[`")?;
                    let rhs = p.attrlist()?;
                    p.expect(Tok::RBracket, "`]`")?;
                    p.finish()?;
                    Ok(Ind::new(rel.as_str(), lhs, rhs_rel.as_str(), rhs)?.into())
                }
                _ => Err(p.error("expected `]` or `=`")),
            }
        }
        Some(Tok::Colon) => {
            let lhs = p.attrlist()?;
            match p.next() {
                Some(Tok::Arrow) => {
                    let rhs = p.attrlist()?;
                    p.finish()?;
                    Ok(Fd::new(rel.as_str(), lhs, rhs).into())
                }
                Some(Tok::DoubleArrow) => {
                    let y = p.attrlist()?;
                    p.expect(Tok::Pipe, "`|`")?;
                    let z = p.attrlist()?;
                    p.finish()?;
                    Ok(Emvd::new(rel.as_str(), lhs, y, z)?.into())
                }
                _ => Err(p.error("expected `->` or `->>`")),
            }
        }
        _ => Err(p.error("expected `[` (IND/RD) or `:` (FD/EMVD)")),
    }
}

/// Parse several dependencies at once (test convenience).
pub fn parse_dependencies<S: AsRef<str>>(srcs: &[S]) -> Result<Vec<Dependency>, CoreError> {
    srcs.iter().map(|s| parse_dependency(s.as_ref())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scheme_basic() {
        let s = parse_scheme("R(A, B, C)").unwrap();
        assert_eq!(s.to_string(), "R(A, B, C)");
        assert!(parse_scheme("R(A, A)").is_err());
        assert!(parse_scheme("R(A").is_err());
        assert!(parse_scheme("R(A) extra").is_err());
    }

    #[test]
    fn parse_ind() {
        let d = parse_dependency("MGR[NAME, DEPT] <= EMP[NAME, DEPT]").unwrap();
        assert_eq!(d.to_string(), "MGR[NAME, DEPT] <= EMP[NAME, DEPT]");
        let d2 = parse_dependency("R[A] ⊆ S[B]").unwrap();
        assert_eq!(d2.to_string(), "R[A] <= S[B]");
        assert!(parse_dependency("R[A, B] <= S[C]").is_err());
    }

    #[test]
    fn parse_fd() {
        let d = parse_dependency("R: A, B -> C").unwrap();
        assert_eq!(d.to_string(), "R: A, B -> C");
        // Empty LHS.
        let d2 = parse_dependency("R: -> C").unwrap();
        match &d2 {
            Dependency::Fd(fd) => assert!(fd.lhs.is_empty()),
            _ => panic!("expected FD"),
        }
    }

    #[test]
    fn parse_rd() {
        let d = parse_dependency("R[A, B = C, D]").unwrap();
        assert_eq!(d.to_string(), "R[A, B = C, D]");
        assert!(parse_dependency("R[A = C, D]").is_err());
    }

    #[test]
    fn parse_emvd() {
        let d = parse_dependency("R: A ->> B | C").unwrap();
        assert_eq!(d.to_string(), "R: A ->> B | C");
        assert!(parse_dependency("R: A ->> B | B").is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "R[A, B] <= S[C, D]",
            "R: A -> B",
            "R: A, B -> C, D",
            "R[A = B]",
            "R: A ->> B | C",
        ] {
            let d = parse_dependency(src).unwrap();
            let d2 = parse_dependency(&d.to_string()).unwrap();
            assert_eq!(d, d2, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn error_positions() {
        match parse_dependency("R[A] ** S[B]") {
            Err(CoreError::Parse { offset, .. }) => assert_eq!(offset, 5),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
