//! A minimal scoped-thread worker pool for embarrassingly parallel scans.
//!
//! The discovery engine's hot stages — per-column SPIDER refinement,
//! per-candidate IND validation, per-node FD lattice checks — are
//! independent tasks over a known index range. The workspace vendors no
//! `rayon`, so this module provides the one primitive those stages need on
//! plain `std::thread::scope`: an **indexed parallel map** whose output is
//! always in input order, making `threads = 1` and `threads = N` produce
//! byte-identical results.
//!
//! Work is distributed dynamically (an atomic cursor over the index range),
//! so uneven task costs — one giant partition class next to a thousand tiny
//! ones — do not idle workers. Each worker carries a caller-built scratch
//! value ([`map_indexed_with`]) so per-task allocations (partition
//! refinement buffers, projection key buffers) are paid once per worker,
//! not once per task.
//!
//! Threads are spawned per call. That is deliberate: the callers batch
//! thousands of tasks per invocation (one call per lattice level, not one
//! per node), so spawn cost is amortized to noise, and scoped threads keep
//! every borrow checked — no `'static` bounds, no channels, no shutdown
//! protocol.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Chunk of indices claimed per cursor fetch. Small enough to balance
/// skewed workloads, big enough that the atomic traffic is negligible.
const CHUNK: usize = 16;

/// Number of worker threads to use when the caller asks for "all of them":
/// the machine's available parallelism, `1` when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `0..n` with up to `threads` workers, collecting results in
/// index order. `threads <= 1` (or a trivially small `n`) runs inline with
/// no thread machinery at all.
///
/// Output is deterministic regardless of `threads`: slot `i` always holds
/// `f(i)`.
pub fn map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(threads, n, || (), |(), i| f(i))
}

/// [`map_indexed`] with a per-worker scratch value: each worker calls
/// `init` once and threads the scratch through every task it claims.
///
/// # Examples
///
/// ```
/// use depkit_core::pool::map_indexed_with;
///
/// // Sum each row of a matrix, reusing one accumulator buffer per worker.
/// let rows = vec![vec![1u64, 2], vec![3, 4], vec![5, 6]];
/// let sums = map_indexed_with(4, rows.len(), Vec::new, |scratch: &mut Vec<u64>, i| {
///     scratch.clear();
///     scratch.extend(&rows[i]);
///     scratch.iter().sum::<u64>()
/// });
/// assert_eq!(sums, vec![3, 7, 11]);
/// ```
pub fn map_indexed_with<S, T, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.min(n.div_ceil(CHUNK)).max(1);
    if workers == 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + CHUNK).min(n) {
                            local.push((i, f(&mut scratch, i)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    // Reassemble in index order: every index appears exactly once.
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in &mut parts {
        for (i, v) in part.drain(..) {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|v| v.expect("every index produced"))
        .collect()
}

/// [`map_indexed_with`] over an explicit index subset: `f` is applied to
/// `items[0], items[1], …` and results come back in `items` order.
///
/// This is the scheduling primitive of the memory-budgeted discovery
/// waves: the caller shards a level's nodes by a deterministic hash into
/// waves, runs each wave's subset through the pool, and scatters results
/// back by original index — identical output to one flat pass, with the
/// working set bounded by the largest wave instead of the whole level.
pub fn map_subset_with<S, T, I, F>(threads: usize, items: &[usize], init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    map_indexed_with(threads, items.len(), init, |scratch, i| {
        f(scratch, items[i])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_subset_follows_the_item_order() {
        let items = [9usize, 3, 7, 3];
        for threads in [1, 4] {
            let out = map_subset_with(threads, &items, || (), |(), i| i * 10);
            assert_eq!(out, vec![90, 30, 70, 30]);
        }
    }

    #[test]
    fn output_is_in_index_order_for_any_thread_count() {
        let n = 1000;
        let expected: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(map_indexed(threads, n, |i| i * i), expected);
        }
    }

    #[test]
    fn handles_empty_and_tiny_ranges() {
        assert_eq!(map_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // The scratch starts fresh per worker and persists across tasks:
        // strictly increasing counts within each worker's claimed indices.
        let counts = map_indexed_with(
            2,
            100,
            || 0usize,
            |c, _i| {
                *c += 1;
                *c
            },
        );
        assert_eq!(counts.len(), 100);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
