//! Tuples and relations.

use crate::error::CoreError;
use crate::schema::RelationScheme;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A tuple: a fixed-length sequence of values.
///
/// The paper treats tuples as sequences (not attribute maps); positions are
/// interpreted relative to a relation scheme's attribute sequence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Create a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into_boxed_slice())
    }

    /// Create a tuple of integers.
    pub fn ints(values: &[i64]) -> Self {
        Tuple(values.iter().map(|&i| Value::Int(i)).collect())
    }

    /// Create a tuple of strings.
    pub fn strs<S: AsRef<str>>(values: &[S]) -> Self {
        Tuple(values.iter().map(|s| Value::str(s.as_ref())).collect())
    }

    /// The tuple's entries.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the tuple has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `t[X]` — the projection of this tuple onto the given column indices
    /// (the paper's `t[X]` where `X` is resolved to positions).
    pub fn project(&self, columns: &[usize]) -> Vec<Value> {
        columns.iter().map(|&c| self.0[c].clone()).collect()
    }

    /// Borrowing [`Tuple::project`]: the same projection as an iterator of
    /// `&Value`, cloning nothing. Use this whenever the projection is only
    /// compared or folded — materialize with [`Tuple::project`] (or
    /// `cloned().collect()`) only when an owned key must outlive the
    /// tuple.
    ///
    /// # Examples
    ///
    /// ```
    /// use depkit_core::relation::Tuple;
    ///
    /// let t = Tuple::ints(&[10, 20, 30]);
    /// // Allocation-free projection comparison:
    /// assert!(t.project_ref(&[2, 0]).eq(Tuple::ints(&[30, 10]).values().iter()));
    /// assert_eq!(t.project_ref(&[1]).count(), 1);
    /// ```
    pub fn project_ref<'a>(&'a self, columns: &'a [usize]) -> impl Iterator<Item = &'a Value> {
        columns.iter().map(|&c| &self.0[c])
    }

    /// Entry at a single column.
    pub fn at(&self, column: usize) -> &Value {
        &self.0[column]
    }

    /// Replace the entry at `column`, returning a new tuple.
    pub fn with(&self, column: usize, value: Value) -> Tuple {
        let mut v: Vec<Value> = self.0.to_vec();
        v[column] = value;
        Tuple::new(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// A relation: a set of tuples over a relation scheme.
///
/// Tuples are stored in a `BTreeSet` so iteration order is deterministic,
/// which keeps the chase, the generators, and test output reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    scheme: RelationScheme,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Create an empty relation over `scheme`.
    pub fn empty(scheme: RelationScheme) -> Self {
        Relation {
            scheme,
            tuples: BTreeSet::new(),
        }
    }

    /// Create a relation from tuples, verifying arities.
    pub fn from_tuples(
        scheme: RelationScheme,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, CoreError> {
        let mut r = Relation::empty(scheme);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The relation's scheme.
    pub fn scheme(&self) -> &RelationScheme {
        &self.scheme
    }

    /// Insert a tuple, verifying its arity. Returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, CoreError> {
        if t.len() != self.scheme.arity() {
            return Err(CoreError::TupleArity {
                relation: self.scheme.name().name().to_owned(),
                expected: self.scheme.arity(),
                actual: t.len(),
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Remove a tuple. Returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Whether the relation contains `t`.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over tuples in deterministic order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// `r[X]` — the set of projections of all tuples onto the given columns.
    pub fn project(&self, columns: &[usize]) -> BTreeSet<Vec<Value>> {
        self.tuples.iter().map(|t| t.project(columns)).collect()
    }

    /// Remove all tuples for which `keep` returns `false`.
    pub fn retain(&mut self, mut keep: impl FnMut(&Tuple) -> bool) {
        self.tuples.retain(|t| keep(t));
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.scheme)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn scheme_ab() -> RelationScheme {
        RelationScheme::new("R", attrs(&["A", "B"]))
    }

    #[test]
    fn insert_checks_arity() {
        let mut r = Relation::empty(scheme_ab());
        assert!(r.insert(Tuple::ints(&[1, 2])).unwrap());
        assert!(r.insert(Tuple::ints(&[1, 2, 3])).is_err());
        // duplicate insert is a no-op
        assert!(!r.insert(Tuple::ints(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn projection_is_a_set() {
        let r = Relation::from_tuples(
            scheme_ab(),
            vec![
                Tuple::ints(&[1, 2]),
                Tuple::ints(&[1, 3]),
                Tuple::ints(&[4, 2]),
            ],
        )
        .unwrap();
        // Projecting onto A collapses duplicates: {1, 1, 4} -> {1, 4}.
        assert_eq!(r.project(&[0]).len(), 2);
        assert_eq!(r.project(&[1]).len(), 2);
        assert_eq!(r.project(&[0, 1]).len(), 3);
        // Column order matters in projections.
        let ba = r.project(&[1, 0]);
        assert!(ba.contains(&vec![Value::Int(2), Value::Int(1)]));
    }

    #[test]
    fn tuple_projection_order() {
        let t = Tuple::ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), vec![Value::Int(30), Value::Int(10)]);
    }
}
