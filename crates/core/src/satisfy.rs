//! Satisfaction checking with violation witnesses.
//!
//! Semantics follow Section 2 of the paper exactly:
//!
//! * `r` obeys `R: X -> Y` iff any two tuples agreeing on `X` agree on `Y`.
//! * `d` obeys `R[X] ⊆ S[Y]` iff `r[X] ⊆ s[Y]` as sets of value sequences.
//! * `r` obeys `R[X = Y]` iff every tuple has `t[X] = t[Y]`.
//! * `r` obeys `R: X ->> Y | Z` iff whenever `t1[X] = t2[X]` there is `t3`
//!   with `t3[XY] = t1[XY]` and `t3[XZ] = t2[XZ]`.

use crate::database::Database;
use crate::dependency::{Dependency, Emvd, Fd, Ind, Rd};
use crate::error::CoreError;
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A witness that a dependency fails in a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two tuples agree on the FD's left-hand side but not its right-hand
    /// side.
    Fd {
        /// The violated dependency.
        fd: Fd,
        /// First offending tuple.
        t1: Tuple,
        /// Second offending tuple.
        t2: Tuple,
    },
    /// A projected tuple on the IND's left side is missing from the right
    /// side.
    Ind {
        /// The violated dependency.
        ind: Ind,
        /// The left-side tuple whose projection is not covered.
        witness: Tuple,
        /// Its projection (what was missing on the right).
        missing: Vec<Value>,
    },
    /// A tuple whose `X` and `Y` projections differ.
    Rd {
        /// The violated dependency.
        rd: Rd,
        /// The offending tuple.
        witness: Tuple,
    },
    /// Tuples `t1`, `t2` agree on `X` but no tuple recombines them.
    Emvd {
        /// The violated dependency.
        emvd: Emvd,
        /// First tuple.
        t1: Tuple,
        /// Second tuple.
        t2: Tuple,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Fd { fd, t1, t2 } => {
                write!(f, "FD {fd} violated by tuples {t1} and {t2}")
            }
            Violation::Ind { ind, witness, .. } => {
                write!(
                    f,
                    "IND {ind} violated: projection of {witness} missing on the right"
                )
            }
            Violation::Rd { rd, witness } => write!(f, "RD {rd} violated by tuple {witness}"),
            Violation::Emvd { emvd, t1, t2 } => {
                write!(f, "EMVD {emvd} violated by tuples {t1} and {t2}")
            }
        }
    }
}

/// Check a dependency against a database, returning `None` when satisfied
/// and a [`Violation`] witness otherwise. Errors when the dependency is not
/// well formed for the database's schema.
pub fn check(db: &Database, dep: &Dependency) -> Result<Option<Violation>, CoreError> {
    match dep {
        Dependency::Fd(fd) => check_fd(db.relation(&fd.rel)?, fd),
        Dependency::Ind(ind) => check_ind(db, ind),
        Dependency::Rd(rd) => check_rd(db.relation(&rd.rel)?, rd),
        Dependency::Emvd(e) => check_emvd(db.relation(&e.rel)?, e),
    }
}

/// Check an FD against a relation.
pub fn check_fd(r: &Relation, fd: &Fd) -> Result<Option<Violation>, CoreError> {
    let lhs_cols = r.scheme().columns(&fd.lhs)?;
    let rhs_cols = r.scheme().columns(&fd.rhs)?;
    // Map each LHS projection to (representative tuple, RHS projection).
    let mut seen: HashMap<Vec<Value>, (&Tuple, Vec<Value>)> = HashMap::with_capacity(r.len());
    for t in r.tuples() {
        let key = t.project(&lhs_cols);
        match seen.get(&key) {
            Some((rep, rep_val)) => {
                // Borrow-compare the RHS projection: nothing is
                // materialized on the (dominant) agreeing path.
                if !t.project_ref(&rhs_cols).eq(rep_val.iter()) {
                    return Ok(Some(Violation::Fd {
                        fd: fd.clone(),
                        t1: (*rep).clone(),
                        t2: t.clone(),
                    }));
                }
            }
            None => {
                let val = t.project(&rhs_cols);
                seen.insert(key, (t, val));
            }
        }
    }
    Ok(None)
}

/// Check an IND against a database.
pub fn check_ind(db: &Database, ind: &Ind) -> Result<Option<Violation>, CoreError> {
    let left = db.relation(&ind.lhs_rel)?;
    let right = db.relation(&ind.rhs_rel)?;
    let lcols = left.scheme().columns(&ind.lhs_attrs)?;
    let rcols = right.scheme().columns(&ind.rhs_attrs)?;
    let rhs_proj: HashSet<Vec<Value>> = right.tuples().map(|t| t.project(&rcols)).collect();
    // Gather each left projection into a reused buffer; the owned key is
    // materialized only for the violation witness.
    let mut buf: Vec<Value> = Vec::with_capacity(lcols.len());
    for t in left.tuples() {
        buf.clear();
        buf.extend(t.project_ref(&lcols).cloned());
        if !rhs_proj.contains(buf.as_slice()) {
            return Ok(Some(Violation::Ind {
                ind: ind.clone(),
                witness: t.clone(),
                missing: buf,
            }));
        }
    }
    Ok(None)
}

/// Check an RD against a relation.
pub fn check_rd(r: &Relation, rd: &Rd) -> Result<Option<Violation>, CoreError> {
    let lcols = r.scheme().columns(&rd.lhs)?;
    let rcols = r.scheme().columns(&rd.rhs)?;
    for t in r.tuples() {
        if !t.project_ref(&lcols).eq(t.project_ref(&rcols)) {
            return Ok(Some(Violation::Rd {
                rd: rd.clone(),
                witness: t.clone(),
            }));
        }
    }
    Ok(None)
}

/// Check an EMVD against a relation.
///
/// Within each group of tuples sharing an `X` projection, the set of
/// `(Y, Z)` projection pairs must be the full cross product of the observed
/// `Y` projections and `Z` projections.
pub fn check_emvd(r: &Relation, e: &Emvd) -> Result<Option<Violation>, CoreError> {
    let xc = r.scheme().columns(&e.x)?;
    let yc = r.scheme().columns(&e.y)?;
    let zc = r.scheme().columns(&e.z)?;

    let mut groups: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    for t in r.tuples() {
        groups.entry(t.project(&xc)).or_default().push(t);
    }
    for group in groups.values() {
        let yz: HashSet<(Vec<Value>, Vec<Value>)> = group
            .iter()
            .map(|t| (t.project(&yc), t.project(&zc)))
            .collect();
        for t1 in group {
            let y1 = t1.project(&yc);
            for t2 in group {
                let need = (y1.clone(), t2.project(&zc));
                if !yz.contains(&need) {
                    return Ok(Some(Violation::Emvd {
                        emvd: e.clone(),
                        t1: (*t1).clone(),
                        t2: (*t2).clone(),
                    }));
                }
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{attrs, AttrSeq};
    use crate::schema::DatabaseSchema;

    fn db_r_ab(rows: &[&[i64]]) -> Database {
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_ints("R", rows).unwrap();
        db
    }

    #[test]
    fn fd_satisfaction() {
        let fd: Dependency = Fd::new("R", attrs(&["A"]), attrs(&["B"])).into();
        assert!(db_r_ab(&[&[1, 2], &[2, 2]]).satisfies(&fd).unwrap());
        assert!(!db_r_ab(&[&[1, 2], &[1, 3]]).satisfies(&fd).unwrap());
    }

    #[test]
    fn fd_violation_witness() {
        let fd = Fd::new("R", attrs(&["A"]), attrs(&["B"]));
        let db = db_r_ab(&[&[1, 2], &[1, 3]]);
        match db.check(&fd.clone().into()).unwrap() {
            Some(Violation::Fd { t1, t2, .. }) => {
                assert_eq!(t1.at(0), t2.at(0));
                assert_ne!(t1.at(1), t2.at(1));
            }
            other => panic!("expected FD violation, got {other:?}"),
        }
    }

    #[test]
    fn fd_empty_lhs_means_constant() {
        let fd: Dependency = Fd::new("R", AttrSeq::empty(), attrs(&["B"])).into();
        assert!(db_r_ab(&[&[1, 5], &[2, 5]]).satisfies(&fd).unwrap());
        assert!(!db_r_ab(&[&[1, 5], &[2, 6]]).satisfies(&fd).unwrap());
        // Empty relation satisfies it vacuously.
        assert!(db_r_ab(&[]).satisfies(&fd).unwrap());
    }

    #[test]
    fn ind_satisfaction_and_witness() {
        let schema = DatabaseSchema::parse(&["MGR(N, D)", "EMP(N, D)"]).unwrap();
        let mut db = Database::empty(schema);
        db.insert_str("EMP", &[&["h", "math"], &["n", "math"]])
            .unwrap();
        db.insert_str("MGR", &[&["h", "math"]]).unwrap();
        let ind: Dependency = "MGR[N, D] <= EMP[N, D]".parse().unwrap();
        assert!(db.satisfies(&ind).unwrap());

        db.insert_str("MGR", &[&["x", "cs"]]).unwrap();
        match db.check(&ind).unwrap() {
            Some(Violation::Ind { missing, .. }) => {
                assert_eq!(missing, vec![Value::str("x"), Value::str("cs")]);
            }
            other => panic!("expected IND violation, got {other:?}"),
        }
    }

    #[test]
    fn ind_respects_attribute_order() {
        // R[A,B] <= R[B,A] is satisfied only when the projection sets match
        // under the swap.
        let ind: Dependency = "R[A, B] <= R[B, A]".parse().unwrap();
        // {(1,2)}: lhs projection {(1,2)}, rhs (swapped) {(2,1)} -- violated.
        assert!(!db_r_ab(&[&[1, 2]]).satisfies(&ind).unwrap());
        // {(1,2),(2,1)}: swapped set equals original -- satisfied.
        assert!(db_r_ab(&[&[1, 2], &[2, 1]]).satisfies(&ind).unwrap());
        // Diagonal tuples are self-covering.
        assert!(db_r_ab(&[&[3, 3]]).satisfies(&ind).unwrap());
    }

    #[test]
    fn rd_satisfaction() {
        let rd: Dependency = Rd::new("R", attrs(&["A"]), attrs(&["B"])).unwrap().into();
        assert!(db_r_ab(&[&[1, 1], &[2, 2]]).satisfies(&rd).unwrap());
        assert!(!db_r_ab(&[&[1, 1], &[2, 3]]).satisfies(&rd).unwrap());
    }

    #[test]
    fn emvd_satisfaction() {
        // R(A, B, C), EMVD A ->> B | C.
        let schema = DatabaseSchema::parse(&["R(A, B, C)"]).unwrap();
        let e: Dependency = Emvd::new("R", attrs(&["A"]), attrs(&["B"]), attrs(&["C"]))
            .unwrap()
            .into();

        let mut db = Database::empty(schema.clone());
        // Group a=1 has (b,c) pairs {(1,1),(2,2)}; recombination (1,2) missing.
        db.insert_ints("R", &[&[1, 1, 1], &[1, 2, 2]]).unwrap();
        assert!(!db.satisfies(&e).unwrap());

        let mut db2 = Database::empty(schema);
        // Full cross product {1,2} x {1,2} present.
        db2.insert_ints("R", &[&[1, 1, 1], &[1, 1, 2], &[1, 2, 1], &[1, 2, 2]])
            .unwrap();
        assert!(db2.satisfies(&e).unwrap());
    }

    #[test]
    fn trivial_dependencies_always_hold() {
        let db = db_r_ab(&[&[1, 2], &[3, 4], &[5, 6]]);
        let trivial_fd: Dependency = Fd::new("R", attrs(&["A", "B"]), attrs(&["A"])).into();
        let trivial_ind: Dependency = "R[A, B] <= R[A, B]".parse().unwrap();
        let trivial_rd: Dependency = Rd::new("R", attrs(&["A"]), attrs(&["A"])).unwrap().into();
        assert!(db.satisfies(&trivial_fd).unwrap());
        assert!(db.satisfies(&trivial_ind).unwrap());
        assert!(db.satisfies(&trivial_rd).unwrap());
    }
}
