//! Relation schemes and database schemas (paper, Section 2).

use crate::attr::{Attr, AttrSeq};
use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A relation name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RelName(Arc<str>);

impl RelName {
    /// Create a relation name.
    pub fn new(name: impl AsRef<str>) -> Self {
        RelName(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The shared backing string (cheap `Arc` handle for the interner).
    pub(crate) fn shared(&self) -> &Arc<str> {
        &self.0
    }

    /// Build a relation name from an already-shared string without copying.
    pub(crate) fn from_shared(s: Arc<str>) -> Self {
        RelName(s)
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RelName {
    fn from(s: &str) -> Self {
        RelName::new(s)
    }
}

/// A relation scheme `R[A_1, ..., A_m]`: a name together with a sequence of
/// distinct attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationScheme {
    name: RelName,
    attrs: AttrSeq,
}

impl RelationScheme {
    /// Create a relation scheme.
    pub fn new(name: impl Into<RelName>, attrs: AttrSeq) -> Self {
        RelationScheme {
            name: name.into(),
            attrs,
        }
    }

    /// Create a relation scheme from attribute names.
    pub fn from_names<S: AsRef<str>>(name: &str, attr_names: &[S]) -> Result<Self, CoreError> {
        Ok(RelationScheme::new(name, AttrSeq::from_names(attr_names)?))
    }

    /// The scheme's name.
    pub fn name(&self) -> &RelName {
        &self.name
    }

    /// The scheme's attribute sequence.
    pub fn attrs(&self) -> &AttrSeq {
        &self.attrs
    }

    /// Number of attributes (the scheme's arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Column index of `attr`, if it belongs to this scheme.
    pub fn column(&self, attr: &Attr) -> Option<usize> {
        self.attrs.position(attr)
    }

    /// Column indices of all attributes in `seq`; errors if any attribute is
    /// not part of this scheme.
    pub fn columns(&self, seq: &AttrSeq) -> Result<Vec<usize>, CoreError> {
        seq.attrs()
            .iter()
            .map(|a| {
                self.column(a).ok_or_else(|| CoreError::UnknownAttribute {
                    relation: self.name.name().to_owned(),
                    attribute: a.name().to_owned(),
                })
            })
            .collect()
    }
}

impl fmt::Display for RelationScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attrs)
    }
}

/// A database schema `D = {R_1[U_1], ..., R_n[U_n]}`: a finite set of
/// relation schemes with distinct names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseSchema {
    schemes: Vec<RelationScheme>,
    #[serde(skip)]
    index: HashMap<RelName, usize>,
}

impl DatabaseSchema {
    /// Create a schema from relation schemes, checking name uniqueness.
    pub fn new(schemes: Vec<RelationScheme>) -> Result<Self, CoreError> {
        let mut index = HashMap::with_capacity(schemes.len());
        for (i, s) in schemes.iter().enumerate() {
            if index.insert(s.name().clone(), i).is_some() {
                return Err(CoreError::DuplicateRelation(s.name().name().to_owned()));
            }
        }
        Ok(DatabaseSchema { schemes, index })
    }

    /// Parse a schema from declarations of the form `"R(A, B, C)"`.
    ///
    /// ```
    /// use depkit_core::DatabaseSchema;
    /// let s = DatabaseSchema::parse(&["R(A, B)", "S(C)"]).unwrap();
    /// assert_eq!(s.schemes().len(), 2);
    /// ```
    pub fn parse<S: AsRef<str>>(decls: &[S]) -> Result<Self, CoreError> {
        let schemes = decls
            .iter()
            .map(|d| crate::parser::parse_scheme(d.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        DatabaseSchema::new(schemes)
    }

    /// All relation schemes, in declaration order.
    pub fn schemes(&self) -> &[RelationScheme] {
        &self.schemes
    }

    /// Look up a scheme by name.
    pub fn scheme(&self, name: &RelName) -> Option<&RelationScheme> {
        self.index.get(name).map(|&i| &self.schemes[i])
    }

    /// Look up a scheme by name, erroring when absent.
    pub fn require(&self, name: &RelName) -> Result<&RelationScheme, CoreError> {
        self.scheme(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.name().to_owned()))
    }

    /// Index of a scheme in declaration order.
    pub fn scheme_index(&self, name: &RelName) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The largest arity among the schemes.
    pub fn max_arity(&self) -> usize {
        self.schemes.iter().map(|s| s.arity()).max().unwrap_or(0)
    }
}

impl fmt::Display for DatabaseSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.schemes.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    #[test]
    fn schema_rejects_duplicate_names() {
        let r1 = RelationScheme::new("R", attrs(&["A"]));
        let r2 = RelationScheme::new("R", attrs(&["B"]));
        assert!(DatabaseSchema::new(vec![r1, r2]).is_err());
    }

    #[test]
    fn scheme_lookup() {
        let s = DatabaseSchema::parse(&["R(A, B)", "S(C, D, E)"]).unwrap();
        let r = s.scheme(&RelName::new("R")).unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.column(&Attr::new("B")), Some(1));
        assert!(s.scheme(&RelName::new("T")).is_none());
        assert_eq!(s.max_arity(), 3);
    }

    #[test]
    fn columns_of_sequence() {
        let s = DatabaseSchema::parse(&["R(A, B, C)"]).unwrap();
        let r = s.require(&RelName::new("R")).unwrap();
        assert_eq!(r.columns(&attrs(&["C", "A"])).unwrap(), vec![2, 0]);
        assert!(r.columns(&attrs(&["Z"])).is_err());
    }
}
