//! External-memory sorted runs: the spill layer behind out-of-core
//! dependency discovery.
//!
//! The original SPIDER algorithm is external by design — each attribute's
//! value set is sorted in memory-sized chunks, spilled to disk as sorted
//! runs, and read back through one merge cursor per attribute. This module
//! provides that machinery over the dense `u32` id space of the columnar
//! engine, deliberately minimal and `std`-only:
//!
//! * **Run files** are plain little-endian `u32` id sequences, strictly
//!   ascending and deduplicated within each run ([`write_run`],
//!   [`write_sorted_runs`]). No framing, no compression: a run is
//!   `4 × ids` bytes that any tool (or another process) can `mmap` or
//!   stream.
//! * **Manifests** ([`RunSet`]) record the runs of one attribute — file
//!   names, id counts, and FNV-1a64 content checksums — as a small text
//!   file next to the runs (`depkit-runs v2`), so a spill directory is
//!   self-describing and survives a process boundary. A run set read from
//!   an untrusted boundary (another process, a recovered directory) is
//!   validated by [`verify_run_set`] / [`load_verified_run_set`] before
//!   any merge touches it.
//! * **Atomic publication**: [`publish_run`] and
//!   [`RunSet::publish_manifest`] write through a unique temporary file
//!   and `rename` into place, so a writer killed mid-run never leaves a
//!   partially written file under its published name.
//! * **Cursors and merging**: [`RunCursor`] streams one run back through a
//!   fixed-size buffer; [`RunMerger`] performs a buffered k-way merge with
//!   duplicate elimination, yielding the attribute's globally sorted
//!   distinct ids without ever materializing them. Run sets wider than
//!   [`MAX_FAN_IN`] are consolidated by intermediate merge passes
//!   ([`merge_run_set`]) so the final merge never holds more than
//!   `MAX_FAN_IN` read buffers.
//! * **[`DistinctStream`]** is the uniform iterator the discovery engine
//!   consumes: backed either by an in-memory sorted vector (under budget)
//!   or by a [`RunMerger`] over spilled runs (over budget). Both backings
//!   yield the identical ascending id sequence, which is what keeps
//!   spilled discovery byte-for-byte equal to in-memory discovery.
//! * **[`SpillStats`]** counts runs written, bytes spilled, and merge
//!   passes, surfaced by `depkit discover --stats`.
//!
//! I/O failure semantics: *creating* spill state (directories, run writes,
//! consolidation merges) returns [`io::Result`] — disk-full and
//! permission errors are expected operational failures. *Validating*
//! foreign run sets ([`verify_run_set`]) likewise returns diagnostics
//! naming the offending file. *Reading back* a run this process wrote or
//! already verified panics on I/O error or truncation; at that point the
//! computation cannot continue and no caller has a meaningful recovery.

use crate::index::ValueInterner;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of runs merged by one cursor set. A wider run set is
/// first consolidated by intermediate passes ([`merge_run_set`]), bounding
/// the merge's resident buffer memory at `MAX_FAN_IN ×` [`READ_BUF_BYTES`].
pub const MAX_FAN_IN: usize = 64;

/// Read-buffer size per open [`RunCursor`].
pub const READ_BUF_BYTES: usize = 64 * 1024;

/// Counters for one spill session: how much discovery state went to disk
/// and how many passes it took to stream it back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Columns whose distinct set exceeded its budget share and spilled.
    pub spilled_columns: usize,
    /// Sorted run files written (initial runs plus consolidation output).
    pub runs_written: usize,
    /// Total bytes of run data written.
    pub bytes_spilled: u64,
    /// Merge passes over spilled data: one per consolidation sweep plus
    /// one for the final streaming merge of each spilled column.
    pub merge_passes: usize,
}

impl SpillStats {
    /// Fold another session's counters into this one.
    pub fn absorb(&mut self, other: &SpillStats) {
        self.spilled_columns += other.spilled_columns;
        self.runs_written += other.runs_written;
        self.bytes_spilled += other.bytes_spilled;
        self.merge_passes += other.merge_passes;
    }

    /// Whether anything actually spilled.
    pub fn spilled(&self) -> bool {
        self.runs_written > 0
    }
}

/// Incremental FNV-1a 64-bit hash — the run-content checksum. FNV is
/// already the hash discipline of the discovery engine's shard
/// partitioning, is trivially reproducible in any language, and is
/// byte-order-free over the little-endian id stream.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// FNV-1a64 of a byte slice in one call.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Distinguishes concurrently created spill directories within a process.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Distinguishes temporary publish files within a process (the process id
/// distinguishes them across processes sharing a directory).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A sibling path of `path` that is unique per process and call — the
/// scratch name runs are written under before the atomic rename. Shared
/// with [`crate::wal`], whose checkpoint publish follows the same
/// tmp-then-rename discipline.
pub(crate) fn tmp_sibling(path: &Path) -> PathBuf {
    let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}.{}", std::process::id(), n));
    path.with_file_name(name)
}

/// An owned scratch directory for run files, removed (best effort) on
/// drop. Created as a uniquely named subdirectory of the caller's chosen
/// root so concurrent discoveries never collide.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
    file_seq: AtomicU64,
}

impl SpillDir {
    /// Create a fresh spill directory under `root` (which is created if
    /// missing).
    pub fn create_in(root: &Path) -> io::Result<SpillDir> {
        std::fs::create_dir_all(root)?;
        let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = root.join(format!("depkit-spill-{}-{}", std::process::id(), seq));
        std::fs::create_dir(&path)?;
        Ok(SpillDir {
            path,
            file_seq: AtomicU64::new(0),
        })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A fresh, unique file path inside the directory (for consolidation
    /// output and other unnamed scratch).
    pub fn fresh_path(&self, tag: &str) -> PathBuf {
        let n = self.file_seq.fetch_add(1, Ordering::Relaxed);
        self.path.join(format!("{tag}-{n}.ids"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// One spilled run: its file, how many ids it holds, and the FNV-1a64
/// checksum of its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Absolute path of the run file.
    pub path: PathBuf,
    /// Number of `u32` ids in the run.
    pub ids: u64,
    /// FNV-1a64 over the run file's bytes.
    pub checksum: u64,
}

/// The spilled runs of one attribute, with manifest round-tripping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSet {
    /// The global column id the runs belong to.
    pub column: usize,
    /// The runs, in write order.
    pub runs: Vec<RunMeta>,
}

impl RunSet {
    /// Total ids across all runs — an upper bound on the merged distinct
    /// count (runs may overlap), and the sized hint for re-interning.
    pub fn total_ids(&self) -> u64 {
        self.runs.iter().map(|r| r.ids).sum()
    }

    /// Render the manifest text: a `depkit-runs v2` header line, then one
    /// `<ids>\t<checksum hex>\t<file name>` line per run (file names
    /// relative to the manifest's directory).
    fn manifest_text(&self) -> io::Result<String> {
        let mut out = String::new();
        out.push_str(&format!("depkit-runs v2 column {}\n", self.column));
        for run in &self.runs {
            let name = run
                .path
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| io::Error::other("run file name is not valid UTF-8"))?;
            out.push_str(&format!("{}\t{:016x}\t{}\n", run.ids, run.checksum, name));
        }
        Ok(out)
    }

    /// Write the manifest (non-atomically; for in-process spill state).
    pub fn write_manifest(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.manifest_text()?)
    }

    /// Write the manifest through a unique temporary sibling and `rename`
    /// into place, so a concurrent reader of `path` sees either nothing or
    /// the complete manifest — never a torn prefix.
    pub fn publish_manifest(&self, path: &Path) -> io::Result<()> {
        let tmp = tmp_sibling(path);
        std::fs::write(&tmp, self.manifest_text()?)?;
        std::fs::rename(&tmp, path)
    }

    /// Read a manifest back; run paths are resolved against the
    /// manifest's directory. Diagnostics name the manifest file. Only
    /// version 2 manifests (with checksums) are accepted; anything else —
    /// including a v1 manifest from before checksums existed — is an
    /// error, not a silent degradation.
    pub fn read_manifest(path: &Path) -> io::Result<RunSet> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            io::Error::other(format!("cannot read run manifest {}: {e}", path.display()))
        })?;
        let dir = path.parent().unwrap_or(Path::new("."));
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::other(format!("empty run manifest {}", path.display())))?;
        let column = match header.strip_prefix("depkit-runs v2 column ") {
            Some(c) => c.parse().map_err(|_| {
                io::Error::other(format!(
                    "bad run manifest header `{header}` in {}",
                    path.display()
                ))
            })?,
            None if header.starts_with("depkit-runs v") => {
                return Err(io::Error::other(format!(
                    "unsupported run manifest version in {}: `{header}` (expected depkit-runs v2)",
                    path.display()
                )));
            }
            None => {
                return Err(io::Error::other(format!(
                    "bad run manifest header `{header}` in {}",
                    path.display()
                )));
            }
        };
        let mut runs = Vec::new();
        for line in lines {
            let mut fields = line.splitn(3, '\t');
            let (ids, sum, name) = match (fields.next(), fields.next(), fields.next()) {
                (Some(a), Some(b), Some(c)) => (a, b, c),
                _ => {
                    return Err(io::Error::other(format!(
                        "bad run manifest line `{line}` in {}",
                        path.display()
                    )));
                }
            };
            let ids = ids.parse().map_err(|_| {
                io::Error::other(format!("bad run id count `{ids}` in {}", path.display()))
            })?;
            let checksum = u64::from_str_radix(sum, 16).map_err(|_| {
                io::Error::other(format!("bad run checksum `{sum}` in {}", path.display()))
            })?;
            runs.push(RunMeta {
                path: dir.join(name),
                ids,
                checksum,
            });
        }
        Ok(RunSet { column, runs })
    }
}

/// Validate every run of a set against its manifest entry: the file must
/// exist, hold exactly `ids × 4` bytes, and hash to the recorded FNV-1a64
/// checksum. Each failure is an [`io::Result`] diagnostic naming the
/// offending file — never a panic — so a coordinator can reject a torn or
/// corrupted worker run and re-shard instead of merging garbage.
pub fn verify_run_set(set: &RunSet) -> io::Result<()> {
    let mut buf = vec![0u8; READ_BUF_BYTES];
    for run in &set.runs {
        let mut file = File::open(&run.path).map_err(|e| {
            io::Error::other(format!("missing run file {}: {e}", run.path.display()))
        })?;
        let mut hasher = Fnv64::new();
        let mut bytes = 0u64;
        loop {
            let n = file.read(&mut buf).map_err(|e| {
                io::Error::other(format!("cannot read run file {}: {e}", run.path.display()))
            })?;
            if n == 0 {
                break;
            }
            hasher.update(&buf[..n]);
            bytes += n as u64;
        }
        if bytes != run.ids * 4 {
            return Err(io::Error::other(format!(
                "run file {} truncated: manifest says {} ids ({} bytes), file has {} bytes",
                run.path.display(),
                run.ids,
                run.ids * 4,
                bytes
            )));
        }
        if hasher.finish() != run.checksum {
            return Err(io::Error::other(format!(
                "checksum mismatch in run file {}: manifest says {:016x}, file hashes to {:016x}",
                run.path.display(),
                run.checksum,
                hasher.finish()
            )));
        }
    }
    Ok(())
}

/// Read a manifest and validate every run it names ([`verify_run_set`]) —
/// the only correct way to ingest a run set across a trust boundary.
pub fn load_verified_run_set(path: &Path) -> io::Result<RunSet> {
    let set = RunSet::read_manifest(path)?;
    verify_run_set(&set)?;
    Ok(set)
}

/// Write one run file: the ids as consecutive little-endian `u32`s.
/// Returns the run's metadata (id count and content checksum). The caller
/// is responsible for the ids being sorted and deduplicated (the merge
/// discipline assumes it).
pub fn write_run(path: &Path, ids: &[u32]) -> io::Result<RunMeta> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut hasher = Fnv64::new();
    for &id in ids {
        let bytes = id.to_le_bytes();
        hasher.update(&bytes);
        w.write_all(&bytes)?;
    }
    w.flush()?;
    Ok(RunMeta {
        path: path.to_path_buf(),
        ids: ids.len() as u64,
        checksum: hasher.finish(),
    })
}

/// Write one run file through a unique temporary sibling and `rename` it
/// into place. A writer killed at any point leaves at worst an orphaned
/// `.tmp.` file — the published name either does not exist or holds the
/// complete run, which is what makes a worker crash recoverable by simply
/// re-running its shard.
pub fn publish_run(path: &Path, ids: &[u32]) -> io::Result<RunMeta> {
    let tmp = tmp_sibling(path);
    let meta = write_run(&tmp, ids)?;
    std::fs::rename(&tmp, path)?;
    Ok(RunMeta {
        path: path.to_path_buf(),
        ..meta
    })
}

/// Shared body of [`write_sorted_runs`] / [`publish_sorted_runs`]: chunk,
/// sort, dedup, write each run (atomically when `atomic`), then the
/// manifest.
fn sorted_runs_at(
    values: &[u32],
    chunk_ids: usize,
    dir: &Path,
    column: usize,
    stats: &mut SpillStats,
    atomic: bool,
) -> io::Result<RunSet> {
    let chunk_ids = chunk_ids.max(16);
    let mut runs = Vec::new();
    let mut scratch = Vec::with_capacity(chunk_ids.min(values.len()));
    for (k, chunk) in values.chunks(chunk_ids).enumerate() {
        scratch.clear();
        scratch.extend_from_slice(chunk);
        scratch.sort_unstable();
        scratch.dedup();
        let path = dir.join(format!("col{column}-run{k}.ids"));
        let meta = if atomic {
            publish_run(&path, &scratch)?
        } else {
            write_run(&path, &scratch)?
        };
        stats.runs_written += 1;
        stats.bytes_spilled += meta.ids * 4;
        runs.push(meta);
    }
    let set = RunSet { column, runs };
    let manifest = dir.join(format!("col{column}.manifest"));
    if atomic {
        set.publish_manifest(&manifest)?;
    } else {
        set.write_manifest(&manifest)?;
    }
    stats.spilled_columns += 1;
    Ok(set)
}

/// Spill one column's values as sorted, per-chunk-deduplicated runs of at
/// most `chunk_ids` ids each, and write the attribute's manifest. Runs may
/// overlap in value range; [`RunMerger`] removes cross-run duplicates.
pub fn write_sorted_runs(
    values: &[u32],
    chunk_ids: usize,
    dir: &SpillDir,
    column: usize,
    stats: &mut SpillStats,
) -> io::Result<RunSet> {
    sorted_runs_at(values, chunk_ids, dir.path(), column, stats, false)
}

/// [`write_sorted_runs`] for a *shared* directory crossing a process
/// boundary: every run and the manifest are published atomically
/// (tmp + rename), and the directory is a plain path the caller owns —
/// a shard worker must never remove the coordinator's session directory.
pub fn publish_sorted_runs(
    values: &[u32],
    chunk_ids: usize,
    dir: &Path,
    column: usize,
    stats: &mut SpillStats,
) -> io::Result<RunSet> {
    sorted_runs_at(values, chunk_ids, dir, column, stats, true)
}

/// A buffered streaming reader over one run file.
///
/// Reads [`READ_BUF_BYTES`] at a time; [`RunCursor::next_id`] never does
/// per-id system calls. Opening is fallible; reading panics on I/O error
/// or a truncated (non-multiple-of-4) file — see the module docs for the
/// failure-semantics split.
#[derive(Debug)]
pub struct RunCursor {
    file: File,
    path: PathBuf,
    buf: Vec<u8>,
    len: usize,
    pos: usize,
}

impl RunCursor {
    /// Open a run file for streaming with a freshly allocated buffer.
    pub fn open(path: &Path) -> io::Result<RunCursor> {
        RunCursor::open_with(path, vec![0; READ_BUF_BYTES])
    }

    /// Open a run file for streaming, reusing `buf` as the read buffer
    /// (resized to [`READ_BUF_BYTES`] if needed). Recover the buffer with
    /// [`RunCursor::into_buffer`] when the cursor is exhausted — this is
    /// what lets [`merge_run_set`] consolidate arbitrarily wide run sets
    /// with a bounded buffer pool instead of a fresh 64 KiB allocation
    /// per run per pass.
    pub fn open_with(path: &Path, mut buf: Vec<u8>) -> io::Result<RunCursor> {
        buf.resize(READ_BUF_BYTES, 0);
        Ok(RunCursor {
            file: File::open(path)?,
            path: path.to_path_buf(),
            buf,
            len: 0,
            pos: 0,
        })
    }

    /// Consume the cursor, yielding its read buffer for reuse.
    pub fn into_buffer(self) -> Vec<u8> {
        self.buf
    }

    /// The next id, or `None` at end of run.
    ///
    /// # Panics
    ///
    /// On read errors or truncated run files (see module docs).
    pub fn next_id(&mut self) -> Option<u32> {
        if self.pos + 4 > self.len {
            // Shift the partial tail (0–3 bytes) to the front and refill.
            self.buf.copy_within(self.pos..self.len, 0);
            self.len -= self.pos;
            self.pos = 0;
            while self.len < 4 {
                let n = self
                    .file
                    .read(&mut self.buf[self.len..])
                    .unwrap_or_else(|e| {
                        panic!("spill read failed on {}: {e}", self.path.display())
                    });
                if n == 0 {
                    assert!(
                        self.len == 0,
                        "truncated run file {} ({} trailing bytes)",
                        self.path.display(),
                        self.len
                    );
                    return None;
                }
                self.len += n;
            }
        }
        let id = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4-byte slice"),
        );
        self.pos += 4;
        Some(id)
    }
}

/// A k-way merge over run cursors yielding each id once, ascending — the
/// read side of an attribute's spilled distinct set.
#[derive(Debug)]
pub struct RunMerger {
    heap: BinaryHeap<Reverse<(u32, usize)>>,
    cursors: Vec<RunCursor>,
    last: Option<u32>,
}

impl RunMerger {
    /// Merge the given cursors (each individually sorted ascending).
    pub fn new(mut cursors: Vec<RunCursor>) -> RunMerger {
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if let Some(v) = cursor.next_id() {
                heap.push(Reverse((v, i)));
            }
        }
        RunMerger {
            heap,
            cursors,
            last: None,
        }
    }

    /// Consume the merger, yielding its cursors (and through them, via
    /// [`RunCursor::into_buffer`], their read buffers) for reuse.
    pub fn into_cursors(self) -> Vec<RunCursor> {
        self.cursors
    }
}

/// A pool of read buffers recycled across [`RunCursor`]s. Consolidation
/// passes in [`merge_run_set`] open up to [`MAX_FAN_IN`] cursors per
/// group, group after group, pass after pass; the pool caps the
/// buffer allocations of the whole consolidation at one group's worth.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Take a buffer from the pool, allocating only when empty.
    pub fn take(&mut self) -> Vec<u8> {
        self.free.pop().unwrap_or_else(|| vec![0; READ_BUF_BYTES])
    }

    /// Return a buffer for reuse.
    pub fn put(&mut self, buf: Vec<u8>) {
        self.free.push(buf);
    }
}

impl Iterator for RunMerger {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while let Some(Reverse((v, i))) = self.heap.pop() {
            if let Some(n) = self.cursors[i].next_id() {
                self.heap.push(Reverse((n, i)));
            }
            if self.last != Some(v) {
                self.last = Some(v);
                return Some(v);
            }
        }
        None
    }
}

/// Open a [`RunMerger`] over a run set, consolidating first when the set
/// is wider than [`MAX_FAN_IN`]: groups of `MAX_FAN_IN` runs are merged
/// into single larger runs, pass by pass, until one cursor set suffices.
/// Each consolidation sweep and the final streaming merge count as one
/// merge pass in `stats`.
pub fn merge_run_set(
    set: &RunSet,
    dir: &SpillDir,
    stats: &mut SpillStats,
) -> io::Result<RunMerger> {
    let mut runs = set.runs.clone();
    // One group's worth of read buffers, recycled across groups and
    // passes; consolidation allocates at most MAX_FAN_IN buffers total.
    let mut pool = BufferPool::new();
    while runs.len() > MAX_FAN_IN {
        stats.merge_passes += 1;
        let mut next = Vec::with_capacity(runs.len().div_ceil(MAX_FAN_IN));
        for group in runs.chunks(MAX_FAN_IN) {
            let cursors = group
                .iter()
                .map(|r| RunCursor::open_with(&r.path, pool.take()))
                .collect::<io::Result<Vec<_>>>()?;
            let path = dir.fresh_path(&format!("col{}-merge", set.column));
            let mut w = BufWriter::new(File::create(&path)?);
            let mut hasher = Fnv64::new();
            let mut ids = 0u64;
            let mut merger = RunMerger::new(cursors);
            for id in &mut merger {
                let bytes = id.to_le_bytes();
                hasher.update(&bytes);
                w.write_all(&bytes)?;
                ids += 1;
            }
            w.flush()?;
            for cursor in merger.into_cursors() {
                pool.put(cursor.into_buffer());
            }
            stats.runs_written += 1;
            stats.bytes_spilled += ids * 4;
            // The inputs are dead; reclaim the disk before the next pass.
            for r in group {
                let _ = std::fs::remove_file(&r.path);
            }
            next.push(RunMeta {
                path,
                ids,
                checksum: hasher.finish(),
            });
        }
        runs = next;
    }
    if !runs.is_empty() {
        stats.merge_passes += 1;
    }
    let cursors = runs
        .iter()
        .map(|r| RunCursor::open_with(&r.path, pool.take()))
        .collect::<io::Result<Vec<_>>>()?;
    Ok(RunMerger::new(cursors))
}

/// The uniform streaming view of one attribute's sorted distinct ids:
/// in-memory (under budget) or merged from spilled runs (over budget).
/// Both backings yield the identical ascending, duplicate-free sequence —
/// consumers cannot (and must not) tell them apart.
#[derive(Debug)]
pub enum DistinctStream {
    /// Backed by the in-memory bitmap-sweep path
    /// ([`RelationColumns::sorted_distinct`](crate::column::RelationColumns::sorted_distinct)).
    Mem(std::vec::IntoIter<u32>),
    /// Backed by a k-way merge over disk runs.
    Spilled(RunMerger),
}

impl DistinctStream {
    /// Whether the stream reads from disk runs.
    pub fn is_spilled(&self) -> bool {
        matches!(self, DistinctStream::Spilled(_))
    }

    /// Consume every value strictly below `bound` and also the first value
    /// `>= bound`, returning the latter (`None` when the stream ends
    /// first). Equivalent to calling [`Iterator::next`] until it yields
    /// `>= bound`, but the resident backing answers with one binary search
    /// and a pointer bump — this is what lets a merge consumer fast-forward
    /// through a long run of values it knows no other stream holds.
    pub fn skip_below(&mut self, bound: u32) -> Option<u32> {
        match self {
            DistinctStream::Mem(it) => {
                let skip = it.as_slice().partition_point(|&v| v < bound);
                it.nth(skip)
            }
            DistinctStream::Spilled(m) => loop {
                match m.next() {
                    Some(n) if n < bound => {}
                    other => return other,
                }
            },
        }
    }
}

impl Iterator for DistinctStream {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            DistinctStream::Mem(it) => it.next(),
            DistinctStream::Spilled(m) => m.next(),
        }
    }
}

/// Re-intern a merged run into another interner, resolving each id
/// through `src` — the re-read path for handing spilled state to a
/// consumer with its own value table (another catalog, another process's
/// store). `distinct_hint` — typically [`RunSet::total_ids`] — pre-sizes
/// `dst` in one step so the bulk intake never rehashes mid-stream.
pub fn reintern_merged(
    merged: impl Iterator<Item = u32>,
    distinct_hint: usize,
    src: &ValueInterner,
    dst: &mut ValueInterner,
) -> Vec<u32> {
    dst.reserve_distinct(distinct_hint);
    merged.map(|id| dst.intern(src.resolve(id))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn temp_dir() -> SpillDir {
        SpillDir::create_in(&std::env::temp_dir().join("depkit-spill-tests")).unwrap()
    }

    #[test]
    fn run_roundtrip_across_buffer_boundaries() {
        let dir = temp_dir();
        // More than one read buffer's worth of ids.
        let n = READ_BUF_BYTES / 4 + 1000;
        let ids: Vec<u32> = (0..n as u32).map(|i| i * 3).collect();
        let path = dir.path().join("r.ids");
        let meta = write_run(&path, &ids).unwrap();
        assert_eq!(meta.ids, ids.len() as u64);
        assert_eq!(meta.path, path);
        let mut cursor = RunCursor::open(&path).unwrap();
        let mut got = Vec::new();
        while let Some(id) = cursor.next_id() {
            got.push(id);
        }
        assert_eq!(got, ids);
    }

    #[test]
    #[should_panic(expected = "truncated run file")]
    fn truncated_run_panics() {
        let dir = temp_dir();
        let path = dir.path().join("bad.ids");
        std::fs::write(&path, [1, 2, 3]).unwrap();
        let mut cursor = RunCursor::open(&path).unwrap();
        cursor.next_id();
    }

    #[test]
    fn merger_dedups_across_runs() {
        let dir = temp_dir();
        let a = dir.path().join("a.ids");
        let b = dir.path().join("b.ids");
        let c = dir.path().join("c.ids");
        write_run(&a, &[1, 3, 5, 7]).unwrap();
        write_run(&b, &[2, 3, 4, 7, 9]).unwrap();
        write_run(&c, &[]).unwrap();
        let cursors = [&a, &b, &c]
            .iter()
            .map(|p| RunCursor::open(p).unwrap())
            .collect();
        let merged: Vec<u32> = RunMerger::new(cursors).collect();
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 7, 9]);
    }

    #[test]
    fn sorted_runs_and_manifest_roundtrip() {
        let dir = temp_dir();
        let mut stats = SpillStats::default();
        // Unsorted with duplicates, 3 chunks at chunk_ids = 16 (the floor).
        let values: Vec<u32> = (0..40u32).rev().flat_map(|v| [v, v]).collect();
        let set = write_sorted_runs(&values, 8, &dir, 7, &mut stats).unwrap();
        assert_eq!(set.column, 7);
        assert_eq!(stats.runs_written, set.runs.len());
        assert_eq!(stats.spilled_columns, 1);
        assert!(stats.bytes_spilled > 0);
        let manifest = dir.path().join("col7.manifest");
        let read_back = RunSet::read_manifest(&manifest).unwrap();
        assert_eq!(read_back, set);
        assert_eq!(set.total_ids(), set.runs.iter().map(|r| r.ids).sum::<u64>());
        // Merged: exactly 0..40 ascending.
        let merged: Vec<u32> = merge_run_set(&set, &dir, &mut stats).unwrap().collect();
        assert_eq!(merged, (0..40).collect::<Vec<u32>>());
        assert!(stats.merge_passes >= 1);
    }

    #[test]
    fn wide_run_sets_consolidate_in_passes() {
        let dir = temp_dir();
        let mut stats = SpillStats::default();
        // One id per chunk → MAX_FAN_IN * 2 + 3 runs → needs consolidation.
        // chunk_ids floors at 16, so feed 16 copies of each id.
        let n = MAX_FAN_IN * 2 + 3;
        let values: Vec<u32> = (0..n as u32).flat_map(|v| [v; 16]).collect();
        let set = write_sorted_runs(&values, 16, &dir, 0, &mut stats).unwrap();
        assert_eq!(set.runs.len(), n);
        let before = stats.merge_passes;
        let merged: Vec<u32> = merge_run_set(&set, &dir, &mut stats).unwrap().collect();
        assert_eq!(merged, (0..n as u32).collect::<Vec<u32>>());
        // One consolidation sweep plus the final merge.
        assert_eq!(stats.merge_passes - before, 2);
    }

    #[test]
    fn distinct_stream_backings_agree() {
        let dir = temp_dir();
        let mut stats = SpillStats::default();
        let values = vec![9u32, 1, 4, 4, 9, 2, 8, 2, 0, 5];
        let mut sorted = values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mem = DistinctStream::Mem(sorted.clone().into_iter());
        assert!(!mem.is_spilled());
        let set = write_sorted_runs(&values, 16, &dir, 0, &mut stats).unwrap();
        let spilled = DistinctStream::Spilled(merge_run_set(&set, &dir, &mut stats).unwrap());
        assert!(spilled.is_spilled());
        assert_eq!(mem.collect::<Vec<_>>(), sorted);
        assert_eq!(spilled.collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn skip_below_agrees_with_plain_iteration_on_both_backings() {
        let dir = temp_dir();
        let mut stats = SpillStats::default();
        let values: Vec<u32> = (0..200).map(|v| v * 3).collect();
        for bound in [0u32, 1, 3, 100, 299, 300, 597, 598, 10_000, u32::MAX] {
            let mut mem = DistinctStream::Mem(values.clone().into_iter());
            let set = write_sorted_runs(&values, 16, &dir, 0, &mut stats).unwrap();
            let mut spilled =
                DistinctStream::Spilled(merge_run_set(&set, &dir, &mut stats).unwrap());
            let expected = values.iter().copied().find(|&v| v >= bound);
            assert_eq!(mem.skip_below(bound), expected, "mem, bound {bound}");
            assert_eq!(
                spilled.skip_below(bound),
                expected,
                "spilled, bound {bound}"
            );
            // Both resume right after the consumed value.
            let tail = values
                .iter()
                .copied()
                .find(|&v| v > bound.max(expected.unwrap_or(0)));
            assert_eq!(mem.next(), tail, "mem tail, bound {bound}");
            assert_eq!(spilled.next(), tail, "spilled tail, bound {bound}");
        }
    }

    #[test]
    fn spill_dir_cleans_up_on_drop() {
        let dir = temp_dir();
        let path = dir.path().to_path_buf();
        write_run(&path.join("x.ids"), &[1, 2, 3]).unwrap();
        assert!(path.exists());
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn stats_absorb_sums_fields() {
        let mut a = SpillStats {
            spilled_columns: 1,
            runs_written: 2,
            bytes_spilled: 100,
            merge_passes: 1,
        };
        let b = SpillStats {
            spilled_columns: 2,
            runs_written: 3,
            bytes_spilled: 50,
            merge_passes: 2,
        };
        a.absorb(&b);
        assert_eq!(a.spilled_columns, 3);
        assert_eq!(a.runs_written, 5);
        assert_eq!(a.bytes_spilled, 150);
        assert_eq!(a.merge_passes, 3);
        assert!(a.spilled());
        assert!(!SpillStats::default().spilled());
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn publish_run_is_atomic_and_leaves_no_scratch() {
        let dir = temp_dir();
        let path = dir.path().join("p.ids");
        let meta = publish_run(&path, &[1, 2, 3]).unwrap();
        assert_eq!(meta.path, path);
        assert_eq!(meta.ids, 3);
        assert_eq!(meta.checksum, fnv64(&std::fs::read(&path).unwrap()));
        let leftovers: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "scratch files left: {leftovers:?}");
    }

    #[test]
    fn verify_accepts_intact_and_rejects_corrupted_runs() {
        let dir = temp_dir();
        let mut stats = SpillStats::default();
        let values: Vec<u32> = (0..100).collect();
        let set = write_sorted_runs(&values, 32, &dir, 3, &mut stats).unwrap();
        verify_run_set(&set).unwrap();
        let manifest = dir.path().join("col3.manifest");
        load_verified_run_set(&manifest).unwrap();

        // Flip one byte: checksum mismatch naming the file.
        let victim = &set.runs[0].path;
        let mut bytes = std::fs::read(victim).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(victim, &bytes).unwrap();
        let err = verify_run_set(&set).unwrap_err().to_string();
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(
            err.contains(victim.file_name().unwrap().to_str().unwrap()),
            "{err}"
        );

        // Truncate: size mismatch naming the file.
        bytes[0] ^= 0xff;
        bytes.pop();
        std::fs::write(victim, &bytes).unwrap();
        let err = verify_run_set(&set).unwrap_err().to_string();
        assert!(err.contains("truncated"), "{err}");

        // Remove: missing file named.
        std::fs::remove_file(victim).unwrap();
        let err = verify_run_set(&set).unwrap_err().to_string();
        assert!(err.contains("missing run file"), "{err}");
        assert!(
            err.contains(victim.file_name().unwrap().to_str().unwrap()),
            "{err}"
        );
    }

    #[test]
    fn read_manifest_rejects_other_versions_naming_the_file() {
        let dir = temp_dir();
        let path = dir.path().join("old.manifest");
        std::fs::write(&path, "depkit-runs v1 column 0\n3\tx.ids\n").unwrap();
        let err = RunSet::read_manifest(&path).unwrap_err().to_string();
        assert!(err.contains("unsupported run manifest version"), "{err}");
        assert!(err.contains("old.manifest"), "{err}");
    }

    #[test]
    fn buffer_pool_recycles() {
        let mut pool = BufferPool::new();
        let a = pool.take();
        assert_eq!(a.len(), READ_BUF_BYTES);
        let ptr = a.as_ptr();
        pool.put(a);
        let b = pool.take();
        assert_eq!(b.as_ptr(), ptr, "pool must hand back the same buffer");
        let dir = temp_dir();
        let path = dir.path().join("r.ids");
        write_run(&path, &[5, 6, 7]).unwrap();
        let cursor = RunCursor::open_with(&path, b).unwrap();
        let merger = RunMerger::new(vec![cursor]);
        let cursors = merger.into_cursors();
        assert_eq!(cursors.len(), 1);
        for c in cursors {
            pool.put(c.into_buffer());
        }
        let recycled = pool.take();
        assert_eq!(recycled.as_ptr(), ptr);
    }

    #[test]
    fn reintern_merged_remaps_into_a_fresh_interner() {
        let mut src = ValueInterner::new();
        // Interleave kinds so the re-read path exercises both tables.
        let vals: Vec<Value> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    Value::Int(1000 + i)
                } else {
                    Value::Str(format!("v{i}").into())
                }
            })
            .collect();
        let ids: Vec<u32> = vals.iter().map(|v| src.intern(v)).collect();
        let mut dst = ValueInterner::new();
        dst.intern(&Value::Str("pre-existing".into()));
        let remapped = reintern_merged(ids.iter().copied(), ids.len(), &src, &mut dst);
        assert_eq!(remapped.len(), ids.len());
        for (old, new) in ids.iter().zip(&remapped) {
            assert_eq!(src.resolve(*old), dst.resolve(*new));
        }
    }
}
