//! Affine-pattern infinite relations with exact dependency checking.
//!
//! Theorem 4.4 of the paper separates finite implication from unrestricted
//! implication for FDs and INDs taken together, by exhibiting **infinite**
//! relations: Figure 4.1 is `{(i+1, i) : i ≥ 0}` and Figure 4.2 is
//! `{(1, 1)} ∪ {(i+1, i) : i ≥ 1}`. Such witnesses cannot be materialized,
//! but they *can* be represented symbolically and checked exactly.
//!
//! A [`Pattern`] denotes the set of integer tuples
//! `{(a_1·i + b_1, ..., a_m·i + b_m) : i ∈ ℕ}` for per-column
//! [`LinearTerm`]s `a_k·i + b_k`. A [`SymbolicRelation`] is a finite union
//! of patterns (a constant tuple is a pattern with all slopes zero), and a
//! [`SymbolicDatabase`] assigns one to each relation scheme.
//!
//! Satisfaction of FDs, INDs, and RDs over these infinite relations is
//! **decidable**, by linear Diophantine reasoning:
//!
//! * two tuples drawn from patterns `p(i)` and `q(j)` agree on a column set
//!   iff `(i, j)` solves a system of two-variable linear Diophantine
//!   equations, whose solution set is empty, a point, a line, or the whole
//!   plane ([`DioSet`]);
//! * an IND `R[X] ⊆ S[Y]` reduces to covering `ℕ` by finitely many
//!   arithmetic progressions of matched parameters, which is decidable
//!   because coverage is eventually periodic with period `lcm` of the steps.
//!
//! The `lcm` is capped; inputs exceeding the cap return
//! [`CoreError::SymbolicTooComplex`] rather than an unsound answer. EMVDs
//! over infinite relations are not supported (the paper never needs them).

use crate::database::Database;
use crate::dependency::{Dependency, Fd, Ind, Rd};
use crate::error::CoreError;
use crate::relation::Tuple;
use crate::schema::{DatabaseSchema, RelName};
use crate::value::Value;
use std::fmt;

/// Cap on the lcm of arithmetic-progression steps in IND coverage checks.
const LCM_CAP: i128 = 1 << 22;

/// A per-column affine term `slope·i + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinearTerm {
    /// Coefficient of the pattern parameter `i`.
    pub slope: i64,
    /// Constant offset.
    pub offset: i64,
}

impl LinearTerm {
    /// A constant term.
    pub const fn constant(c: i64) -> Self {
        LinearTerm {
            slope: 0,
            offset: c,
        }
    }

    /// The term `slope·i + offset`.
    pub const fn new(slope: i64, offset: i64) -> Self {
        LinearTerm { slope, offset }
    }

    fn eval(&self, i: i128) -> i128 {
        self.slope as i128 * i + self.offset as i128
    }
}

impl fmt::Display for LinearTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.slope, self.offset) {
            (0, b) => write!(f, "{b}"),
            (1, 0) => write!(f, "i"),
            (a, 0) => write!(f, "{a}i"),
            (1, b) if b > 0 => write!(f, "i+{b}"),
            (1, b) => write!(f, "i{b}"),
            (a, b) if b > 0 => write!(f, "{a}i+{b}"),
            (a, b) => write!(f, "{a}i{b}"),
        }
    }
}

/// One affine family of tuples, `i ↦ (a_1·i+b_1, ..., a_m·i+b_m)`, `i ∈ ℕ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern(Vec<LinearTerm>);

impl Pattern {
    /// Create a pattern from per-column terms.
    pub fn new(terms: Vec<LinearTerm>) -> Self {
        Pattern(terms)
    }

    /// A constant pattern (a single concrete tuple).
    pub fn constant(values: &[i64]) -> Self {
        Pattern(values.iter().map(|&v| LinearTerm::constant(v)).collect())
    }

    /// Shorthand: build from `(slope, offset)` pairs.
    pub fn from_pairs(pairs: &[(i64, i64)]) -> Self {
        Pattern(pairs.iter().map(|&(a, b)| LinearTerm::new(a, b)).collect())
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The per-column terms.
    pub fn terms(&self) -> &[LinearTerm] {
        &self.0
    }

    /// Whether every column is constant (the pattern denotes one tuple).
    pub fn is_constant(&self) -> bool {
        self.0.iter().all(|t| t.slope == 0)
    }

    /// The concrete tuple at parameter `i`.
    pub fn tuple_at(&self, i: u64) -> Tuple {
        Tuple::new(
            self.0
                .iter()
                .map(|t| Value::Int(t.eval(i as i128) as i64))
                .collect(),
        )
    }

    /// The pattern restricted to the given columns.
    pub fn project(&self, cols: &[usize]) -> Pattern {
        Pattern(cols.iter().map(|&c| self.0[c]).collect())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (k, t) in self.0.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

// ---------------------------------------------------------------------------
// Two-variable linear Diophantine solution sets
// ---------------------------------------------------------------------------

/// Solution set of a system of equations `a_k·i − c_k·j = e_k` over `ℤ²`.
///
/// Every such system's solution set is empty, a single point, a line
/// (1-parameter family), or all of `ℤ²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DioSet {
    /// No solutions.
    Empty,
    /// Exactly one solution.
    Point(i128, i128),
    /// `(i, j) = (i0 + di·t, j0 + dj·t)` for `t ∈ ℤ`.
    Line {
        /// Base point, `i` coordinate.
        i0: i128,
        /// Base point, `j` coordinate.
        j0: i128,
        /// Step in `i` per unit `t`.
        di: i128,
        /// Step in `j` per unit `t`.
        dj: i128,
    },
    /// All of `ℤ²`.
    Full,
}

fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a.abs(), if a >= 0 { 1 } else { -1 }, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a.rem_euclid(b));
        (g, y, x - (a.div_euclid(b)) * y)
    }
}

fn floor_div(a: i128, b: i128) -> i128 {
    a.div_euclid(b)
}

fn ceil_div(a: i128, b: i128) -> i128 {
    -((-a).div_euclid(b))
}

impl DioSet {
    /// Intersect this solution set with the equation `a·i − c·j = e`.
    pub fn intersect(self, a: i128, c: i128, e: i128) -> DioSet {
        match self {
            DioSet::Empty => DioSet::Empty,
            DioSet::Point(i, j) => {
                if a * i - c * j == e {
                    DioSet::Point(i, j)
                } else {
                    DioSet::Empty
                }
            }
            DioSet::Full => {
                if a == 0 && c == 0 {
                    if e == 0 {
                        DioSet::Full
                    } else {
                        DioSet::Empty
                    }
                } else if a == 0 {
                    // −c·j = e: j fixed, i free.
                    if e % c == 0 {
                        DioSet::Line {
                            i0: 0,
                            j0: -e / c,
                            di: 1,
                            dj: 0,
                        }
                    } else {
                        DioSet::Empty
                    }
                } else if c == 0 {
                    if e % a == 0 {
                        DioSet::Line {
                            i0: e / a,
                            j0: 0,
                            di: 0,
                            dj: 1,
                        }
                    } else {
                        DioSet::Empty
                    }
                } else {
                    // a·i − c·j = e, both nonzero.
                    let (g, x, y) = ext_gcd(a, -c);
                    if e % g != 0 {
                        return DioSet::Empty;
                    }
                    let k = e / g;
                    DioSet::Line {
                        i0: x * k,
                        j0: y * k,
                        di: c / g,
                        dj: a / g,
                    }
                }
            }
            DioSet::Line { i0, j0, di, dj } => {
                // Substitute the parametrization into the new equation:
                // (a·di − c·dj)·t = e − a·i0 + c·j0.
                let coef = a * di - c * dj;
                let rhs = e - a * i0 + c * j0;
                if coef == 0 {
                    if rhs == 0 {
                        self
                    } else {
                        DioSet::Empty
                    }
                } else if rhs % coef == 0 {
                    let t = rhs / coef;
                    DioSet::Point(i0 + di * t, j0 + dj * t)
                } else {
                    DioSet::Empty
                }
            }
        }
    }

    /// Solve the full matching system for two patterns restricted to the
    /// given columns: `p(i)[cols_p] = q(j)[cols_q]` componentwise.
    pub fn match_columns(p: &Pattern, cols_p: &[usize], q: &Pattern, cols_q: &[usize]) -> DioSet {
        let mut s = DioSet::Full;
        for (&cp, &cq) in cols_p.iter().zip(cols_q) {
            let tp = p.terms()[cp];
            let tq = q.terms()[cq];
            // tp.slope·i + tp.offset = tq.slope·j + tq.offset
            s = s.intersect(
                tp.slope as i128,
                tq.slope as i128,
                tq.offset as i128 - tp.offset as i128,
            );
            if s == DioSet::Empty {
                return s;
            }
        }
        s
    }
}

/// An inclusive range of the line parameter `t`, possibly unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TRange {
    lo: Option<i128>,
    hi: Option<i128>,
}

impl TRange {
    const ALL: TRange = TRange { lo: None, hi: None };
    const EMPTY: TRange = TRange {
        lo: Some(1),
        hi: Some(0),
    };

    fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// Constrain `base + step·t ≥ 0`.
    fn constrain_nonneg(self, base: i128, step: i128) -> TRange {
        if self.is_empty() {
            return TRange::EMPTY;
        }
        if step == 0 {
            return if base >= 0 { self } else { TRange::EMPTY };
        }
        let (mut lo, mut hi) = (self.lo, self.hi);
        if step > 0 {
            // t ≥ ceil(−base / step)
            let bound = ceil_div(-base, step);
            lo = Some(lo.map_or(bound, |l| l.max(bound)));
        } else {
            // t ≤ floor(−base / step) = floor(base / −step)
            let bound = floor_div(base, -step);
            hi = Some(hi.map_or(bound, |h| h.min(bound)));
        }
        let r = TRange { lo, hi };
        if r.is_empty() {
            TRange::EMPTY
        } else {
            r
        }
    }

    /// Number of integers in the range (`None` = infinite).
    fn count(&self) -> Option<i128> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => Some((h - l + 1).max(0)),
            _ => None,
        }
    }

    /// Some value in the range, preferring the finite endpoint.
    fn sample(&self) -> Option<i128> {
        if self.is_empty() {
            return None;
        }
        match (self.lo, self.hi) {
            (Some(l), _) => Some(l),
            (None, Some(h)) => Some(h),
            (None, None) => Some(0),
        }
    }

    /// Some value in the range different from `t`, if one exists.
    fn sample_avoiding(&self, avoid: i128) -> Option<i128> {
        let first = self.sample()?;
        if first != avoid {
            return Some(first);
        }
        // Try the next value inward.
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => {
                if l < h {
                    Some(l + 1)
                } else {
                    None
                }
            }
            (Some(l), None) => Some(l + 1),
            (None, Some(h)) => Some(h - 1),
            (None, None) => Some(avoid + 1),
        }
    }
}

// ---------------------------------------------------------------------------
// Symbolic relations and databases
// ---------------------------------------------------------------------------

/// A finite union of affine patterns over a relation scheme: a possibly
/// infinite relation with decidable FD/IND/RD satisfaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicRelation {
    scheme: crate::schema::RelationScheme,
    patterns: Vec<Pattern>,
}

impl SymbolicRelation {
    /// An empty symbolic relation.
    pub fn empty(scheme: crate::schema::RelationScheme) -> Self {
        SymbolicRelation {
            scheme,
            patterns: Vec::new(),
        }
    }

    /// The relation's scheme.
    pub fn scheme(&self) -> &crate::schema::RelationScheme {
        &self.scheme
    }

    /// The relation's patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Add a pattern; its width must match the scheme's arity.
    pub fn add_pattern(&mut self, p: Pattern) -> Result<(), CoreError> {
        if p.width() != self.scheme.arity() {
            return Err(CoreError::TupleArity {
                relation: self.scheme.name().name().to_owned(),
                expected: self.scheme.arity(),
                actual: p.width(),
            });
        }
        self.patterns.push(p);
        Ok(())
    }

    /// Add a single constant tuple.
    pub fn add_constant(&mut self, values: &[i64]) -> Result<(), CoreError> {
        self.add_pattern(Pattern::constant(values))
    }

    /// Materialize the finite sub-relation with pattern parameters `i ≤ max_i`.
    pub fn prefix(&self, max_i: u64) -> crate::relation::Relation {
        let mut r = crate::relation::Relation::empty(self.scheme.clone());
        for p in &self.patterns {
            let top = if p.is_constant() { 0 } else { max_i };
            for i in 0..=top {
                r.insert(p.tuple_at(i)).expect("arity verified at insert");
            }
        }
        r
    }
}

/// A violation witness for a symbolic relation, with concrete tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicViolation {
    /// FD violated by the two concrete tuples.
    Fd(Tuple, Tuple),
    /// IND violated: this left-side tuple's projection is uncovered.
    Ind(Tuple),
    /// RD violated by this tuple.
    Rd(Tuple),
}

/// A database of symbolic relations.
#[derive(Debug, Clone)]
pub struct SymbolicDatabase {
    schema: DatabaseSchema,
    relations: Vec<SymbolicRelation>,
}

impl SymbolicDatabase {
    /// The empty symbolic database over `schema`.
    pub fn empty(schema: DatabaseSchema) -> Self {
        let relations = schema
            .schemes()
            .iter()
            .map(|s| SymbolicRelation::empty(s.clone()))
            .collect();
        SymbolicDatabase { schema, relations }
    }

    /// The database's schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The symbolic relation for `name`.
    pub fn relation(&self, name: &RelName) -> Result<&SymbolicRelation, CoreError> {
        let i = self
            .schema
            .scheme_index(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.name().to_owned()))?;
        Ok(&self.relations[i])
    }

    /// Mutable access to the symbolic relation for `name`.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut SymbolicRelation, CoreError> {
        let name = RelName::new(name);
        let i = self
            .schema
            .scheme_index(&name)
            .ok_or_else(|| CoreError::UnknownRelation(name.name().to_owned()))?;
        Ok(&mut self.relations[i])
    }

    /// Materialize the finite prefix database with parameters `i ≤ max_i`.
    pub fn prefix(&self, max_i: u64) -> Database {
        let mut db = Database::empty(self.schema.clone());
        for r in &self.relations {
            let fin = r.prefix(max_i);
            let name = fin.scheme().name().clone();
            for t in fin.tuples() {
                db.insert(&name, t.clone()).expect("schema matches");
            }
        }
        db
    }

    /// Whether the (possibly infinite) database satisfies `dep`.
    pub fn satisfies(&self, dep: &Dependency) -> Result<bool, CoreError> {
        Ok(self.check(dep)?.is_none())
    }

    /// Check `dep` exactly, returning a concrete violation witness when it
    /// fails. EMVDs are unsupported over infinite relations.
    pub fn check(&self, dep: &Dependency) -> Result<Option<SymbolicViolation>, CoreError> {
        match dep {
            Dependency::Fd(fd) => self.check_fd(fd),
            Dependency::Ind(ind) => self.check_ind(ind),
            Dependency::Rd(rd) => self.check_rd(rd),
            Dependency::Emvd(_) => Err(CoreError::SymbolicTooComplex(
                "EMVD satisfaction over infinite relations is not supported".into(),
            )),
        }
    }

    fn check_rd(&self, rd: &Rd) -> Result<Option<SymbolicViolation>, CoreError> {
        let r = self.relation(&rd.rel)?;
        let lcols = r.scheme.columns(&rd.lhs)?;
        let rcols = r.scheme.columns(&rd.rhs)?;
        for p in &r.patterns {
            for (&cl, &cr) in lcols.iter().zip(&rcols) {
                let (tl, tr) = (p.terms()[cl], p.terms()[cr]);
                if tl != tr {
                    // Two distinct affine functions differ at i = 0 or i = 1.
                    let i = if tl.eval(0) != tr.eval(0) { 0 } else { 1 };
                    debug_assert_ne!(tl.eval(i as i128), tr.eval(i as i128));
                    return Ok(Some(SymbolicViolation::Rd(p.tuple_at(i))));
                }
            }
        }
        Ok(None)
    }

    fn check_fd(&self, fd: &Fd) -> Result<Option<SymbolicViolation>, CoreError> {
        let r = self.relation(&fd.rel)?;
        let xcols = r.scheme.columns(&fd.lhs)?;
        let ycols = r.scheme.columns(&fd.rhs)?;
        for p in &r.patterns {
            for q in &r.patterns {
                if let Some((i, j)) = fd_violating_pair(p, q, &xcols, &ycols) {
                    return Ok(Some(SymbolicViolation::Fd(
                        p.tuple_at(i as u64),
                        q.tuple_at(j as u64),
                    )));
                }
            }
        }
        Ok(None)
    }

    fn check_ind(&self, ind: &Ind) -> Result<Option<SymbolicViolation>, CoreError> {
        let left = self.relation(&ind.lhs_rel)?;
        let right = self.relation(&ind.rhs_rel)?;
        let lcols = left.scheme.columns(&ind.lhs_attrs)?;
        let rcols = right.scheme.columns(&ind.rhs_attrs)?;
        for p in &left.patterns {
            if let Some(i) = uncovered_parameter(p, &lcols, &right.patterns, &rcols)? {
                return Ok(Some(SymbolicViolation::Ind(p.tuple_at(i))));
            }
        }
        Ok(None)
    }
}

/// Find `(i, j) ∈ ℕ²` such that `p(i)[X] = q(j)[X]` but
/// `p(i)[Y] ≠ q(j)[Y]`, if such a pair exists. Exact.
fn fd_violating_pair(
    p: &Pattern,
    q: &Pattern,
    xcols: &[usize],
    ycols: &[usize],
) -> Option<(i128, i128)> {
    match DioSet::match_columns(p, xcols, q, xcols) {
        DioSet::Empty => None,
        DioSet::Point(i, j) => {
            if i >= 0 && j >= 0 && differs_at(p, q, ycols, i, j) {
                Some((i, j))
            } else {
                None
            }
        }
        DioSet::Full => {
            // X matches for every (i, j). A nonzero affine difference on a
            // Y column is nonzero somewhere on the {0,1}² grid.
            for i in 0..=1i128 {
                for j in 0..=1i128 {
                    if differs_at(p, q, ycols, i, j) {
                        return Some((i, j));
                    }
                }
            }
            None
        }
        DioSet::Line { i0, j0, di, dj } => {
            let range = TRange::ALL
                .constrain_nonneg(i0, di)
                .constrain_nonneg(j0, dj);
            if range.is_empty() {
                return None;
            }
            for &yc in ycols {
                let (ty, uy) = (p.terms()[yc], q.terms()[yc]);
                // Difference along the line, as a function of t:
                // alpha·t + beta.
                let alpha = ty.slope as i128 * di - uy.slope as i128 * dj;
                let beta = ty.slope as i128 * i0 + ty.offset as i128
                    - uy.slope as i128 * j0
                    - uy.offset as i128;
                let t = if alpha == 0 {
                    if beta == 0 {
                        continue;
                    }
                    range.sample()
                } else {
                    // Nonzero at every t except possibly t* = −beta/alpha.
                    let tstar = if beta % alpha == 0 {
                        Some(-beta / alpha)
                    } else {
                        None
                    };
                    match tstar {
                        Some(ts) => range.sample_avoiding(ts),
                        None => range.sample(),
                    }
                };
                if let Some(t) = t {
                    let (i, j) = (i0 + di * t, j0 + dj * t);
                    debug_assert!(i >= 0 && j >= 0);
                    debug_assert!(differs_at(p, q, &[yc], i, j));
                    return Some((i, j));
                }
            }
            None
        }
    }
}

fn differs_at(p: &Pattern, q: &Pattern, ycols: &[usize], i: i128, j: i128) -> bool {
    ycols
        .iter()
        .any(|&c| p.terms()[c].eval(i) != q.terms()[c].eval(j))
}

/// An arithmetic progression of covered parameters.
#[derive(Debug, Clone, Copy)]
enum Covered {
    /// All of `ℕ`.
    All,
    /// A single parameter.
    One(i128),
    /// `{start + k·step : 0 ≤ k < count}` (`count = None` means infinite).
    Ap {
        start: i128,
        step: i128,
        count: Option<i128>,
    },
}

/// Find the least `i ∈ ℕ` such that `p(i)[lcols]` is matched by no
/// `q(j)[rcols]`, or `None` when every `i` is covered.
fn uncovered_parameter(
    p: &Pattern,
    lcols: &[usize],
    rhs: &[Pattern],
    rcols: &[usize],
) -> Result<Option<u64>, CoreError> {
    let mut pieces: Vec<Covered> = Vec::new();
    for q in rhs {
        match DioSet::match_columns(p, lcols, q, rcols) {
            DioSet::Empty => {}
            DioSet::Point(i, j) => {
                if i >= 0 && j >= 0 {
                    pieces.push(Covered::One(i));
                }
            }
            DioSet::Full => pieces.push(Covered::All),
            DioSet::Line { i0, j0, di, dj } => {
                let range = TRange::ALL
                    .constrain_nonneg(i0, di)
                    .constrain_nonneg(j0, dj);
                if range.is_empty() {
                    continue;
                }
                if di == 0 {
                    pieces.push(Covered::One(i0));
                    continue;
                }
                // i(t) = i0 + di·t over the valid t range. Normalize to an
                // ascending progression of i values.
                let count = range.count();
                let (start, step) = if di > 0 {
                    match range.lo {
                        Some(lo) => (i0 + di * lo, di),
                        None => {
                            // t unbounded below with di > 0: i takes all
                            // values ≡ i0 (mod di) down to −∞, so all
                            // residue-compatible naturals are covered.
                            (i0.rem_euclid(di), di)
                        }
                    }
                } else {
                    match range.hi {
                        Some(hi) => (i0 + di * hi, -di),
                        None => (i0.rem_euclid(-di), -di),
                    }
                };
                pieces.push(Covered::Ap { start, step, count });
            }
        }
    }

    // Coverage of ℕ by the pieces is eventually periodic: beyond every
    // start, membership depends only on the residue mod lcm(steps).
    let mut lcm: i128 = 1;
    let mut max_start: i128 = 0;
    for piece in &pieces {
        if let Covered::Ap {
            start,
            step,
            count: None,
        } = piece
        {
            let g = gcd(lcm, *step);
            lcm = lcm / g * step;
            if lcm > LCM_CAP {
                return Err(CoreError::SymbolicTooComplex(format!(
                    "progression step lcm exceeds cap {LCM_CAP}"
                )));
            }
            max_start = max_start.max(*start);
        }
    }
    let horizon = max_start + lcm;
    if horizon > LCM_CAP {
        return Err(CoreError::SymbolicTooComplex(
            "coverage horizon exceeds cap".into(),
        ));
    }

    // When the LHS pattern is constant on the projected columns, one
    // covered parameter covers them all; the general scan below still
    // answers correctly because every i yields the same projection, but it
    // could scan far — short-circuit for clarity and speed.
    if lcols.iter().all(|&c| p.terms()[c].slope == 0) {
        let zero_covered = pieces.iter().any(|piece| match piece {
            Covered::All => true,
            Covered::One(i) => *i == 0,
            Covered::Ap { start, step, count } => {
                covers(*start, *step, *count, 0) || covers_any(*start, *step, *count)
            }
        });
        return Ok(if zero_covered { None } else { Some(0) });
    }

    'outer: for i in 0..=horizon {
        for piece in &pieces {
            let hit = match piece {
                Covered::All => true,
                Covered::One(x) => *x == i,
                Covered::Ap { start, step, count } => covers(*start, *step, *count, i),
            };
            if hit {
                continue 'outer;
            }
        }
        return Ok(Some(i as u64));
    }
    Ok(None)
}

fn covers(start: i128, step: i128, count: Option<i128>, i: i128) -> bool {
    if i < start || (i - start) % step != 0 {
        return false;
    }
    match count {
        None => true,
        Some(n) => (i - start) / step < n,
    }
}

fn covers_any(start: i128, step: i128, count: Option<i128>) -> bool {
    // Does the progression contain any element at all (used only for the
    // constant-LHS shortcut, where any covered parameter suffices)?
    let _ = (start, step);
    match count {
        None => true,
        Some(n) => n > 0,
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dependency;

    fn fig_4_1() -> SymbolicDatabase {
        // Figure 4.1: r = {(i+1, i) : i ≥ 0} over R(A, B).
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        db.relation_mut("R")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(1, 1), (1, 0)]))
            .unwrap();
        db
    }

    fn fig_4_2() -> SymbolicDatabase {
        // Figure 4.2: r = {(1,1)} ∪ {(i+1, i) : i ≥ 1} over R(A, B).
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        let r = db.relation_mut("R").unwrap();
        r.add_constant(&[1, 1]).unwrap();
        // i ≥ 1 re-parameterized as i' = i − 1 ≥ 0: (i'+2, i'+1).
        r.add_pattern(Pattern::from_pairs(&[(1, 2), (1, 1)]))
            .unwrap();
        db
    }

    #[test]
    fn figure_4_1_separates_unrestricted_from_finite() {
        let db = fig_4_1();
        // Satisfies Σ = {R: A -> B, R[A] <= R[B]}.
        assert!(db
            .satisfies(&parse_dependency("R: A -> B").unwrap())
            .unwrap());
        assert!(db
            .satisfies(&parse_dependency("R[A] <= R[B]").unwrap())
            .unwrap());
        // Violates σ = R[B] <= R[A]: entry 0 is in r[B] but not r[A].
        let v = db
            .check(&parse_dependency("R[B] <= R[A]").unwrap())
            .unwrap();
        match v {
            Some(SymbolicViolation::Ind(t)) => assert_eq!(t.at(1), &Value::Int(0)),
            other => panic!("expected IND violation, got {other:?}"),
        }
    }

    #[test]
    fn figure_4_2_separates_for_the_fd_case() {
        let db = fig_4_2();
        assert!(db
            .satisfies(&parse_dependency("R: A -> B").unwrap())
            .unwrap());
        assert!(db
            .satisfies(&parse_dependency("R[A] <= R[B]").unwrap())
            .unwrap());
        // Violates σ = R: B -> A: (1,1) and (2,1) share B = 1.
        let v = db.check(&parse_dependency("R: B -> A").unwrap()).unwrap();
        match v {
            Some(SymbolicViolation::Fd(t1, t2)) => {
                assert_eq!(t1.at(1), t2.at(1));
                assert_ne!(t1.at(0), t2.at(0));
            }
            other => panic!("expected FD violation, got {other:?}"),
        }
    }

    #[test]
    fn rd_on_patterns() {
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema.clone());
        db.relation_mut("R")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(1, 0), (1, 0)]))
            .unwrap();
        assert!(db
            .satisfies(&parse_dependency("R[A = B]").unwrap())
            .unwrap());

        let mut db2 = SymbolicDatabase::empty(schema);
        db2.relation_mut("R")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(1, 0), (1, 1)]))
            .unwrap();
        assert!(!db2
            .satisfies(&parse_dependency("R[A = B]").unwrap())
            .unwrap());
    }

    #[test]
    fn ind_progression_coverage() {
        // lhs column {2i : i ≥ 0}; rhs column {i : i ≥ 0} covers it.
        let schema = DatabaseSchema::parse(&["L(A)", "R(B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema.clone());
        db.relation_mut("L")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(2, 0)]))
            .unwrap();
        db.relation_mut("R")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(1, 0)]))
            .unwrap();
        assert!(db
            .satisfies(&parse_dependency("L[A] <= R[B]").unwrap())
            .unwrap());
        // But {i} is NOT covered by {2i}: 1 is a witness.
        assert!(!db
            .satisfies(&parse_dependency("R[B] <= L[A]").unwrap())
            .unwrap());
    }

    #[test]
    fn ind_union_of_progressions() {
        // {i} covered by {2i} ∪ {2i+1}.
        let schema = DatabaseSchema::parse(&["L(A)", "R(B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        db.relation_mut("L")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(1, 0)]))
            .unwrap();
        let r = db.relation_mut("R").unwrap();
        r.add_pattern(Pattern::from_pairs(&[(2, 0)])).unwrap();
        r.add_pattern(Pattern::from_pairs(&[(2, 1)])).unwrap();
        assert!(db
            .satisfies(&parse_dependency("L[A] <= R[B]").unwrap())
            .unwrap());
    }

    #[test]
    fn fd_detects_cross_pattern_collision() {
        // Patterns (i, 0) and (i, 1) collide on A for equal parameters.
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        let r = db.relation_mut("R").unwrap();
        r.add_pattern(Pattern::from_pairs(&[(1, 0), (0, 0)]))
            .unwrap();
        r.add_pattern(Pattern::from_pairs(&[(1, 0), (0, 1)]))
            .unwrap();
        assert!(!db
            .satisfies(&parse_dependency("R: A -> B").unwrap())
            .unwrap());
    }

    #[test]
    fn fd_within_single_pattern_constant_column() {
        // Pattern (0, i): A constant, B varies: A -> B violated.
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        db.relation_mut("R")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(0, 5), (1, 0)]))
            .unwrap();
        assert!(!db
            .satisfies(&parse_dependency("R: A -> B").unwrap())
            .unwrap());
        // But B -> A holds.
        assert!(db
            .satisfies(&parse_dependency("R: B -> A").unwrap())
            .unwrap());
    }

    #[test]
    fn symbolic_agrees_with_prefix_on_fd_violations() {
        // If the symbolic checker reports an FD violation, the violating
        // tuples appear in a sufficiently large prefix, which then also
        // violates the FD.
        let db = fig_4_2();
        let fd = parse_dependency("R: B -> A").unwrap();
        assert!(!db.satisfies(&fd).unwrap());
        let prefix = db.prefix(10);
        assert!(!prefix.satisfies(&fd).unwrap());
    }

    #[test]
    fn diophantine_point_solution() {
        // i − j = 1 and i − 2j = −6: substituting i = j + 1 gives
        // j + 1 − 2j = −6, so j = 7 and i = 8.
        let s = DioSet::Full.intersect(1, 1, 1).intersect(1, 2, -6);
        match s {
            DioSet::Point(i, j) => {
                assert_eq!((i, j), (8, 7));
                assert_eq!(i - j, 1);
                assert_eq!(i - 2 * j, -6);
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn diophantine_inconsistent() {
        // i − j = 0 and i − j = 1: empty.
        let s = DioSet::Full.intersect(1, 1, 0).intersect(1, 1, 1);
        assert_eq!(s, DioSet::Empty);
    }

    #[test]
    fn diophantine_divisibility() {
        // 2i − 2j = 1 has no integer solutions.
        assert_eq!(DioSet::Full.intersect(2, 2, 1), DioSet::Empty);
        // 2i − 4j = 6 has solutions (i, j) = (3 + 2t, t).
        match DioSet::Full.intersect(2, 4, 6) {
            DioSet::Line { .. } => {}
            other => panic!("expected line, got {other:?}"),
        }
    }

    #[test]
    fn lcm_cap_fails_honestly() {
        // Two rhs progressions with coprime steps whose lcm exceeds the
        // cap: the checker must error, never guess.
        let schema = DatabaseSchema::parse(&["L(A)", "R(B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        db.relation_mut("L")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(1, 0)]))
            .unwrap();
        let r = db.relation_mut("R").unwrap();
        r.add_pattern(Pattern::from_pairs(&[(2048, 0)])).unwrap();
        r.add_pattern(Pattern::from_pairs(&[(2049, 0)])).unwrap();
        let ind = parse_dependency("L[A] <= R[B]").unwrap();
        match db.check(&ind) {
            Err(CoreError::SymbolicTooComplex(_)) => {}
            other => panic!("expected TooComplex, got {other:?}"),
        }
    }

    #[test]
    fn emvd_over_symbolic_is_rejected() {
        let schema = DatabaseSchema::parse(&["R(A, B, C)"]).unwrap();
        let db = SymbolicDatabase::empty(schema);
        let e = parse_dependency("R: A ->> B | C").unwrap();
        assert!(matches!(
            db.check(&e),
            Err(CoreError::SymbolicTooComplex(_))
        ));
    }

    #[test]
    fn negative_offsets_handled() {
        // Pattern (i − 5, i): A takes values −5, −4, ...; B takes 0, 1, ...
        // A ⊆ B fails at i = 0 (value −5); B ⊆ A holds (B's value v occurs
        // as A's value at i = v + 5).
        let schema = DatabaseSchema::parse(&["R(A, B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema);
        db.relation_mut("R")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(1, -5), (1, 0)]))
            .unwrap();
        assert!(!db
            .satisfies(&parse_dependency("R[A] <= R[B]").unwrap())
            .unwrap());
        assert!(db
            .satisfies(&parse_dependency("R[B] <= R[A]").unwrap())
            .unwrap());
    }

    #[test]
    fn constant_lhs_ind_shortcut() {
        // Constant left column: covered iff its single value is matched.
        let schema = DatabaseSchema::parse(&["L(A)", "R(B)"]).unwrap();
        let mut db = SymbolicDatabase::empty(schema.clone());
        db.relation_mut("L").unwrap().add_constant(&[7]).unwrap();
        db.relation_mut("R")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(7, 0)]))
            .unwrap();
        // 7 = 7·1: covered.
        assert!(db
            .satisfies(&parse_dependency("L[A] <= R[B]").unwrap())
            .unwrap());

        let mut db2 = SymbolicDatabase::empty(schema);
        db2.relation_mut("L").unwrap().add_constant(&[5]).unwrap();
        db2.relation_mut("R")
            .unwrap()
            .add_pattern(Pattern::from_pairs(&[(7, 0)]))
            .unwrap();
        // 5 is not a multiple of 7.
        assert!(!db2
            .satisfies(&parse_dependency("L[A] <= R[B]").unwrap())
            .unwrap());
    }

    #[test]
    fn prefix_materialization() {
        let db = fig_4_1();
        let p = db.prefix(3);
        let r = p.relation(&RelName::new("R")).unwrap();
        assert_eq!(r.len(), 4); // i = 0..=3
        assert!(r.contains(&Tuple::ints(&[4, 3])));
    }
}
