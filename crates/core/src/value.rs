//! Values appearing as tuple entries.
//!
//! The paper's constructions use several kinds of entries: small integers
//! (the Rule (*) chase of Theorem 3.1 uses `{0, 1, ..., m}`), pairs of
//! integers (the Armstrong database of Figure 6.1 has entries like
//! `(2i+2, i)`), strings (realistic examples), and *labeled nulls* (the
//! standard chase of `depkit-chase`). [`Value`] covers all of them with a
//! total order so relations can be stored deterministically.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A single tuple entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(Arc<str>),
    /// An ordered pair, e.g. the `(m, i)` entries of Figure 6.1.
    Pair(Box<Value>, Box<Value>),
    /// A labeled null (chase variable). Two nulls are equal iff their labels
    /// are equal.
    Null(u64),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for integer pairs.
    pub fn pair(a: i64, b: i64) -> Self {
        Value::Pair(Box::new(Value::Int(a)), Box::new(Value::Int(b)))
    }

    /// Whether this value is a labeled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// The integer inside, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Pair(a, b) => write!(f, "({a},{b})"),
            Value::Null(n) => write!(f, "?{n}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<(i64, i64)> for Value {
    fn from((a, b): (i64, i64)) -> Self {
        Value::pair(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_stable() {
        let mut vals = vec![
            Value::Null(3),
            Value::Int(2),
            Value::str("b"),
            Value::pair(1, 2),
            Value::Int(1),
            Value::str("a"),
        ];
        vals.sort();
        // Sorting twice yields the same order (total order sanity).
        let snapshot = vals.clone();
        vals.sort();
        assert_eq!(vals, snapshot);
    }

    #[test]
    fn null_equality_by_label() {
        assert_eq!(Value::Null(7), Value::Null(7));
        assert_ne!(Value::Null(7), Value::Null(8));
        assert_ne!(Value::Null(7), Value::Int(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::pair(2, 3).to_string(), "(2,3)");
        assert_eq!(Value::Null(1).to_string(), "?1");
        assert_eq!(Value::str("x").to_string(), "x");
    }
}
