//! Write-ahead logging and checkpointing: the on-disk durability layer
//! under the serve catalog.
//!
//! A durable catalog directory holds exactly two artifacts:
//!
//! * `wal.log` — a **write-ahead log** of length-prefixed, FNV-1a64
//!   checksummed frames: one header frame (the spec the log was opened
//!   against plus the generation it starts after), then one commit frame
//!   per *effective* committed [`Delta`], appended inside the catalog's
//!   short write-lock commit protocol before the client's commit reply is
//!   sent. Acknowledged therefore means logged (and, under
//!   [`FsyncPolicy::Always`], fsynced).
//! * `catalog.ckpt` — a **checkpoint**: the serialized catalog state
//!   (interner, live row logs, commit-token table, generation), published
//!   through the spill-style atomic `<name>.tmp.<pid>.<seq>` → `rename`
//!   protocol so a crash mid-checkpoint never damages the previous one.
//!   After a checkpoint the WAL is reset to an empty log based at the
//!   checkpoint generation, which is what bounds recovery time.
//!
//! ## Frame format
//!
//! ```text
//! file  := magic(8) frame*
//! frame := len(u32 LE) payload(len bytes) checksum(u64 LE)   -- FNV-1a64 of payload
//! payload[0] = kind: 1 header, 2 commit
//! ```
//!
//! Integers are little-endian; strings are `u32` length + UTF-8 bytes;
//! [`Value`]s are tagged (`0` Int, `1` Str, `2` Pair, `3` Null).
//!
//! ## Recovery contract
//!
//! [`scan_wal`] replays the frame sequence and classifies damage:
//!
//! * a frame that runs past end-of-file, or whose checksum fails with
//!   **no valid frame anywhere after it**, is a *torn tail* — the normal
//!   signature of a crash mid-append. The scan reports the offset so the
//!   recovering process truncates there and resumes appending;
//! * a bad frame **followed by a valid one** is *mid-log corruption*
//!   (bit rot, external truncation): the scan refuses with a diagnostic
//!   naming the file and byte offset, never a partial load. The
//!   look-ahead re-synchronizes at every byte offset, so a corrupted
//!   length field cannot silently disguise later acknowledged commits as
//!   a torn tail;
//! * payload that passes its checksum but fails to decode is corruption
//!   outright (the checksum says the bytes are what was written, so the
//!   writer was broken): refused with file and offset.
//!
//! [`read_checkpoint`] verifies magic, declared length, and whole-body
//! checksum before decoding; a truncated or bit-flipped checkpoint is
//! refused with a diagnostic naming the file.
//!
//! ## Crash injection
//!
//! [`CrashPlan`] aborts the process at a chosen [`CrashPoint`] (parsed
//! from `DEPKIT_CRASH`, mirroring the sharded-discovery `DEPKIT_FAULT`
//! hook) — the lever the kill-mid-commit recovery harness drives to prove
//! the headline invariant: after a crash at *any* point, the recovered
//! catalog equals the serial oracle replaying exactly the acknowledged
//! commits.

use crate::delta::Delta;
use crate::relation::Tuple;
use crate::spill::{fnv64, tmp_sibling, Fnv64};
use crate::value::Value;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// First eight bytes of a WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"depkwal1";
/// First eight bytes of a checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"depkckp1";

/// Frame kind tag of the one header frame that opens every WAL.
const KIND_HEADER: u8 = 1;
/// Frame kind tag of a commit frame.
const KIND_COMMIT: u8 = 2;

/// Sanity bound on a single frame payload (a commit frame holds one
/// staged delta; 1 GiB of staged rows is far past the serve staging cap).
const MAX_FRAME_LEN: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// Fsync policy
// ---------------------------------------------------------------------------

/// When the WAL writer calls `fsync` after appending a commit frame.
///
/// The trade-off is the classic one: `Always` makes every acknowledged
/// commit crash-durable (survives power loss) at the cost of one fsync
/// per commit; `Interval(n)` amortizes the fsync over `n` commits and
/// bounds the power-loss exposure window to `n` acknowledged commits;
/// `Never` leaves flushing to the OS page cache — a *process* crash
/// (abort, SIGKILL) still loses nothing, because the frames were written
/// to the kernel before the ack, but a machine crash may lose the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every commit frame.
    Always,
    /// Fsync after every `n` commit frames (and at checkpoints).
    Interval(u64),
    /// Never fsync from the commit path; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI syntax: `always`, `never`, or `interval:<n>`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => match s.strip_prefix("interval:") {
                Some(n) => {
                    let n: u64 = n.parse().map_err(|_| format!("bad fsync interval `{n}`"))?;
                    if n == 0 {
                        return Err("fsync interval must be positive (or use `always`)".into());
                    }
                    Ok(FsyncPolicy::Interval(n))
                }
                None => Err(format!(
                    "bad fsync policy `{s}` (expected always, interval:<n>, or never)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(n) => write!(f, "interval:{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            put_u64(out, *i as u64);
        }
        Value::Str(s) => {
            out.push(1);
            put_str(out, s);
        }
        Value::Pair(a, b) => {
            out.push(2);
            put_value(out, a);
            put_value(out, b);
        }
        Value::Null(n) => {
            out.push(3);
            put_u64(out, *n);
        }
    }
}

/// A decode cursor over one checksummed payload. Every read is bounds
/// checked; failures carry the in-payload offset so the caller can name
/// the absolute file position.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn fail(&self, what: &str) -> String {
        format!("{what} at payload byte {}", self.pos)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err(self.fail(what));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &str) -> Result<String, String> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail(what))
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.u8("value tag")? {
            0 => Ok(Value::Int(self.u64("int value")? as i64)),
            1 => Ok(Value::str(self.str("string value")?)),
            2 => {
                let a = self.value()?;
                let b = self.value()?;
                Ok(Value::Pair(Box::new(a), Box::new(b)))
            }
            3 => Ok(Value::Null(self.u64("null label")?)),
            t => Err(self.fail(&format!("unknown value tag {t}"))),
        }
    }

    fn done(&self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!(
                "{} trailing bytes after payload byte {}",
                self.bytes.len() - self.pos,
                self.pos
            ));
        }
        Ok(())
    }
}

fn put_ops(out: &mut Vec<u8>, ops: &[(crate::schema::RelName, Tuple)]) {
    put_u32(out, ops.len() as u32);
    for (rel, t) in ops {
        put_str(out, rel.name());
        put_u32(out, t.len() as u32);
        for v in t.values() {
            put_value(out, v);
        }
    }
}

fn dec_ops(d: &mut Dec<'_>) -> Result<Vec<(crate::schema::RelName, Tuple)>, String> {
    let n = d.u32("op count")? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let rel = d.str("relation name")?;
        let arity = d.u32("tuple arity")? as usize;
        let mut vals = Vec::with_capacity(arity.min(1 << 16));
        for _ in 0..arity {
            vals.push(d.value()?);
        }
        ops.push((crate::schema::RelName::new(rel), Tuple::new(vals)));
    }
    Ok(ops)
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// The header frame that opens every WAL: the spec the catalog was
/// compiled for (so recovery refuses a log from a different world) and
/// the generation the log starts after (the checkpoint it follows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalHeader {
    /// Commits in this log are stamped at generations `> base_gen`.
    pub base_gen: u64,
    /// One `R(A, B)` declaration per relation scheme, schema order.
    pub schema: Vec<String>,
    /// One rendered dependency per element of Σ, in Σ order.
    pub sigma: Vec<String>,
}

impl WalHeader {
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![KIND_HEADER];
        put_u64(&mut out, self.base_gen);
        put_u32(&mut out, self.schema.len() as u32);
        for s in &self.schema {
            put_str(&mut out, s);
        }
        put_u32(&mut out, self.sigma.len() as u32);
        for s in &self.sigma {
            put_str(&mut out, s);
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<WalHeader, String> {
        let mut d = Dec::new(payload);
        let kind = d.u8("frame kind")?;
        if kind != KIND_HEADER {
            return Err(format!("expected header frame (kind 1), got kind {kind}"));
        }
        let base_gen = d.u64("base generation")?;
        let n = d.u32("schema count")? as usize;
        let mut schema = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            schema.push(d.str("schema decl")?);
        }
        let n = d.u32("sigma count")? as usize;
        let mut sigma = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            sigma.push(d.str("dependency")?);
        }
        d.done()?;
        Ok(WalHeader {
            base_gen,
            schema,
            sigma,
        })
    }
}

/// One committed delta as logged: the generation the commit published,
/// the idempotency tag of the committing client (empty strings when the
/// client sent none), and the staged operations themselves. Replaying the
/// delta through the normal commit path against the state the previous
/// frames produced yields exactly the original commit — deltas are
/// absolute presence operations, so the replay is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitFrame {
    /// The generation this commit published.
    pub generation: u64,
    /// The committing client's id (idempotent-retry scope), or empty.
    pub client: String,
    /// The client's commit token, or empty.
    pub token: String,
    /// The staged delta, exactly as committed.
    pub delta: Delta,
}

impl CommitFrame {
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![KIND_COMMIT];
        put_u64(&mut out, self.generation);
        put_str(&mut out, &self.client);
        put_str(&mut out, &self.token);
        put_ops(&mut out, &self.delta.deletes);
        put_ops(&mut out, &self.delta.inserts);
        out
    }

    fn decode(payload: &[u8]) -> Result<CommitFrame, String> {
        let mut d = Dec::new(payload);
        let kind = d.u8("frame kind")?;
        if kind != KIND_COMMIT {
            return Err(format!("unknown frame kind {kind}"));
        }
        let generation = d.u64("generation")?;
        let client = d.str("client id")?;
        let token = d.str("commit token")?;
        let deletes = dec_ops(&mut d)?;
        let inserts = dec_ops(&mut d)?;
        d.done()?;
        Ok(CommitFrame {
            generation,
            client,
            token,
            delta: Delta { deletes, inserts },
        })
    }
}

/// Frame a payload: length prefix, payload, FNV-1a64 checksum.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    put_u64(&mut out, fnv64(payload));
    out
}

/// Whether a structurally complete, checksum-valid frame starts at `off`.
fn frame_at(bytes: &[u8], off: usize) -> Option<(&[u8], usize)> {
    let len_end = off.checked_add(4)?;
    if len_end > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes(bytes[off..len_end].try_into().unwrap());
    if len == 0 || len > MAX_FRAME_LEN {
        return None;
    }
    let payload_end = len_end.checked_add(len as usize)?;
    let frame_end = payload_end.checked_add(8)?;
    if frame_end > bytes.len() {
        return None;
    }
    let payload = &bytes[len_end..payload_end];
    let sum = u64::from_le_bytes(bytes[payload_end..frame_end].try_into().unwrap());
    if fnv64(payload) != sum {
        return None;
    }
    Some((payload, frame_end))
}

/// What the end of a scanned WAL looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The log ends exactly on a frame boundary.
    Clean,
    /// The log ends in a torn append: `offset` is where the last valid
    /// frame ended, `dropped` how many trailing bytes are unusable.
    /// Recovery truncates the file to `offset` before resuming appends.
    Torn {
        /// Byte offset of the first unusable byte.
        offset: u64,
        /// Unusable trailing bytes.
        dropped: u64,
    },
}

/// A fully scanned, verified WAL.
#[derive(Debug)]
pub struct WalScan {
    /// The header frame.
    pub header: WalHeader,
    /// Every valid commit frame, in append (= commit) order.
    pub commits: Vec<CommitFrame>,
    /// Whether the log ended cleanly or in a torn append.
    pub tail: WalTail,
}

/// Scan a WAL file: verify the magic and every frame checksum, decode
/// the header and commit frames, and classify the tail (see the
/// [module docs](self) for the torn-tail vs mid-log-corruption rule).
pub fn scan_wal(path: &Path) -> io::Result<WalScan> {
    let name = path.display();
    let bytes = std::fs::read(path)?;
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(io::Error::other(format!(
            "{name} is not a depkit WAL (bad or missing magic)"
        )));
    }
    let mut off = WAL_MAGIC.len();
    let Some((payload, next)) = frame_at(&bytes, off) else {
        return Err(io::Error::other(format!(
            "{name}: header frame at offset {off} is missing or corrupt"
        )));
    };
    let header = WalHeader::decode(payload)
        .map_err(|e| io::Error::other(format!("{name}: bad header frame at offset {off}: {e}")))?;
    off = next;
    let mut commits = Vec::new();
    let mut last_gen = header.base_gen;
    loop {
        if off == bytes.len() {
            return Ok(WalScan {
                header,
                commits,
                tail: WalTail::Clean,
            });
        }
        match frame_at(&bytes, off) {
            Some((payload, next)) => {
                let frame = CommitFrame::decode(payload).map_err(|e| {
                    io::Error::other(format!("{name}: corrupt commit frame at offset {off}: {e}"))
                })?;
                if frame.generation <= last_gen {
                    return Err(io::Error::other(format!(
                        "{name}: commit frame at offset {off} stamps generation {} \
                         but the log had already reached {last_gen}",
                        frame.generation
                    )));
                }
                last_gen = frame.generation;
                commits.push(frame);
                off = next;
            }
            None => {
                // The bytes at `off` are not a valid frame. Torn tail —
                // unless a valid frame exists anywhere after, in which
                // case acknowledged commits would be silently dropped:
                // that is mid-log corruption and recovery must refuse.
                if (off + 1..bytes.len()).any(|p| frame_at(&bytes, p).is_some()) {
                    return Err(io::Error::other(format!(
                        "{name}: corrupt frame at offset {off} with valid frames after it \
                         (mid-log corruption — refusing to drop acknowledged commits)"
                    )));
                }
                return Ok(WalScan {
                    header,
                    commits,
                    tail: WalTail::Torn {
                        offset: off as u64,
                        dropped: (bytes.len() - off) as u64,
                    },
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// WAL writer
// ---------------------------------------------------------------------------

/// Append side of the WAL: owns the open file and the fsync policy.
///
/// Created fresh via [`WalWriter::create`] (atomic tmp → rename publish
/// of magic + header, so a half-created WAL is never observed under its
/// published name) or re-opened for append after recovery via
/// [`WalWriter::open_append`] (which also truncates a torn tail).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    policy: FsyncPolicy,
    /// Commit frames appended since the last fsync.
    unsynced: u64,
}

impl WalWriter {
    /// Create a fresh WAL at `path` holding only `header`, replacing any
    /// existing file atomically, and open it for appending.
    pub fn create(path: &Path, header: &WalHeader, policy: FsyncPolicy) -> io::Result<WalWriter> {
        let tmp = tmp_sibling(path);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&WAL_MAGIC)?;
            f.write_all(&encode_frame(&header.encode()))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            policy,
            unsynced: 0,
        })
    }

    /// Open an existing, already-scanned WAL for appending, first
    /// truncating it to `valid_len` when the scan found a torn tail.
    pub fn open_append(
        path: &Path,
        valid_len: Option<u64>,
        policy: FsyncPolicy,
    ) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new().write(true).read(true).open(path)?;
        if let Some(n) = valid_len {
            file.set_len(n)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            policy,
            unsynced: 0,
        })
    }

    /// Append one commit frame and apply the fsync policy. On return
    /// under [`FsyncPolicy::Always`] the frame is crash-durable; under
    /// the other policies it is at least in the kernel (process-crash
    /// durable).
    pub fn append_commit(&mut self, frame: &CommitFrame) -> io::Result<()> {
        self.file.write_all(&encode_frame(&frame.encode()))?;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// The serialized catalog state a checkpoint file carries: everything a
/// fresh process needs to reconstruct the observable catalog at
/// `generation` — the spec (refused on mismatch), the append-only value
/// interner in id order, each relation's live rows with their birth
/// generations, and the per-client commit-token table (so idempotent
/// retries keep deduplicating across a crash).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDoc {
    /// One `R(A, B)` declaration per relation scheme, schema order.
    pub schema: Vec<String>,
    /// One rendered dependency per element of Σ, in Σ order.
    pub sigma: Vec<String>,
    /// The generation the checkpoint captures.
    pub generation: u64,
    /// Every interned value, in id order (the interner is append-only).
    pub values: Vec<Value>,
    /// Per relation (schema order): the live rows as
    /// `(born generation, interned-id row)`, in row-log order.
    pub rows: Vec<Vec<(u64, Vec<u32>)>>,
    /// Commit-token table: `(client, token, generation, inserted,
    /// deleted)` per client, sorted by client id.
    pub tokens: Vec<(String, String, u64, u64, u64)>,
}

impl CheckpointDoc {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.schema.len() as u32);
        for s in &self.schema {
            put_str(&mut out, s);
        }
        put_u32(&mut out, self.sigma.len() as u32);
        for s in &self.sigma {
            put_str(&mut out, s);
        }
        put_u64(&mut out, self.generation);
        put_u32(&mut out, self.values.len() as u32);
        for v in &self.values {
            put_value(&mut out, v);
        }
        put_u32(&mut out, self.rows.len() as u32);
        for rel in &self.rows {
            put_u64(&mut out, rel.len() as u64);
            for (born, row) in rel {
                put_u64(&mut out, *born);
                put_u32(&mut out, row.len() as u32);
                for &id in row {
                    put_u32(&mut out, id);
                }
            }
        }
        put_u32(&mut out, self.tokens.len() as u32);
        for (client, token, generation, inserted, deleted) in &self.tokens {
            put_str(&mut out, client);
            put_str(&mut out, token);
            put_u64(&mut out, *generation);
            put_u64(&mut out, *inserted);
            put_u64(&mut out, *deleted);
        }
        out
    }

    fn decode_body(body: &[u8]) -> Result<CheckpointDoc, String> {
        let mut d = Dec::new(body);
        let n = d.u32("schema count")? as usize;
        let mut schema = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            schema.push(d.str("schema decl")?);
        }
        let n = d.u32("sigma count")? as usize;
        let mut sigma = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            sigma.push(d.str("dependency")?);
        }
        let generation = d.u64("generation")?;
        let n = d.u32("value count")? as usize;
        let mut values = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            values.push(d.value()?);
        }
        let nrel = d.u32("relation count")? as usize;
        let mut rows = Vec::with_capacity(nrel.min(1 << 16));
        for _ in 0..nrel {
            let nrows = d.u64("row count")? as usize;
            let mut rel = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                let born = d.u64("born generation")?;
                let arity = d.u32("row arity")? as usize;
                let mut row = Vec::with_capacity(arity.min(1 << 16));
                for _ in 0..arity {
                    row.push(d.u32("row id")?);
                }
                rel.push((born, row));
            }
            rows.push(rel);
        }
        let n = d.u32("token count")? as usize;
        let mut tokens = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let client = d.str("token client")?;
            let token = d.str("token value")?;
            let generation = d.u64("token generation")?;
            let inserted = d.u64("token inserted")?;
            let deleted = d.u64("token deleted")?;
            tokens.push((client, token, generation, inserted, deleted));
        }
        d.done()?;
        Ok(CheckpointDoc {
            schema,
            sigma,
            generation,
            values,
            rows,
            tokens,
        })
    }

    /// The full checkpoint file image: magic, body length, body,
    /// whole-body FNV-1a64 checksum.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(body.len() + 24);
        out.extend_from_slice(&CKPT_MAGIC);
        put_u64(&mut out, body.len() as u64);
        let mut h = Fnv64::new();
        h.update(&body);
        out.extend_from_slice(&body);
        put_u64(&mut out, h.finish());
        out
    }
}

/// Read and fully verify a checkpoint file: magic, declared body length
/// (a short file is a truncated checkpoint), and whole-body checksum,
/// then decode. Every failure names `path`.
pub fn read_checkpoint(path: &Path) -> io::Result<CheckpointDoc> {
    let name = path.display();
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < CKPT_MAGIC.len() + 16 || bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(io::Error::other(format!(
            "{name} is not a depkit checkpoint (bad or missing magic)"
        )));
    }
    let body_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let expected = CKPT_MAGIC.len() + 8 + body_len + 8;
    if bytes.len() != expected {
        return Err(io::Error::other(format!(
            "{name}: truncated or oversized checkpoint \
             (declares {body_len}-byte body, file holds {} of {expected} expected bytes)",
            bytes.len()
        )));
    }
    let body = &bytes[16..16 + body_len];
    let sum = u64::from_le_bytes(bytes[16 + body_len..].try_into().unwrap());
    if fnv64(body) != sum {
        return Err(io::Error::other(format!(
            "{name}: checkpoint checksum mismatch \
             (file says {sum:016x}, body hashes to {:016x})",
            fnv64(body)
        )));
    }
    CheckpointDoc::decode_body(body)
        .map_err(|e| io::Error::other(format!("{name}: corrupt checkpoint body: {e}")))
}

/// Write `doc` to a unique temporary sibling of `path`, fsync it, and
/// return the temporary path — the caller renames it into place (the
/// split exists so the crash harness can inject between the write and
/// the rename).
pub fn write_checkpoint_tmp(path: &Path, doc: &CheckpointDoc) -> io::Result<std::path::PathBuf> {
    let tmp = tmp_sibling(path);
    let mut f = File::create(&tmp)?;
    f.write_all(&doc.encode())?;
    f.sync_all()?;
    Ok(tmp)
}

// ---------------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------------

/// A point in the durable commit/checkpoint protocol where [`CrashPlan`]
/// can abort the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Right after the commit frame is appended (and policy-fsynced):
    /// the commit is durable but the client never sees the ack.
    AfterWalAppend,
    /// Right before the commit reply is written to the socket: the
    /// commit is durable and applied, the ack is lost in flight.
    BeforeAck,
    /// After the checkpoint temporary is written and fsynced, before the
    /// rename publishes it: the previous checkpoint plus the full WAL
    /// must still recover everything.
    MidCheckpoint,
    /// After the checkpoint rename, before the WAL is reset: recovery
    /// sees a new checkpoint plus a WAL whose frames it must *skip* up
    /// to the checkpoint generation.
    AfterCheckpointRename,
}

impl CrashPoint {
    const ALL: [(CrashPoint, &'static str); 4] = [
        (CrashPoint::AfterWalAppend, "after-wal-write"),
        (CrashPoint::BeforeAck, "before-ack"),
        (CrashPoint::MidCheckpoint, "mid-checkpoint"),
        (CrashPoint::AfterCheckpointRename, "after-checkpoint-rename"),
    ];
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (_, name) = CrashPoint::ALL.iter().find(|(p, _)| p == self).unwrap();
        write!(f, "{name}")
    }
}

/// Deterministic process-abort injection for the durability layer,
/// mirroring the sharded-discovery `FaultPlan`: parsed once from
/// `DEPKIT_CRASH` (`<point>[:<n>]` — abort at the `n`-th occurrence of
/// `point`, default the first), empty in production. The abort is
/// [`std::process::abort`]: no destructors, no flushes — a genuine
/// crash, which is exactly what the recovery tests need to prove the
/// WAL protocol right.
#[derive(Debug, Default)]
pub struct CrashPlan {
    armed: Option<(CrashPoint, u64)>,
    seen: AtomicU64,
}

impl CrashPlan {
    /// The empty plan: [`CrashPlan::fire`] never aborts.
    pub fn none() -> CrashPlan {
        CrashPlan::default()
    }

    /// Parse `<point>[:<n>]`, e.g. `before-ack` or `after-wal-write:2`.
    /// Occurrences are 1-based: `:1` (and the no-suffix default) aborts
    /// at the first time the point is reached.
    pub fn parse(spec: &str) -> Result<CrashPlan, String> {
        let (name, nth) = match spec.split_once(':') {
            Some((name, n)) => (
                name,
                match n.parse::<u64>() {
                    Ok(nth) if nth > 0 => nth,
                    _ => return Err(format!("bad crash occurrence `{n}` (1-based)")),
                },
            ),
            None => (spec, 1),
        };
        let point = CrashPoint::ALL
            .iter()
            .find(|(_, n)| *n == name)
            .map(|(p, _)| *p)
            .ok_or_else(|| {
                format!(
                    "unknown crash point `{name}` (expected one of {})",
                    CrashPoint::ALL
                        .iter()
                        .map(|(_, n)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
        Ok(CrashPlan {
            armed: Some((point, nth)),
            seen: AtomicU64::new(0),
        })
    }

    /// The plan in `DEPKIT_CRASH`, or the empty plan when unset.
    pub fn from_env() -> Result<CrashPlan, String> {
        match std::env::var("DEPKIT_CRASH") {
            Ok(spec) => CrashPlan::parse(&spec),
            Err(_) => Ok(CrashPlan::none()),
        }
    }

    /// Whether any point is armed (cheap pre-check for hot paths).
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// Abort the process if `point` is the armed point and this is its
    /// armed occurrence; otherwise return normally.
    pub fn fire(&self, point: CrashPoint) {
        let Some((armed, nth)) = self.armed else {
            return;
        };
        if armed != point {
            return;
        }
        let n = self.seen.fetch_add(1, Ordering::AcqRel) + 1;
        if n == nth {
            eprintln!("DEPKIT_CRASH: aborting at {point} (occurrence {n})");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("depkit-wal-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn header() -> WalHeader {
        WalHeader {
            base_gen: 3,
            schema: vec!["EMP(NAME, DEPT)".into(), "DEPT(DNO)".into()],
            sigma: vec!["EMP[DEPT] <= DEPT[DNO]".into()],
        }
    }

    fn frame(gen: u64) -> CommitFrame {
        let mut delta = Delta::new();
        delta.insert_ints("DEPT", &[gen as i64]);
        delta.delete("EMP", Tuple::new(vec![Value::str("x"), Value::pair(1, 2)]));
        CommitFrame {
            generation: gen,
            client: format!("c{gen}"),
            token: format!("t{gen}"),
            delta,
        }
    }

    #[test]
    fn wal_round_trips_header_and_commits() {
        let dir = tdir("roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, &header(), FsyncPolicy::Interval(2)).unwrap();
        for gen in 4..9 {
            w.append_commit(&frame(gen)).unwrap();
        }
        w.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.header, header());
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.commits.len(), 5);
        assert_eq!(scan.commits[0], frame(4));
        assert_eq!(scan.commits[4], frame(8));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_and_truncatable() {
        let dir = tdir("torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, &header(), FsyncPolicy::Never).unwrap();
        w.append_commit(&frame(4)).unwrap();
        let clean_len = fs::metadata(&path).unwrap().len();
        w.append_commit(&frame(5)).unwrap();
        drop(w);
        // Tear the last frame: drop its final 3 bytes.
        let full = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.commits.len(), 1, "torn frame dropped");
        let WalTail::Torn { offset, dropped } = scan.tail else {
            panic!("expected a torn tail")
        };
        assert_eq!(offset, clean_len);
        assert!(dropped > 0);
        // Truncate + append resumes a clean log.
        let mut w = WalWriter::open_append(&path, Some(offset), FsyncPolicy::Never).unwrap();
        w.append_commit(&frame(5)).unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.commits.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_bit_flip_is_refused_with_file_and_offset() {
        let dir = tdir("midlog");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, &header(), FsyncPolicy::Never).unwrap();
        let before_first = fs::metadata(&path).unwrap().len();
        for gen in 4..7 {
            w.append_commit(&frame(gen)).unwrap();
        }
        drop(w);
        // Flip one byte inside the *first* commit frame's payload.
        let mut bytes = fs::read(&path).unwrap();
        let idx = before_first as usize + 10;
        bytes[idx] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = scan_wal(&path).unwrap_err().to_string();
        assert!(err.contains("mid-log corruption"), "got: {err}");
        assert!(err.contains("wal.log"), "names the file: {err}");
        assert!(
            err.contains(&format!("offset {before_first}")),
            "names the offset: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_length_field_cannot_masquerade_as_torn_tail() {
        let dir = tdir("lenflip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, &header(), FsyncPolicy::Never).unwrap();
        let first_at = fs::metadata(&path).unwrap().len() as usize;
        for gen in 4..7 {
            w.append_commit(&frame(gen)).unwrap();
        }
        drop(w);
        // Corrupt the first commit frame's length prefix itself: the
        // byte-level resync must still find the later intact frames and
        // refuse rather than truncate two acknowledged commits away.
        let mut bytes = fs::read(&path).unwrap();
        bytes[first_at] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = scan_wal(&path).unwrap_err().to_string();
        assert!(err.contains("mid-log corruption"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_round_trip_and_damage_modes() {
        let dir = tdir("ckpt");
        let path = dir.join("catalog.ckpt");
        let doc = CheckpointDoc {
            schema: vec!["R(A, B)".into()],
            sigma: vec!["R: A -> B".into()],
            generation: 7,
            values: vec![Value::Int(1), Value::str("x"), Value::pair(2, 3)],
            rows: vec![vec![(3, vec![0, 1]), (7, vec![0, 2])]],
            tokens: vec![("c1".into(), "t9".into(), 7, 2, 0)],
        };
        let tmp = write_checkpoint_tmp(&path, &doc).unwrap();
        fs::rename(&tmp, &path).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), doc);

        // Truncation is refused, naming the file.
        let full = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);
        let err = read_checkpoint(&path).unwrap_err().to_string();
        assert!(err.contains("truncated"), "got: {err}");
        assert!(err.contains("catalog.ckpt"), "names the file: {err}");

        // A bit flip is refused as a checksum mismatch.
        fs::write(&path, doc.encode()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err().to_string();
        assert!(err.contains("checksum mismatch"), "got: {err}");

        // Wrong magic is refused.
        fs::write(&path, b"not a checkpoint at all, longer than 24").unwrap();
        let err = read_checkpoint(&path).unwrap_err().to_string();
        assert!(err.contains("magic"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses_and_rejects() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:64").unwrap(),
            FsyncPolicy::Interval(64)
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Interval(8).to_string(), "interval:8");
    }

    #[test]
    fn crash_plan_parses_points_and_occurrences() {
        let p = CrashPlan::parse("before-ack").unwrap();
        assert!(p.is_armed());
        assert_eq!(p.armed, Some((CrashPoint::BeforeAck, 1)));
        let p = CrashPlan::parse("after-wal-write:2").unwrap();
        assert_eq!(p.armed, Some((CrashPoint::AfterWalAppend, 2)));
        assert!(CrashPlan::parse("mid-checkpoint").is_ok());
        assert!(CrashPlan::parse("after-checkpoint-rename").is_ok());
        assert!(CrashPlan::parse("nonsense").is_err());
        assert!(CrashPlan::parse("before-ack:x").is_err());
        assert!(CrashPlan::parse("before-ack:0").is_err(), "1-based");
        assert!(!CrashPlan::none().is_armed());
        // Unarmed and mismatched points never abort (we are still alive).
        CrashPlan::none().fire(CrashPoint::BeforeAck);
        CrashPlan::parse("mid-checkpoint")
            .unwrap()
            .fire(CrashPoint::BeforeAck);
    }
}
