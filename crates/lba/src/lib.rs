//! # depkit-lba — linear bounded automata and the Theorem 3.3 reduction
//!
//! Theorem 3.3 of Casanova–Fagin–Papadimitriou proves the IND decision
//! problem **PSPACE-complete**. Membership is the easy half (the Corollary
//! 3.2 expression search keeps one expression in memory); hardness is by
//! reduction from **linear bounded automaton acceptance**, the canonical
//! PSPACE-complete problem. This crate builds both sides of that argument
//! so the reduction can be validated end to end.
//!
//! The paper's formulation: a configuration of a machine on input length
//! `n` is a string over `K ∪ Γ` of length `n + 1` — the state symbol sits
//! immediately left of the scanned cell — and each move is a *window
//! rewriting rule* `abc → a′b′c′` applied at some position. Acceptance is
//! reachability from the initial to the final configuration. The reduction
//! mirrors configurations into attribute sequences: one relation scheme
//! over attributes `(K ∪ Γ) × {1..n+1}`, one IND per (move, window
//! position) pair, and a goal IND from the initial to the final
//! configuration, so that `Σ ⊨ σ` iff the machine accepts. An IND2
//! application then *is* a machine move, which is why the same worklist
//! search that decides implication also simulates computation.
//!
//! ## Paper map
//!
//! | Item | Paper anchor | Role |
//! |---|---|---|
//! | [`Rule`] | §3, Thm 3.3 setup | One window rewriting rule `abc → a′b′c′` |
//! | [`Config`] | §3 | A configuration string over `K ∪ Γ` (length `n + 1`) |
//! | [`Machine`] | §3 | Glyph table, rules, start/halt/blank symbols; [`Machine::initial_config`] / [`Machine::final_config`] delimit acceptance |
//! | [`Machine::step`] | §3 | All one-move successors of a configuration |
//! | [`Machine::accepts`] | §3 | Direct BFS acceptance decider over the finite configuration graph — the *semantic* side of the equivalence |
//! | [`reduce`](crate::reduce()) | Thm 3.3 | The construction: scheme over `(K ∪ Γ) × {1..n+1}`, IND `S(m, j)` per move `m` and window position `j`, plus the goal IND — the *syntactic* side |
//! | [`Reduction`] | Thm 3.3 | The emitted `(schema, Σ, σ)` triple; [`Reduction::sigma_size`] tracks the polynomial size bound |
//! | [`zoo`] | — | Machines with known behaviour (accept-all, reject-all, parity of 1-bits, all-zeros) and seeded random rewriting systems for agreement testing |
//!
//! ## Validation
//!
//! `Σ ⊨ σ` iff the machine accepts: the tests (and the workspace
//! `pspace_reduction` example plus the `lba_reduction` bench) run
//! [`Machine::accepts`] against `IndSolver::implies` on the zoo and on
//! random machines, machine-checking the Theorem 3.3 equivalence on every
//! instance. PSPACE-hardness is why `depkit-solver` ships polynomial
//! special cases (typed INDs, bounded arity) rather than hoping the
//! general search stays small — and the `depkit-perm` crate shows the
//! pessimism is warranted even without machines.

pub mod machine;
pub mod reduce;
pub mod zoo;

pub use machine::{Config, Machine, Rule};
pub use reduce::{reduce, Reduction};
