//! # depkit-lba — linear bounded automata and the Theorem 3.3 reduction
//!
//! Theorem 3.3 of Casanova–Fagin–Papadimitriou proves the IND decision
//! problem PSPACE-complete by reducing **linear bounded automaton
//! acceptance** to IND implication. This crate builds both sides:
//!
//! * [`machine`] — nondeterministic machines in the paper's formulation:
//!   configurations are strings over `K ∪ Γ` of length `n + 1` (the state
//!   symbol sits immediately left of the scanned cell), and moves are
//!   window rewriting rules `abc → a′b′c′`; [`machine::Machine::accepts`]
//!   decides acceptance directly by breadth-first search over the (finite)
//!   configuration graph.
//! * [`reduce`](crate::reduce()) — the construction of Theorem 3.3: one relation scheme over
//!   attributes `(K ∪ Γ) × {1..n+1}`, an IND `S(m, j)` per move and window
//!   position, and the goal IND from the initial to the final
//!   configuration. `Σ ⊨ σ` iff the machine accepts — validated in tests by
//!   comparing against the direct decider.
//! * [`zoo`] — hand-built machines with known acceptance behaviour (accept
//!   everything, reject everything, parity of 1-bits, all-zeros check) plus
//!   seeded random rewriting systems for agreement testing.

pub mod machine;
pub mod reduce;
pub mod zoo;

pub use machine::{Config, Machine, Rule};
pub use reduce::{reduce, Reduction};
