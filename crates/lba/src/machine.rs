//! Nondeterministic machines as configuration rewriting systems.
//!
//! Following the proof of Theorem 3.3: a machine `M = (K, Γ, Δ, s, h)` on an
//! input of length `n` works on *configurations* — strings over `K ∪ Γ` of
//! length `n + 1`, with the state symbol placed immediately to the left of
//! the scanned cell. Moves are rewriting rules `abc → a′b′c′` over
//! length-3 windows; a rule may fire at window position `j` only when every
//! cell **outside** the window holds a tape symbol (this matches the
//! reduction, whose context attributes range over `Γ × positions` only).
//! The initial configuration is `s·x`; the accepting configuration is
//! `h·Bⁿ`.

use std::collections::{HashSet, VecDeque};

/// A window rewriting rule `from[0] from[1] from[2] → to[0] to[1] to[2]`,
/// with glyph indices into the machine glyph table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Pattern window.
    pub from: [usize; 3],
    /// Replacement window.
    pub to: [usize; 3],
}

/// A configuration: glyph indices, length `n + 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config(pub Vec<usize>);

/// A nondeterministic machine in the paper's rewriting formulation.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Names of all glyphs (`K ∪ Γ`), indexed by glyph id.
    glyph_names: Vec<String>,
    /// Which glyph ids are tape symbols (`Γ`).
    is_tape: Vec<bool>,
    /// Start state `s`.
    start: usize,
    /// Halt state `h`.
    halt: usize,
    /// Blank tape symbol `B`.
    blank: usize,
    /// The move relation `Δ` as window rules.
    rules: Vec<Rule>,
}

impl Machine {
    /// Create a machine. `tape` lists which glyph ids belong to `Γ`;
    /// the rest are states `K`.
    pub fn new(
        glyph_names: Vec<String>,
        tape: &[usize],
        start: usize,
        halt: usize,
        blank: usize,
        rules: Vec<Rule>,
    ) -> Self {
        let mut is_tape = vec![false; glyph_names.len()];
        for &t in tape {
            is_tape[t] = true;
        }
        assert!(!is_tape[start], "start must be a state");
        assert!(!is_tape[halt], "halt must be a state");
        assert!(is_tape[blank], "blank must be a tape symbol");
        Machine {
            glyph_names,
            is_tape,
            start,
            halt,
            blank,
            rules,
        }
    }

    /// Number of glyphs `|K ∪ Γ|`.
    pub fn glyph_count(&self) -> usize {
        self.glyph_names.len()
    }

    /// Name of glyph `g`.
    pub fn glyph_name(&self, g: usize) -> &str {
        &self.glyph_names[g]
    }

    /// Whether glyph `g` is a tape symbol.
    pub fn is_tape(&self, g: usize) -> bool {
        self.is_tape[g]
    }

    /// The tape glyph ids, ascending.
    pub fn tape_glyphs(&self) -> Vec<usize> {
        (0..self.glyph_count())
            .filter(|&g| self.is_tape[g])
            .collect()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The halt state.
    pub fn halt(&self) -> usize {
        self.halt
    }

    /// The blank symbol.
    pub fn blank(&self) -> usize {
        self.blank
    }

    /// The rewriting rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Initial configuration `s·x` for input `x` (tape glyph ids).
    pub fn initial_config(&self, input: &[usize]) -> Config {
        let mut v = Vec::with_capacity(input.len() + 1);
        v.push(self.start);
        v.extend_from_slice(input);
        Config(v)
    }

    /// Final configuration `h·Bⁿ`.
    pub fn final_config(&self, n: usize) -> Config {
        let mut v = vec![self.blank; n + 1];
        v[0] = self.halt;
        Config(v)
    }

    /// All configurations reachable from `c` by one rule application.
    ///
    /// A rule fires at window start `j` (0-based, `j + 3 ≤ len`) when the
    /// window matches and every position outside the window holds a tape
    /// glyph.
    pub fn step(&self, c: &Config) -> Vec<Config> {
        let len = c.0.len();
        let mut out = Vec::new();
        if len < 3 {
            return out;
        }
        // Positions holding non-tape glyphs (states). A window application
        // requires all of them inside the window.
        let state_positions: Vec<usize> = (0..len).filter(|&p| !self.is_tape[c.0[p]]).collect();
        for j in 0..=(len - 3) {
            if state_positions.iter().any(|&p| p < j || p > j + 2) {
                continue;
            }
            for rule in &self.rules {
                if c.0[j] == rule.from[0]
                    && c.0[j + 1] == rule.from[1]
                    && c.0[j + 2] == rule.from[2]
                {
                    let mut next = c.0.clone();
                    next[j] = rule.to[0];
                    next[j + 1] = rule.to[1];
                    next[j + 2] = rule.to[2];
                    out.push(Config(next));
                }
            }
        }
        out
    }

    /// Decide acceptance of `input` in space `n = |input|` by BFS over the
    /// configuration graph. Returns `None` if more than `max_configs`
    /// configurations were explored (the intrinsic bound is
    /// `|K ∪ Γ|^(n+1)`).
    pub fn accepts(&self, input: &[usize], max_configs: usize) -> Option<bool> {
        let initial = self.initial_config(input);
        let target = self.final_config(input.len());
        if initial == target {
            return Some(true);
        }
        let mut visited: HashSet<Config> = HashSet::from([initial.clone()]);
        let mut queue = VecDeque::from([initial]);
        while let Some(c) = queue.pop_front() {
            for next in self.step(&c) {
                if visited.contains(&next) {
                    continue;
                }
                if next == target {
                    return Some(true);
                }
                visited.insert(next.clone());
                if visited.len() > max_configs {
                    return None;
                }
                queue.push_back(next);
            }
        }
        Some(false)
    }

    /// Render a configuration using glyph names.
    pub fn show(&self, c: &Config) -> String {
        c.0.iter()
            .map(|&g| self.glyph_names[g].as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use crate::zoo;

    #[test]
    fn blanker_accepts_everything() {
        let m = zoo::blanker();
        for input in [
            vec![1, 1],
            vec![1, 2, 1],
            vec![2, 2, 2, 2],
            vec![1, 2, 1, 2, 1],
        ] {
            assert_eq!(m.accepts(&input, 1_000_000), Some(true), "input {input:?}");
        }
    }

    #[test]
    fn never_accepts_nothing() {
        let m = zoo::never_accept();
        assert_eq!(m.accepts(&[1, 2], 1_000_000), Some(false));
        assert_eq!(m.accepts(&[0, 0, 0], 1_000_000), Some(false));
    }

    #[test]
    fn parity_machine_checks_ones() {
        let m = zoo::parity();
        // Glyph ids: 1 = '0', 2 = '1' (0 = B). Even number of 1s accepts.
        let cases: &[(&[usize], bool)] = &[
            (&[1, 1], true),          // "00" -> zero ones, even
            (&[2, 2], true),          // "11" -> two ones, even
            (&[2, 1], false),         // "10" -> one one, odd
            (&[1, 2], false),         // "01"
            (&[2, 2, 2], false),      // "111"
            (&[2, 1, 2, 2], false),   // "1011" -> three ones
            (&[2, 2, 1, 2, 2], true), // "11011" -> four ones
        ];
        for &(input, expected) in cases {
            assert_eq!(
                m.accepts(input, 1_000_000),
                Some(expected),
                "input {input:?}"
            );
        }
    }

    #[test]
    fn all_zeros_machine() {
        let m = zoo::all_zeros();
        assert_eq!(m.accepts(&[1, 1, 1], 1_000_000), Some(true));
        assert_eq!(m.accepts(&[1, 2, 1], 1_000_000), Some(false));
        assert_eq!(m.accepts(&[2, 2], 1_000_000), Some(false));
    }

    #[test]
    fn short_inputs_have_no_windows() {
        // Config length 2 has no length-3 window: nothing moves.
        let m = zoo::blanker();
        assert_eq!(m.accepts(&[1], 1_000), Some(false));
    }

    #[test]
    fn budget_returns_none() {
        let m = zoo::blanker();
        assert_eq!(m.accepts(&[1, 2, 1, 2], 1), None);
    }

    #[test]
    fn step_requires_tape_context() {
        // A config with the state at position 0 cannot fire a rule at
        // windows that exclude position 0.
        let m = zoo::blanker();
        let c = m.initial_config(&[1, 1, 1]);
        for next in m.step(&c) {
            // The state glyph never appears outside a fired window, so each
            // successor still has exactly one state glyph.
            let states = next.0.iter().filter(|&&g| !m.is_tape(g)).count();
            assert_eq!(states, 1);
        }
    }
}
