//! The Theorem 3.3 reduction: LBA acceptance → IND implication.
//!
//! Given a machine `M` and input `x` with `|x| = n`, build INDs over a
//! single relation scheme `R` whose attributes are `(K ∪ Γ) × {1..n+1}`.
//! The intuition (paper, proof of Theorem 3.3): attribute `(γ, j)`
//! corresponds to "the j-th symbol of the configuration is γ". For each
//! move `m: abc → a′b′c′` and window position `j ∈ {1..n−1}` there is an
//! IND
//!
//! ```text
//! S(m, j):  R[P_j, (a,j), (b,j+1), (c,j+2)] ⊆ R[P_j, (a′,j), (b′,j+1), (c′,j+2)]
//! ```
//!
//! where `P_j` is a fixed ordering of the attributes
//! `Γ × ({1..j−1} ∪ {j+3..n+1})` (tape symbols only — this is what forces
//! every non-window cell of a configuration to hold a tape symbol). The
//! goal IND runs from the initial configuration `s·x` to the accepting
//! configuration `h·Bⁿ`. Then `Σ ⊨ σ` iff `M` accepts `x` in space `n`:
//! by Corollary 3.2, walks of expressions are exactly runs of `M`.

use crate::machine::Machine;
use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::dependency::Ind;
use depkit_core::error::CoreError;
use depkit_core::schema::{DatabaseSchema, RelationScheme};

/// Output of the reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The single-relation schema over `(K ∪ Γ) × {1..n+1}`.
    pub schema: DatabaseSchema,
    /// The move INDs `S(m, j)`.
    pub sigma: Vec<Ind>,
    /// The goal IND `σ` (initial ⊆ accepting configuration).
    pub target: Ind,
}

/// Attribute `(glyph g, position p)`; `p` is 1-based as in the paper.
fn attr(m: &Machine, g: usize, p: usize) -> Attr {
    Attr::new(format!("{}_{p}", m.glyph_name(g)))
}

/// Build the Theorem 3.3 reduction for machine `m` on `input`
/// (`input.len() = n ≥ 1`; entries must be tape glyph ids).
pub fn reduce(m: &Machine, input: &[usize]) -> Result<Reduction, CoreError> {
    let n = input.len();
    let width = n + 1;

    // Schema: all attributes (K ∪ Γ) × {1..n+1}.
    let mut attrs = Vec::with_capacity(m.glyph_count() * width);
    for g in 0..m.glyph_count() {
        for p in 1..=width {
            attrs.push(attr(m, g, p));
        }
    }
    let schema = DatabaseSchema::new(vec![RelationScheme::new("R", AttrSeq::new(attrs)?)])?;

    // Move INDs.
    let tape = m.tape_glyphs();
    let mut sigma = Vec::new();
    if width >= 3 {
        for rule in m.rules() {
            for j in 1..=(width - 2) {
                // Context P_j: Γ × (positions outside the window), in a
                // fixed order shared by both sides.
                let mut lhs = Vec::new();
                let mut rhs = Vec::new();
                for p in (1..=width).filter(|&p| p < j || p > j + 2) {
                    for &g in &tape {
                        lhs.push(attr(m, g, p));
                        rhs.push(attr(m, g, p));
                    }
                }
                for (k, p) in (j..=j + 2).enumerate() {
                    lhs.push(attr(m, rule.from[k], p));
                    rhs.push(attr(m, rule.to[k], p));
                }
                sigma.push(Ind::new("R", AttrSeq::new(lhs)?, "R", AttrSeq::new(rhs)?)?);
            }
        }
    }

    // Goal IND: initial configuration ⊆ accepting configuration.
    let mut lhs = vec![attr(m, m.start(), 1)];
    for (i, &g) in input.iter().enumerate() {
        lhs.push(attr(m, g, i + 2));
    }
    let mut rhs = vec![attr(m, m.halt(), 1)];
    for p in 2..=width {
        rhs.push(attr(m, m.blank(), p));
    }
    let target = Ind::new("R", AttrSeq::new(lhs)?, "R", AttrSeq::new(rhs)?)?;

    Ok(Reduction {
        schema,
        sigma,
        target,
    })
}

impl Reduction {
    /// Total number of attribute occurrences across `Σ` (a size measure
    /// for the experiment tables).
    pub fn sigma_size(&self) -> usize {
        self.sigma.iter().map(|i| 2 * i.arity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use depkit_solver::ind::IndSolver;

    fn agree(m: &Machine, input: &[usize]) {
        let direct = m.accepts(input, 5_000_000).expect("budget");
        let red = reduce(m, input).unwrap();
        let solver = IndSolver::new(&red.sigma);
        let via_inds = solver.implies(&red.target);
        assert_eq!(
            direct, via_inds,
            "direct decider and reduction disagree on input {input:?}"
        );
    }

    #[test]
    fn reduction_agrees_with_blanker() {
        let m = zoo::blanker();
        agree(&m, &[1, 2]);
        agree(&m, &[2, 1, 2]);
    }

    #[test]
    fn reduction_agrees_with_never() {
        let m = zoo::never_accept();
        agree(&m, &[1, 1]);
        agree(&m, &[2, 1, 2]);
    }

    #[test]
    fn reduction_agrees_with_parity() {
        let m = zoo::parity();
        for input in [
            vec![1, 1],
            vec![2, 2],
            vec![2, 1],
            vec![1, 2, 2],
            vec![2, 2, 2],
        ] {
            agree(&m, &input);
        }
    }

    #[test]
    fn reduction_agrees_with_all_zeros() {
        let m = zoo::all_zeros();
        agree(&m, &[1, 1, 1]);
        agree(&m, &[1, 2, 1]);
    }

    #[test]
    fn reduction_agrees_with_random_machines() {
        for seed in 0..12u64 {
            let m = zoo::random_machine(seed, 2, 12);
            agree(&m, &[1, 2]);
            agree(&m, &[2, 1, 1]);
        }
    }

    #[test]
    fn reduction_shape() {
        let m = zoo::never_accept();
        let red = reduce(&m, &[1, 2, 1]).unwrap();
        // n = 3: width 4; no rules, so Σ is empty; target arity n + 1.
        assert!(red.sigma.is_empty());
        assert_eq!(red.target.arity(), 4);
        // Schema has |K ∪ Γ| * (n+1) attributes.
        assert_eq!(red.schema.schemes()[0].arity(), m.glyph_count() * 4);
        red.target.is_well_formed(&red.schema).unwrap();
    }

    #[test]
    fn move_ind_arity_matches_formula() {
        let m = zoo::blanker();
        let n = 3;
        let red = reduce(&m, &[1, 1, 1]).unwrap();
        // |Γ|·(n−2) context attributes + 3 window attributes.
        let expected = 3 * (n - 2) + 3;
        for ind in &red.sigma {
            assert_eq!(ind.arity(), expected);
            ind.is_well_formed(&red.schema).unwrap();
        }
    }
}
