//! Hand-built machines with known acceptance behaviour, plus seeded random
//! rewriting systems.
//!
//! Glyph conventions for the zoo: tape alphabet `Γ = {B, 0, 1}` with ids
//! `0 = B`, `1 = '0'`, `2 = '1'`; states follow. Inputs are sequences over
//! `{1, 2}` (the machines' contracts assume the input contains no blanks).
//! All machines require `n ≥ 2` to do anything (length-2 configurations
//! have no length-3 window, exactly as in the paper's encoding).

use crate::machine::{Machine, Rule};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const B: usize = 0;
const ZERO: usize = 1;
const ONE: usize = 2;
const GAMMA: [usize; 3] = [B, ZERO, ONE];

/// A machine that accepts **every** input (n ≥ 2): sweep right blanking
/// the tape, turn at the right edge, sweep left, halt at the left edge.
pub fn blanker() -> Machine {
    // Glyphs: 0=B, 1='0', 2='1', 3=s (right sweep), 4=u (left sweep), 5=h.
    let (s, u, h) = (3, 4, 5);
    let mut rules = Vec::new();
    for &a in &GAMMA {
        for &x in &GAMMA {
            // Right sweep: s a x -> B s x.
            rules.push(Rule {
                from: [s, a, x],
                to: [B, s, x],
            });
            // Right-edge turn: x s a -> u B B (blanks the last two cells).
            rules.push(Rule {
                from: [x, s, a],
                to: [u, B, B],
            });
        }
        // Left sweep: x u B -> u B B.
        rules.push(Rule {
            from: [a, u, B],
            to: [u, B, B],
        });
    }
    // Accept at the left edge: u B B -> h B B.
    rules.push(Rule {
        from: [u, B, B],
        to: [h, B, B],
    });
    Machine::new(
        vec![
            "B".into(),
            "0".into(),
            "1".into(),
            "s".into(),
            "u".into(),
            "h".into(),
        ],
        &GAMMA,
        s,
        h,
        B,
        rules,
    )
}

/// A machine with no moves at all: accepts **nothing**.
pub fn never_accept() -> Machine {
    Machine::new(
        vec!["B".into(), "0".into(), "1".into(), "s".into(), "h".into()],
        &GAMMA,
        3,
        4,
        B,
        Vec::new(),
    )
}

/// A machine accepting inputs over `{0, 1}` with an **even number of 1s**
/// (n ≥ 2). Two sweep states track parity; the right-edge turn folds in the
/// last cell; a dead state swallows odd-parity runs.
pub fn parity() -> Machine {
    // Glyphs: 0=B, 1='0', 2='1', 3=s0 (even), 4=s1 (odd), 5=u, 6=v(dead), 7=h.
    let (s0, s1, u, v, h) = (3, 4, 5, 6, 7);
    let mut rules = Vec::new();
    for &x in &GAMMA {
        // Right sweep, even state.
        rules.push(Rule {
            from: [s0, ZERO, x],
            to: [B, s0, x],
        });
        rules.push(Rule {
            from: [s0, B, x],
            to: [B, s0, x],
        });
        rules.push(Rule {
            from: [s0, ONE, x],
            to: [B, s1, x],
        });
        // Right sweep, odd state.
        rules.push(Rule {
            from: [s1, ZERO, x],
            to: [B, s1, x],
        });
        rules.push(Rule {
            from: [s1, B, x],
            to: [B, s1, x],
        });
        rules.push(Rule {
            from: [s1, ONE, x],
            to: [B, s0, x],
        });
        // Right-edge turn, folding in the final cell's parity.
        rules.push(Rule {
            from: [x, s0, ZERO],
            to: [u, B, B],
        });
        rules.push(Rule {
            from: [x, s0, B],
            to: [u, B, B],
        });
        rules.push(Rule {
            from: [x, s0, ONE],
            to: [v, B, B],
        });
        rules.push(Rule {
            from: [x, s1, ONE],
            to: [u, B, B],
        });
        rules.push(Rule {
            from: [x, s1, ZERO],
            to: [v, B, B],
        });
        rules.push(Rule {
            from: [x, s1, B],
            to: [v, B, B],
        });
        // Left sweep.
        rules.push(Rule {
            from: [x, u, B],
            to: [u, B, B],
        });
    }
    rules.push(Rule {
        from: [u, B, B],
        to: [h, B, B],
    });
    Machine::new(
        vec![
            "B".into(),
            "0".into(),
            "1".into(),
            "s0".into(),
            "s1".into(),
            "u".into(),
            "v".into(),
            "h".into(),
        ],
        &GAMMA,
        s0,
        h,
        B,
        rules,
    )
}

/// A machine accepting inputs that are **all zeros** (n ≥ 2): the right
/// sweep has no rule for reading a 1, so any 1 strands the head.
pub fn all_zeros() -> Machine {
    // Glyphs: 0=B, 1='0', 2='1', 3=s, 4=u, 5=h.
    let (s, u, h) = (3, 4, 5);
    let mut rules = Vec::new();
    for &x in &GAMMA {
        rules.push(Rule {
            from: [s, ZERO, x],
            to: [B, s, x],
        });
        rules.push(Rule {
            from: [s, B, x],
            to: [B, s, x],
        });
        rules.push(Rule {
            from: [x, s, ZERO],
            to: [u, B, B],
        });
        rules.push(Rule {
            from: [x, s, B],
            to: [u, B, B],
        });
        rules.push(Rule {
            from: [x, u, B],
            to: [u, B, B],
        });
    }
    rules.push(Rule {
        from: [u, B, B],
        to: [h, B, B],
    });
    Machine::new(
        vec![
            "B".into(),
            "0".into(),
            "1".into(),
            "s".into(),
            "u".into(),
            "h".into(),
        ],
        &GAMMA,
        s,
        h,
        B,
        rules,
    )
}

/// A seeded random rewriting system over `Γ = {B, 0, 1}` and `extra_states`
/// states (plus start and halt). Used for agreement testing between the
/// direct decider and the Theorem 3.3 reduction; its acceptance behaviour
/// is arbitrary but *identical* under both procedures.
pub fn random_machine(seed: u64, extra_states: usize, rule_count: usize) -> Machine {
    let mut rng = StdRng::seed_from_u64(seed);
    let state_base = 3;
    let state_count = extra_states + 2; // + start + halt
    let glyph_count = state_base + state_count;
    let start = state_base;
    let halt = state_base + 1;

    let mut names: Vec<String> = vec!["B".into(), "0".into(), "1".into()];
    for i in 0..state_count {
        names.push(format!("q{i}"));
    }

    // Random rules biased toward plausible machine shapes: the `from`
    // window contains at least one state glyph, the halt state never
    // rewrites (so halting is absorbing).
    let mut rules = Vec::new();
    while rules.len() < rule_count {
        let mut from = [0usize; 3];
        let mut to = [0usize; 3];
        for k in 0..3 {
            from[k] = rng.random_range(0..glyph_count);
            to[k] = rng.random_range(0..glyph_count);
        }
        let has_state = from.iter().any(|&g| g >= state_base);
        let from_halt = from.contains(&halt);
        if has_state && !from_halt {
            rules.push(Rule { from, to });
        }
    }
    Machine::new(names, &GAMMA, start, halt, B, rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_machines_are_well_formed() {
        for m in [blanker(), never_accept(), parity(), all_zeros()] {
            assert!(m.glyph_count() >= 5);
            assert!(!m.is_tape(m.start()));
            assert!(!m.is_tape(m.halt()));
            assert!(m.is_tape(m.blank()));
        }
    }

    #[test]
    fn random_machine_is_deterministic_in_seed() {
        let a = random_machine(7, 2, 10);
        let b = random_machine(7, 2, 10);
        assert_eq!(a.rules(), b.rules());
        let c = random_machine(8, 2, 10);
        assert!(a.rules() != c.rules() || a.glyph_count() != c.glyph_count());
    }

    #[test]
    fn random_machine_halt_is_absorbing() {
        let m = random_machine(42, 3, 40);
        let halt = m.halt();
        for r in m.rules() {
            assert!(!r.from.contains(&halt));
        }
    }
}
