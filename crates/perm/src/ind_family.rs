//! The `σ(γ)` IND families of Section 3.
//!
//! With a single relation scheme `R[A_1, ..., A_m]` and a permutation `γ`
//! of `{1..m}`, the paper associates the IND
//!
//! ```text
//! σ(γ)  =  R[A_1, ..., A_m] ⊆ R[A_{γ(1)}, ..., A_{γ(m)}].
//! ```
//!
//! Two constructions drive the Section 3 lower-bound discussion:
//!
//! * the **transposition generators** `{σ(γ_1), ..., σ(γ_m)}` (where `γ_i`
//!   swaps 1 and `i`) generate all permutations, so every IND over
//!   `R[A_1..A_m]` is a logical consequence of this set — applying the
//!   decision procedure blindly enumerates superexponentially many
//!   expressions;
//! * the **Landau pair** `(σ(γ), σ(δ))` with `γ` of maximal order `f(m)`
//!   and `δ = γ^{f(m)−1}`: `σ(γ) ⊨ σ(δ)` holds, and the minimal number of
//!   step-(2) applications is exactly `f(m) − 1` — superpolynomial in `m`.

use crate::landau::{landau_function, landau_witness};
use crate::perm::Perm;
use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::dependency::Ind;
use depkit_core::schema::{DatabaseSchema, RelationScheme};

/// Attribute `A_{i+1}` (0-based index in, 1-based name out).
fn attr(i: usize) -> Attr {
    Attr::new(format!("A{}", i + 1))
}

/// The single-relation schema `R(A_1, ..., A_m)` the families live on.
pub fn family_schema(m: usize) -> DatabaseSchema {
    let attrs: Vec<Attr> = (0..m).map(attr).collect();
    DatabaseSchema::new(vec![RelationScheme::new(
        "R",
        AttrSeq::new(attrs).expect("generated names are distinct"),
    )])
    .expect("single scheme")
}

/// `σ(γ) = R[A_1..A_m] ⊆ R[A_{γ(1)}..A_{γ(m)}]`.
pub fn permutation_ind(gamma: &Perm) -> Ind {
    let m = gamma.len();
    let lhs: Vec<Attr> = (0..m).map(attr).collect();
    let rhs: Vec<Attr> = (0..m).map(|i| attr(gamma.apply(i))).collect();
    Ind::new(
        "R",
        AttrSeq::new(lhs).expect("distinct"),
        "R",
        AttrSeq::new(rhs).expect("permutation of distinct attrs"),
    )
    .expect("equal arities")
}

/// The transposition generator set `{σ(γ_1), ..., σ(γ_m)}`, where `γ_i`
/// swaps positions 0 and `i` (the paper's "maps 1 to i and i to 1").
/// Every IND over `R[A_1..A_m]` is a logical consequence of this set.
pub fn transposition_generators(m: usize) -> Vec<Ind> {
    (0..m)
        .map(|i| permutation_ind(&Perm::transposition(m, 0, i)))
        .collect()
}

/// The Landau pair `(σ(γ), σ(δ), f(m))`: `γ` of maximal order `f(m)`
/// (relatively prime cycles), `δ = γ^{f(m)−1} = γ^{-1}`, so that deciding
/// `σ(γ) ⊨ σ(δ)` takes exactly `f(m) − 1` applications of the paper's
/// step (2).
pub fn landau_pair(m: usize) -> (Ind, Ind, u128) {
    let gamma = landau_witness(m);
    let f = landau_function(m);
    let delta = gamma.pow(f - 1);
    (permutation_ind(&gamma), permutation_ind(&delta), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_solver::ind::IndSolver;

    #[test]
    fn sigma_gamma_shape() {
        let gamma = Perm::from_cycles(3, &[vec![0, 1, 2]]).unwrap();
        let ind = permutation_ind(&gamma);
        assert_eq!(ind.to_string(), "R[A1, A2, A3] <= R[A2, A3, A1]");
        assert!(ind.is_well_formed(&family_schema(3)).is_ok());
    }

    #[test]
    fn transposition_generators_imply_any_permutation_ind() {
        // Every IND over R[A1..Am] follows from the m transpositions.
        let m = 4;
        let gens = transposition_generators(m);
        let solver = IndSolver::new(&gens);
        // A few arbitrary permutations.
        for images in [vec![1, 2, 3, 0], vec![3, 2, 1, 0], vec![2, 0, 3, 1]] {
            let p = Perm::new(images).unwrap();
            let target = permutation_ind(&p);
            assert!(solver.implies(&target), "should imply {target}");
        }
        // Also projected/permuted sub-INDs.
        let sub: Ind =
            match depkit_core::parser::parse_dependency("R[A2, A4] <= R[A3, A1]").unwrap() {
                depkit_core::Dependency::Ind(i) => i,
                _ => unreachable!(),
            };
        assert!(solver.implies(&sub));
    }

    #[test]
    fn landau_pair_needs_f_minus_one_steps() {
        for m in [3usize, 5, 7] {
            let (sigma, target, f) = landau_pair(m);
            let solver = IndSolver::new(std::slice::from_ref(&sigma));
            let (yes, stats) = solver.implies_with_stats(&target);
            assert!(yes, "σ(γ) must imply σ(δ) at m={m}");
            // Walk has f(m) expressions: start plus f(m) − 1 steps.
            assert_eq!(
                stats.walk_length,
                Some(f as usize),
                "walk length at m={m} (f={f})"
            );
        }
    }

    #[test]
    fn landau_delta_is_gamma_inverse() {
        let gamma = landau_witness(10);
        let f = landau_function(10);
        assert_eq!(gamma.pow(f - 1), gamma.inverse());
    }
}
