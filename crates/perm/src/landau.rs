//! Landau's function `g(m)`: the maximal order of a permutation of `m`
//! elements.
//!
//! A permutation's order is the lcm of its cycle lengths, so
//! `g(m) = max { lcm(parts) : parts partition m }`. The maximum is always
//! attained by a partition into **prime powers of distinct primes** (plus
//! fixed points): lcm of pairwise-coprime parts is their product, and any
//! part can be replaced by its prime-power factors without lowering the
//! lcm. The paper cites Landau's 1909 result
//! `log g(m) ~ √(m · log m)` and notes the witness "composes relatively
//! prime cycles" — exactly what [`landau_witness`] builds.
//!
//! Computation is exact dynamic programming: process primes `p ≤ m` one at
//! a time; for budget `j`, either skip `p` or spend `p^e` of the budget on
//! a `p^e`-cycle. Values are `u128`, exact for `m ≤ ~400`.

use crate::perm::Perm;

/// Primes up to `n` by a simple sieve.
fn primes_up_to(n: usize) -> Vec<usize> {
    if n < 2 {
        return Vec::new();
    }
    let mut is_prime = vec![true; n + 1];
    is_prime[0] = false;
    is_prime[1] = false;
    let mut p = 2;
    while p * p <= n {
        if is_prime[p] {
            let mut q = p * p;
            while q <= n {
                is_prime[q] = false;
                q += p;
            }
        }
        p += 1;
    }
    (2..=n).filter(|&i| is_prime[i]).collect()
}

/// Exact value of Landau's function `g(m)` (maximal lcm of a partition of
/// `m`). `g(0) = g(1) = 1`.
///
/// Panics if an intermediate product would overflow `u128` (far beyond any
/// `m` this workspace uses; `g(400) ≈ 10^25` fits comfortably).
pub fn landau_function(m: usize) -> u128 {
    landau_table(m)[m]
}

/// The full table `g(0..=m)` (useful for sweeps).
pub fn landau_table(m: usize) -> Vec<u128> {
    // dp[j] = max lcm achievable with budget j using primes seen so far,
    // where each prime contributes at most one prime-power part.
    let mut dp = vec![1u128; m + 1];
    for p in primes_up_to(m) {
        let prev = dp.clone();
        let mut pe = p as u128;
        let mut cost = p;
        while cost <= m {
            for j in cost..=m {
                let candidate = prev[j - cost]
                    .checked_mul(pe)
                    .expect("Landau value overflows u128");
                if candidate > dp[j] {
                    dp[j] = candidate;
                }
            }
            match cost.checked_mul(p) {
                Some(next) if next <= m => {
                    cost = next;
                    pe *= p as u128;
                }
                _ => break,
            }
        }
    }
    // Make the table monotone: unused budget is allowed (fixed points).
    for j in 1..=m {
        if dp[j - 1] > dp[j] {
            dp[j] = dp[j - 1];
        }
    }
    dp
}

/// A permutation of `m` elements achieving order `g(m)`, built from
/// relatively prime cycles (prime-power lengths of distinct primes) padded
/// with fixed points.
pub fn landau_witness(m: usize) -> Perm {
    let parts = landau_partition(m);
    let mut cycles = Vec::new();
    let mut next = 0usize;
    for len in parts {
        cycles.push((next..next + len).collect::<Vec<usize>>());
        next += len;
    }
    Perm::from_cycles(m, &cycles).expect("partition parts fit in m and are disjoint")
}

/// The prime-power partition realizing `g(m)` (parts ≥ 2, summing to ≤ m).
///
/// Keeps the per-prime DP tables and walks them backwards: at each stage,
/// if the table improved at the current budget, some power of that prime
/// was spent — find which one by value, record it, and reduce the budget.
pub fn landau_partition(m: usize) -> Vec<usize> {
    let primes = primes_up_to(m);
    let mut parts = Vec::new();
    let mut tables: Vec<Vec<u128>> = vec![vec![1u128; m + 1]];
    for &p in &primes {
        let prev = tables.last().expect("nonempty").clone();
        let mut cur = prev.clone();
        let mut pe = p as u128;
        let mut cost = p;
        while cost <= m {
            for jj in cost..=m {
                let candidate = prev[jj - cost] * pe;
                if candidate > cur[jj] {
                    cur[jj] = candidate;
                }
            }
            match cost.checked_mul(p) {
                Some(next) if next <= m => {
                    cost = next;
                    pe *= p as u128;
                }
                _ => break,
            }
        }
        tables.push(cur);
    }
    let final_table = tables.last().expect("nonempty");
    let mut best_j = 0;
    for jj in 0..=m {
        if final_table[jj] > final_table[best_j] {
            best_j = jj;
        }
    }
    let mut j = best_j;
    for (k, &p) in primes.iter().enumerate().rev() {
        let cur = &tables[k + 1];
        let prev = &tables[k];
        if cur[j] == prev[j] {
            continue; // prime p unused at this budget
        }
        // Find the prime power spent.
        let mut pe = p as u128;
        let mut cost = p;
        let mut found = None;
        while cost <= j {
            if prev[j - cost] * pe == cur[j] {
                found = Some(cost);
                // Prefer the largest power consistent with the value; keep
                // scanning so ties resolve deterministically to the last.
            }
            match cost.checked_mul(p) {
                Some(next) if next <= j => {
                    cost = next;
                    pe *= p as u128;
                }
                _ => break,
            }
        }
        let cost = found.expect("table improved, so some power was used");
        parts.push(cost);
        j -= cost;
    }
    parts.sort_unstable();
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values of Landau's function (OEIS A000793).
    const KNOWN: &[(usize, u128)] = &[
        (0, 1),
        (1, 1),
        (2, 2),
        (3, 3),
        (4, 4),
        (5, 6),
        (6, 6),
        (7, 12),
        (8, 15),
        (9, 20),
        (10, 30),
        (11, 30),
        (12, 60),
        (13, 60),
        (14, 84),
        (15, 105),
        (16, 140),
        (17, 210),
        (18, 210),
        (19, 420),
        (20, 420),
        (25, 1260),
        (30, 4620),
        (40, 27720),
        (50, 180180),
        // 1021020 = 4·3·5·7·11·13·17 with parts summing to exactly 60.
        (60, 1021020),
        (100, 232792560),
    ];

    #[test]
    fn matches_known_values() {
        for &(m, g) in KNOWN {
            assert_eq!(landau_function(m), g, "g({m})");
        }
    }

    #[test]
    fn witness_achieves_the_maximum() {
        for m in 0..=60 {
            let w = landau_witness(m);
            assert_eq!(w.len(), m);
            assert_eq!(w.order(), landau_function(m), "witness order at m={m}");
        }
    }

    #[test]
    fn witness_cycles_are_coprime_prime_powers() {
        let parts = landau_partition(30);
        // Parts must be pairwise coprime.
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let (mut a, mut b) = (parts[i], parts[j]);
                while b != 0 {
                    let t = a % b;
                    a = b;
                    b = t;
                }
                assert_eq!(a, 1, "parts {:?} not coprime", parts);
            }
        }
        assert!(parts.iter().sum::<usize>() <= 30);
        let product: u128 = parts.iter().map(|&p| p as u128).product();
        assert_eq!(product, landau_function(30));
    }

    #[test]
    fn asymptotic_shape_log_g_over_sqrt_m_log_m() {
        // log g(m) / sqrt(m log m) should approach 1 from below slowly;
        // check it is in a plausible band and increasing over a sweep.
        let mut prev_ratio = 0.0f64;
        for &m in &[40usize, 80, 160, 320] {
            let g = landau_function(m) as f64;
            let ratio = g.ln() / ((m as f64) * (m as f64).ln()).sqrt();
            assert!(ratio > 0.55 && ratio < 1.1, "ratio {ratio} at m={m}");
            assert!(ratio > prev_ratio - 0.05, "ratio should not collapse");
            prev_ratio = ratio;
        }
    }

    #[test]
    fn table_is_monotone() {
        let t = landau_table(100);
        for j in 1..t.len() {
            assert!(t[j] >= t[j - 1]);
        }
    }
}
