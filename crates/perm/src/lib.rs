//! # depkit-perm — permutation machinery for the Section 3 lower bound
//!
//! Section 3 of Casanova–Fagin–Papadimitriou proves the deterministic IND
//! decision procedure needs superpolynomially many steps. Associate with a
//! permutation `γ` of `{1..m}` the *permutation IND*
//! `σ(γ) = R[A_1..A_m] ⊆ R[A_{γ(1)}..A_{γ(m)}]`; then `σ(γ) ⊨ σ(δ)` holds
//! exactly when `δ` is a power of `γ`, and for `δ = γ^{f(m)−1}` every
//! Corollary 3.2 expression walk from `R[A_1..A_m]` to its `δ`-permuted
//! form must apply the IND2 step `f(m) − 1` times — where `f(m)` is
//! **Landau's function**, the maximal order of a permutation of `m`
//! elements. Since `log f(m) ~ √(m log m)` (Landau 1909), the walk length
//! is superpolynomial in `m`: that is the paper's lower bound on the
//! Section 3 decision procedure, the pessimistic counterpart to the
//! PSPACE-hardness of Theorem 3.3 (see `depkit-lba`).
//!
//! ## Paper map
//!
//! | Item | Paper anchor | Role |
//! |---|---|---|
//! | [`Perm`] | §3 (notation) | Permutations of `{1..m}`: composition, [`Perm::pow`], [`Perm::inverse`], [`Perm::cycles`], [`Perm::order`] — the group theory the lower bound rides on |
//! | [`perm::lcm`] | §3 | Order of a permutation = lcm of its cycle lengths |
//! | [`landau_function`] | §3, citing Landau 1909 | `f(m)` = max order of a permutation of `m` elements, exact DP over prime powers |
//! | [`landau::landau_table`] | §3 | `f(0..=m)` in one pass (the DP table itself) |
//! | [`landau_witness`] | §3 | A permutation of `{1..m}` *attaining* `f(m)`, built from relatively prime cycles — exactly how the paper says Landau obtains permutations of big order |
//! | [`landau::landau_partition`] | §3 | The relatively-prime prime-power cycle lengths behind the witness |
//! | [`ind_family::family_schema`] | §3 | The one-relation schema `R(A_1..A_m)` the `σ(γ)` INDs live on |
//! | [`permutation_ind`] | §3 | `γ ↦ σ(γ)`, the encoding of a permutation as an IND |
//! | [`transposition_generators`] | §3 | `{σ(γ_1), ..., σ(γ_m)}` for transposition generators `γ_i` — a `Σ` whose consequences include *every* permutation IND over `R` |
//! | [`landau_pair`] | §3 lower bound | The `(σ(γ), σ(δ))` pair with `γ` a Landau witness and `δ = γ^{f(m)−1}`: deciding `σ(γ) ⊨ σ(δ)` forces a walk of length `f(m) − 1` |
//!
//! ## Where it is exercised
//!
//! * `depkit_solver::ind::IndSolver` walks the family; its `SearchStats`
//!   confirm the `f(m) − 1` walk length on the Landau pair.
//! * `depkit-bench`'s `landau_decision` bench and the `paper-tables`
//!   harness reproduce the superpolynomial growth table.
//! * The workspace smoke tests (`tests/smoke.rs`) pin `f(m)` values and
//!   the walk length against both implication engines.

pub mod ind_family;
pub mod landau;
pub mod perm;

pub use ind_family::{landau_pair, permutation_ind, transposition_generators};
pub use landau::{landau_function, landau_witness};
pub use perm::Perm;
