//! # depkit-perm — permutation machinery for the Section 3 lower bound
//!
//! Section 3 of Casanova–Fagin–Papadimitriou shows the deterministic IND
//! decision procedure needs superpolynomially many steps: associate with a
//! permutation `γ` of `{1..m}` the IND
//! `σ(γ) = R[A_1..A_m] ⊆ R[A_{γ(1)}..A_{γ(m)}]`; then `σ(γ) ⊨ σ(δ)` for
//! `δ = γ^{f(m)−1}` requires `f(m) − 1` applications of the expression step,
//! where `f(m)` (Landau's function) is the maximal order of a permutation of
//! `m` elements — and `log f(m) ~ √(m log m)` (Landau 1909).
//!
//! This crate provides:
//!
//! * [`Perm`] — permutations with composition, powers, cycle decomposition,
//!   and order computation;
//! * [`landau`] — exact computation of Landau's function by dynamic
//!   programming over prime powers, with a witness permutation built from
//!   relatively prime cycles (exactly how the paper says Landau obtains
//!   permutations of big order);
//! * [`ind_family`] — the `σ(γ)` IND families: the transposition generators
//!   `{σ(γ_1), ..., σ(γ_m)}` whose consequences are *all* INDs over
//!   `R[A_1..A_m]`, and the `(σ(γ), σ(δ))` Landau pair driving the
//!   superpolynomial experiment (reproduced in `depkit-bench`).

pub mod ind_family;
pub mod landau;
pub mod perm;

pub use ind_family::{landau_pair, permutation_ind, transposition_generators};
pub use landau::{landau_function, landau_witness};
pub use perm::Perm;
