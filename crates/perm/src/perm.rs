//! Permutations of `{0, ..., m−1}`.

use std::fmt;

/// A permutation of `{0, ..., m−1}`, stored as its image vector:
/// `p.apply(i) = images[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Perm {
    images: Vec<usize>,
}

impl Perm {
    /// Create a permutation from an image vector; verifies bijectivity.
    pub fn new(images: Vec<usize>) -> Option<Self> {
        let n = images.len();
        let mut seen = vec![false; n];
        for &i in &images {
            if i >= n || seen[i] {
                return None;
            }
            seen[i] = true;
        }
        Some(Perm { images })
    }

    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Perm {
            images: (0..n).collect(),
        }
    }

    /// The transposition swapping `a` and `b` (the paper's `γ_i` maps 1 to
    /// `i` and `i` to 1, fixing everything else).
    pub fn transposition(n: usize, a: usize, b: usize) -> Self {
        let mut images: Vec<usize> = (0..n).collect();
        images.swap(a, b);
        Perm { images }
    }

    /// Build the permutation with the given disjoint cycles on `n`
    /// elements; elements not mentioned are fixed. Returns `None` if the
    /// cycles overlap or go out of range.
    pub fn from_cycles(n: usize, cycles: &[Vec<usize>]) -> Option<Self> {
        let mut images: Vec<usize> = (0..n).collect();
        let mut used = vec![false; n];
        for cycle in cycles {
            for &x in cycle {
                if x >= n || used[x] {
                    return None;
                }
                used[x] = true;
            }
            for k in 0..cycle.len() {
                images[cycle[k]] = cycle[(k + 1) % cycle.len()];
            }
        }
        Some(Perm { images })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the permutation is on zero elements.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Image of `i`.
    pub fn apply(&self, i: usize) -> usize {
        self.images[i]
    }

    /// The image vector.
    pub fn images(&self) -> &[usize] {
        &self.images
    }

    /// Composition `self ∘ other` (first `other`, then `self`).
    pub fn compose(&self, other: &Perm) -> Perm {
        debug_assert_eq!(self.len(), other.len());
        Perm {
            images: (0..self.len())
                .map(|i| self.apply(other.apply(i)))
                .collect(),
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Perm {
        let mut images = vec![0; self.len()];
        for (i, &img) in self.images.iter().enumerate() {
            images[img] = i;
        }
        Perm { images }
    }

    /// `self` raised to the `k`-th power by repeated squaring.
    pub fn pow(&self, mut k: u128) -> Perm {
        let mut result = Perm::identity(self.len());
        let mut base = self.clone();
        while k > 0 {
            if k & 1 == 1 {
                result = base.compose(&result);
            }
            base = base.compose(&base);
            k >>= 1;
        }
        result
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.images.iter().enumerate().all(|(i, &img)| i == img)
    }

    /// Cycle decomposition (cycles of length ≥ 2, each starting at its
    /// smallest element, sorted by that element).
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] || self.images[start] == start {
                seen[start] = true;
                continue;
            }
            let mut cycle = vec![start];
            seen[start] = true;
            let mut cur = self.images[start];
            while cur != start {
                seen[cur] = true;
                cycle.push(cur);
                cur = self.images[cur];
            }
            out.push(cycle);
        }
        out
    }

    /// The order of the permutation: the least `k ≥ 1` with `self^k = id`
    /// (the lcm of its cycle lengths).
    pub fn order(&self) -> u128 {
        self.cycles()
            .iter()
            .map(|c| c.len() as u128)
            .fold(1u128, lcm)
    }
}

fn gcd(a: u128, b: u128) -> u128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple over `u128`.
pub fn lcm(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

impl fmt::Display for Perm {
    /// Cycle notation, e.g. `(0 1 2)(3 4)`; the identity prints as `id`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cycles = self.cycles();
        if cycles.is_empty() {
            return f.write_str("id");
        }
        for c in cycles {
            f.write_str("(")?;
            for (i, x) in c.iter().enumerate() {
                if i > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "{x}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Perm::new(vec![1, 0, 2]).is_some());
        assert!(Perm::new(vec![1, 1, 2]).is_none());
        assert!(Perm::new(vec![1, 3, 2]).is_none());
    }

    #[test]
    fn compose_and_inverse() {
        let p = Perm::new(vec![1, 2, 0]).unwrap(); // 3-cycle
        let q = p.inverse();
        assert!(p.compose(&q).is_identity());
        assert!(q.compose(&p).is_identity());
        // Composition order: (p ∘ q)(i) = p(q(i)).
        let t = Perm::transposition(3, 0, 1);
        let pt = p.compose(&t);
        assert_eq!(pt.apply(0), p.apply(t.apply(0)));
    }

    #[test]
    fn cycle_decomposition() {
        let p = Perm::from_cycles(6, &[vec![0, 1, 2], vec![3, 4]]).unwrap();
        let cycles = p.cycles();
        assert_eq!(cycles, vec![vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(p.order(), 6);
        // Fixed point 5 not reported.
        assert!(cycles.iter().all(|c| !c.contains(&5)));
    }

    #[test]
    fn from_cycles_rejects_overlap() {
        assert!(Perm::from_cycles(4, &[vec![0, 1], vec![1, 2]]).is_none());
        assert!(Perm::from_cycles(3, &[vec![0, 7]]).is_none());
    }

    #[test]
    fn order_of_coprime_cycles_is_product() {
        let p = Perm::from_cycles(5, &[vec![0, 1], vec![2, 3, 4]]).unwrap();
        assert_eq!(p.order(), 6);
        let q = Perm::from_cycles(9, &[vec![0, 1], vec![2, 3, 4], vec![5, 6, 7, 8]]).unwrap();
        // lcm(2, 3, 4) = 12.
        assert_eq!(q.order(), 12);
    }

    #[test]
    fn pow_matches_iterated_composition() {
        let p = Perm::from_cycles(7, &[vec![0, 1, 2], vec![3, 4, 5, 6]]).unwrap();
        let mut iterated = Perm::identity(7);
        for k in 0..=(p.order() as usize) {
            assert_eq!(p.pow(k as u128), iterated, "power {k}");
            iterated = p.compose(&iterated);
        }
        assert!(p.pow(p.order()).is_identity());
        assert!(!p.pow(p.order() - 1).is_identity());
    }

    #[test]
    fn display_cycle_notation() {
        let p = Perm::from_cycles(5, &[vec![0, 1, 2], vec![3, 4]]).unwrap();
        assert_eq!(p.to_string(), "(0 1 2)(3 4)");
        assert_eq!(Perm::identity(4).to_string(), "id");
    }
}
