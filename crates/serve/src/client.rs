//! A scripted protocol client: send request lines, collect response
//! lines — the driver behind `depkit client` and the CI serve smoke.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Connect to `addr`, send every non-empty, non-comment line of
/// `script` as one request, and write each response line to `out`.
///
/// Script lines are raw protocol JSON; `#`-prefixed lines and blank
/// lines are skipped, so a script can annotate itself. The responses
/// arrive in request order (the protocol is strictly one response per
/// request), which makes the collected output a deterministic
/// transcript — exactly what the CI smoke job asserts against.
pub fn run_script(addr: &str, script: &str, out: &mut dyn Write) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut response = String::new();
    for raw in script.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        writeln!(writer, "{line}")?;
        writer.flush()?;
        response.clear();
        if reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-script",
            ));
        }
        out.write_all(response.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};
    use depkit_core::dependency::Dependency;
    use depkit_core::schema::DatabaseSchema;
    use depkit_solver::incremental::CatalogState;

    #[test]
    fn scripted_session_round_trips_over_tcp() {
        let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
        let sigma: Vec<Dependency> = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
        let cat = CatalogState::new(&schema, &sigma).unwrap();
        let server = Server::start(cat.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();

        let script = r#"
# stage a dangling row, look at it, walk away
{"cmd":"begin"}
{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}
{"cmd":"query"}
{"cmd":"abort"}
# now do it properly
{"cmd":"begin"}
{"cmd":"insert","rel":"DEPT","row":["math"]}
{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}
{"cmd":"commit"}
{"cmd":"query"}
"#;
        let mut out = Vec::new();
        run_script(&addr, script, &mut out).unwrap();
        let transcript = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = transcript.lines().collect();
        assert_eq!(lines.len(), 9, "one response per request:\n{transcript}");
        assert!(lines[2].contains(r#""count":1"#), "{transcript}");
        assert!(lines[7].contains(r#""generation":1"#), "{transcript}");
        assert!(lines[8].contains(r#""count":0"#), "{transcript}");
        assert_eq!(cat.total_rows(), 2, "abort left no trace");
        server.stop().unwrap();
    }

    #[test]
    fn concurrent_tcp_clients_share_one_catalog() {
        let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
        let cat = CatalogState::new(&schema, &[]).unwrap();
        let server = Server::start(cat.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();

        std::thread::scope(|scope| {
            for t in 0..4 {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut script = String::from("{\"cmd\":\"begin\"}\n");
                    for i in 0..25 {
                        script.push_str(&format!(
                            "{{\"cmd\":\"insert\",\"rel\":\"R\",\"row\":[{}]}}\n",
                            t * 1000 + i
                        ));
                    }
                    script.push_str("{\"cmd\":\"commit\"}\n");
                    let mut out = Vec::new();
                    run_script(&addr, &script, &mut out).unwrap();
                    let text = String::from_utf8(out).unwrap();
                    assert!(
                        text.lines().last().unwrap().contains(r#""inserted":25"#),
                        "{text}"
                    );
                });
            }
        });
        assert_eq!(cat.total_rows(), 100);
        server.stop().unwrap();
    }
}
