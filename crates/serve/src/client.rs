//! Protocol clients: the scripted driver behind `depkit client` and the
//! CI serve smoke, plus [`ResilientClient`] — a reconnecting writer that
//! makes commits exactly-once over a lossy connection.
//!
//! The resilient client pairs with the server's idempotent-commit
//! support: every batch commits under a `(client, token)` tag, and on
//! *any* connection failure — including the ugliest case, an ack lost
//! after the server already applied the commit — it reconnects with
//! exponential backoff and replays the whole batch under the **same**
//! token. The server's token table answers the replay with the original
//! outcome (`"replayed":true`) instead of applying twice, so the client
//! advances its sequence number only on a confirmed ack.

use crate::json::{self, Json};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Connect to `addr`, send every non-empty, non-comment line of
/// `script` as one request, and write each response line to `out`.
///
/// Script lines are raw protocol JSON; `#`-prefixed lines and blank
/// lines are skipped, so a script can annotate itself. The responses
/// arrive in request order (the protocol is strictly one response per
/// request), which makes the collected output a deterministic
/// transcript — exactly what the CI smoke job asserts against.
pub fn run_script(addr: &str, script: &str, out: &mut dyn Write) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut response = String::new();
    for raw in script.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        writeln!(writer, "{line}")?;
        writer.flush()?;
        response.clear();
        if reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-script",
            ));
        }
        out.write_all(response.as_bytes())?;
    }
    Ok(())
}

/// Reconnect/backoff policy for [`ResilientClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Total attempts per batch (first try included).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each retry after that.
    pub base_delay: Duration,
    /// Ceiling on the doubled delay.
    pub max_delay: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 6,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
        }
    }
}

/// The server's answer to a committed (or deduplicated) batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitAck {
    /// Generation the batch published (or originally published, when
    /// `replayed`).
    pub generation: u64,
    /// Rows the batch inserted.
    pub inserted: u64,
    /// Rows the batch deleted.
    pub deleted: u64,
    /// `true` when the server answered from its token table — the
    /// original ack was lost and this is its replay, not a re-apply.
    pub replayed: bool,
}

/// A committing client that survives dropped connections without ever
/// double-applying: each batch is `begin` + ops + tagged `commit`, and a
/// batch whose connection died anywhere — even between the server
/// applying and the client reading the ack — is replayed verbatim under
/// the same token, which the server deduplicates.
#[derive(Debug)]
pub struct ResilientClient {
    addr: String,
    client_id: String,
    retry: RetryConfig,
    seq: u64,
    conn: Option<Conn>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One strict request/reply exchange.
    fn round_trip(&mut self, line: &str) -> io::Result<Json> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        json::parse(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Why one attempt failed: connection trouble (retryable — the token
/// makes the replay safe) versus the server *answering* with an error
/// (not retryable — the same request would fail the same way).
enum AttemptError {
    Io(io::Error),
    App(String),
}

fn expect_ok(reply: Json) -> Result<Json, AttemptError> {
    if reply.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(reply);
    }
    Err(AttemptError::App(
        reply
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed server reply")
            .to_owned(),
    ))
}

impl ResilientClient {
    /// A client with the default [`RetryConfig`]. `client_id` is the
    /// idempotency identity: the server remembers the last token *per
    /// client id*, so concurrent writers need distinct ids.
    pub fn new(addr: &str, client_id: &str) -> ResilientClient {
        ResilientClient::with_retry(addr, client_id, RetryConfig::default())
    }

    /// [`ResilientClient::new`] with an explicit retry policy.
    pub fn with_retry(addr: &str, client_id: &str, retry: RetryConfig) -> ResilientClient {
        ResilientClient {
            addr: addr.to_owned(),
            client_id: client_id.to_owned(),
            retry,
            seq: 0,
            conn: None,
        }
    }

    /// Point the client at a restarted (or relocated) server: drops the
    /// cached connection but keeps the client id and sequence number, so
    /// a batch whose ack was lost to the crash retries under its
    /// original token against the new address.
    pub fn reconnect_to(&mut self, addr: &str) {
        self.addr = addr.to_owned();
        self.conn = None;
    }

    /// The token the *next* `commit_batch` call will commit under.
    /// Deterministic per client: `t0`, `t1`, ... — advanced only when a
    /// batch is acknowledged.
    pub fn next_token(&self) -> String {
        format!("t{}", self.seq)
    }

    /// Commit `ops` (raw protocol `insert`/`delete` lines) as one
    /// idempotent batch: `begin`, stage every op, `commit` tagged with
    /// this client's id and next token. Connection failures reconnect
    /// with exponential backoff and replay under the same token;
    /// application errors (unknown relation, arity mismatch, ...) abort
    /// the session and surface immediately without retrying.
    pub fn commit_batch(&mut self, ops: &[String]) -> io::Result<CommitAck> {
        let token = self.next_token();
        let mut delay = self.retry.base_delay;
        let mut last_io = None;
        for attempt in 0..self.retry.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2).min(self.retry.max_delay);
            }
            match self.attempt(ops, &token) {
                Ok(ack) => {
                    self.seq += 1;
                    return Ok(ack);
                }
                Err(AttemptError::App(message)) => {
                    // Leave the session clean for the next batch; a
                    // failed abort just costs us the cached connection.
                    if self
                        .conn
                        .as_mut()
                        .is_none_or(|c| c.round_trip(r#"{"cmd":"abort"}"#).is_err())
                    {
                        self.conn = None;
                    }
                    return Err(io::Error::new(io::ErrorKind::InvalidData, message));
                }
                Err(AttemptError::Io(e)) => {
                    self.conn = None;
                    last_io = Some(e);
                }
            }
        }
        Err(last_io.unwrap_or_else(|| io::Error::other("retry budget exhausted")))
    }

    fn attempt(&mut self, ops: &[String], token: &str) -> Result<CommitAck, AttemptError> {
        if self.conn.is_none() {
            self.conn = Some(Conn::open(&self.addr).map_err(AttemptError::Io)?);
        }
        let conn = self.conn.as_mut().expect("connection just opened");
        let mut reply = conn
            .round_trip(r#"{"cmd":"begin"}"#)
            .map_err(AttemptError::Io)?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            // A stale session can linger on a reused connection (e.g. a
            // previous batch died between begin and commit without the
            // connection dropping); clear it once and re-begin.
            conn.round_trip(r#"{"cmd":"abort"}"#)
                .map_err(AttemptError::Io)?;
            reply = conn
                .round_trip(r#"{"cmd":"begin"}"#)
                .map_err(AttemptError::Io)?;
        }
        expect_ok(reply)?;
        for op in ops {
            expect_ok(conn.round_trip(op).map_err(AttemptError::Io)?)?;
        }
        let commit = format!(
            r#"{{"cmd":"commit","client":{},"token":{}}}"#,
            Json::Str(self.client_id.clone()),
            Json::Str(token.to_owned()),
        );
        let ack = expect_ok(conn.round_trip(&commit).map_err(AttemptError::Io)?)?;
        let field = |name: &str| ack.get(name).and_then(Json::as_i64).unwrap_or(0) as u64;
        Ok(CommitAck {
            generation: field("generation"),
            inserted: field("inserted"),
            deleted: field("deleted"),
            replayed: ack.get("replayed").and_then(Json::as_bool) == Some(true),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};
    use depkit_core::dependency::Dependency;
    use depkit_core::schema::DatabaseSchema;
    use depkit_solver::incremental::CatalogState;

    #[test]
    fn scripted_session_round_trips_over_tcp() {
        let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
        let sigma: Vec<Dependency> = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
        let cat = CatalogState::new(&schema, &sigma).unwrap();
        let server = Server::start(cat.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();

        let script = r#"
# stage a dangling row, look at it, walk away
{"cmd":"begin"}
{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}
{"cmd":"query"}
{"cmd":"abort"}
# now do it properly
{"cmd":"begin"}
{"cmd":"insert","rel":"DEPT","row":["math"]}
{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}
{"cmd":"commit"}
{"cmd":"query"}
"#;
        let mut out = Vec::new();
        run_script(&addr, script, &mut out).unwrap();
        let transcript = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = transcript.lines().collect();
        assert_eq!(lines.len(), 9, "one response per request:\n{transcript}");
        assert!(lines[2].contains(r#""count":1"#), "{transcript}");
        assert!(lines[7].contains(r#""generation":1"#), "{transcript}");
        assert!(lines[8].contains(r#""count":0"#), "{transcript}");
        assert_eq!(cat.total_rows(), 2, "abort left no trace");
        server.stop().unwrap();
    }

    #[test]
    fn concurrent_tcp_clients_share_one_catalog() {
        let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
        let cat = CatalogState::new(&schema, &[]).unwrap();
        let server = Server::start(cat.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();

        std::thread::scope(|scope| {
            for t in 0..4 {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut script = String::from("{\"cmd\":\"begin\"}\n");
                    for i in 0..25 {
                        script.push_str(&format!(
                            "{{\"cmd\":\"insert\",\"rel\":\"R\",\"row\":[{}]}}\n",
                            t * 1000 + i
                        ));
                    }
                    script.push_str("{\"cmd\":\"commit\"}\n");
                    let mut out = Vec::new();
                    run_script(&addr, &script, &mut out).unwrap();
                    let text = String::from_utf8(out).unwrap();
                    assert!(
                        text.lines().last().unwrap().contains(r#""inserted":25"#),
                        "{text}"
                    );
                });
            }
        });
        assert_eq!(cat.total_rows(), 100);
        server.stop().unwrap();
    }

    /// A line-forwarding proxy that sabotages the first connection: it
    /// forwards the client's `commit` to the real server, lets the
    /// server apply it, then *drops the ack on the floor* and kills the
    /// connection — the lost-ack window the idempotent token exists for.
    /// Every later connection forwards transparently.
    fn lossy_proxy(server_addr: std::net::SocketAddr) -> std::net::SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let proxy_addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut first = true;
            for client in listener.incoming() {
                let Ok(client) = client else { break };
                let sabotage = std::mem::take(&mut first);
                std::thread::spawn(move || {
                    let upstream = TcpStream::connect(server_addr).unwrap();
                    let mut up_reader = BufReader::new(upstream.try_clone().unwrap());
                    let mut up_writer = upstream;
                    let mut down_reader = BufReader::new(client.try_clone().unwrap());
                    let mut down_writer = client;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        if down_reader.read_line(&mut line).unwrap_or(0) == 0 {
                            break;
                        }
                        up_writer.write_all(line.as_bytes()).unwrap();
                        let mut reply = String::new();
                        if up_reader.read_line(&mut reply).unwrap_or(0) == 0 {
                            break;
                        }
                        if sabotage && line.contains(r#""cmd":"commit""#) {
                            // The server committed; the client never hears.
                            break;
                        }
                        if down_writer.write_all(reply.as_bytes()).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        proxy_addr
    }

    #[test]
    fn a_lost_ack_is_replayed_under_the_same_token_not_reapplied() {
        let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
        let cat = CatalogState::new(&schema, &[]).unwrap();
        let server = Server::start(cat.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
        let proxy = lossy_proxy(server.local_addr());

        let mut client = ResilientClient::with_retry(
            &proxy.to_string(),
            "alice",
            RetryConfig {
                max_attempts: 4,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(20),
            },
        );
        assert_eq!(client.next_token(), "t0");
        let ops = vec![r#"{"cmd":"insert","rel":"R","row":[1]}"#.to_owned()];
        let ack = client.commit_batch(&ops).unwrap();
        // The first connection died after the server applied the commit;
        // the replay got the original ack back from the token table.
        assert!(ack.replayed, "ack came from the dedup table: {ack:?}");
        assert_eq!(
            (ack.generation, ack.inserted, ack.deleted),
            (1, 1, 0),
            "the original outcome, verbatim"
        );
        assert_eq!(cat.total_rows(), 1, "applied exactly once");

        // The sequence advanced only after the ack: the next batch is a
        // fresh token and applies normally.
        assert_eq!(client.next_token(), "t1");
        let ack2 = client
            .commit_batch(&[r#"{"cmd":"insert","rel":"R","row":[2]}"#.to_owned()])
            .unwrap();
        assert!(!ack2.replayed);
        assert_eq!(ack2.generation, 2);
        assert_eq!(cat.total_rows(), 2);
        server.stop().unwrap();
    }

    #[test]
    fn application_errors_surface_immediately_without_retry() {
        let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
        let cat = CatalogState::new(&schema, &[]).unwrap();
        let server = Server::start(cat.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();

        let mut client = ResilientClient::new(&addr, "bob");
        let e = client
            .commit_batch(&[r#"{"cmd":"insert","rel":"GHOST","row":[1]}"#.to_owned()])
            .unwrap_err();
        assert!(
            e.to_string().contains("unknown relation"),
            "the server's message passes through: {e}"
        );
        // The failed batch consumed no token; the client stays usable on
        // the same connection.
        assert_eq!(client.next_token(), "t0");
        let ack = client
            .commit_batch(&[r#"{"cmd":"insert","rel":"R","row":[7]}"#.to_owned()])
            .unwrap();
        assert_eq!((ack.generation, ack.inserted), (1, 1));
        assert_eq!(cat.total_rows(), 1);
        server.stop().unwrap();
    }
}
