//! A minimal line-JSON value type: parse and serialize exactly the
//! subset the serve protocol needs (objects, arrays, strings, `i64`
//! numbers, booleans, null), with standard string escaping.
//!
//! Vendored by hand because the build environment is offline — see the
//! `vendor/` README for the policy. The parser is strict about structure
//! (every error names the byte offset) but deliberately small: no
//! floating point, no `\u` surrogate pairs beyond the BMP escape itself.

use std::fmt;

/// A JSON value over `i64` numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the protocol's only number shape).
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key of an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse one JSON value from `text` (the whole string must be consumed,
/// trailing whitespace aside). Errors carry the byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice boundary is a char boundary: `"`/`\`/controls are
            // single-byte and UTF-8 continuation bytes are >= 0x80.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or_else(|| {
                                format!("\\u escape is not a scalar value at byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "unknown escape `\\{}` at byte {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                Some(_) => return Err(format!("control byte in string at byte {}", self.pos)),
                None => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "floating-point numbers are not part of the protocol (byte {start})"
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .parse::<i64>()
            .map(Json::Num)
            .map_err(|_| format!("number out of i64 range at byte {start}"))
    }
}

/// Build an object from key/value pairs (serialization convenience).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        for text in [
            r#"{"cmd":"begin"}"#,
            r#"{"cmd":"insert","rel":"EMP","row":[1,"math",-7]}"#,
            r#"{"ok":true,"violations":["IND #0"],"count":1}"#,
            r#"{"a":null,"b":[true,false],"c":{}}"#,
            r#"[]"#,
            r#""esc \" \\ \n \t é""#,
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "round trip of {text}");
        }
    }

    #[test]
    fn escapes_serialize_and_reparse() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_owned());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"cmd":"insert","row":[1,"x"],"n":5}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("insert"));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(5));
        assert_eq!(
            v.get("row").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            r#"{"a"}"#,
            "[1,]",
            "1.5",
            "1e3",
            "99999999999999999999",
            "tru",
            r#""unterminated"#,
            r#"{"a":1} extra"#,
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
