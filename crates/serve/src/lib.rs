//! # depkit-serve — the long-running constraint server
//!
//! The ROADMAP's north star is constraints *monitored live* over a
//! mutating database shared by many writers. This crate is the network
//! layer of that story: it exposes one snapshot-isolated
//! [`CatalogState`](depkit_solver::incremental::CatalogState) over TCP,
//! multiplexing any number of client connections into per-connection
//! [`Session`](depkit_solver::incremental::Session)s.
//!
//! * [`json`] — a vendored, std-only line-JSON value type (the build is
//!   offline; no external JSON dependency exists to link against).
//! * [`protocol`] — the request/response verbs
//!   (`begin`/`insert`/`delete`/`query`/`health`/`commit`/`abort`/`dump`),
//!   one JSON object per line in each direction; `commit` optionally
//!   carries a `(client, token)` idempotency tag.
//! * [`server`] — the thread-per-connection TCP accept loop with
//!   structural backpressure (bounded staging per session, bounded
//!   connection count, capped request lines, read timeouts) and, via
//!   [`Server::start_durable`], the write-ahead-logged crash-safe mode.
//! * [`client`] — the scripted client used by `depkit client` and the
//!   CI smoke transcript, plus [`ResilientClient`]: reconnect with
//!   backoff and token-deduplicated replay, for exactly-once commits
//!   over lossy connections.
//! * [`shard`] — cross-process sharded discovery: the coordinator that
//!   plans column/key-range shards and merges worker-published runs, the
//!   worker poll loop, and the [`FaultPlan`] fault-injection hook the
//!   crash-safety tests drive.
//!
//! The server adds **no** consistency machinery of its own: isolation,
//! commit ordering, O(delta) validation, and durability all live in
//! `depkit_solver::incremental`; this crate only frames bytes — and, in
//! durable mode, decides *when* a commit is acknowledged (only after its
//! write-ahead-log frame is down).

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{run_script, CommitAck, ResilientClient, RetryConfig};
pub use json::Json;
pub use protocol::{parse_request, Request};
pub use server::{ServeConfig, Server};
pub use shard::{run_worker, Coordinator, Fault, FaultKind, FaultPlan, ShardConfig, ShardStats};
