//! # depkit-serve — the long-running constraint server
//!
//! The ROADMAP's north star is constraints *monitored live* over a
//! mutating database shared by many writers. This crate is the network
//! layer of that story: it exposes one snapshot-isolated
//! [`CatalogState`](depkit_solver::incremental::CatalogState) over TCP,
//! multiplexing any number of client connections into per-connection
//! [`Session`](depkit_solver::incremental::Session)s.
//!
//! * [`json`] — a vendored, std-only line-JSON value type (the build is
//!   offline; no external JSON dependency exists to link against).
//! * [`protocol`] — the request/response verbs
//!   (`begin`/`insert`/`delete`/`query`/`health`/`commit`/`abort`), one JSON
//!   object per line in each direction.
//! * [`server`] — the thread-per-connection TCP accept loop with
//!   structural backpressure (bounded staging per session, bounded
//!   connection count).
//! * [`client`] — the scripted client used by `depkit client` and the
//!   CI smoke transcript.
//! * [`shard`] — cross-process sharded discovery: the coordinator that
//!   plans column/key-range shards and merges worker-published runs, the
//!   worker poll loop, and the [`FaultPlan`] fault-injection hook the
//!   crash-safety tests drive.
//!
//! The server adds **no** consistency machinery of its own: isolation,
//! commit ordering, and O(delta) validation all live in
//! `depkit_solver::incremental::catalog`; this crate only frames bytes.

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::run_script;
pub use json::Json;
pub use protocol::{parse_request, Request};
pub use server::{ServeConfig, Server};
pub use shard::{run_worker, Coordinator, Fault, FaultKind, FaultPlan, ShardConfig, ShardStats};
