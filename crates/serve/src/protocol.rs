//! The line-JSON session protocol: one request object per line, one
//! response object per line.
//!
//! Requests (`cmd` selects the verb):
//!
//! ```text
//! {"cmd":"begin"}                                   pin a snapshot, open staging
//! {"cmd":"insert","rel":"EMP","row":[1,"math"]}     stage an insertion
//! {"cmd":"delete","rel":"EMP","row":[1,"math"]}     stage a deletion
//! {"cmd":"query"}                                   violations of snapshot + staging
//! {"cmd":"health"}                                  per-dependency satisfaction ratios
//! {"cmd":"commit"}                                  apply staging, publish a generation
//! {"cmd":"commit","client":"c1","token":"t42"}      idempotent commit (safe to retry)
//! {"cmd":"abort"}                                   drop staging without a trace
//! {"cmd":"dump"}                                    committed state, sorted (oracle diffs)
//! ```
//!
//! A tagged `commit` carries an idempotency pair: the server remembers
//! the last `token` per `client`, so a retry after a lost acknowledgement
//! returns the original outcome (flagged `"replayed":true`) instead of
//! applying twice. Both fields come together or not at all.
//!
//! Row entries are JSON numbers (→ [`Value::Int`]) or strings
//! (→ [`Value::str`]). Responses are `{"ok":true,...}` on success and
//! `{"ok":false,"error":"..."}` on failure; parse errors echo the
//! offending text — the same report shape the `depkit validate` script
//! parser uses, so a mis-typed line is diagnosable from the transcript
//! alone.

use crate::json::{self, Json};
use depkit_core::relation::Tuple;
use depkit_core::value::Value;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Pin a snapshot and open empty staging.
    Begin,
    /// Stage an insertion of `row` into `rel`.
    Insert {
        /// Target relation name.
        rel: String,
        /// The tuple to insert.
        row: Tuple,
    },
    /// Stage a deletion of `row` from `rel`.
    Delete {
        /// Target relation name.
        rel: String,
        /// The tuple to delete.
        row: Tuple,
    },
    /// Report the violation set of *snapshot + staging* (or of a fresh
    /// snapshot when no session is active).
    Query,
    /// Report per-dependency satisfaction ratios at the latest committed
    /// generation (never the session's staging — health is the
    /// observer's view of what commits have done to Σ).
    Health,
    /// Apply the staged delta and publish a generation. With a
    /// `(client, token)` tag the commit is idempotent: a retry with the
    /// same tag returns the original outcome instead of re-applying.
    Commit {
        /// The `(client id, commit token)` idempotency pair, if sent.
        tag: Option<(String, String)>,
    },
    /// Dump the committed state at the latest generation: every relation's
    /// rows, sorted — the differential-oracle view the crash-recovery
    /// harness compares across restarts.
    Dump,
    /// Drop the staged delta.
    Abort,
}

/// Parse one request line. The error message quotes the offending text,
/// so a transcript line is diagnosable on its own.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let bad = |msg: &str| format!("{msg} (in `{}`)", line.trim());
    let v = json::parse(line).map_err(|e| bad(&e))?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("request must be an object with a string `cmd`"))?;
    match cmd {
        "begin" => Ok(Request::Begin),
        "commit" => {
            let client = v.get("client").and_then(Json::as_str);
            let token = v.get("token").and_then(Json::as_str);
            let tag = match (client, token) {
                (Some(c), Some(t)) => Some((c.to_owned(), t.to_owned())),
                (None, None) => None,
                _ => {
                    return Err(bad(
                        "commit takes `client` and `token` together or not at all",
                    ))
                }
            };
            Ok(Request::Commit { tag })
        }
        "abort" => Ok(Request::Abort),
        "query" => Ok(Request::Query),
        "health" => Ok(Request::Health),
        "dump" => Ok(Request::Dump),
        "insert" | "delete" => {
            let rel = v
                .get("rel")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("insert/delete need a string `rel`"))?
                .to_owned();
            let items = v
                .get("row")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("insert/delete need an array `row`"))?;
            let mut values = Vec::with_capacity(items.len());
            for item in items {
                values.push(match item {
                    Json::Num(n) => Value::Int(*n),
                    Json::Str(s) => Value::str(s),
                    other => {
                        return Err(bad(&format!(
                            "row entries must be numbers or strings, got `{other}`"
                        )))
                    }
                });
            }
            let row = Tuple::new(values);
            Ok(if cmd == "insert" {
                Request::Insert { rel, row }
            } else {
                Request::Delete { rel, row }
            })
        }
        other => Err(bad(&format!(
            "unknown cmd `{other}` (expected begin/insert/delete/query/health/commit/abort/dump)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(parse_request(r#"{"cmd":"begin"}"#).unwrap(), Request::Begin);
        assert_eq!(
            parse_request(r#"{"cmd":"commit"}"#).unwrap(),
            Request::Commit { tag: None }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"commit","client":"c1","token":"t42"}"#).unwrap(),
            Request::Commit {
                tag: Some(("c1".to_owned(), "t42".to_owned()))
            }
        );
        assert_eq!(parse_request(r#"{"cmd":"dump"}"#).unwrap(), Request::Dump);
        assert_eq!(parse_request(r#"{"cmd":"abort"}"#).unwrap(), Request::Abort);
        assert_eq!(parse_request(r#"{"cmd":"query"}"#).unwrap(), Request::Query);
        assert_eq!(
            parse_request(r#"{"cmd":"health"}"#).unwrap(),
            Request::Health
        );
        let ins = parse_request(r#"{"cmd":"insert","rel":"EMP","row":[7,"math"]}"#).unwrap();
        assert_eq!(
            ins,
            Request::Insert {
                rel: "EMP".to_owned(),
                row: Tuple::new(vec![Value::Int(7), Value::str("math")]),
            }
        );
        assert!(matches!(
            parse_request(r#"{"cmd":"delete","rel":"EMP","row":[]}"#).unwrap(),
            Request::Delete { .. }
        ));
    }

    #[test]
    fn errors_quote_the_offending_text() {
        let e = parse_request(r#"{"cmd":"upsert"}"#).unwrap_err();
        assert!(e.contains("unknown cmd `upsert`"), "got: {e}");
        assert!(e.contains(r#"(in `{"cmd":"upsert"}`)"#), "got: {e}");
        let e2 = parse_request("not json at all").unwrap_err();
        assert!(e2.contains("(in `not json at all`)"), "got: {e2}");
        let e3 = parse_request(r#"{"cmd":"insert","rel":"R","row":[true]}"#).unwrap_err();
        assert!(e3.contains("numbers or strings"), "got: {e3}");
        let e4 = parse_request(r#"{"cmd":"insert","rel":"R"}"#).unwrap_err();
        assert!(e4.contains("array `row`"), "got: {e4}");
        let e5 = parse_request(r#"{"cmd":"commit","client":"c1"}"#).unwrap_err();
        assert!(e5.contains("together or not at all"), "got: {e5}");
        let e6 = parse_request(r#"{"cmd":"commit","token":"t"}"#).unwrap_err();
        assert!(e6.contains("together or not at all"), "got: {e6}");
    }
}
