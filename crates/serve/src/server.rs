//! The TCP session server: one thread per connection, one catalog for
//! everyone.
//!
//! Each accepted connection speaks the [protocol](crate::protocol) and
//! owns at most one live [`Session`] at a time; the shared
//! [`CatalogState`] serializes commits and keeps every session's pinned
//! snapshot readable. Backpressure is structural: the per-session
//! staging buffer is bounded ([`ServeConfig::max_staged`] — a client
//! that keeps staging past it gets errors until it commits or aborts),
//! and the accept loop refuses connections past
//! [`ServeConfig::max_connections`] with a one-line error instead of
//! queueing unboundedly.

use crate::json::{obj, Json};
use crate::protocol::{parse_request, Request};
use depkit_solver::incremental::{CatalogState, Session};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server limits. The defaults are deliberately generous: the catalog
/// itself is the scaling bottleneck, not the socket layer.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum concurrently served connections; further accepts are
    /// answered with an error line and closed.
    pub max_connections: usize,
    /// Maximum staged operations per session; staging past this returns
    /// errors until the client commits or aborts.
    pub max_staged: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // Thread-per-connection: scale the cap with the machine, the
            // way `core::pool` sizes its workers, but allow deep
            // oversubscription — sessions are mostly idle between lines.
            max_connections: 64 * depkit_core::pool::default_threads().max(1),
            max_staged: 65_536,
        }
    }
}

/// A running server: the accept loop plus its shutdown switch.
///
/// # Examples
///
/// ```
/// use depkit_core::prelude::*;
/// use depkit_solver::incremental::CatalogState;
/// use depkit_serve::{Server, ServeConfig};
///
/// let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
/// let cat = CatalogState::new(&schema, &[]).unwrap();
/// let server = Server::start(cat, "127.0.0.1:0", ServeConfig::default()).unwrap();
/// let addr = server.local_addr();
/// // ... connect clients against `addr` ...
/// server.stop().unwrap();
/// ```
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections against `cat`.
    pub fn start(cat: CatalogState, addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if active.fetch_add(1, Ordering::AcqRel) >= cfg.max_connections {
                    active.fetch_sub(1, Ordering::AcqRel);
                    let mut s = stream;
                    let _ = writeln!(
                        s,
                        "{}",
                        err(format!(
                            "server at capacity ({} connections)",
                            cfg.max_connections
                        ))
                    );
                    continue;
                }
                let cat = cat.clone();
                let active = Arc::clone(&active);
                std::thread::spawn(move || {
                    let _ = serve_connection(&cat, stream, cfg.max_staged);
                    active.fetch_sub(1, Ordering::AcqRel);
                });
            }
        });
        Ok(Server {
            addr,
            stop,
            accept_thread,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Connections already being
    /// served run until their client hangs up.
    pub fn stop(self) -> io::Result<()> {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept_thread
            .join()
            .map_err(|_| io::Error::other("accept loop panicked"))
    }
}

fn err(message: String) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message)),
    ])
}

/// Drive one connection: read request lines, write response lines, until
/// the client hangs up. A dropped connection aborts any live session
/// (its staging is session-local, so nothing leaks).
fn serve_connection(cat: &CatalogState, stream: TcpStream, max_staged: usize) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut session: Option<Session> = None;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = respond(cat, &mut session, &line, max_staged);
        writeln!(writer, "{response}")?;
    }
    Ok(())
}

/// Execute one request against the connection's session slot.
fn respond(
    cat: &CatalogState,
    session: &mut Option<Session>,
    line: &str,
    max_staged: usize,
) -> Json {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return err(e),
    };
    match request {
        Request::Begin => {
            if session.is_some() {
                return err("a session is already active (commit or abort it first)".into());
            }
            let s = cat.begin();
            let gen = s.generation();
            *session = Some(s);
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(gen as i64)),
            ])
        }
        Request::Insert { rel, row } => stage_op(session, max_staged, &rel, row, true),
        Request::Delete { rel, row } => stage_op(session, max_staged, &rel, row, false),
        Request::Query => {
            let (gen, violations) = match session.as_ref() {
                Some(s) => (s.generation(), s.violations()),
                None => {
                    let snap = cat.snapshot();
                    (snap.generation(), snap.violations())
                }
            };
            let rendered: Vec<Json> = violations
                .iter()
                .map(|v| Json::Str(v.to_string()))
                .collect();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(gen as i64)),
                ("count", Json::Num(rendered.len() as i64)),
                ("violations", Json::Arr(rendered)),
            ])
        }
        Request::Health => {
            // Always a fresh snapshot, even mid-session: health is the
            // observer's view of committed state, so a client polling it
            // between its own commits watches ratios move as *other*
            // sessions land. Each commit maintained the counters in
            // O(delta); reading them here is O(Σ).
            let snap = cat.snapshot();
            let deps: Vec<Json> = snap
                .health()
                .iter()
                .map(|h| {
                    obj(vec![
                        ("dep", Json::Str(h.dep.to_string())),
                        ("violating", Json::Num(h.violating as i64)),
                        ("tracked", Json::Num(h.tracked as i64)),
                        // The wire format is integer-only; the ratio is
                        // rendered to four places for human eyes.
                        ("satisfied", Json::Str(format!("{:.4}", h.ratio()))),
                    ])
                })
                .collect();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(snap.generation() as i64)),
                ("deps", Json::Arr(deps)),
            ])
        }
        Request::Commit => {
            let Some(s) = session.take() else {
                return err("no active session (send begin first)".into());
            };
            let out = s.commit();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(out.generation as i64)),
                ("inserted", Json::Num(out.applied.inserted as i64)),
                ("deleted", Json::Num(out.applied.deleted as i64)),
            ])
        }
        Request::Abort => {
            let Some(s) = session.take() else {
                return err("no active session (send begin first)".into());
            };
            s.abort();
            obj(vec![("ok", Json::Bool(true))])
        }
    }
}

/// Stage one operation into the connection's live session, enforcing the
/// staging bound.
fn stage_op(
    session: &mut Option<Session>,
    max_staged: usize,
    rel: &str,
    row: depkit_core::relation::Tuple,
    insert: bool,
) -> Json {
    let Some(s) = session.as_mut() else {
        return err("no active session (send begin first)".into());
    };
    if s.staged().len() >= max_staged {
        return err(format!(
            "staging limit reached ({max_staged} operations): commit or abort"
        ));
    }
    let result = if insert {
        s.stage_insert(rel, row)
    } else {
        s.stage_delete(rel, row)
    };
    match result {
        Ok(()) => obj(vec![
            ("ok", Json::Bool(true)),
            ("staged", Json::Num(s.staged().len() as i64)),
        ]),
        Err(e) => err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::dependency::Dependency;
    use depkit_core::schema::DatabaseSchema;

    fn catalog() -> CatalogState {
        let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
        let sigma: Vec<Dependency> = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
        CatalogState::new(&schema, &sigma).unwrap()
    }

    fn drive(cat: &CatalogState, lines: &[&str]) -> Vec<String> {
        let mut session = None;
        lines
            .iter()
            .map(|l| respond(cat, &mut session, l, 4).to_string())
            .collect()
    }

    #[test]
    fn the_smoke_transcript_insert_query_abort_commit() {
        let cat = catalog();
        let t = drive(
            &cat,
            &[
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}"#,
                r#"{"cmd":"query"}"#,
                r#"{"cmd":"abort"}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["math"]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}"#,
                r#"{"cmd":"commit"}"#,
                r#"{"cmd":"query"}"#,
            ],
        );
        assert_eq!(t[0], r#"{"ok":true,"generation":0}"#);
        assert_eq!(t[1], r#"{"ok":true,"staged":1}"#);
        assert!(
            t[2].contains(r#""count":1"#),
            "staged dangling row: {}",
            t[2]
        );
        assert!(t[2].contains("IND #0"), "names the violation: {}", t[2]);
        assert_eq!(t[3], r#"{"ok":true}"#);
        assert!(
            t[7].contains(r#""generation":1"#),
            "commit published: {}",
            t[7]
        );
        assert!(
            t[7].contains(r#""inserted":2"#),
            "both rows landed: {}",
            t[7]
        );
        assert!(
            t[8].contains(r#""count":0"#),
            "consistent after commit: {}",
            t[8]
        );
        // The abort left no trace: only the committed rows exist.
        assert_eq!(cat.total_rows(), 2);
    }

    #[test]
    fn health_reports_ratios_that_move_with_commits() {
        let cat = catalog();
        let t = drive(
            &cat,
            &[
                r#"{"cmd":"health"}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["math"]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["galois","duel"]}"#,
                r#"{"cmd":"health"}"#,
                r#"{"cmd":"commit"}"#,
                r#"{"cmd":"health"}"#,
            ],
        );
        // Empty catalog: vacuously 100% satisfied, nothing tracked.
        assert!(t[0].contains(r#""satisfied":"1.0000""#), "got: {}", t[0]);
        assert!(t[0].contains(r#""tracked":0"#), "got: {}", t[0]);
        // Mid-session health ignores staging: still the committed state.
        assert!(t[5].contains(r#""tracked":0"#), "got: {}", t[5]);
        // After commit: 2 left keys tracked, `duel` dangling → 50%.
        assert!(t[7].contains(r#""generation":1"#), "got: {}", t[7]);
        assert!(
            t[7].contains(r#""violating":1,"tracked":2,"satisfied":"0.5000""#),
            "got: {}",
            t[7]
        );
        assert!(t[7].contains("EMP[DEPT] <= DEPT[DNO]"), "got: {}", t[7]);
    }

    #[test]
    fn protocol_misuse_is_reported_not_fatal() {
        let cat = catalog();
        let t = drive(
            &cat,
            &[
                r#"{"cmd":"commit"}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["a","b"]}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"frobnicate"}"#,
                "not json",
                r#"{"cmd":"insert","rel":"GHOST","row":[1]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["a"]}"#,
                r#"{"cmd":"abort"}"#,
            ],
        );
        assert!(t[0].contains("no active session"));
        assert!(t[1].contains("no active session"));
        assert!(t[3].contains("already active"));
        assert!(t[4].contains("unknown cmd `frobnicate`"));
        assert!(t[5].contains("(in `not json`)"));
        assert!(t[6].contains("unknown relation"), "got: {}", t[6]);
        assert!(t[7].contains("arity"), "got: {}", t[7]);
        assert!(t[8].contains(r#""ok":true"#));
        assert_eq!(cat.generation(), 0, "nothing committed");
    }

    #[test]
    fn staging_is_bounded_for_backpressure() {
        let cat = catalog();
        let mut session = None;
        assert!(respond(&cat, &mut session, r#"{"cmd":"begin"}"#, 2)
            .to_string()
            .contains("true"));
        for i in 0..2 {
            let r = respond(
                &cat,
                &mut session,
                &format!(r#"{{"cmd":"insert","rel":"DEPT","row":["d{i}"]}}"#),
                2,
            );
            assert!(r.to_string().contains(r#""ok":true"#));
        }
        let over = respond(
            &cat,
            &mut session,
            r#"{"cmd":"insert","rel":"DEPT","row":["d9"]}"#,
            2,
        );
        assert!(over.to_string().contains("staging limit reached"));
        // The session is still usable: commit lands the two staged rows.
        let done = respond(&cat, &mut session, r#"{"cmd":"commit"}"#, 2);
        assert!(done.to_string().contains(r#""inserted":2"#));
    }
}
