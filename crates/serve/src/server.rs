//! The TCP session server: one thread per connection, one catalog for
//! everyone.
//!
//! Each accepted connection speaks the [protocol](crate::protocol) and
//! owns at most one live [`Session`] at a time; the shared
//! [`CatalogState`] serializes commits and keeps every session's pinned
//! snapshot readable. Backpressure and abuse resistance are structural:
//!
//! * the per-session staging buffer is bounded
//!   ([`ServeConfig::max_staged`] — a client that keeps staging past it
//!   gets errors until it commits or aborts);
//! * the accept loop refuses connections past
//!   [`ServeConfig::max_connections`] with a one-line error instead of
//!   queueing unboundedly;
//! * request lines are capped at [`ServeConfig::max_line_len`] bytes and
//!   reads at [`ServeConfig::read_timeout`], so one slow or malicious
//!   client can neither balloon a handler's memory nor wedge its thread
//!   — both get a JSON error line and a closed connection.
//!
//! ## Durability
//!
//! Started via [`Server::start_durable`] with a
//! [`Durability`] handle, the server becomes crash-safe: the catalog's
//! commit sink write-ahead-logs every effective commit *before* the
//! commit reply leaves the handler (ack implies durable), acknowledged
//! commits are counted toward the periodic checkpoint cadence, and
//! [`Server::stop`] drains with a final checkpoint. The `DEPKIT_CRASH`
//! environment hook ([`CrashPlan`]) can abort the process at
//! `before-ack` (and, inside the durability layer, `after-wal-write` /
//! `mid-checkpoint` / `after-checkpoint-rename`) — the lever the
//! crash-recovery harness pulls.

use crate::json::{obj, Json};
use crate::protocol::{parse_request, Request};
use depkit_core::delta::DeltaOutcome;
use depkit_core::value::Value;
use depkit_core::wal::{CrashPlan, CrashPoint};
use depkit_solver::incremental::{CatalogState, Durability, Session};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server limits. The defaults are deliberately generous: the catalog
/// itself is the scaling bottleneck, not the socket layer.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum concurrently served connections; further accepts are
    /// answered with an error line and closed.
    pub max_connections: usize,
    /// Maximum staged operations per session; staging past this returns
    /// errors until the client commits or aborts.
    pub max_staged: usize,
    /// Maximum bytes in one request line; a longer line gets a JSON
    /// error and a closed connection (the cap bounds per-connection
    /// buffering no matter what a client streams at us).
    pub max_line_len: usize,
    /// How long a handler thread waits for the next request line before
    /// giving up on the connection with a JSON error. `None` waits
    /// forever (trusted-network mode).
    pub read_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // Thread-per-connection: scale the cap with the machine, the
            // way `core::pool` sizes its workers, but allow deep
            // oversubscription — sessions are mostly idle between lines.
            max_connections: 64 * depkit_core::pool::default_threads().max(1),
            max_staged: 65_536,
            max_line_len: 1 << 20,
            read_timeout: Some(Duration::from_secs(120)),
        }
    }
}

/// What every connection handler shares: the catalog, the optional
/// durability handle (checkpoint cadence), and the crash-injection plan.
#[derive(Debug)]
struct ServerCtx {
    cat: CatalogState,
    durability: Option<Arc<Durability>>,
    crash: Arc<CrashPlan>,
}

/// A running server: the accept loop plus its shutdown switch.
///
/// # Examples
///
/// ```
/// use depkit_core::prelude::*;
/// use depkit_solver::incremental::CatalogState;
/// use depkit_serve::{Server, ServeConfig};
///
/// let schema = DatabaseSchema::parse(&["R(A)"]).unwrap();
/// let cat = CatalogState::new(&schema, &[]).unwrap();
/// let server = Server::start(cat, "127.0.0.1:0", ServeConfig::default()).unwrap();
/// let addr = server.local_addr();
/// // ... connect clients against `addr` ...
/// server.stop().unwrap();
/// ```
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    cat: CatalogState,
    durability: Option<Arc<Durability>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections against `cat` — in-memory only; use
    /// [`Server::start_durable`] for a crash-safe catalog.
    pub fn start(cat: CatalogState, addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        Server::start_durable(cat, addr, cfg, None)
    }

    /// [`Server::start`], wired to a [`Durability`] handle from
    /// `Durability::open`: acknowledged commits count toward the
    /// checkpoint cadence and [`Server::stop`] drains with a final
    /// checkpoint. The catalog must be the one `open` recovered (its
    /// commit sink is already appending to the write-ahead log).
    pub fn start_durable(
        cat: CatalogState,
        addr: &str,
        cfg: ServeConfig,
        durability: Option<Arc<Durability>>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let stop_flag = Arc::clone(&stop);
        let crash = match &durability {
            // Share the durability layer's plan so all points draw from
            // one occurrence counter world.
            Some(d) => Arc::clone(d.crash_plan()),
            None => Arc::new(CrashPlan::from_env().map_err(io::Error::other)?),
        };
        let ctx = Arc::new(ServerCtx {
            cat: cat.clone(),
            durability: durability.clone(),
            crash,
        });
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if active.fetch_add(1, Ordering::AcqRel) >= cfg.max_connections {
                    active.fetch_sub(1, Ordering::AcqRel);
                    let mut s = stream;
                    let _ = writeln!(
                        s,
                        "{}",
                        err(format!(
                            "server at capacity ({} connections)",
                            cfg.max_connections
                        ))
                    );
                    continue;
                }
                let ctx = Arc::clone(&ctx);
                let active = Arc::clone(&active);
                std::thread::spawn(move || {
                    let _ = serve_connection(&ctx, stream, cfg);
                    active.fetch_sub(1, Ordering::AcqRel);
                });
            }
        });
        Ok(Server {
            addr,
            stop,
            accept_thread,
            cat,
            durability,
        })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop, then — when the server
    /// is durable — drain with a final checkpoint so a clean shutdown
    /// restarts without WAL replay. Connections already being served run
    /// until their client hangs up; commits they land after the drain
    /// checkpoint are still in the write-ahead log.
    pub fn stop(self) -> io::Result<()> {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept_thread
            .join()
            .map_err(|_| io::Error::other("accept loop panicked"))?;
        if let Some(d) = &self.durability {
            d.checkpoint(&self.cat).map_err(io::Error::other)?;
        }
        Ok(())
    }
}

fn err(message: String) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message)),
    ])
}

/// One capped, timeout-aware line read.
enum LineRead {
    /// A complete line (newline stripped), within the cap.
    Line(String),
    /// The line exceeded the cap; the tail is unread.
    TooLong,
    /// The peer closed the connection.
    Eof,
    /// The read timeout elapsed before a full line arrived.
    TimedOut,
}

/// Read one `\n`-terminated line of at most `max` bytes, buffering only
/// up to the cap — the defense [`BufRead::read_line`] cannot provide,
/// since it buffers the whole line before the caller can measure it.
fn read_capped_line(r: &mut impl BufRead, max: usize, buf: &mut Vec<u8>) -> io::Result<LineRead> {
    buf.clear();
    loop {
        let available = match r.fill_buf() {
            Ok(b) => b,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(LineRead::TimedOut)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            if buf.is_empty() {
                return Ok(LineRead::Eof);
            }
            // A final unterminated line still gets served.
            return Ok(LineRead::Line(String::from_utf8_lossy(buf).into_owned()));
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if buf.len() + i > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&available[..i]);
                r.consume(i + 1);
                return Ok(LineRead::Line(String::from_utf8_lossy(buf).into_owned()));
            }
            None => {
                let n = available.len();
                if buf.len() + n > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(available);
                r.consume(n);
            }
        }
    }
}

/// Drive one connection: read request lines, write response lines, until
/// the client hangs up, sends an oversized line, or goes quiet past the
/// read timeout (the latter two get a JSON error, then the connection
/// closes). A dropped connection aborts any live session (its staging is
/// session-local, so nothing leaks).
fn serve_connection(ctx: &ServerCtx, stream: TcpStream, cfg: ServeConfig) -> io::Result<()> {
    stream.set_read_timeout(cfg.read_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut session: Option<Session> = None;
    let mut buf = Vec::new();
    loop {
        match read_capped_line(&mut reader, cfg.max_line_len, &mut buf)? {
            LineRead::Eof => break,
            LineRead::TimedOut => {
                let _ = writeln!(
                    writer,
                    "{}",
                    err(format!(
                        "read timed out after {:?}: closing connection",
                        cfg.read_timeout.unwrap_or_default()
                    ))
                );
                break;
            }
            LineRead::TooLong => {
                let _ = writeln!(
                    writer,
                    "{}",
                    err(format!(
                        "request line exceeds {} bytes: closing connection",
                        cfg.max_line_len
                    ))
                );
                // Discard (boundedly) the rest of the oversized line:
                // closing with unread bytes in the receive buffer makes
                // TCP reset the connection, destroying the queued error
                // reply before the client can read it.
                drain_line(&mut reader, cfg.max_line_len.saturating_mul(4).max(1 << 16));
                break;
            }
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = respond(ctx, &mut session, &line, cfg.max_staged);
                writeln!(writer, "{response}")?;
            }
        }
    }
    Ok(())
}

/// Discard input up to the next newline (or EOF/error), reading at most
/// `limit` bytes — enough to empty the receive buffer of a typical
/// oversized line without letting a hostile stream pin the thread.
fn drain_line(r: &mut impl BufRead, limit: usize) {
    let mut discarded = 0;
    while discarded < limit {
        let Ok(available) = r.fill_buf() else { return };
        if available.is_empty() {
            return;
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                r.consume(i + 1);
                return;
            }
            None => {
                let n = available.len();
                r.consume(n);
                discarded += n;
            }
        }
    }
}

fn value_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Num(*i),
        Value::Str(s) => Json::Str(s.to_string()),
        other => Json::Str(other.to_string()),
    }
}

/// Execute one request against the connection's session slot.
fn respond(ctx: &ServerCtx, session: &mut Option<Session>, line: &str, max_staged: usize) -> Json {
    let cat = &ctx.cat;
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return err(e),
    };
    match request {
        Request::Begin => {
            if session.is_some() {
                return err("a session is already active (commit or abort it first)".into());
            }
            let s = cat.begin();
            let gen = s.generation();
            *session = Some(s);
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(gen as i64)),
            ])
        }
        Request::Insert { rel, row } => stage_op(session, max_staged, &rel, row, true),
        Request::Delete { rel, row } => stage_op(session, max_staged, &rel, row, false),
        Request::Query => {
            let (gen, violations) = match session.as_ref() {
                Some(s) => (s.generation(), s.violations()),
                None => {
                    let snap = cat.snapshot();
                    (snap.generation(), snap.violations())
                }
            };
            let rendered: Vec<Json> = violations
                .iter()
                .map(|v| Json::Str(v.to_string()))
                .collect();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(gen as i64)),
                ("count", Json::Num(rendered.len() as i64)),
                ("violations", Json::Arr(rendered)),
            ])
        }
        Request::Health => {
            // Always a fresh snapshot, even mid-session: health is the
            // observer's view of committed state, so a client polling it
            // between its own commits watches ratios move as *other*
            // sessions land. Each commit maintained the counters in
            // O(delta); reading them here is O(Σ).
            let snap = cat.snapshot();
            let deps: Vec<Json> = snap
                .health()
                .iter()
                .map(|h| {
                    obj(vec![
                        ("dep", Json::Str(h.dep.to_string())),
                        ("violating", Json::Num(h.violating as i64)),
                        ("tracked", Json::Num(h.tracked as i64)),
                        // The wire format is integer-only; the ratio is
                        // rendered to four places for human eyes.
                        ("satisfied", Json::Str(format!("{:.4}", h.ratio()))),
                    ])
                })
                .collect();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(snap.generation() as i64)),
                ("deps", Json::Arr(deps)),
            ])
        }
        Request::Dump => {
            // The committed state only (never staging), every relation's
            // rows sorted — a canonical form two observers can compare
            // byte-for-byte, which is exactly what the crash-recovery
            // differential does across a restart.
            let snap = cat.snapshot();
            let db = snap.to_database();
            let rels: Vec<Json> = db
                .relations()
                .iter()
                .map(|rel| {
                    let mut rows: Vec<Json> = rel
                        .tuples()
                        .map(|t| Json::Arr(t.values().iter().map(value_json).collect()))
                        .collect();
                    rows.sort_by_key(Json::to_string);
                    obj(vec![
                        ("rel", Json::Str(rel.scheme().name().to_string())),
                        ("rows", Json::Arr(rows)),
                    ])
                })
                .collect();
            obj(vec![
                ("ok", Json::Bool(true)),
                ("generation", Json::Num(snap.generation() as i64)),
                ("rels", Json::Arr(rels)),
            ])
        }
        Request::Commit { tag } => {
            // A tagged retry may arrive on a *fresh* connection (the
            // client reconnected after a lost ack), so the dedup path
            // must work without a live session: open an empty one and
            // let the token table answer.
            let s = match session.take() {
                Some(s) => s,
                None => {
                    if tag.is_none() {
                        return err("no active session (send begin first)".into());
                    }
                    cat.begin()
                }
            };
            let tag_ref = tag.as_ref().map(|(c, t)| (c.as_str(), t.as_str()));
            match s.commit_tagged(tag_ref) {
                Ok(out) => {
                    if !out.replayed && out.applied != DeltaOutcome::default() {
                        if let Some(d) = &ctx.durability {
                            // The commit itself is already durable (the
                            // sink logged it inside the write lock); a
                            // failed *checkpoint* must not turn a durable
                            // commit into a client-visible error.
                            if let Err(e) = d.note_commit(cat) {
                                eprintln!("depkit serve: checkpoint failed: {e}");
                            }
                        }
                    }
                    // The commit is applied and logged; the ack is not
                    // yet on the wire — the lost-ack crash window.
                    ctx.crash.fire(CrashPoint::BeforeAck);
                    obj(vec![
                        ("ok", Json::Bool(true)),
                        ("generation", Json::Num(out.generation as i64)),
                        ("inserted", Json::Num(out.applied.inserted as i64)),
                        ("deleted", Json::Num(out.applied.deleted as i64)),
                        ("replayed", Json::Bool(out.replayed)),
                    ])
                }
                Err(e) => err(e.to_string()),
            }
        }
        Request::Abort => {
            let Some(s) = session.take() else {
                return err("no active session (send begin first)".into());
            };
            s.abort();
            obj(vec![("ok", Json::Bool(true))])
        }
    }
}

/// Stage one operation into the connection's live session, enforcing the
/// staging bound.
fn stage_op(
    session: &mut Option<Session>,
    max_staged: usize,
    rel: &str,
    row: depkit_core::relation::Tuple,
    insert: bool,
) -> Json {
    let Some(s) = session.as_mut() else {
        return err("no active session (send begin first)".into());
    };
    if s.staged().len() >= max_staged {
        return err(format!(
            "staging limit reached ({max_staged} operations): commit or abort"
        ));
    }
    let result = if insert {
        s.stage_insert(rel, row)
    } else {
        s.stage_delete(rel, row)
    };
    match result {
        Ok(()) => obj(vec![
            ("ok", Json::Bool(true)),
            ("staged", Json::Num(s.staged().len() as i64)),
        ]),
        Err(e) => err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::dependency::Dependency;
    use depkit_core::schema::DatabaseSchema;

    fn catalog() -> CatalogState {
        let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "DEPT(DNO)"]).unwrap();
        let sigma: Vec<Dependency> = vec!["EMP[DEPT] <= DEPT[DNO]".parse().unwrap()];
        CatalogState::new(&schema, &sigma).unwrap()
    }

    fn test_ctx(cat: &CatalogState) -> ServerCtx {
        ServerCtx {
            cat: cat.clone(),
            durability: None,
            crash: Arc::new(CrashPlan::none()),
        }
    }

    fn drive(cat: &CatalogState, lines: &[&str]) -> Vec<String> {
        let ctx = test_ctx(cat);
        let mut session = None;
        lines
            .iter()
            .map(|l| respond(&ctx, &mut session, l, 4).to_string())
            .collect()
    }

    #[test]
    fn the_smoke_transcript_insert_query_abort_commit() {
        let cat = catalog();
        let t = drive(
            &cat,
            &[
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}"#,
                r#"{"cmd":"query"}"#,
                r#"{"cmd":"abort"}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["math"]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}"#,
                r#"{"cmd":"commit"}"#,
                r#"{"cmd":"query"}"#,
            ],
        );
        assert_eq!(t[0], r#"{"ok":true,"generation":0}"#);
        assert_eq!(t[1], r#"{"ok":true,"staged":1}"#);
        assert!(
            t[2].contains(r#""count":1"#),
            "staged dangling row: {}",
            t[2]
        );
        assert!(t[2].contains("IND #0"), "names the violation: {}", t[2]);
        assert_eq!(t[3], r#"{"ok":true}"#);
        assert!(
            t[7].contains(r#""generation":1"#),
            "commit published: {}",
            t[7]
        );
        assert!(
            t[7].contains(r#""inserted":2"#),
            "both rows landed: {}",
            t[7]
        );
        assert!(
            t[8].contains(r#""count":0"#),
            "consistent after commit: {}",
            t[8]
        );
        // The abort left no trace: only the committed rows exist.
        assert_eq!(cat.total_rows(), 2);
    }

    #[test]
    fn health_reports_ratios_that_move_with_commits() {
        let cat = catalog();
        let t = drive(
            &cat,
            &[
                r#"{"cmd":"health"}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["math"]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["galois","duel"]}"#,
                r#"{"cmd":"health"}"#,
                r#"{"cmd":"commit"}"#,
                r#"{"cmd":"health"}"#,
            ],
        );
        // Empty catalog: vacuously 100% satisfied, nothing tracked.
        assert!(t[0].contains(r#""satisfied":"1.0000""#), "got: {}", t[0]);
        assert!(t[0].contains(r#""tracked":0"#), "got: {}", t[0]);
        // Mid-session health ignores staging: still the committed state.
        assert!(t[5].contains(r#""tracked":0"#), "got: {}", t[5]);
        // After commit: 2 left keys tracked, `duel` dangling → 50%.
        assert!(t[7].contains(r#""generation":1"#), "got: {}", t[7]);
        assert!(
            t[7].contains(r#""violating":1,"tracked":2,"satisfied":"0.5000""#),
            "got: {}",
            t[7]
        );
        assert!(t[7].contains("EMP[DEPT] <= DEPT[DNO]"), "got: {}", t[7]);
    }

    #[test]
    fn protocol_misuse_is_reported_not_fatal() {
        let cat = catalog();
        let t = drive(
            &cat,
            &[
                r#"{"cmd":"commit"}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["a","b"]}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"frobnicate"}"#,
                "not json",
                r#"{"cmd":"insert","rel":"GHOST","row":[1]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["a"]}"#,
                r#"{"cmd":"abort"}"#,
            ],
        );
        assert!(t[0].contains("no active session"));
        assert!(t[1].contains("no active session"));
        assert!(t[3].contains("already active"));
        assert!(t[4].contains("unknown cmd `frobnicate`"));
        assert!(t[5].contains("(in `not json`)"));
        assert!(t[6].contains("unknown relation"), "got: {}", t[6]);
        assert!(t[7].contains("arity"), "got: {}", t[7]);
        assert!(t[8].contains(r#""ok":true"#));
        assert_eq!(cat.generation(), 0, "nothing committed");
    }

    #[test]
    fn staging_is_bounded_for_backpressure() {
        let cat = catalog();
        let ctx = test_ctx(&cat);
        let mut session = None;
        assert!(respond(&ctx, &mut session, r#"{"cmd":"begin"}"#, 2)
            .to_string()
            .contains("true"));
        for i in 0..2 {
            let r = respond(
                &ctx,
                &mut session,
                &format!(r#"{{"cmd":"insert","rel":"DEPT","row":["d{i}"]}}"#),
                2,
            );
            assert!(r.to_string().contains(r#""ok":true"#));
        }
        let over = respond(
            &ctx,
            &mut session,
            r#"{"cmd":"insert","rel":"DEPT","row":["d9"]}"#,
            2,
        );
        assert!(over.to_string().contains("staging limit reached"));
        // The session is still usable: commit lands the two staged rows.
        let done = respond(&ctx, &mut session, r#"{"cmd":"commit"}"#, 2);
        assert!(done.to_string().contains(r#""inserted":2"#));
    }

    #[test]
    fn tagged_commits_deduplicate_and_work_sessionless() {
        let cat = catalog();
        let t = drive(
            &cat,
            &[
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["math"]}"#,
                r#"{"cmd":"commit","client":"c1","token":"t1"}"#,
                // The retry: same tag, fresh staging of the same delta —
                // and, as after a reconnect, *no* begin first.
                r#"{"cmd":"commit","client":"c1","token":"t1"}"#,
                // A new token applies normally again.
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["phys"]}"#,
                r#"{"cmd":"commit","client":"c1","token":"t2"}"#,
            ],
        );
        assert!(
            t[2].contains(r#""generation":1,"inserted":1,"deleted":0,"replayed":false"#),
            "got: {}",
            t[2]
        );
        assert!(
            t[3].contains(r#""generation":1,"inserted":1,"deleted":0,"replayed":true"#),
            "retry returns the original ack: {}",
            t[3]
        );
        assert!(t[6].contains(r#""generation":2"#), "got: {}", t[6]);
        assert_eq!(cat.total_rows(), 2, "no double-apply");
    }

    #[test]
    fn dump_renders_sorted_committed_state() {
        let cat = catalog();
        let t = drive(
            &cat,
            &[
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["math"]}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["art"]}"#,
                r#"{"cmd":"insert","rel":"EMP","row":["hilbert","math"]}"#,
                r#"{"cmd":"commit"}"#,
                r#"{"cmd":"begin"}"#,
                r#"{"cmd":"insert","rel":"DEPT","row":["uncommitted"]}"#,
                r#"{"cmd":"dump"}"#,
            ],
        );
        // Dump shows committed state only, rows sorted within relations.
        assert_eq!(
            t[7],
            r#"{"ok":true,"generation":1,"rels":[{"rel":"EMP","rows":[["hilbert","math"]]},{"rel":"DEPT","rows":[["art"],["math"]]}]}"#,
            "got: {}",
            t[7]
        );
    }

    #[test]
    fn oversized_request_lines_get_an_error_and_a_closed_connection() {
        let cat = catalog();
        let cfg = ServeConfig {
            max_line_len: 64,
            ..ServeConfig::default()
        };
        let server = Server::start(cat, "127.0.0.1:0", cfg).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // A short line works...
        writeln!(writer, r#"{{"cmd":"health"}}"#).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "got: {line}");
        // ...then a monster line draws the cap error and a close.
        let huge = format!(
            r#"{{"cmd":"insert","rel":"DEPT","row":["{}"]}}"#,
            "x".repeat(500)
        );
        writeln!(writer, "{huge}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("exceeds 64 bytes"), "names the cap: {line}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");
        server.stop().unwrap();
    }

    #[test]
    fn quiet_connections_time_out_with_an_error() {
        let cat = catalog();
        let cfg = ServeConfig {
            read_timeout: Some(Duration::from_millis(60)),
            ..ServeConfig::default()
        };
        let server = Server::start(cat, "127.0.0.1:0", cfg).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // Send nothing; the handler should give up on us.
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("read timed out"), "got: {line}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");
        server.stop().unwrap();
    }
}
