//! Cross-process sharded discovery: a coordinator that hands shard plans
//! to worker processes over the line-JSON framing, and the worker loop
//! that executes them.
//!
//! The shard plan has two task shapes, mirroring the two data-parallel
//! stages of [`discover_store_sharded`]:
//!
//! * **Profile** tasks — one per global column: the worker publishes the
//!   column's sorted distinct ids as checksummed runs plus a
//!   `depkit-runs v2` manifest into the coordinator's session directory
//!   ([`depkit_solver::discover::profile_column_runs`]), every file
//!   landing by atomic rename so a killed worker never leaves a partial
//!   run under a published name.
//! * **Refute** tasks — one per FNV key-range pass of the n-ary IND
//!   validation: the worker reports which candidates fail on its key
//!   shard ([`depkit_solver::discover::refute_candidates_pass`]); the
//!   coordinator unions refutations across passes, which equals the
//!   unsharded verdict because every projection key belongs to exactly
//!   one pass.
//! * **Count** tasks — the approximate pipeline's quantitative form of a
//!   refute pass: the worker reports per-candidate *miss counts* on its
//!   key shard
//!   ([`depkit_solver::discover::count_candidate_misses_pass`]); the
//!   coordinator **sums** counts across passes, which equals the
//!   unsharded scan for the same exactly-one-pass-per-key reason — so the
//!   confidences a sharded run reports are identical to every in-process
//!   mode.
//!
//! **Commit / retry protocol.** Workers poll (`hello` → `next` → work →
//! `done`/`failed`), heartbeating while a task runs. Every assignment
//! carries an *attempt token*; the coordinator accepts the first `done`
//! for the current token and counts anything else as stale — a stalled
//! worker whose shard was reassigned can finish and report without its
//! output ever being merged twice. Profile results are verified
//! ([`depkit_core::spill::load_verified_run_set`]: existence, size,
//! FNV-1a64 checksum) *before* acceptance; a torn or corrupted run
//! rejects the completion and requeues the shard. Failures — explicit
//! `failed`, a dropped connection, a heartbeat timeout, a checksum
//! reject — requeue with a bounded attempt budget; exhausting it fails
//! the run with a diagnostic instead of hanging.
//!
//! Both sides recompute the shard plan's frame of reference from the
//! schema alone ([`column_table`] for global column ids,
//! [`ColumnStore::new`]'s row-major interning for the value-id space), so
//! the protocol ships *plans*, never data — worker-published runs merge
//! directly into the coordinator's pipeline.
//!
//! **Fault injection.** [`FaultPlan`] deterministically kills, stalls, or
//! corrupts a chosen worker at a chosen shard and attempt — programmatic
//! for in-process tests, `DEPKIT_FAULT` in the environment for process
//! workers (`depkit shard-worker` reads it at startup). Faults fire on
//! attempt 0 by default, so every scenario converges to the identical
//! cover through the retry path. The hook exists for tests; production
//! runs simply leave the plan empty.

use crate::json::{obj, parse, Json};
use depkit_core::column::ColumnStore;
use depkit_core::schema::DatabaseSchema;
use depkit_core::spill::{load_verified_run_set, RunSet, SpillDir};
use depkit_solver::discover::{
    column_table, count_candidate_misses_pass, discover_store_sharded, profile_column_runs,
    refute_candidates_pass, Discovery, DiscoveryConfig, IndCand, ShardExecutor,
};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Coordinator tunables. The defaults suit tests and CI; the CLI scales
/// `refute_passes` with the worker count.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Ids per published run within one profile shard (chunking of
    /// [`depkit_core::spill::publish_sorted_runs`]). Part of the shard
    /// plan, so every attempt of a shard writes identical files.
    pub chunk_ids: usize,
    /// Key-range passes for n-ary refutation; `0` means one pass per
    /// expected worker is chosen by the caller. Verdicts are
    /// pass-count-independent; only the work split changes.
    pub refute_passes: usize,
    /// How often a busy worker heartbeats.
    pub heartbeat_interval: Duration,
    /// Silence after which the coordinator reassigns a running shard.
    pub heartbeat_timeout: Duration,
    /// Attempts per shard (first run + retries) before the whole
    /// discovery fails with a diagnostic.
    pub max_attempts: u32,
    /// Global progress deadline: if no assignment, heartbeat, or
    /// completion happens for this long (e.g. no worker ever connects),
    /// the run fails instead of hanging.
    pub progress_timeout: Duration,
    /// Root under which the session directory is created; `None` uses the
    /// system temp directory.
    pub shard_root: Option<PathBuf>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            chunk_ids: 1 << 16,
            refute_passes: 0,
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_secs(2),
            max_attempts: 4,
            progress_timeout: Duration::from_secs(30),
            shard_root: None,
        }
    }
}

/// Coordinator-side counters for one sharded run — the observable record
/// of the retry path, which the fault-injection tests assert against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard tasks planned (profile + refute).
    pub shards: usize,
    /// Task assignments handed to workers (≥ `shards` when retries ran).
    pub assigned: usize,
    /// Accepted completions (== `shards` on success).
    pub completed: usize,
    /// Failure-driven requeues: explicit `failed`, dropped connections,
    /// checksum rejects.
    pub retried: usize,
    /// Heartbeat-timeout reassignments.
    pub reassigned: usize,
    /// Profile completions rejected by run verification.
    pub checksum_rejected: usize,
    /// Completions or failures ignored because their attempt token was
    /// superseded.
    pub stale_results: usize,
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What an injected fault does to the worker that draws the targeted
/// shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies on assignment: drops its connection and exits
    /// without reporting. Recovery path: disconnect/heartbeat requeue.
    Kill,
    /// The worker goes silent (no heartbeats) for the given duration,
    /// then completes normally. Recovery path: timeout reassignment plus
    /// stale-result rejection of the latecomer.
    Stall(Duration),
    /// The worker completes a profile shard, then flips one byte of its
    /// first published run before reporting. Recovery path: verification
    /// reject and requeue. Ignored on refute shards (nothing on disk to
    /// corrupt).
    Corrupt,
}

/// Which shard a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A column-profiling shard; the index is the global column id.
    Profile,
    /// An n-ary refutation pass; the index is the pass number.
    Refute,
    /// An n-ary miss-counting pass (approximate discovery); the index is
    /// the pass number.
    Count,
}

/// One deterministic fault: fires when a worker is assigned the matching
/// task at the matching attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// Task shape targeted.
    pub task: TaskKind,
    /// Column id (profile) or pass number (refute).
    pub index: usize,
    /// Attempt the fault fires on (0 = first try, so the retry is clean).
    pub attempt: u32,
}

/// A set of injected faults, empty in production.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The faults, in no particular order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parse a plan from the `DEPKIT_FAULT` syntax:
    /// `<kind>:<task>:<index>[:<stall ms>]`, `;`-separated. Examples:
    /// `kill:profile:0`, `stall:profile:2:3000`, `corrupt:profile:1`,
    /// `kill:refute:0`, `kill:count:1`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let parts: Vec<&str> = entry.trim().split(':').collect();
            if parts.len() < 3 {
                return Err(format!("bad fault `{entry}`: want kind:task:index[:ms]"));
            }
            let task = match parts[1] {
                "profile" => TaskKind::Profile,
                "refute" => TaskKind::Refute,
                "count" => TaskKind::Count,
                other => return Err(format!("bad fault task `{other}`")),
            };
            let index: usize = parts[2]
                .parse()
                .map_err(|_| format!("bad fault index `{}`", parts[2]))?;
            let kind = match parts[0] {
                "kill" => FaultKind::Kill,
                "corrupt" => FaultKind::Corrupt,
                "stall" => {
                    let ms: u64 = match parts.get(3) {
                        Some(ms) => ms.parse().map_err(|_| format!("bad stall ms `{ms}`"))?,
                        None => 3000,
                    };
                    FaultKind::Stall(Duration::from_millis(ms))
                }
                other => return Err(format!("bad fault kind `{other}`")),
            };
            faults.push(Fault {
                kind,
                task,
                index,
                attempt: 0,
            });
        }
        Ok(FaultPlan { faults })
    }

    /// The plan in `DEPKIT_FAULT`, or the empty plan when unset.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("DEPKIT_FAULT") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::none()),
        }
    }

    /// The fault (if any) firing for this assignment.
    fn matching(&self, task: TaskKind, index: usize, attempt: u32) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.task == task && f.index == index && f.attempt == attempt)
            .map(|f| f.kind)
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// One shard of the plan.
#[derive(Debug, Clone)]
enum TaskSpec {
    Profile {
        col: usize,
    },
    Refute {
        pass: usize,
        passes: usize,
        cands: Arc<Vec<IndCand>>,
    },
    Count {
        pass: usize,
        passes: usize,
        cands: Arc<Vec<IndCand>>,
    },
}

/// What an accepted completion contributed.
#[derive(Debug)]
enum TaskResult {
    Runs(RunSet),
    Refuted(Vec<usize>),
    Misses(Vec<u64>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskStatus {
    Queued,
    Running { attempt: u32, worker: i64 },
    Done,
}

#[derive(Debug)]
struct TaskState {
    spec: TaskSpec,
    attempt: u32,
    status: TaskStatus,
    last_beat: Instant,
    result: Option<TaskResult>,
}

#[derive(Debug)]
struct Phase {
    tasks: Vec<TaskState>,
    queue: VecDeque<usize>,
    remaining: usize,
    error: Option<String>,
}

#[derive(Debug)]
struct CoordState {
    phase: Option<Phase>,
    next_worker: i64,
    stats: ShardStats,
    shutdown: bool,
    /// Last assignment/heartbeat/completion — the progress deadline base.
    touched: Instant,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<CoordState>,
    cv: Condvar,
    session_dir: PathBuf,
    cfg: ShardConfig,
}

/// The sharded-discovery coordinator: owns the listener, the session
/// directory (removed on drop), and the shard-plan state machine.
///
/// Workers connect on their own schedule — spawn processes running
/// [`run_worker`] (or `depkit shard-worker`) against
/// [`Coordinator::local_addr`], then call [`Coordinator::run`].
#[derive(Debug)]
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    session: SpillDir,
}

impl Coordinator {
    /// Bind `addr` (use `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting workers.
    pub fn bind(addr: &str, cfg: ShardConfig) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let root = cfg.shard_root.clone().unwrap_or_else(std::env::temp_dir);
        let session = SpillDir::create_in(&root)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(CoordState {
                phase: None,
                next_worker: 0,
                stats: ShardStats::default(),
                shutdown: false,
                touched: Instant::now(),
            }),
            cv: Condvar::new(),
            session_dir: session.path().to_path_buf(),
            cfg,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.state.lock().unwrap().shutdown {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    let _ = serve_worker(&conn_shared, stream);
                });
            }
        });
        Ok(Coordinator {
            shared,
            addr,
            accept: Some(accept),
            session,
        })
    }

    /// The bound address workers should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session directory workers publish runs into.
    pub fn session_dir(&self) -> &Path {
        self.session.path()
    }

    /// A snapshot of the coordinator counters.
    pub fn stats(&self) -> ShardStats {
        self.shared.state.lock().unwrap().stats
    }

    /// Drive one sharded discovery over the connected (and
    /// still-connecting) workers, then tell workers to shut down. The
    /// result is byte-identical to [`discover_store`] on the same inputs;
    /// the returned [`ShardStats`] record how the run executed.
    ///
    /// [`discover_store`]: depkit_solver::discover::discover_store
    pub fn run(
        &self,
        schema: &DatabaseSchema,
        store: &ColumnStore,
        config: &DiscoveryConfig,
        expected_workers: usize,
    ) -> io::Result<(Discovery, ShardStats)> {
        let mut exec = CoordExec {
            coord: self,
            expected_workers,
        };
        let result = discover_store_sharded(schema, store, config, &mut exec);
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        let stats = self.stats();
        Ok((result?, stats))
    }

    /// Stop accepting and join the accept loop. Workers polling `next`
    /// have been told to shut down by [`Coordinator::run`]; call this
    /// after joining or waiting them.
    pub fn shutdown(mut self) -> io::Result<()> {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        match self.accept.take() {
            Some(h) => h
                .join()
                .map_err(|_| io::Error::other("shard accept loop panicked")),
            None => Ok(()),
        }
    }

    /// Install a phase, wait for workers to drain it, collect results in
    /// task order.
    fn run_phase(&self, specs: Vec<TaskSpec>) -> io::Result<Vec<TaskResult>> {
        let n = specs.len();
        {
            let mut st = self.shared.state.lock().unwrap();
            st.stats.shards += n;
            st.touched = Instant::now();
            st.phase = Some(Phase {
                tasks: specs
                    .into_iter()
                    .map(|spec| TaskState {
                        spec,
                        attempt: 0,
                        status: TaskStatus::Queued,
                        last_beat: Instant::now(),
                        result: None,
                    })
                    .collect(),
                queue: (0..n).collect(),
                remaining: n,
                error: None,
            });
        }
        self.shared.cv.notify_all();
        loop {
            let mut st = self.shared.state.lock().unwrap();
            let cfg = &self.shared.cfg;
            let now = Instant::now();
            let touched = st.touched;
            let CoordState { phase, stats, .. } = &mut *st;
            let phase = phase.as_mut().expect("phase installed above");
            // Reassign shards whose worker went silent.
            for t in 0..phase.tasks.len() {
                if let TaskStatus::Running { .. } = phase.tasks[t].status {
                    if now.duration_since(phase.tasks[t].last_beat) > cfg.heartbeat_timeout {
                        stats.reassigned += 1;
                        requeue(phase, t, cfg.max_attempts, "heartbeat timeout");
                    }
                }
            }
            if phase.error.is_none()
                && phase.remaining > 0
                && now.duration_since(touched) > cfg.progress_timeout
            {
                phase.error = Some(format!(
                    "no shard progress for {:?} ({} of {} shards outstanding) — are workers running?",
                    cfg.progress_timeout, phase.remaining, phase.tasks.len()
                ));
            }
            if let Some(e) = phase.error.clone() {
                st.phase = None;
                return Err(io::Error::other(e));
            }
            if phase.remaining == 0 {
                let phase = st.phase.take().expect("phase present");
                return Ok(phase
                    .tasks
                    .into_iter()
                    .map(|t| t.result.expect("completed task has a result"))
                    .collect());
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(st, Duration::from_millis(20))
                .unwrap();
            drop(guard);
        }
    }
}

/// Requeue task `t` for another attempt, or fail the phase when its
/// attempt budget is spent.
fn requeue(phase: &mut Phase, t: usize, max_attempts: u32, cause: &str) {
    let task = &mut phase.tasks[t];
    task.attempt += 1;
    if task.attempt >= max_attempts {
        phase.error = Some(format!(
            "shard {t} failed after {} attempts (last cause: {cause})",
            task.attempt
        ));
    } else {
        task.status = TaskStatus::Queued;
        task.last_beat = Instant::now();
        phase.queue.push_back(t);
    }
}

/// The [`ShardExecutor`] the coordinator hands to the solver pipeline.
struct CoordExec<'a> {
    coord: &'a Coordinator,
    expected_workers: usize,
}

impl ShardExecutor for CoordExec<'_> {
    fn profile_columns(&mut self, ncols: usize) -> io::Result<Vec<RunSet>> {
        let specs = (0..ncols).map(|col| TaskSpec::Profile { col }).collect();
        let results = self.coord.run_phase(specs)?;
        Ok(results
            .into_iter()
            .map(|r| match r {
                TaskResult::Runs(set) => set,
                _ => unreachable!("profile phase yields runs"),
            })
            .collect())
    }

    fn validate_candidates(&mut self, cands: &[IndCand]) -> io::Result<Vec<bool>> {
        if cands.is_empty() {
            return Ok(Vec::new());
        }
        let passes = match self.coord.shared.cfg.refute_passes {
            0 => self.expected_workers.max(1),
            p => p,
        };
        let shared_cands = Arc::new(cands.to_vec());
        let specs = (0..passes)
            .map(|pass| TaskSpec::Refute {
                pass,
                passes,
                cands: Arc::clone(&shared_cands),
            })
            .collect();
        let results = self.coord.run_phase(specs)?;
        let mut ok = vec![true; cands.len()];
        for r in results {
            match r {
                TaskResult::Refuted(indices) => {
                    for i in indices {
                        if i < ok.len() {
                            ok[i] = false;
                        }
                    }
                }
                _ => unreachable!("refute phase yields refutations"),
            }
        }
        Ok(ok)
    }

    fn count_misses(&mut self, cands: &[IndCand]) -> io::Result<Vec<u64>> {
        if cands.is_empty() {
            return Ok(Vec::new());
        }
        let passes = match self.coord.shared.cfg.refute_passes {
            0 => self.expected_workers.max(1),
            p => p,
        };
        let shared_cands = Arc::new(cands.to_vec());
        let specs = (0..passes)
            .map(|pass| TaskSpec::Count {
                pass,
                passes,
                cands: Arc::clone(&shared_cands),
            })
            .collect();
        let results = self.coord.run_phase(specs)?;
        // Sum element-wise: every projection key is counted by exactly
        // one pass, so the pass sums equal the unsharded miss counts.
        let mut misses = vec![0u64; cands.len()];
        for r in results {
            match r {
                TaskResult::Misses(counts) => {
                    for (sum, m) in misses.iter_mut().zip(counts) {
                        *sum += m;
                    }
                }
                _ => unreachable!("count phase yields miss counts"),
            }
        }
        Ok(misses)
    }
}

// ---------------------------------------------------------------------------
// Coordinator-side connection handling
// ---------------------------------------------------------------------------

fn jbool(v: Option<&Json>) -> bool {
    matches!(v, Some(Json::Bool(true)))
}

fn jerr(message: String) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message)),
    ])
}

/// Drive one worker connection. `running` tracks the assignment this
/// connection holds, so a dropped connection requeues its shard
/// immediately instead of waiting out the heartbeat timeout.
fn serve_worker(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    // The protocol is lockstep request/response with tiny frames; Nagle
    // batching only adds delayed-ACK latency (~40ms per exchange).
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut running: Option<(usize, u32)> = None;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse(&line) {
            Ok(req) => respond(shared, &mut running, &req),
            Err(e) => jerr(format!("{e} (in `{line}`)")),
        };
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
    if let Some((t, attempt)) = running {
        let mut st = shared.state.lock().unwrap();
        let CoordState { phase, stats, .. } = &mut *st;
        if let Some(phase) = phase.as_mut() {
            if t < phase.tasks.len()
                && matches!(phase.tasks[t].status, TaskStatus::Running { attempt: a, .. } if a == attempt)
            {
                stats.retried += 1;
                requeue(phase, t, shared.cfg.max_attempts, "worker disconnected");
                shared.cv.notify_all();
            }
        }
    }
    Ok(())
}

/// Execute one worker request.
fn respond(shared: &Shared, running: &mut Option<(usize, u32)>, req: &Json) -> Json {
    match req.get("cmd").and_then(Json::as_str) {
        Some("hello") => {
            let mut st = shared.state.lock().unwrap();
            let id = st.next_worker;
            st.next_worker += 1;
            obj(vec![("ok", Json::Bool(true)), ("worker", Json::Num(id))])
        }
        Some("next") => next_task(shared, running, req),
        Some("beat") => {
            let (Some(t), Some(attempt)) = (
                req.get("id").and_then(Json::as_i64),
                req.get("attempt").and_then(Json::as_i64),
            ) else {
                return jerr("beat needs id and attempt".into());
            };
            let mut st = shared.state.lock().unwrap();
            st.touched = Instant::now();
            let active = st.phase.as_mut().is_some_and(|phase| {
                let t = t as usize;
                t < phase.tasks.len()
                    && matches!(
                        phase.tasks[t].status,
                        TaskStatus::Running { attempt: a, .. } if i64::from(a) == attempt
                    )
                    && {
                        phase.tasks[t].last_beat = Instant::now();
                        true
                    }
            });
            obj(vec![
                ("ok", Json::Bool(true)),
                ("active", Json::Bool(active)),
            ])
        }
        Some("done") => task_done(shared, running, req),
        Some("failed") => {
            let (Some(t), Some(attempt)) = (
                req.get("id").and_then(Json::as_i64),
                req.get("attempt").and_then(Json::as_i64),
            ) else {
                return jerr("failed needs id and attempt".into());
            };
            let cause = req
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("worker reported failure");
            *running = None;
            let mut st = shared.state.lock().unwrap();
            let CoordState { phase, stats, .. } = &mut *st;
            if let Some(phase) = phase.as_mut() {
                let t = t as usize;
                if t < phase.tasks.len()
                    && matches!(
                        phase.tasks[t].status,
                        TaskStatus::Running { attempt: a, .. } if i64::from(a) == attempt
                    )
                {
                    stats.retried += 1;
                    requeue(phase, t, shared.cfg.max_attempts, cause);
                } else {
                    stats.stale_results += 1;
                }
            }
            shared.cv.notify_all();
            obj(vec![("ok", Json::Bool(true))])
        }
        Some(other) => jerr(format!("unknown cmd `{other}`")),
        None => jerr("request has no cmd".into()),
    }
}

/// Assign the next queued shard to the polling worker.
fn next_task(shared: &Shared, running: &mut Option<(usize, u32)>, req: &Json) -> Json {
    let worker = req.get("worker").and_then(Json::as_i64).unwrap_or(-1);
    let mut st = shared.state.lock().unwrap();
    if st.shutdown {
        return obj(vec![
            ("ok", Json::Bool(true)),
            ("shutdown", Json::Bool(true)),
        ]);
    }
    st.touched = Instant::now();
    let Some(phase) = st.phase.as_mut() else {
        return obj(vec![("ok", Json::Bool(true)), ("wait", Json::Bool(true))]);
    };
    let Some(t) = phase.queue.pop_front() else {
        return obj(vec![("ok", Json::Bool(true)), ("wait", Json::Bool(true))]);
    };
    let attempt = phase.tasks[t].attempt;
    phase.tasks[t].status = TaskStatus::Running { attempt, worker };
    phase.tasks[t].last_beat = Instant::now();
    let spec = phase.tasks[t].spec.clone();
    st.stats.assigned += 1;
    *running = Some((t, attempt));
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Num(t as i64)),
        ("attempt", Json::Num(i64::from(attempt))),
    ];
    fields.push((
        "beat_ms",
        Json::Num(shared.cfg.heartbeat_interval.as_millis() as i64),
    ));
    match spec {
        TaskSpec::Profile { col } => {
            let dir = shared.session_dir.to_str().unwrap_or_default().to_owned();
            fields.push(("task", Json::Str("profile".into())));
            fields.push(("col", Json::Num(col as i64)));
            fields.push(("dir", Json::Str(dir)));
            fields.push(("chunk", Json::Num(shared.cfg.chunk_ids as i64)));
        }
        TaskSpec::Refute {
            pass,
            passes,
            cands,
        } => {
            fields.push(("task", Json::Str("refute".into())));
            fields.push(("pass", Json::Num(pass as i64)));
            fields.push(("passes", Json::Num(passes as i64)));
            fields.push(("cands", Json::Arr(cands.iter().map(cand_to_json).collect())));
        }
        TaskSpec::Count {
            pass,
            passes,
            cands,
        } => {
            fields.push(("task", Json::Str("count".into())));
            fields.push(("pass", Json::Num(pass as i64)));
            fields.push(("passes", Json::Num(passes as i64)));
            fields.push(("cands", Json::Arr(cands.iter().map(cand_to_json).collect())));
        }
    }
    obj(fields)
}

/// Accept (or reject) one completion. Profile results are verified
/// against their manifest *outside* the state lock — reading runs back is
/// I/O — with the attempt token re-checked after verification, so a
/// reassignment racing the verify still wins.
fn task_done(shared: &Shared, running: &mut Option<(usize, u32)>, req: &Json) -> Json {
    let (Some(t), Some(attempt)) = (
        req.get("id").and_then(Json::as_i64),
        req.get("attempt").and_then(Json::as_i64),
    ) else {
        return jerr("done needs id and attempt".into());
    };
    let t = t as usize;
    *running = None;
    let accepted = |accepted: bool| {
        obj(vec![
            ("ok", Json::Bool(true)),
            ("accepted", Json::Bool(accepted)),
        ])
    };
    let is_current = |phase: &Phase| {
        t < phase.tasks.len()
            && matches!(
                phase.tasks[t].status,
                TaskStatus::Running { attempt: a, .. } if i64::from(a) == attempt
            )
    };
    // Peek at the spec under the lock to decide the acceptance path.
    let verify: Option<PathBuf> = {
        let mut st = shared.state.lock().unwrap();
        st.touched = Instant::now();
        let CoordState { phase, stats, .. } = &mut *st;
        let Some(phase) = phase.as_mut() else {
            stats.stale_results += 1;
            return accepted(false);
        };
        if !is_current(phase) {
            stats.stale_results += 1;
            return accepted(false);
        }
        match &phase.tasks[t].spec {
            TaskSpec::Profile { col } => {
                Some(shared.session_dir.join(format!("col{col}.manifest")))
            }
            TaskSpec::Refute { cands, .. } => {
                let Some(indices) = req.get("refuted").and_then(Json::as_arr) else {
                    return jerr("refute done needs `refuted`".into());
                };
                let Some(refuted) = indices
                    .iter()
                    .map(|v| v.as_i64().map(|n| n as usize))
                    .collect::<Option<Vec<usize>>>()
                else {
                    return jerr("bad refuted list".into());
                };
                if refuted.iter().any(|&i| i >= cands.len()) {
                    return jerr("refuted index out of range".into());
                }
                phase.tasks[t].result = Some(TaskResult::Refuted(refuted));
                phase.tasks[t].status = TaskStatus::Done;
                phase.remaining -= 1;
                stats.completed += 1;
                shared.cv.notify_all();
                return accepted(true);
            }
            TaskSpec::Count { cands, .. } => {
                let Some(values) = req.get("misses").and_then(Json::as_arr) else {
                    return jerr("count done needs `misses`".into());
                };
                let Some(misses) = values
                    .iter()
                    .map(|v| v.as_i64().filter(|&n| n >= 0).map(|n| n as u64))
                    .collect::<Option<Vec<u64>>>()
                else {
                    return jerr("bad misses list".into());
                };
                if misses.len() != cands.len() {
                    return jerr(format!(
                        "count done has {} misses for {} candidates",
                        misses.len(),
                        cands.len()
                    ));
                }
                phase.tasks[t].result = Some(TaskResult::Misses(misses));
                phase.tasks[t].status = TaskStatus::Done;
                phase.remaining -= 1;
                stats.completed += 1;
                shared.cv.notify_all();
                return accepted(true);
            }
        }
    };
    let manifest = verify.expect("profile path set above");
    let loaded = load_verified_run_set(&manifest);
    let mut st = shared.state.lock().unwrap();
    st.touched = Instant::now();
    let CoordState { phase, stats, .. } = &mut *st;
    let Some(phase) = phase.as_mut() else {
        stats.stale_results += 1;
        return accepted(false);
    };
    if !is_current(phase) {
        stats.stale_results += 1;
        return accepted(false);
    }
    match loaded {
        Ok(set) => {
            phase.tasks[t].result = Some(TaskResult::Runs(set));
            phase.tasks[t].status = TaskStatus::Done;
            phase.remaining -= 1;
            stats.completed += 1;
            shared.cv.notify_all();
            accepted(true)
        }
        Err(e) => {
            stats.checksum_rejected += 1;
            stats.retried += 1;
            requeue(phase, t, shared.cfg.max_attempts, &e.to_string());
            shared.cv.notify_all();
            accepted(false)
        }
    }
}

fn cand_to_json(c: &IndCand) -> Json {
    Json::Arr(vec![
        Json::Arr(c.lhs.iter().map(|&x| Json::Num(x as i64)).collect()),
        Json::Arr(c.rhs.iter().map(|&x| Json::Num(x as i64)).collect()),
    ])
}

fn cand_from_json(v: &Json, columns: &[(usize, usize)]) -> Option<IndCand> {
    let parts = v.as_arr()?;
    if parts.len() != 2 {
        return None;
    }
    let side = |p: &Json| -> Option<Vec<usize>> {
        p.as_arr()?
            .iter()
            .map(|x| {
                let n = x.as_i64()?;
                (0 <= n && (n as usize) < columns.len()).then_some(n as usize)
            })
            .collect()
    };
    let lhs = side(&parts[0])?;
    let rhs = side(&parts[1])?;
    let (&l0, &r0) = (lhs.first()?, rhs.first()?);
    Some(IndCand {
        lrel: columns[l0].0,
        rrel: columns[r0].0,
        lhs,
        rhs,
    })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// A lockstep line-JSON connection shared between the worker's main loop
/// and its heartbeat thread; the mutex spans each write+read exchange so
/// requests never interleave.
struct Conn {
    io: Mutex<(BufReader<TcpStream>, TcpStream)>,
}

impl Conn {
    fn connect(addr: &str) -> io::Result<Conn> {
        let mut last = io::Error::other("no connection attempt made");
        for _ in 0..50 {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    s.set_nodelay(true)?;
                    let reader = BufReader::new(s.try_clone()?);
                    return Ok(Conn {
                        io: Mutex::new((reader, s)),
                    });
                }
                Err(e) => {
                    last = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last)
    }

    fn call(&self, req: &Json) -> io::Result<Json> {
        let mut guard = self.io.lock().unwrap();
        let (reader, writer) = &mut *guard;
        writeln!(writer, "{req}")?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::other("coordinator closed the connection"));
        }
        parse(line.trim()).map_err(io::Error::other)
    }
}

/// The worker loop: connect to a coordinator, poll for shards, execute
/// them against this process's own [`ColumnStore`], report results.
/// Returns when the coordinator says shutdown (or an injected
/// [`FaultKind::Kill`] fires). `depkit shard-worker` is a thin wrapper
/// around this; tests drive it on threads over real sockets.
pub fn run_worker(
    addr: &str,
    schema: &DatabaseSchema,
    store: &ColumnStore,
    fault: &FaultPlan,
) -> io::Result<()> {
    let columns = column_table(schema);
    let conn = Arc::new(Conn::connect(addr)?);
    let hello = conn.call(&obj(vec![("cmd", Json::Str("hello".into()))]))?;
    let worker = hello
        .get("worker")
        .and_then(Json::as_i64)
        .ok_or_else(|| io::Error::other(format!("bad hello response: {hello}")))?;
    loop {
        let next = conn.call(&obj(vec![
            ("cmd", Json::Str("next".into())),
            ("worker", Json::Num(worker)),
        ]))?;
        if jbool(next.get("shutdown")) {
            return Ok(());
        }
        if jbool(next.get("wait")) {
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        let (Some(id), Some(attempt), Some(task)) = (
            next.get("id").and_then(Json::as_i64),
            next.get("attempt").and_then(Json::as_i64),
            next.get("task").and_then(Json::as_str),
        ) else {
            return Err(io::Error::other(format!("bad task assignment: {next}")));
        };
        let attempt32 = attempt as u32;
        let (kind, index) = match task {
            "profile" => (
                TaskKind::Profile,
                next.get("col").and_then(Json::as_i64).unwrap_or(-1) as usize,
            ),
            "refute" => (
                TaskKind::Refute,
                next.get("pass").and_then(Json::as_i64).unwrap_or(-1) as usize,
            ),
            "count" => (
                TaskKind::Count,
                next.get("pass").and_then(Json::as_i64).unwrap_or(-1) as usize,
            ),
            other => return Err(io::Error::other(format!("unknown task kind `{other}`"))),
        };
        let injected = fault.matching(kind, index, attempt32);
        if let Some(FaultKind::Kill) = injected {
            // Die without reporting: the dropped connection (and, for a
            // same-process test worker, this early return) is exactly
            // what a crashed worker looks like to the coordinator.
            return Ok(());
        }
        if let Some(FaultKind::Stall(d)) = injected {
            // Go dark past the heartbeat timeout, then finish normally —
            // the completion must arrive stale, not merge twice.
            std::thread::sleep(d);
        }
        // Heartbeat for the duration of the work, at the interval the
        // coordinator asked for. Sleep in short slices so stopping the
        // beat after a (typically sub-millisecond) task doesn't stall
        // the worker for a whole interval.
        let stop = Arc::new(AtomicBool::new(false));
        let beat_conn = Arc::clone(&conn);
        let beat_stop = Arc::clone(&stop);
        let interval =
            Duration::from_millis(next.get("beat_ms").and_then(Json::as_i64).unwrap_or(100) as u64);
        let beat = std::thread::spawn(move || {
            let slice = Duration::from_millis(2);
            let mut slept = Duration::ZERO;
            while !beat_stop.load(Ordering::Acquire) {
                std::thread::sleep(slice);
                slept += slice;
                if slept < interval {
                    continue;
                }
                slept = Duration::ZERO;
                if beat_stop.load(Ordering::Acquire) {
                    break;
                }
                let _ = beat_conn.call(&obj(vec![
                    ("cmd", Json::Str("beat".into())),
                    ("id", Json::Num(id)),
                    ("attempt", Json::Num(attempt)),
                ]));
            }
        });
        let outcome = execute_task(&next, task, store, &columns, injected);
        stop.store(true, Ordering::Release);
        beat.join().expect("heartbeat thread never panics");
        let report = match outcome {
            Ok(mut fields) => {
                let mut all = vec![
                    ("cmd", Json::Str("done".into())),
                    ("id", Json::Num(id)),
                    ("attempt", Json::Num(attempt)),
                ];
                all.append(&mut fields);
                obj(all)
            }
            Err(e) => obj(vec![
                ("cmd", Json::Str("failed".into())),
                ("id", Json::Num(id)),
                ("attempt", Json::Num(attempt)),
                ("error", Json::Str(e.to_string())),
            ]),
        };
        conn.call(&report)?;
    }
}

/// Execute one assignment, returning the done-payload fields.
fn execute_task(
    next: &Json,
    task: &str,
    store: &ColumnStore,
    columns: &[(usize, usize)],
    injected: Option<FaultKind>,
) -> io::Result<Vec<(&'static str, Json)>> {
    match task {
        "profile" => {
            let col = next
                .get("col")
                .and_then(Json::as_i64)
                .ok_or_else(|| io::Error::other("profile task has no col"))?
                as usize;
            let dir = next
                .get("dir")
                .and_then(Json::as_str)
                .ok_or_else(|| io::Error::other("profile task has no dir"))?;
            let chunk = next.get("chunk").and_then(Json::as_i64).unwrap_or(1 << 16) as usize;
            if col >= columns.len() {
                return Err(io::Error::other(format!("column {col} out of range")));
            }
            let set = profile_column_runs(store, columns, col, Path::new(dir), chunk)?;
            if let Some(FaultKind::Corrupt) = injected {
                corrupt_first_run(&set)?;
            }
            Ok(vec![("manifest", Json::Str(format!("col{col}.manifest")))])
        }
        "refute" => {
            let (Some(pass), Some(passes), Some(cand_json)) = (
                next.get("pass").and_then(Json::as_i64),
                next.get("passes").and_then(Json::as_i64),
                next.get("cands").and_then(Json::as_arr),
            ) else {
                return Err(io::Error::other("malformed refute task"));
            };
            let cands: Vec<IndCand> = cand_json
                .iter()
                .map(|v| {
                    cand_from_json(v, columns)
                        .ok_or_else(|| io::Error::other(format!("bad candidate: {v}")))
                })
                .collect::<io::Result<_>>()?;
            let refuted =
                refute_candidates_pass(store, columns, &cands, pass as usize, passes as usize);
            Ok(vec![(
                "refuted",
                Json::Arr(refuted.into_iter().map(|i| Json::Num(i as i64)).collect()),
            )])
        }
        "count" => {
            let (Some(pass), Some(passes), Some(cand_json)) = (
                next.get("pass").and_then(Json::as_i64),
                next.get("passes").and_then(Json::as_i64),
                next.get("cands").and_then(Json::as_arr),
            ) else {
                return Err(io::Error::other("malformed count task"));
            };
            let cands: Vec<IndCand> = cand_json
                .iter()
                .map(|v| {
                    cand_from_json(v, columns)
                        .ok_or_else(|| io::Error::other(format!("bad candidate: {v}")))
                })
                .collect::<io::Result<_>>()?;
            let misses =
                count_candidate_misses_pass(store, columns, &cands, pass as usize, passes as usize);
            Ok(vec![(
                "misses",
                Json::Arr(misses.into_iter().map(|m| Json::Num(m as i64)).collect()),
            )])
        }
        other => Err(io::Error::other(format!("unknown task kind `{other}`"))),
    }
}

/// The [`FaultKind::Corrupt`] payload: flip one byte of the shard's first
/// nonempty published run, *after* publication — the manifest checksum
/// now lies about the file, which is exactly the torn-write/bit-rot shape
/// verification exists to catch.
fn corrupt_first_run(set: &RunSet) -> io::Result<()> {
    for run in &set.runs {
        let mut bytes = std::fs::read(&run.path)?;
        if let Some(b) = bytes.first_mut() {
            *b ^= 0xff;
            std::fs::write(&run.path, &bytes)?;
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::database::Database;

    fn worked_example() -> (DatabaseSchema, Database) {
        let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT, MGR)", "DEPT(DNO, HEAD)"]).unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_str(
            "EMP",
            &[
                &["hilbert", "math", "klein"],
                &["noether", "math", "klein"],
                &["curie", "phys", "curie"],
            ],
        )
        .unwrap();
        db.insert_str("DEPT", &[&["math", "klein"], &["phys", "curie"]])
            .unwrap();
        (schema, db)
    }

    fn spawn_workers(
        addr: SocketAddr,
        db: &Database,
        n: usize,
        fault: FaultPlan,
    ) -> Vec<JoinHandle<io::Result<()>>> {
        (0..n)
            .map(|_| {
                // Each worker parses nothing but owns its own store,
                // exercising the identical-interning contract.
                let schema = db.schema().clone();
                let store = ColumnStore::new(db);
                let fault = fault.clone();
                std::thread::spawn(move || run_worker(&addr.to_string(), &schema, &store, &fault))
            })
            .collect()
    }

    fn shard_cfg() -> ShardConfig {
        ShardConfig {
            chunk_ids: 16,
            heartbeat_timeout: Duration::from_millis(400),
            progress_timeout: Duration::from_secs(20),
            ..ShardConfig::default()
        }
    }

    #[test]
    fn sharded_run_matches_local_discovery() {
        let (schema, db) = worked_example();
        let config = DiscoveryConfig::default();
        let local = depkit_solver::discover::discover_with_config(&db, &config);
        let coordinator = Coordinator::bind("127.0.0.1:0", shard_cfg()).unwrap();
        let workers = spawn_workers(coordinator.local_addr(), &db, 3, FaultPlan::none());
        let store = ColumnStore::new(&db);
        let (sharded, stats) = coordinator.run(&schema, &store, &config, 3).unwrap();
        for w in workers {
            w.join().unwrap().unwrap();
        }
        coordinator.shutdown().unwrap();
        assert_eq!(local.raw, sharded.raw);
        assert_eq!(local.cover, sharded.cover);
        assert_eq!(local.stats, sharded.stats);
        assert_eq!(stats.completed, stats.shards);
        assert_eq!(stats.retried, 0);
    }

    #[test]
    fn sharded_approximate_run_reports_local_confidences() {
        let (schema, mut db) = worked_example();
        // Dirty the reference: one employee in a department that DEPT has
        // never heard of, so EMP[DEPT] <= DEPT[DNO] only *approximately*
        // holds (3 of 4 rows; confidence 0.75).
        db.insert_str("EMP", &[&["galois", "duel", "nobody"]])
            .unwrap();
        let config = DiscoveryConfig {
            max_error: 0.3,
            ..DiscoveryConfig::default()
        };
        let local = depkit_solver::discover::discover_with_config(&db, &config);
        assert!(
            local.scored.iter().any(|s| s.misses > 0),
            "fixture must plant at least one dirty dependency"
        );
        let coordinator = Coordinator::bind("127.0.0.1:0", shard_cfg()).unwrap();
        let workers = spawn_workers(coordinator.local_addr(), &db, 3, FaultPlan::none());
        let store = ColumnStore::new(&db);
        let (sharded, stats) = coordinator.run(&schema, &store, &config, 3).unwrap();
        for w in workers {
            w.join().unwrap().unwrap();
        }
        coordinator.shutdown().unwrap();
        assert_eq!(local.raw, sharded.raw);
        assert_eq!(local.cover, sharded.cover);
        assert_eq!(local.scored, sharded.scored);
        assert_eq!(local.stats, sharded.stats);
        assert_eq!(stats.completed, stats.shards);
    }

    #[test]
    fn killed_worker_is_retried_to_the_identical_cover() {
        let (schema, db) = worked_example();
        let config = DiscoveryConfig::default();
        let local = depkit_solver::discover::discover_with_config(&db, &config);
        let coordinator = Coordinator::bind("127.0.0.1:0", shard_cfg()).unwrap();
        let fault = FaultPlan::parse("kill:profile:0").unwrap();
        // Every worker carries the fault, so whichever one draws shard
        // profile:0 at attempt 0 dies — exactly one kill, regardless of
        // scheduling — and the retry at attempt 1 runs clean.
        let workers = spawn_workers(coordinator.local_addr(), &db, 2, fault);
        let store = ColumnStore::new(&db);
        let (sharded, stats) = coordinator.run(&schema, &store, &config, 2).unwrap();
        for w in workers {
            w.join().unwrap().unwrap();
        }
        coordinator.shutdown().unwrap();
        assert_eq!(local.cover, sharded.cover);
        assert_eq!(local.stats, sharded.stats);
        assert_eq!(stats.completed, stats.shards);
        assert!(
            stats.retried + stats.reassigned >= 1,
            "the kill must exercise the retry path: {stats:?}"
        );
    }

    #[test]
    fn fault_plan_parses_and_rejects() {
        let plan = FaultPlan::parse("kill:profile:2;stall:refute:0:250;corrupt:profile:1").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.faults[0].kind, FaultKind::Kill);
        assert_eq!(plan.faults[0].task, TaskKind::Profile);
        assert_eq!(plan.faults[0].index, 2);
        assert_eq!(
            plan.faults[1].kind,
            FaultKind::Stall(Duration::from_millis(250))
        );
        assert_eq!(plan.faults[1].task, TaskKind::Refute);
        assert_eq!(plan.faults[2].kind, FaultKind::Corrupt);
        for bad in [
            "boom:profile:0",
            "kill:nowhere:0",
            "kill:profile",
            "kill:profile:x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "should reject {bad}");
        }
        assert_eq!(FaultPlan::parse("").unwrap().faults.len(), 0);
    }

    #[test]
    fn no_workers_times_out_with_a_diagnostic() {
        let (schema, db) = worked_example();
        let cfg = ShardConfig {
            progress_timeout: Duration::from_millis(200),
            ..ShardConfig::default()
        };
        let coordinator = Coordinator::bind("127.0.0.1:0", cfg).unwrap();
        let store = ColumnStore::new(&db);
        let err = coordinator
            .run(&schema, &store, &DiscoveryConfig::default(), 0)
            .unwrap_err();
        coordinator.shutdown().unwrap();
        assert!(err.to_string().contains("no shard progress"), "got: {err}");
    }
}
