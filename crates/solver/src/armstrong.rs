//! Armstrong relations for FD sets.
//!
//! The paper repeatedly uses *Armstrong databases* — instances satisfying
//! exactly a set of dependencies and nothing more (Figure 6.1 is one; the
//! existence theory is Fagin's \[Fa4\], cited throughout). This module
//! builds an Armstrong **relation** for any FD set: a relation `r` such
//! that `r ⊨ X → Y` iff `Σ ⊨ X → Y`.
//!
//! Construction: start from an all-zero tuple `t_∅`; for every subset `X`
//! of the attributes, add a tuple `t_X` agreeing with `t_∅` exactly on the
//! closure `X⁺` (fresh values elsewhere). Two added tuples `t_X`, `t_Y`
//! then agree exactly on `X⁺ ∩ Y⁺`, which is again closed, so every
//! agreement set is closed and every closure is an agreement set — the
//! classical characterization of Armstrong relations. The relation has
//! `2^arity + 1` tuples, so keep schemes modest (≤ 12 attributes or so).

use crate::fd::FdEngine;
use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::relation::{Relation, Tuple};
use depkit_core::schema::RelationScheme;
use depkit_core::value::Value;
use std::collections::BTreeSet;

/// Build an Armstrong relation for `engine`'s FDs over `scheme`: the FDs
/// that hold in the result are exactly the FDs the engine implies.
pub fn armstrong_relation(engine: &FdEngine, scheme: &RelationScheme) -> Relation {
    let attrs_all = scheme.attrs().attrs();
    let m = attrs_all.len();
    let mut r = Relation::empty(scheme.clone());

    // The base tuple: all zeros.
    r.insert(Tuple::ints(&vec![0i64; m]))
        .expect("arity matches");

    // Closed sets we have materialized a tuple for (avoid duplicates:
    // distinct subsets with the same closure would yield tuples agreeing
    // on MORE than their closure if given distinct fresh values — still
    // fine — but deduping keeps the relation small).
    let mut seen: BTreeSet<BTreeSet<Attr>> = BTreeSet::new();
    let mut fresh = 1i64;
    for mask in 0u32..(1 << m) {
        let subset: Vec<Attr> = (0..m)
            .filter(|&b| mask & (1 << b) != 0)
            .map(|b| attrs_all[b].clone())
            .collect();
        let closure = engine.closure(&AttrSeq::new(subset).expect("distinct"));
        if closure.len() == m || !seen.insert(closure.clone()) {
            // The full closure duplicates t_∅'s role; skip repeats.
            continue;
        }
        let mut vals = Vec::with_capacity(m);
        for a in attrs_all {
            if closure.contains(a) {
                vals.push(Value::Int(0));
            } else {
                vals.push(Value::Int(fresh));
                fresh += 1;
            }
        }
        r.insert(Tuple::new(vals)).expect("arity matches");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::attr::attrs;
    use depkit_core::dependency::Fd;
    use depkit_core::generate::{random_fd, random_schema, Rng, SchemaConfig};
    use depkit_core::satisfy::check_fd;

    fn fd(src: &str) -> Fd {
        match depkit_core::parser::parse_dependency(src).unwrap() {
            depkit_core::Dependency::Fd(f) => f,
            _ => panic!("not an FD"),
        }
    }

    /// Exactness on a hand example: r ⊨ τ iff Σ ⊨ τ for every FD τ.
    #[test]
    fn exactness_small() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C"]));
        let fds = vec![fd("R: A -> B")];
        let engine = FdEngine::new("R", &fds);
        let r = armstrong_relation(&engine, &scheme);
        // Enumerate all FDs with subset LHS and single RHS.
        let names = ["A", "B", "C"];
        for mask in 0u32..8 {
            let lhs: Vec<&str> = (0..3)
                .filter(|&b| mask & (1 << b) != 0)
                .map(|b| names[b])
                .collect();
            for rhs in names {
                let tau = Fd::new("R", AttrSeq::from_names(&lhs).unwrap(), attrs(&[rhs]));
                let holds = check_fd(&r, &tau).unwrap().is_none();
                let implied = engine.implies(&tau);
                assert_eq!(holds, implied, "τ = {tau}");
            }
        }
    }

    /// Exactness on random FD sets.
    #[test]
    fn exactness_random() {
        let mut rng = Rng::new(0xA57);
        for round in 0..30 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 1,
                    min_arity: 3,
                    max_arity: 5,
                },
            );
            let scheme = schema.schemes()[0].clone();
            let mut fds = Vec::new();
            for _ in 0..3 {
                let lhs_n = 1 + rng.below(2);
                if let Some(f) = random_fd(&mut rng, &schema, lhs_n, 1) {
                    fds.push(f);
                }
            }
            let engine = FdEngine::new(scheme.name().clone(), &fds);
            let r = armstrong_relation(&engine, &scheme);
            // Sample FDs from the universe.
            for _ in 0..20 {
                let lhs_n2 = 1 + rng.below(2);
                let Some(tau) = random_fd(&mut rng, &schema, lhs_n2, 1) else {
                    continue;
                };
                let holds = check_fd(&r, &tau).unwrap().is_none();
                let implied = engine.implies(&tau);
                assert_eq!(holds, implied, "round {round}: τ = {tau}, fds = {fds:?}");
            }
        }
    }

    /// Size bound: at most 2^arity + 1 tuples.
    #[test]
    fn size_bound() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C", "D"]));
        let engine = FdEngine::new("R", &[]);
        let r = armstrong_relation(&engine, &scheme);
        assert!(r.len() <= 17);
        // With no FDs, closures are the subsets themselves: all 2^4 - 1
        // proper subsets produce distinct tuples, plus the base.
        assert_eq!(r.len(), 16);
    }
}
