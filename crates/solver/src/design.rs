//! Schema-design tooling: normal forms and decomposition.
//!
//! The paper's introduction motivates INDs through database design ("they
//! permit us to selectively define what data must be duplicated in what
//! relations"); this module supplies the FD side of that toolbox — BCNF
//! analysis and lossless decomposition, 3NF synthesis from a minimal
//! cover — plus the IND bookkeeping a decomposition induces: every
//! fragment's attributes embed back into the original relation as typed
//! INDs, which is exactly how INDs arise when an entity–relationship
//! schema is mapped to relations (paper, Section 1).

use crate::fd::{minimal_cover, FdEngine};
use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::dependency::{Fd, Ind};
use depkit_core::schema::RelationScheme;
use std::collections::BTreeSet;

/// A BCNF violation: an FD `X → Y` with `X` not a superkey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BcnfViolation {
    /// The offending dependency (taken from the engine's FD list or a
    /// closure consequence).
    pub fd: Fd,
}

/// Find a BCNF violation of `scheme` under `engine`'s FDs, if any: an FD
/// `X → A` implied by the set, with `A ∉ X` and `X` not a superkey.
/// Searches the closures of the left-hand sides appearing in the FD set
/// (sufficient: any violating FD yields a violating one of this form).
pub fn bcnf_violation(engine: &FdEngine, scheme: &RelationScheme) -> Option<BcnfViolation> {
    let all: BTreeSet<Attr> = scheme.attrs().attrs().iter().cloned().collect();
    for fd in engine.fds() {
        let closure = engine.closure(&fd.lhs);
        let is_superkey = all.iter().all(|a| closure.contains(a));
        if is_superkey {
            continue;
        }
        // Any closure attribute outside the LHS witnesses a violation.
        let lhs_set: BTreeSet<&Attr> = fd.lhs.attrs().iter().collect();
        if let Some(extra) = closure
            .iter()
            .find(|a| !lhs_set.contains(a) && all.contains(a))
        {
            return Some(BcnfViolation {
                fd: Fd::new(
                    scheme.name().clone(),
                    fd.lhs.clone(),
                    AttrSeq::new(vec![extra.clone()]).expect("single"),
                ),
            });
        }
    }
    None
}

/// Whether `scheme` is in BCNF under `engine`'s FDs.
pub fn is_bcnf(engine: &FdEngine, scheme: &RelationScheme) -> bool {
    bcnf_violation(engine, scheme).is_none()
}

/// One fragment of a decomposition, together with the typed IND embedding
/// it back into the source relation.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The fragment's scheme.
    pub scheme: RelationScheme,
    /// The FDs of the original set projected onto the fragment.
    pub fds: Vec<Fd>,
    /// `fragment[attrs] ⊆ source[attrs]` — the inclusion the decomposition
    /// promises (and the INDs the paper says database design produces).
    pub embedding: Ind,
}

/// Lossless BCNF decomposition by repeated violation splitting.
///
/// Classical algorithm: while some fragment has a BCNF violation `X → A`,
/// replace it by `X ∪ {A}` and `fragment − A`. Lossless because each split
/// is on an FD; **not** guaranteed dependency-preserving (no algorithm can
/// be). Fragment FDs are the projections of the input set (computed via
/// closures, so implied FDs are preserved where expressible).
pub fn bcnf_decompose(fds: &[Fd], scheme: &RelationScheme) -> Vec<Fragment> {
    let mut fragments: Vec<RelationScheme> = vec![scheme.clone()];
    let mut out: Vec<Fragment> = Vec::new();
    let mut counter = 0usize;

    while let Some(frag) = fragments.pop() {
        let projected = project_fds(fds, &frag);
        let engine = FdEngine::new(frag.name().clone(), &projected);
        match bcnf_violation(&engine, &frag) {
            None => {
                let embedding = Ind::new(
                    frag.name().clone(),
                    frag.attrs().clone(),
                    scheme.name().clone(),
                    frag.attrs().clone(),
                )
                .expect("same sequence");
                out.push(Fragment {
                    scheme: frag,
                    fds: projected,
                    embedding,
                });
            }
            Some(v) => {
                counter += 1;
                // Fragment 1: X ∪ {A}.
                let mut left: Vec<Attr> = v.fd.lhs.attrs().to_vec();
                left.extend(v.fd.rhs.attrs().iter().cloned());
                let left_scheme = RelationScheme::new(
                    format!("{}_{}", scheme.name(), counter).as_str(),
                    AttrSeq::new(left).expect("distinct by construction"),
                );
                // Fragment 2: everything except A.
                counter += 1;
                let right: Vec<Attr> = frag
                    .attrs()
                    .attrs()
                    .iter()
                    .filter(|a| !v.fd.rhs.contains_attr(a))
                    .cloned()
                    .collect();
                let right_scheme = RelationScheme::new(
                    format!("{}_{}", scheme.name(), counter).as_str(),
                    AttrSeq::new(right).expect("distinct"),
                );
                fragments.push(left_scheme);
                fragments.push(right_scheme);
            }
        }
    }
    out
}

/// Project `fds` onto `fragment`: for each subset-closure expressible in
/// the fragment, emit the induced FDs (computed with closures over the
/// full attribute set, then restricted). Exponential in the fragment
/// arity; fine for design-sized schemes.
pub fn project_fds(fds: &[Fd], fragment: &RelationScheme) -> Vec<Fd> {
    let src_rel = fds.first().map(|f| f.rel.clone());
    let Some(src_rel) = src_rel else {
        return Vec::new();
    };
    let engine = FdEngine::new(src_rel, fds);
    let attrs_all = fragment.attrs().attrs();
    let m = attrs_all.len();
    let mut out = Vec::new();
    for mask in 1u32..(1 << m) {
        let lhs: Vec<Attr> = (0..m)
            .filter(|&b| mask & (1 << b) != 0)
            .map(|b| attrs_all[b].clone())
            .collect();
        let lhs_seq = AttrSeq::new(lhs).expect("distinct");
        let closure = engine.closure(&lhs_seq);
        let rhs: Vec<Attr> = attrs_all
            .iter()
            .filter(|a| closure.contains(*a) && !lhs_seq.contains_attr(a))
            .cloned()
            .collect();
        if !rhs.is_empty() {
            out.push(Fd::new(
                fragment.name().clone(),
                lhs_seq,
                AttrSeq::new(rhs).expect("distinct"),
            ));
        }
    }
    // Thin the projection to a minimal cover for readability.
    minimal_cover(&out)
}

/// 3NF synthesis from a minimal cover (Bernstein): one fragment per
/// cover-FD group, plus a key fragment if no fragment contains a key.
/// Dependency-preserving and lossless.
pub fn threenf_synthesis(fds: &[Fd], scheme: &RelationScheme) -> Vec<Fragment> {
    let cover = minimal_cover(fds);
    let engine = FdEngine::new(scheme.name().clone(), &cover);

    // Group cover FDs by (set-canonical) left-hand side.
    let mut groups: Vec<(BTreeSet<Attr>, Vec<Fd>)> = Vec::new();
    for fd in &cover {
        let key: BTreeSet<Attr> = fd.lhs.attrs().iter().cloned().collect();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(fd.clone()),
            None => groups.push((key, vec![fd.clone()])),
        }
    }

    let mut out = Vec::new();
    let mut counter = 0usize;
    for (lhs, group) in &groups {
        counter += 1;
        let mut attrs_vec: Vec<Attr> = lhs.iter().cloned().collect();
        for fd in group {
            for a in fd.rhs.attrs() {
                if !attrs_vec.contains(a) {
                    attrs_vec.push(a.clone());
                }
            }
        }
        let frag_scheme = RelationScheme::new(
            format!("{}_3NF{}", scheme.name(), counter).as_str(),
            AttrSeq::new(attrs_vec).expect("deduped"),
        );
        let embedding = Ind::new(
            frag_scheme.name().clone(),
            frag_scheme.attrs().clone(),
            scheme.name().clone(),
            frag_scheme.attrs().clone(),
        )
        .expect("same sequence");
        out.push(Fragment {
            fds: project_fds(&cover, &frag_scheme),
            scheme: frag_scheme,
            embedding,
        });
    }

    // Ensure some fragment contains a candidate key.
    let keys = engine.candidate_keys(scheme);
    let covered = keys.iter().any(|key| {
        out.iter()
            .any(|f| key.iter().all(|a| f.scheme.attrs().contains_attr(a)))
    });
    if !covered {
        if let Some(key) = keys.first() {
            let frag_scheme = RelationScheme::new(
                format!("{}_3NFKEY", scheme.name()).as_str(),
                AttrSeq::new(key.iter().cloned().collect()).expect("distinct"),
            );
            let embedding = Ind::new(
                frag_scheme.name().clone(),
                frag_scheme.attrs().clone(),
                scheme.name().clone(),
                frag_scheme.attrs().clone(),
            )
            .expect("same sequence");
            out.push(Fragment {
                fds: Vec::new(),
                scheme: frag_scheme,
                embedding,
            });
        }
    }
    out
}

/// Lossless-join test for a two-fragment decomposition: `R1 ∩ R2 → R1` or
/// `R1 ∩ R2 → R2` must be implied (the classical binary criterion).
pub fn lossless_binary(fds: &[Fd], scheme: &RelationScheme, r1: &AttrSeq, r2: &AttrSeq) -> bool {
    let engine = FdEngine::new(scheme.name().clone(), fds);
    let common: Vec<Attr> = r1
        .attrs()
        .iter()
        .filter(|a| r2.contains_attr(a))
        .cloned()
        .collect();
    let common_seq = AttrSeq::new(common).expect("distinct");
    let closure = engine.closure(&common_seq);
    r1.attrs().iter().all(|a| closure.contains(a)) || r2.attrs().iter().all(|a| closure.contains(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::attr::attrs;

    fn fd(src: &str) -> Fd {
        match depkit_core::parser::parse_dependency(src).unwrap() {
            depkit_core::Dependency::Fd(f) => f,
            _ => panic!("not an FD"),
        }
    }

    #[test]
    fn bcnf_detection() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C"]));
        // A -> B with key {A, C}: A is not a superkey, so not BCNF.
        let fds = vec![fd("R: A -> B")];
        let engine = FdEngine::new("R", &fds);
        assert!(!is_bcnf(&engine, &scheme));
        // A -> B, A -> C: A is a key; BCNF.
        let fds2 = vec![fd("R: A -> B"), fd("R: A -> C")];
        let engine2 = FdEngine::new("R", &fds2);
        assert!(is_bcnf(&engine2, &scheme));
        // No FDs: trivially BCNF.
        assert!(is_bcnf(&FdEngine::new("R", &[]), &scheme));
    }

    #[test]
    fn bcnf_decomposition_terminates_and_is_bcnf() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C", "D"]));
        let fds = vec![fd("R: A -> B"), fd("R: B -> C")];
        let frags = bcnf_decompose(&fds, &scheme);
        assert!(!frags.is_empty());
        for frag in &frags {
            let engine = FdEngine::new(frag.scheme.name().clone(), &frag.fds);
            assert!(is_bcnf(&engine, &frag.scheme), "fragment {}", frag.scheme);
            // Embedding IND is typed and well-formed in spirit: same attrs.
            assert!(frag.embedding.is_typed());
        }
        // All original attributes are covered by some fragment.
        for a in scheme.attrs().attrs() {
            assert!(
                frags.iter().any(|f| f.scheme.attrs().contains_attr(a)),
                "attribute {a} lost"
            );
        }
    }

    #[test]
    fn binary_split_is_lossless() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C"]));
        let fds = vec![fd("R: A -> B")];
        // Split on A -> B: {A, B} and {A, C} share A, and A -> AB.
        assert!(lossless_binary(
            &fds,
            &scheme,
            &attrs(&["A", "B"]),
            &attrs(&["A", "C"])
        ));
        // A bad split sharing nothing determinate: {A, B} and {B, C}
        // share B, and B determines neither side.
        assert!(!lossless_binary(
            &fds,
            &scheme,
            &attrs(&["A", "B"]),
            &attrs(&["B", "C"])
        ));
    }

    #[test]
    fn threenf_synthesis_preserves_dependencies() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C", "D"]));
        let fds = vec![fd("R: A -> B"), fd("R: B -> C"), fd("R: A -> D")];
        let frags = threenf_synthesis(&fds, &scheme);
        // Every cover FD must be checkable inside some fragment.
        for f in minimal_cover(&fds) {
            let found = frags.iter().any(|frag| {
                f.lhs
                    .attrs()
                    .iter()
                    .all(|a| frag.scheme.attrs().contains_attr(a))
                    && f.rhs
                        .attrs()
                        .iter()
                        .all(|a| frag.scheme.attrs().contains_attr(a))
            });
            assert!(found, "cover FD {f} not preserved");
        }
        // Some fragment contains a key ({A} here).
        let engine = FdEngine::new("R", &fds);
        let keys = engine.candidate_keys(&scheme);
        assert!(keys.iter().any(|key| frags
            .iter()
            .any(|fr| key.iter().all(|a| fr.scheme.attrs().contains_attr(a)))));
    }

    #[test]
    fn threenf_adds_key_fragment_when_needed() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C"]));
        // Only B -> C: key is {A, B}; no group contains it.
        let fds = vec![fd("R: B -> C")];
        let frags = threenf_synthesis(&fds, &scheme);
        assert!(frags.iter().any(|f| f.scheme.name().name().contains("KEY")));
    }

    #[test]
    fn projected_fds_are_sound() {
        let _scheme = RelationScheme::new("R", attrs(&["A", "B", "C"]));
        let fds = vec![fd("R: A -> B"), fd("R: B -> C")];
        let frag = RelationScheme::new("F", attrs(&["A", "C"]));
        let projected = project_fds(&fds, &frag);
        // A -> C is the transitive projection onto {A, C}.
        assert!(projected.iter().any(
            |f| f.lhs.attrs() == attrs(&["A"]).attrs() && f.rhs.contains_attr(&Attr::new("C"))
        ));
    }
}
