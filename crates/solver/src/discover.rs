//! Dependency discovery: profile a [`Database`] into the set of FDs and
//! INDs it satisfies, then prune the result to a minimal cover through the
//! compiled implication engines.
//!
//! The paper treats `Σ` as given; a deployment usually starts from the
//! opposite end — a live database whose dependencies must be *mined*
//! before anything can be validated or chased. This module closes that
//! loop in three stages. All three are naturally **columnar** — IND
//! checking is set containment of column projections, FD checking is
//! partition refinement by columns — so the hot path runs over the
//! struct-of-arrays [`ColumnStore`] (one dense `Vec<u32>` of interned ids
//! per attribute) and fans its embarrassingly parallel stages out on the
//! scoped-thread pool of [`depkit_core::pool`], governed by
//! [`DiscoveryConfig::threads`]:
//!
//! 1. **Unary INDs, SPIDER proper.** Each column becomes a sorted
//!    distinct **stream**
//!    ([`sorted_distinct_stream`](depkit_core::column::RelationColumns::sorted_distinct_stream),
//!    opened in parallel) — backed by the in-memory bitmap sweep under
//!    budget, by merged disk runs over it — and one cursor-per-attribute
//!    k-way merge decides *all* `R[A] ⊆ S[B]` simultaneously: popping
//!    every cursor at the minimum value yields the bit set of columns
//!    containing it, which intersects into each group member's candidate
//!    set on the spot. No distinct vectors are materialized and no
//!    per-value occurrence table is built; each *distinct* value is
//!    touched once per column containing it, independent of row
//!    repetition.
//! 2. **n-ary INDs by pairwise composition.** Valid `k`-ary INDs are
//!    extended with valid unary INDs over the same relation pair
//!    (candidates are canonical: left columns in ascending order, which
//!    quotients away the IND2 permutations). Since IND satisfaction is
//!    closed under projection, every satisfied canonical IND up to the
//!    arity cap is generated. Per level, the distinct right-side
//!    projection sets are materialized once as word-packed [`KeySet`]s
//!    and every candidate is validated in parallel by a zero-allocation
//!    column-gather scan.
//! 3. **FDs by partition refinement, TANE-style.** Per relation, a
//!    level-wise walk of the attribute-set lattice carries *stripped
//!    partitions* (equivalence classes of row ids, singletons dropped):
//!    `X → A` holds iff every class of `π_X` agrees on `A`. Refinement
//!    runs through the radix-style dense-counting [`Refiner`] (no
//!    hashing), lattice nodes of one level are checked in parallel, and
//!    superkey nodes and attributes determined by subsets prune the
//!    lattice, so only *minimal* FDs are emitted.
//!
//! The raw mined set is then fed through the engines the rest of the
//! crate compiles — [`FdEngine`] closures, the [`IndSolver`] walk search,
//! and (optionally) the Section 4 [`Saturator`] — to drop every
//! dependency implied by the others: [`minimize_cover`]. The result is
//! the first end-to-end consumer of the paper's implication machinery on
//! real data: discovery proposes, implication disposes.
//!
//! [`discover_reference`] is the pre-columnar row-at-a-time engine over
//! [`CompiledRows`], kept — like `solver::reference` for the implication
//! engines — as the executable specification: `tests/columnar_vs_rows.rs`
//! property-checks that the columnar engine (at any thread count)
//! produces byte-identical results.
//!
//! **Out-of-core operation.** A positive
//! [`DiscoveryConfig::memory_budget`] bounds the pipeline's working set:
//! columns whose distinct state exceeds its budget share spill sorted
//! little-endian `u32` runs to [`DiscoveryConfig::spill_dir`] and stream
//! back through [`depkit_core::spill`]'s buffered k-way merge; oversized
//! right-side projection sets validate in hash-of-key passes; oversized
//! FD lattice levels recompute partitions from the root in hash-of-lhs
//! waves. Every budget decision is a deterministic function of the data
//! shape, so a spilled run is byte-identical to the in-memory one —
//! discovery on data 10× the budget is slower, never different.
//! [`Discovery::spill`] reports runs written, bytes spilled, and merge
//! passes.
//!
//! Exactness contract: within the configured caps
//! ([`DiscoveryConfig::max_ind_arity`], [`DiscoveryConfig::max_fd_lhs`])
//! the raw set contains **every** satisfied nontrivial IND (one canonical
//! representative per IND2-permutation class) and every minimal satisfied
//! FD; `tests/discovery_vs_satisfy.rs` checks both directions against
//! [`depkit_core::satisfy`]. The result is also independent of
//! [`DiscoveryConfig::threads`] **and** of the memory budget: every
//! parallel stage merges worker output in deterministic input order, and
//! every external stage shards by deterministic hashes of the data.

use crate::fd::FdEngine;
use crate::ind::IndSolver;
use crate::interact::{SaturationLimits, Saturator};
use depkit_core::column::{
    ColumnCursor, ColumnSpill, ColumnStore, KeySet, Refiner, RelationColumns,
};
use depkit_core::database::Database;
use depkit_core::dependency::{Dependency, Fd, Ind};
use depkit_core::hashing::{FastMap, FastSet};
use depkit_core::index::{CompiledRows, ProjectionIndex};
use depkit_core::pool;
use depkit_core::schema::DatabaseSchema;
use depkit_core::spill::{
    merge_run_set, publish_sorted_runs, DistinctStream, RunSet, SpillDir, SpillStats,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::path::{Path, PathBuf};

/// Resource caps and rule toggles for [`discover_with_config`].
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Highest IND arity mined. Candidates are composed level by level, so
    /// each extra level multiplies validation work; satisfied INDs of
    /// higher arity are still *implied* by their projections being found,
    /// just not materialized. Default `3`.
    pub max_ind_arity: usize,
    /// Largest FD left-hand side searched in the partition lattice.
    /// Minimal FDs with wider left sides are not found. Default `3`.
    pub max_fd_lhs: usize,
    /// Whether cover minimization may use the Section 4 FD/IND interaction
    /// rules (the [`Saturator`]) on top of the per-class engines. The
    /// per-class engines alone are complete for FD-only and IND-only
    /// implication; the saturator adds sound cross-class pruning.
    /// Default `true`.
    pub interaction_pruning: bool,
    /// Worker threads for the parallel mining stages (per-column SPIDER
    /// refinement, per-candidate IND validation, per-node FD lattice
    /// checks). `0` means "use the machine's available parallelism"
    /// ([`pool::default_threads`]); `1` runs every stage inline. The mined
    /// result is identical for every setting. Default `0`.
    pub threads: usize,
    /// In-memory byte budget for the discovery working set. `0` (the
    /// default) is unbounded: every stage runs fully in RAM, exactly as
    /// before the external pipeline existed. A positive budget splits
    /// into fixed, data-independent shares (see `BudgetPlan` in the
    /// source): columns whose distinct sweep would exceed their share
    /// spill sorted runs to [`DiscoveryConfig::spill_dir`] and stream
    /// back through a k-way merge; oversized right-side projection sets
    /// are validated in hash-of-key passes; oversized FD lattice levels
    /// recompute partitions from the root and run in hash-of-left-side
    /// waves. The mined result is byte-identical to the unbounded run —
    /// the budget changes *where* intermediate state lives, never what is
    /// found ([`Discovery::spill`] reports what went to disk).
    pub memory_budget: usize,
    /// Directory under which spilled sorted runs are written when
    /// [`DiscoveryConfig::memory_budget`] forces the disk path; `None`
    /// uses the system temp directory. Each discovery run creates a
    /// uniquely named subdirectory and removes it when the run completes.
    pub spill_dir: Option<PathBuf>,
    /// Error tolerance for approximate discovery, as a fraction of rows in
    /// `[0, 1)`. `0.0` (the default) mines exactly, through code paths
    /// untouched by the approximate machinery — the output is
    /// byte-identical to an exact-only build. A positive tolerance keeps a
    /// dependency when its error is at most `max_error` of the governing
    /// row count: FDs use the g3 measure ([`Refiner::g3_error`] — the
    /// minimum rows to delete, from stripped-partition group sizes), INDs
    /// count left rows whose projection is absent on the right. Every kept
    /// dependency lands in [`Discovery::scored`] with its exact `misses`
    /// and `support`, identical across threads, budgets, and sharding.
    pub max_error: f64,
    /// Rank cutoff carried for front ends: how many entries of the scored
    /// set [`Discovery::ranked`] should present, `0` meaning all of them.
    /// Mining itself never truncates — `scored` always holds the full set.
    pub top_k: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            max_ind_arity: 3,
            max_fd_lhs: 3,
            interaction_pruning: true,
            threads: 0,
            memory_budget: 0,
            spill_dir: None,
            max_error: 0.0,
            top_k: 0,
        }
    }
}

impl DiscoveryConfig {
    /// The effective worker count: `threads`, with `0` resolved to the
    /// machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            pool::default_threads()
        } else {
            self.threads
        }
    }
}

/// Instrumentation for one discovery run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Tuples profiled across all relations.
    pub rows: usize,
    /// Columns profiled (sum of scheme arities).
    pub columns: usize,
    /// Distinct values across the database (the interner's table size).
    pub distinct_values: usize,
    /// Composed n-ary IND candidates validated against the data
    /// (levels ≥ 2; level 1 is decided wholesale by the SPIDER pass).
    pub ind_candidates: usize,
    /// `(X, A)` pairs checked against stripped partitions.
    pub fd_candidates: usize,
    /// Nontrivial FDs mined.
    pub raw_fds: usize,
    /// Nontrivial INDs mined (canonical representatives).
    pub raw_inds: usize,
    /// Raw dependencies pruned from the cover as implied by the rest.
    pub pruned: usize,
}

/// One mined dependency with its error accounting. Produced only by
/// approximate runs ([`DiscoveryConfig::max_error`] > 0); exact runs
/// leave [`Discovery::scored`] empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoredDependency {
    /// The mined dependency.
    pub dep: Dependency,
    /// Rows that would have to be removed for the dependency to hold
    /// exactly: the g3 measure for FDs, missing left projections for
    /// INDs. `0` means the dependency holds outright.
    pub misses: u64,
    /// Rows the measure is taken over — the (left) relation's row count.
    pub support: u64,
}

impl ScoredDependency {
    /// Fraction of supporting rows consistent with the dependency:
    /// `1 − misses / support` (`1.0` on empty support, matching vacuous
    /// satisfaction).
    pub fn confidence(&self) -> f64 {
        if self.support == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.support as f64
        }
    }

    /// Integer ranking weight: `confidence × support`, which simplifies
    /// to `support − misses`. Kept in integers so every execution mode
    /// ranks identically, with no float-rounding tie hazards.
    pub fn score(&self) -> u64 {
        self.support - self.misses
    }
}

/// The result of mining a database: the raw satisfied set and its minimal
/// cover.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// Every nontrivial dependency mined within the caps, sorted and
    /// deduplicated. Under a positive [`DiscoveryConfig::max_error`] this
    /// includes the approximately satisfied dependencies; consult
    /// [`Discovery::scored`] for which hold outright.
    pub raw: Vec<Dependency>,
    /// The minimal cover: a subset of the *exactly* satisfied part of
    /// `raw` that still implies all of it, and from which removing any
    /// member leaves a set that no longer does (see [`minimize_cover`]).
    /// Approximately satisfied dependencies neither enter the cover nor
    /// prune it — implication over dirty premises is unsound.
    pub cover: Vec<Dependency>,
    /// Error accounting, one entry per member of `raw` sorted by
    /// dependency, when [`DiscoveryConfig::max_error`] is positive; empty
    /// on exact runs.
    pub scored: Vec<ScoredDependency>,
    /// Instrumentation.
    pub stats: DiscoveryStats,
    /// Spill-layer counters: all zero when the run stayed in memory.
    /// Deliberately kept out of [`DiscoveryStats`] — `stats` is part of
    /// the determinism contract (`spilled == in-memory` byte-for-byte),
    /// while `spill` describes *how* the run executed, which legitimately
    /// differs between a budgeted and an unbounded run.
    pub spill: SpillStats,
}

impl Discovery {
    /// The scored set ranked most-trustworthy-mass first: descending
    /// [`ScoredDependency::score`] (confidence × support, in integers),
    /// ties broken by dependency order, truncated to `top_k` entries when
    /// `top_k > 0`. Empty on exact runs.
    pub fn ranked(&self, top_k: usize) -> Vec<ScoredDependency> {
        let mut out = self.scored.clone();
        out.sort_by(|a, b| b.score().cmp(&a.score()).then_with(|| a.dep.cmp(&b.dep)));
        if top_k > 0 {
            out.truncate(top_k);
        }
        out
    }
}

/// Mine `db` with the default [`DiscoveryConfig`].
///
/// # Examples
///
/// The paper's Section 1 running example, rediscovered from data alone:
///
/// ```
/// use depkit_core::{Database, DatabaseSchema, Dependency};
/// use depkit_solver::discover::{discover, implied_by};
///
/// let schema = DatabaseSchema::parse(&["EMP(NAME, DEPT)", "MGR(NAME, DEPT)"]).unwrap();
/// let mut db = Database::empty(schema);
/// db.insert_str("EMP", &[&["hilbert", "math"], &["noether", "math"]]).unwrap();
/// db.insert_str("MGR", &[&["hilbert", "math"]]).unwrap();
///
/// let found = discover(&db);
/// // Managers are employees: mined as a binary IND.
/// let ind: Dependency = "MGR[NAME, DEPT] <= EMP[NAME, DEPT]".parse().unwrap();
/// assert!(found.raw.contains(&ind));
/// // Every employee works in one department: implied by the cover.
/// let fd: Dependency = "EMP: NAME -> DEPT".parse().unwrap();
/// assert!(implied_by(&found.cover, &fd));
/// ```
pub fn discover(db: &Database) -> Discovery {
    discover_with_config(db, &DiscoveryConfig::default())
}

/// Mine `db` under explicit caps: compile it to columnar form, discover
/// INDs and FDs over the column runs (in parallel per
/// [`DiscoveryConfig::threads`], externally per
/// [`DiscoveryConfig::memory_budget`]), and minimize the result through
/// the implication engines.
///
/// Spill I/O failures panic; use [`try_discover_with_config`] to handle
/// them. With `memory_budget == 0` no I/O happens and no panic is
/// possible.
pub fn discover_with_config(db: &Database, config: &DiscoveryConfig) -> Discovery {
    try_discover_with_config(db, config).expect("discovery spill I/O failed")
}

/// Fallible variant of [`discover_with_config`]: spill I/O errors (an
/// unwritable spill directory, a full disk) surface as `Err` instead of a
/// panic.
pub fn try_discover_with_config(db: &Database, config: &DiscoveryConfig) -> io::Result<Discovery> {
    let store = ColumnStore::new(db);
    discover_store(db.schema(), &store, config)
}

/// Mine a pre-built [`ColumnStore`] directly. This is the entry point for
/// workloads that never materialize a [`Database`] — the out-of-core
/// scaling benches build multi-10M-row stores synthetically via
/// [`ColumnStore::from_raw_parts`], where the row form would blow the
/// heap the budget is there to protect. `schema` must be the schema the
/// store was compiled from (same relation order and arities).
pub fn discover_store(
    schema: &DatabaseSchema,
    store: &ColumnStore,
    config: &DiscoveryConfig,
) -> io::Result<Discovery> {
    let columns = column_table(schema);
    let threads = config.effective_threads();
    let mut stats = DiscoveryStats {
        rows: store.total_rows(),
        columns: columns.len(),
        distinct_values: store.distinct_values(),
        ..DiscoveryStats::default()
    };
    let mut spill = SpillStats::default();
    // The spill directory must outlive every stream created from it;
    // dropping it at return removes the run files.
    let spill_dir = match config.memory_budget {
        0 => None,
        _ => {
            let root = config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            Some(SpillDir::create_in(&root)?)
        }
    };
    let plan = spill_dir
        .as_ref()
        .map(|dir| BudgetPlan::new(dir, config.memory_budget, columns.len()));

    let mut raw: Vec<Dependency> = Vec::new();
    let mut scored: Vec<ScoredDependency> = Vec::new();
    let streams = open_distinct_streams(store, &columns, threads, plan.as_ref(), &mut spill)?;
    if config.max_error > 0.0 {
        let unary = spider_merge_counting(streams, store, &columns, config.max_error);
        for ind in mine_inds_scored(
            schema,
            store,
            &columns,
            &unary,
            config,
            threads,
            NaryBackend::Local(plan.as_ref()),
            &mut stats,
            &mut scored,
        )? {
            raw.push(ind.into());
        }
    } else {
        let unary = spider_merge(streams);
        for ind in mine_inds(
            schema,
            store,
            &columns,
            &unary,
            config,
            threads,
            plan.as_ref(),
            &mut stats,
        ) {
            raw.push(ind.into());
        }
    }
    stats.raw_inds = raw.len();
    for fd in mine_fds(
        schema,
        store,
        config,
        threads,
        plan.as_ref(),
        &mut stats,
        &mut scored,
    ) {
        raw.push(fd.into());
    }
    stats.raw_fds = raw.len() - stats.raw_inds;
    Ok(finish_discovery(raw, scored, config, stats, spill))
}

/// Shared tail of every discovery pipeline: canonicalize the raw set,
/// minimize the cover, and assemble the [`Discovery`]. The cover is
/// minimized over the **exactly** satisfied subset only — implication
/// from premises that merely approximately hold is unsound (errors
/// compound through derivation), so dirty dependencies stay in `raw` and
/// `scored` but never enter the cover nor prune anything from it. With
/// `max_error == 0` the exact subset is all of `raw` and the behaviour
/// is byte-identical to the pre-approximate pipeline.
fn finish_discovery(
    mut raw: Vec<Dependency>,
    mut scored: Vec<ScoredDependency>,
    config: &DiscoveryConfig,
    mut stats: DiscoveryStats,
    spill: SpillStats,
) -> Discovery {
    raw.sort();
    raw.dedup();
    scored.sort_by(|a, b| a.dep.cmp(&b.dep));
    let (exact_len, cover) = if config.max_error > 0.0 {
        let mut dirty: Vec<&Dependency> = scored
            .iter()
            .filter(|s| s.misses > 0)
            .map(|s| &s.dep)
            .collect();
        dirty.sort();
        dirty.dedup();
        let clean: Vec<Dependency> = raw
            .iter()
            .filter(|d| dirty.binary_search(d).is_err())
            .cloned()
            .collect();
        let cover = minimize_cover(&clean, config);
        (clean.len(), cover)
    } else {
        let cover = minimize_cover(&raw, config);
        (raw.len(), cover)
    };
    stats.pruned = exact_len - cover.len();
    Discovery {
        raw,
        cover,
        scored,
        stats,
        spill,
    }
}

/// How a positive [`DiscoveryConfig::memory_budget`] is split across the
/// discovery stages. The shares are **fixed fractions of the budget and
/// functions of the data shape alone** — never of thread count or runtime
/// measurements — so every budget decision (spill or not, how many
/// passes, how many waves) is deterministic and the mined result is
/// byte-identical to the unbounded run. The stages run sequentially, so
/// their shares may overlap rather than sum to the budget.
struct BudgetPlan<'a> {
    /// The per-run spill directory.
    dir: &'a SpillDir,
    /// Per-column share of the distinct-sweep stage: `budget / (2·ncols)`
    /// (every column's sweep may be in flight at once, bitmap + output).
    distinct_share: usize,
    /// Share for one right-side projection [`KeySet`]: `budget / 4`.
    keyset_share: usize,
    /// Share for one FD lattice level's carried partitions: `budget / 4`.
    fd_share: usize,
}

impl<'a> BudgetPlan<'a> {
    fn new(dir: &'a SpillDir, budget: usize, ncols: usize) -> Self {
        BudgetPlan {
            dir,
            distinct_share: (budget / (2 * ncols.max(1))).max(1),
            keyset_share: (budget / 4).max(1),
            fd_share: (budget / 4).max(1),
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-process sharded execution
// ---------------------------------------------------------------------------

/// The two work distributions a sharded coordinator performs on behalf of
/// [`discover_store_sharded`]. Implementations (the worker-pool
/// coordinator in `depkit-serve`) must return **exact** results —
/// published runs whose merge equals the column's sorted distinct set,
/// and verdicts equal to the local validator's — because the pipeline
/// above asserts nothing and recomputes nothing: sharded determinism is
/// the executor's contract, not the solver's fallback.
///
/// Workers need no coordinator state beyond the shard plan itself: global
/// column ids resolve through [`column_table`] on any process that parses
/// the same schema, and [`ColumnStore::new`] interns row-major in schema
/// order, so every process over the same database builds the identical
/// value-id space — worker-published runs merge directly into the
/// coordinator's pipeline with no re-interning.
pub trait ShardExecutor {
    /// Profile every global column `0..ncols` into a published (and
    /// verified) [`RunSet`] per column, in column order. Runs must be
    /// sorted and per-run deduplicated; their k-way merge must equal the
    /// column's sorted distinct id set.
    fn profile_columns(&mut self, ncols: usize) -> io::Result<Vec<RunSet>>;

    /// Exact satisfaction verdicts for a batch of nontrivial candidates,
    /// in batch order.
    fn validate_candidates(&mut self, cands: &[IndCand]) -> io::Result<Vec<bool>>;

    /// Exact per-candidate miss counts (left rows whose projection is
    /// absent on the right) for a batch of nontrivial candidates, in
    /// batch order. The approximate pipeline's analogue of
    /// [`ShardExecutor::validate_candidates`]: where boolean refutation
    /// may stop at the first failing pass, counting must sum **every**
    /// key-range pass — each projection key lands in exactly one pass
    /// (`key_shard`), so the pass sums equal the unsharded scan and the
    /// reported confidences match every other execution mode.
    fn count_misses(&mut self, cands: &[IndCand]) -> io::Result<Vec<u64>>;
}

/// [`discover_store`] with the two data-parallel stages — column
/// profiling (SPIDER's input) and level ≥ 2 IND validation — delegated to
/// a [`ShardExecutor`]. The executor hands back published sorted runs,
/// which k-way-merge ([`merge_run_set`]) into the very
/// [`DistinctStream`]s the local pipeline would have opened, and
/// candidate verdicts, which feed the same composition loop
/// (`mine_inds_with` is shared code, not a reimplementation). FD mining
/// and cover minimization run locally on the coordinator. The result —
/// raw set, cover, and [`DiscoveryStats`] — is byte-identical to every
/// other execution mode; only [`Discovery::spill`] (which is outside the
/// determinism contract) reflects the sharded run's own merges.
pub fn discover_store_sharded(
    schema: &DatabaseSchema,
    store: &ColumnStore,
    config: &DiscoveryConfig,
    exec: &mut dyn ShardExecutor,
) -> io::Result<Discovery> {
    let columns = column_table(schema);
    let threads = config.effective_threads();
    let mut stats = DiscoveryStats {
        rows: store.total_rows(),
        columns: columns.len(),
        distinct_values: store.distinct_values(),
        ..DiscoveryStats::default()
    };
    let mut spill = SpillStats::default();
    // Coordinator-side scratch for consolidating worker runs; removed on
    // drop, so it must outlive the spider merge.
    let root = config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
    let dir = SpillDir::create_in(&root)?;
    let plan = (config.memory_budget > 0)
        .then(|| BudgetPlan::new(&dir, config.memory_budget, columns.len()));

    let run_sets = exec.profile_columns(columns.len())?;
    if run_sets.len() != columns.len() {
        return Err(io::Error::other(format!(
            "shard executor profiled {} columns, schema has {}",
            run_sets.len(),
            columns.len()
        )));
    }
    let mut streams = Vec::with_capacity(columns.len());
    for set in &run_sets {
        streams.push(DistinctStream::Spilled(merge_run_set(
            set, &dir, &mut spill,
        )?));
    }

    let mut raw: Vec<Dependency> = Vec::new();
    let mut scored: Vec<ScoredDependency> = Vec::new();
    if config.max_error > 0.0 {
        let unary = spider_merge_counting(streams, store, &columns, config.max_error);
        for ind in mine_inds_scored(
            schema,
            store,
            &columns,
            &unary,
            config,
            threads,
            NaryBackend::Executor(exec),
            &mut stats,
            &mut scored,
        )? {
            raw.push(ind.into());
        }
    } else {
        let unary = spider_merge(streams);
        for ind in mine_inds_with(
            schema,
            store,
            &columns,
            &unary,
            config,
            threads,
            NaryBackend::Executor(exec),
            &mut stats,
        )? {
            raw.push(ind.into());
        }
    }
    stats.raw_inds = raw.len();
    for fd in mine_fds(
        schema,
        store,
        config,
        threads,
        plan.as_ref(),
        &mut stats,
        &mut scored,
    ) {
        raw.push(fd.into());
    }
    stats.raw_fds = raw.len() - stats.raw_inds;
    Ok(finish_discovery(raw, scored, config, stats, spill))
}

/// Worker-side profiling of one shard of the plan: publish the column's
/// values as sorted, checksummed runs (atomic rename per run and for the
/// manifest) into the coordinator's session directory, named
/// `col<C>-run<K>.ids` / `col<C>.manifest` — the names
/// [`publish_sorted_runs`] and the coordinator agree on. Two attempts at
/// the same shard write identical bytes through distinct scratch names,
/// so a retry racing a zombie worker is benign.
pub fn profile_column_runs(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    col: usize,
    dir: &Path,
    chunk_ids: usize,
) -> io::Result<RunSet> {
    let (rel, c) = columns[col];
    let values = store.relation(rel).column(c);
    let mut stats = SpillStats::default();
    publish_sorted_runs(values, chunk_ids, dir, col, &mut stats)
}

/// Worker-side n-ary refutation: which of `cands` fail on key-shard
/// `pass` of `passes` (`key_shard`-partitioned, the same partitioning
/// the budgeted local validator uses). A candidate is satisfied iff **no**
/// pass refutes it, so a coordinator unions refutations across passes —
/// every projection key is examined by exactly one pass, which is what
/// makes the union equal the unsharded verdict. Returns refuted indices
/// into `cands`, ascending. Trivial candidates are never refuted.
pub fn refute_candidates_pass(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    cands: &[IndCand],
    pass: usize,
    passes: usize,
) -> Vec<usize> {
    // Group candidate indices by right side so each shard key set is
    // built once per pass.
    let mut groups: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    let mut by_rhs: FastMap<Vec<usize>, usize> = FastMap::default();
    for (i, cand) in cands.iter().enumerate() {
        if cand.is_trivial() {
            continue;
        }
        match by_rhs.get(cand.rhs.as_slice()) {
            Some(&g) => groups[g].1.push(i),
            None => {
                by_rhs.insert(cand.rhs.clone(), groups.len());
                groups.push((cand.rhs.clone(), vec![i]));
            }
        }
    }
    let mut refuted = Vec::new();
    let mut buf = Vec::new();
    for (rhs, members) in &groups {
        let shard = build_rhs_keys_shard(store, columns, rhs, pass, passes);
        for &i in members {
            if !ind_holds_shard(store, columns, &cands[i], &shard, pass, passes, &mut buf) {
                refuted.push(i);
            }
        }
    }
    refuted.sort_unstable();
    refuted
}

/// Worker-side n-ary miss counting, the quantitative sibling of
/// [`refute_candidates_pass`]: for each candidate, how many of its left
/// rows on key-shard `pass` of `passes` have no matching right
/// projection. Every projection key is examined by exactly one pass, so a
/// coordinator *sums* the per-pass counts to obtain the exact unsharded
/// miss count — the counting analogue of unioning refutations. Returns
/// one count per candidate, in candidate order; trivial candidates count
/// zero misses.
pub fn count_candidate_misses_pass(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    cands: &[IndCand],
    pass: usize,
    passes: usize,
) -> Vec<u64> {
    let mut groups: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    let mut by_rhs: FastMap<Vec<usize>, usize> = FastMap::default();
    for (i, cand) in cands.iter().enumerate() {
        if cand.is_trivial() {
            continue;
        }
        match by_rhs.get(cand.rhs.as_slice()) {
            Some(&g) => groups[g].1.push(i),
            None => {
                by_rhs.insert(cand.rhs.clone(), groups.len());
                groups.push((cand.rhs.clone(), vec![i]));
            }
        }
    }
    let mut misses = vec![0u64; cands.len()];
    let mut buf = Vec::new();
    for (rhs, members) in &groups {
        let shard = build_rhs_keys_shard(store, columns, rhs, pass, passes);
        for &i in members {
            misses[i] = ind_misses_shard(store, columns, &cands[i], &shard, pass, passes, &mut buf);
        }
    }
    misses
}

/// Saturation caps for the pruning oracle. Cover minimization calls the
/// oracle quadratically often, and mined sets from low-cardinality data can
/// hold large accidental IND cliques whose full saturation materializes
/// thousands of compositions — so the interaction stage runs under tight,
/// *fixed* caps. Truncation keeps the saturator sound (it only derives
/// less), and fixing the caps keeps the oracle deterministic, which is what
/// makes "minimal cover" a well-defined property the tests can assert.
const PRUNING_LIMITS: SaturationLimits = SaturationLimits {
    max_rounds: 4,
    max_inds: 64,
    max_fds: 64,
};

/// Whether `sigma ⊨ target`, decided by the engines discovery prunes with:
/// the [`FdEngine`] closure for FD targets, the [`IndSolver`] walk search
/// for IND targets, then — when the per-class engines cannot settle it and
/// `sigma` genuinely mixes FDs with INDs — the Section 4 [`Saturator`]
/// under fixed resource caps. Complete within each single class, sound
/// (but, per Theorem 7.1, necessarily incomplete) across them.
pub fn implied_by(sigma: &[Dependency], target: &Dependency) -> bool {
    implied_by_with(sigma, target, true)
}

fn implied_by_with(sigma: &[Dependency], target: &Dependency, interaction: bool) -> bool {
    if target.is_trivial() {
        return true;
    }
    let mut has_fd = false;
    let mut has_ind = false;
    for d in sigma {
        match d {
            Dependency::Fd(_) => has_fd = true,
            Dependency::Ind(_) => has_ind = true,
            _ => {}
        }
    }
    match target {
        Dependency::Fd(fd) => {
            let fds: Vec<Fd> = sigma
                .iter()
                .filter_map(Dependency::as_fd)
                .cloned()
                .collect();
            if FdEngine::new(fd.rel.clone(), &fds).implies(fd) {
                return true;
            }
        }
        Dependency::Ind(ind) => {
            let inds: Vec<Ind> = sigma
                .iter()
                .filter_map(Dependency::as_ind)
                .cloned()
                .collect();
            if IndSolver::new(&inds).implies(ind) {
                return true;
            }
        }
        _ => {}
    }
    // The Section 4 rules all need both classes on the premise side; for a
    // single-class `sigma` the per-class engines above are already complete
    // for FD-only / IND-only implication, so the saturator is skipped.
    if !interaction || !has_fd || !has_ind {
        return false;
    }
    let mut sat = Saturator::with_limits(sigma, PRUNING_LIMITS);
    sat.saturate();
    sat.implies(target)
}

/// Prune `raw` to a minimal cover: a subset that still implies every raw
/// dependency, from which no member can be removed without losing some of
/// the raw set.
///
/// Two greedy stages, both strictly shrinking (so termination is by
/// construction, with no re-add loop that could oscillate):
///
/// 1. **Per-class elimination.** A member implied by the rest under the
///    class-complete engines alone ([`FdEngine`] for FDs, [`IndSolver`]
///    for INDs) is dropped. These oracles are monotone and transitive —
///    Armstrong / IND1–3 complete closure operators — so a removal can
///    never resurrect another member's redundancy and the surviving set
///    still derives everything removed.
/// 2. **Interaction elimination** (when
///    [`DiscoveryConfig::interaction_pruning`] is on). The capped
///    saturator is *not* a closure operator — truncation breaks
///    monotonicity — so here a removal is accepted only after verifying
///    the invariant directly: the remainder must still imply (per
///    [`implied_by`]) every dependency of `raw`. Anything else reverts.
///
/// The invariant "cover implies all of `raw`" therefore holds after every
/// accepted removal, and at the fixpoint removing any member breaks it —
/// exactly the minimality the acceptance tests assert.
pub fn minimize_cover(raw: &[Dependency], config: &DiscoveryConfig) -> Vec<Dependency> {
    let mut cover: Vec<Dependency> = raw.iter().filter(|d| !d.is_trivial()).cloned().collect();
    cover.sort();
    cover.dedup();
    let full = cover.clone();
    // Stage 1: per-class engines only.
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cover.len() {
            let mut rest = cover.clone();
            rest.remove(i);
            if implied_by_with(&rest, &cover[i], false) {
                cover.remove(i);
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    if !config.interaction_pruning {
        return cover;
    }
    // Stage 2: cross-class pruning, guarded by the raw-set invariant. The
    // member-implied check goes first as a cheap gate; the full sweep runs
    // only for actual removal candidates.
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cover.len() {
            let mut rest = cover.clone();
            rest.remove(i);
            if implied_by_with(&rest, &cover[i], true)
                && full.iter().all(|d| implied_by_with(&rest, d, true))
            {
                cover.remove(i);
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }
    cover
}

// ---------------------------------------------------------------------------
// Column profiling
// ---------------------------------------------------------------------------

/// Global column table: `(scheme index, column index)` per column id, in
/// schema order — the id space both IND miners share, and the id space a
/// shard plan is written in. Public so a shard worker, given only the
/// schema, reconstructs the exact table the coordinator planned against.
pub fn column_table(schema: &DatabaseSchema) -> Vec<(usize, usize)> {
    schema
        .schemes()
        .iter()
        .enumerate()
        .flat_map(|(r, s)| (0..s.arity()).map(move |c| (r, c)))
        .collect()
}

// ---------------------------------------------------------------------------
// Unary IND discovery (SPIDER over sorted-distinct column runs)
// ---------------------------------------------------------------------------

/// The stream-opening half of the unary SPIDER stage: every column as a
/// sorted distinct stream — the in-memory bitmap sweep under budget, a
/// merge over spilled runs above it
/// ([`ColumnStore::sorted_distinct_stream`]) — opened in parallel. Shared
/// by the exact merge ([`spider_merge`]) and the counting merge
/// ([`spider_merge_counting`]) so both consume byte-identical inputs.
fn open_distinct_streams(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    threads: usize,
    plan: Option<&BudgetPlan>,
    spill: &mut SpillStats,
) -> io::Result<Vec<DistinctStream>> {
    let ncols = columns.len();
    let made = pool::map_indexed(threads, ncols, |c| {
        let (rel, col) = columns[c];
        store.sorted_distinct_stream(
            rel,
            col,
            c,
            plan.map(|p| ColumnSpill {
                dir: p.dir,
                share_bytes: p.distinct_share,
            }),
        )
    });
    let mut streams = Vec::with_capacity(ncols);
    for res in made {
        let (stream, stats) = res?;
        spill.absorb(&stats);
        streams.push(stream);
    }
    Ok(streams)
}

/// SPIDER proper, cursor-per-attribute, over any set of sorted distinct
/// streams: for each column, compute the columns whose value sets contain
/// it — `result[c]` lists every `d` with `values(c) ⊆ values(d)`. One
/// k-way merge pops all cursors sitting at the minimum value `v`; that
/// popped group *is* the bit set of columns containing `v`, so each group
/// member's candidate set is intersected with the group mask on the spot.
/// No `occurs` table over the whole value domain and no materialized
/// distinct vectors: resident state is the `ncols²`-bit candidate matrix
/// plus one buffered cursor per column, regardless of data size. Every
/// distinct value is touched at most once per column containing it,
/// independent of how many rows repeat it — and values held by a *single*
/// column (the bulk of any key column) collapse further: their candidate
/// update is idempotent, so after the first such value the merge
/// fast-forwards the cursor to the next other-column bound
/// ([`DistinctStream::skip_below`] — one binary search on the resident
/// backing) with no heap traffic at all. Empty columns never surface in
/// the merge, so they keep every candidate — matching the
/// vacuous-satisfaction semantics of [`depkit_core::satisfy::check_ind`].
///
/// The local pipeline feeds it streams it opened itself; the sharded
/// pipeline ([`discover_store_sharded`]) feeds it merges over
/// worker-published runs. Identical streams in, identical candidate sets
/// out: this shared loop is what makes `sharded == local` an equality of
/// code paths rather than of luck.
fn spider_merge(mut streams: Vec<DistinctStream>) -> Vec<Vec<usize>> {
    let ncols = streams.len();
    let blocks = ncols.div_ceil(64);
    // cand[c * blocks..][..blocks]: columns whose value set still covers
    // column c's values seen so far.
    let mut cand = vec![!0u64; ncols * blocks];
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::with_capacity(ncols);
    for (c, stream) in streams.iter_mut().enumerate() {
        if let Some(v) = stream.next() {
            heap.push(Reverse((v, c)));
        }
    }
    let mut mask = vec![0u64; blocks];
    let mut group: Vec<usize> = Vec::with_capacity(ncols);
    // Columns already reduced to the singleton candidate set {c} by a
    // value nobody else holds: further sole values are no-ops, so their
    // runs fast-forward below without touching the heap.
    let mut soled = vec![false; ncols];
    while let Some(Reverse((v, c))) = heap.pop() {
        let shared = heap.peek().is_some_and(|&Reverse((v2, _))| v2 == v);
        if !shared {
            // `v` lives only in column `c`: no other column can cover
            // `c`, so cand[c] collapses to {c} — idempotently. Apply
            // once, then skip the whole run of values strictly below
            // every other cursor (they are sole for the same reason)
            // with plain stream reads, no heap traffic.
            if !soled[c] {
                soled[c] = true;
                for (b, dst) in cand[c * blocks..(c + 1) * blocks].iter_mut().enumerate() {
                    *dst &= if b == c / 64 { 1 << (c % 64) } else { 0 };
                }
            }
            let bound = heap.peek().map_or(u32::MAX, |&Reverse((m, _))| m);
            if let Some(n) = streams[c].skip_below(bound) {
                heap.push(Reverse((n, c)));
            }
            continue;
        }
        mask.fill(0);
        group.clear();
        mask[c / 64] |= 1 << (c % 64);
        group.push(c);
        if let Some(n) = streams[c].next() {
            heap.push(Reverse((n, c)));
        }
        while let Some(&Reverse((v2, c2))) = heap.peek() {
            if v2 != v {
                break;
            }
            heap.pop();
            mask[c2 / 64] |= 1 << (c2 % 64);
            group.push(c2);
            if let Some(n) = streams[c2].next() {
                heap.push(Reverse((n, c2)));
            }
        }
        for &c in &group {
            for (dst, &src) in cand[c * blocks..(c + 1) * blocks].iter_mut().zip(&mask) {
                *dst &= src;
            }
        }
    }
    (0..ncols)
        .map(|c| {
            let bits = &cand[c * blocks..(c + 1) * blocks];
            (0..ncols)
                .filter(|d| bits[d / 64] & (1 << (d % 64)) != 0)
                .collect()
        })
        .collect()
}

/// The counting sibling of [`spider_merge`]: the same cursor-per-attribute
/// k-way merge, but instead of intersecting candidate bit sets it
/// accumulates, for every ordered column pair `(c, d)`, the number of
/// **rows** of `c` whose value is absent from `d` — the row-based miss
/// measure behind approximate unary INDs. When the merge pops value `v`
/// with group `G` (the columns containing `v`), each `c ∈ G` contributes
/// its frequency of `v` to `misses[c][d]` for every `d ∉ G`; summed over
/// all values this is exactly `|{rows of c : value ∉ d}|`. Row
/// frequencies come from a dense `distinct × ncols` table built by one
/// scan per column — resident state the exact merge never needs, which is
/// why the exact path keeps its own merge (and its sole-value
/// fast-forward, unusable here because skipped values still carry miss
/// weight). Per column `c`, returns the pairs `(d, misses)` kept by the
/// tolerance — `misses ≤ max_error × rows(c)` — always including the
/// zero-miss self pair. Empty columns surface nowhere in the merge, so
/// they keep every candidate at zero misses, matching vacuous
/// satisfaction. The output is a pure function of the streams and the
/// store: identical across threads, budgets, and sharded profiling.
fn spider_merge_counting(
    mut streams: Vec<DistinctStream>,
    store: &ColumnStore,
    columns: &[(usize, usize)],
    max_error: f64,
) -> Vec<Vec<(usize, u64)>> {
    let ncols = streams.len();
    let nvals = store.distinct_values();
    let mut freq = vec![0u32; nvals * ncols];
    for (c, &(rel, col)) in columns.iter().enumerate() {
        for &v in store.relation(rel).column(col) {
            freq[v as usize * ncols + c] += 1;
        }
    }
    let mut misses = vec![0u64; ncols * ncols];
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::with_capacity(ncols);
    for (c, stream) in streams.iter_mut().enumerate() {
        if let Some(v) = stream.next() {
            heap.push(Reverse((v, c)));
        }
    }
    let mut group: Vec<usize> = Vec::with_capacity(ncols);
    let mut in_group = vec![false; ncols];
    while let Some(Reverse((v, c))) = heap.pop() {
        group.clear();
        group.push(c);
        if let Some(n) = streams[c].next() {
            heap.push(Reverse((n, c)));
        }
        while let Some(&Reverse((v2, c2))) = heap.peek() {
            if v2 != v {
                break;
            }
            heap.pop();
            group.push(c2);
            if let Some(n) = streams[c2].next() {
                heap.push(Reverse((n, c2)));
            }
        }
        for &c in &group {
            in_group[c] = true;
        }
        for &c in &group {
            let f = u64::from(freq[v as usize * ncols + c]);
            for (d, row) in misses[c * ncols..(c + 1) * ncols].iter_mut().enumerate() {
                if !in_group[d] {
                    *row += f;
                }
            }
        }
        for &c in &group {
            in_group[c] = false;
        }
    }
    (0..ncols)
        .map(|c| {
            let rows = store.relation(columns[c].0).row_count() as f64;
            (0..ncols)
                .filter_map(|d| {
                    let m = misses[c * ncols + d];
                    (m as f64 <= max_error * rows).then_some((d, m))
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// n-ary IND discovery (composition + packed-key columnar validation)
// ---------------------------------------------------------------------------

/// A canonical IND candidate over global column ids: left columns strictly
/// ascending (quotienting the IND2 permutation class), both sides over one
/// relation pair. Trivial candidates (`lhs == rhs` on one relation) are
/// kept as composition bases but never emitted.
///
/// Public (with public fields) because this is the unit of work a shard
/// plan ships to worker processes: both sides of the process boundary
/// resolve the global column ids through the same [`column_table`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndCand {
    /// Scheme index of the left relation.
    pub lrel: usize,
    /// Scheme index of the right relation.
    pub rrel: usize,
    /// Global column ids of the left side, strictly ascending.
    pub lhs: Vec<usize>,
    /// Global column ids of the right side, pairwise distinct.
    pub rhs: Vec<usize>,
}

impl IndCand {
    /// Whether the candidate holds by reflexivity (IND1) alone.
    pub fn is_trivial(&self) -> bool {
        self.lrel == self.rrel && self.lhs == self.rhs
    }
}

/// Where n-ary candidate verdicts come from: the local validator (cached
/// key sets, or budget-sharded passes under a plan) or a
/// [`ShardExecutor`] distributing the refutation passes across worker
/// processes. Both produce the exact satisfied set, so the composition
/// loop above them is shared verbatim.
enum NaryBackend<'a, 'b> {
    Local(Option<&'a BudgetPlan<'b>>),
    Executor(&'a mut dyn ShardExecutor),
}

/// Mine every satisfied canonical IND up to `config.max_ind_arity`.
///
/// Levels are processed one at a time. Unbounded, the distinct right-side
/// projection sets are materialized first (in parallel) as word-packed
/// [`KeySet`]s keyed by their global column ids — the cache persists
/// across levels and is probed borrow-keyed, never cloning the column
/// list — and then every candidate is validated in parallel. Under a
/// memory budget, a right side whose key set would exceed its share is
/// instead validated in [`key_shard`]-partitioned passes (see
/// `validate_sharded`), and nothing is cached across levels.
#[allow(clippy::too_many_arguments)]
fn mine_inds(
    schema: &DatabaseSchema,
    store: &ColumnStore,
    columns: &[(usize, usize)],
    unary: &[Vec<usize>],
    config: &DiscoveryConfig,
    threads: usize,
    plan: Option<&BudgetPlan>,
    stats: &mut DiscoveryStats,
) -> Vec<Ind> {
    mine_inds_with(
        schema,
        store,
        columns,
        unary,
        config,
        threads,
        NaryBackend::Local(plan),
        stats,
    )
    .expect("local validation performs no I/O")
}

/// [`mine_inds`] over an explicit [`NaryBackend`] — the executor variant
/// is how [`discover_store_sharded`] routes level ≥ 2 validation to
/// worker processes while keeping the composition loop (and therefore
/// the candidate order, the stats, and the emitted set) identical.
#[allow(clippy::too_many_arguments)]
fn mine_inds_with(
    schema: &DatabaseSchema,
    store: &ColumnStore,
    columns: &[(usize, usize)],
    unary: &[Vec<usize>],
    config: &DiscoveryConfig,
    threads: usize,
    mut backend: NaryBackend,
    stats: &mut DiscoveryStats,
) -> io::Result<Vec<Ind>> {
    let mut out = Vec::new();
    // Level 1, plus the per-relation-pair extension table.
    let mut level: Vec<IndCand> = Vec::new();
    let mut by_pair: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for (c, supersets) in unary.iter().enumerate() {
        for &d in supersets {
            let cand = IndCand {
                lrel: columns[c].0,
                rrel: columns[d].0,
                lhs: vec![c],
                rhs: vec![d],
            };
            if !cand.is_trivial() {
                out.push(to_ind(schema, columns, &cand));
            }
            by_pair
                .entry((cand.lrel, cand.rrel))
                .or_default()
                .push((c, d));
            level.push(cand);
        }
    }
    // Higher levels: extend with a unary IND over the same relation pair.
    // The right-projection key sets are cached across levels, keyed by the
    // global column ids of the right side (which determine the relation).
    let mut rhs_sets: FastMap<Vec<usize>, KeySet> = FastMap::default();
    for _arity in 2..=config.max_ind_arity {
        let mut cands: Vec<IndCand> = Vec::new();
        for base in &level {
            let Some(extensions) = by_pair.get(&(base.lrel, base.rrel)) else {
                continue;
            };
            for &(a, b) in extensions {
                // Canonical order keeps the left side ascending (and
                // thereby distinct); the right side must stay distinct too.
                if a <= *base.lhs.last().expect("bases are nonempty") || base.rhs.contains(&b) {
                    continue;
                }
                cands.push(IndCand {
                    lrel: base.lrel,
                    rrel: base.rrel,
                    lhs: base.lhs.iter().copied().chain([a]).collect(),
                    rhs: base.rhs.iter().copied().chain([b]).collect(),
                });
            }
        }
        if cands.is_empty() {
            break;
        }
        let ok = match &mut backend {
            NaryBackend::Local(Some(plan)) => {
                validate_sharded(store, columns, &cands, plan, threads)
            }
            NaryBackend::Local(None) => {
                // Materialize the missing right-side key sets, in parallel;
                // the borrow-keyed probe never clones an already-cached
                // column list, and a constant-time seen-guard keeps the dedup
                // linear in the candidate count.
                let mut missing: Vec<Vec<usize>> = Vec::new();
                let mut queued: FastSet<Vec<usize>> = FastSet::default();
                for cand in &cands {
                    if !cand.is_trivial()
                        && !rhs_sets.contains_key(cand.rhs.as_slice())
                        && !queued.contains(cand.rhs.as_slice())
                    {
                        queued.insert(cand.rhs.clone());
                        missing.push(cand.rhs.clone());
                    }
                }
                let built = pool::map_indexed(threads, missing.len(), |i| {
                    build_rhs_keys(store, columns, &missing[i])
                });
                for (cols, set) in missing.into_iter().zip(built) {
                    rhs_sets.insert(cols, set);
                }
                // Validate every candidate in parallel (read-only cache);
                // merge in candidate order so the output is thread-count
                // independent.
                pool::map_indexed_with(threads, cands.len(), Vec::new, |buf, i| {
                    let cand = &cands[i];
                    cand.is_trivial() || ind_holds(store, columns, cand, &rhs_sets, buf)
                })
            }
            NaryBackend::Executor(exec) => {
                // Ship only the nontrivial candidates; trivial ones hold
                // by IND1 and stay composition bases on this side.
                let shipped: Vec<usize> = (0..cands.len())
                    .filter(|&i| !cands[i].is_trivial())
                    .collect();
                let batch: Vec<IndCand> = shipped.iter().map(|&i| cands[i].clone()).collect();
                let verdicts = exec.validate_candidates(&batch)?;
                if verdicts.len() != batch.len() {
                    return Err(io::Error::other(format!(
                        "shard executor returned {} verdicts for {} candidates",
                        verdicts.len(),
                        batch.len()
                    )));
                }
                let mut ok = vec![true; cands.len()];
                for (&i, v) in shipped.iter().zip(verdicts) {
                    ok[i] = v;
                }
                ok
            }
        };
        let mut next = Vec::new();
        for (cand, ok) in cands.into_iter().zip(ok) {
            if !cand.is_trivial() {
                stats.ind_candidates += 1;
            }
            if ok {
                if !cand.is_trivial() {
                    out.push(to_ind(schema, columns, &cand));
                }
                next.push(cand);
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }
    Ok(out)
}

/// The approximate sibling of [`mine_inds_with`]: identical composition
/// loop, but every candidate is *counted* rather than refuted — its exact
/// miss count (left rows with no matching right projection) decides
/// whether it survives the tolerance, and every survivor is recorded in
/// `scored` with its misses and support. Kept as a separate function
/// rather than a mode flag so the exact loop stays byte-identical and
/// boolean early-exit validation keeps its speed.
///
/// Composition over approximate bases is sound a-priori-style: a
/// projection of an IND can only miss on rows where the full tuple also
/// misses, so `misses(projection) ≤ misses(full)` and every candidate
/// within tolerance arises from bases within tolerance. Trivial
/// candidates stay zero-miss composition bases, exactly as in the exact
/// loop.
#[allow(clippy::too_many_arguments)]
fn mine_inds_scored(
    schema: &DatabaseSchema,
    store: &ColumnStore,
    columns: &[(usize, usize)],
    unary: &[Vec<(usize, u64)>],
    config: &DiscoveryConfig,
    threads: usize,
    mut backend: NaryBackend,
    stats: &mut DiscoveryStats,
    scored: &mut Vec<ScoredDependency>,
) -> io::Result<Vec<Ind>> {
    let mut out = Vec::new();
    let mut level: Vec<IndCand> = Vec::new();
    let mut by_pair: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for (c, supersets) in unary.iter().enumerate() {
        let support = store.relation(columns[c].0).row_count() as u64;
        for &(d, miss) in supersets {
            let cand = IndCand {
                lrel: columns[c].0,
                rrel: columns[d].0,
                lhs: vec![c],
                rhs: vec![d],
            };
            if !cand.is_trivial() {
                let ind = to_ind(schema, columns, &cand);
                scored.push(ScoredDependency {
                    dep: ind.clone().into(),
                    misses: miss,
                    support,
                });
                out.push(ind);
            }
            by_pair
                .entry((cand.lrel, cand.rrel))
                .or_default()
                .push((c, d));
            level.push(cand);
        }
    }
    let mut rhs_sets: FastMap<Vec<usize>, KeySet> = FastMap::default();
    for _arity in 2..=config.max_ind_arity {
        let mut cands: Vec<IndCand> = Vec::new();
        for base in &level {
            let Some(extensions) = by_pair.get(&(base.lrel, base.rrel)) else {
                continue;
            };
            for &(a, b) in extensions {
                if a <= *base.lhs.last().expect("bases are nonempty") || base.rhs.contains(&b) {
                    continue;
                }
                cands.push(IndCand {
                    lrel: base.lrel,
                    rrel: base.rrel,
                    lhs: base.lhs.iter().copied().chain([a]).collect(),
                    rhs: base.rhs.iter().copied().chain([b]).collect(),
                });
            }
        }
        if cands.is_empty() {
            break;
        }
        let misses: Vec<u64> = match &mut backend {
            NaryBackend::Local(Some(plan)) => {
                count_misses_sharded(store, columns, &cands, plan, threads)
            }
            NaryBackend::Local(None) => {
                let mut missing: Vec<Vec<usize>> = Vec::new();
                let mut queued: FastSet<Vec<usize>> = FastSet::default();
                for cand in &cands {
                    if !cand.is_trivial()
                        && !rhs_sets.contains_key(cand.rhs.as_slice())
                        && !queued.contains(cand.rhs.as_slice())
                    {
                        queued.insert(cand.rhs.clone());
                        missing.push(cand.rhs.clone());
                    }
                }
                let built = pool::map_indexed(threads, missing.len(), |i| {
                    build_rhs_keys(store, columns, &missing[i])
                });
                for (cols, set) in missing.into_iter().zip(built) {
                    rhs_sets.insert(cols, set);
                }
                pool::map_indexed_with(threads, cands.len(), Vec::new, |buf, i| {
                    let cand = &cands[i];
                    if cand.is_trivial() {
                        0
                    } else {
                        ind_misses(store, columns, cand, &rhs_sets, buf)
                    }
                })
            }
            NaryBackend::Executor(exec) => {
                let shipped: Vec<usize> = (0..cands.len())
                    .filter(|&i| !cands[i].is_trivial())
                    .collect();
                let batch: Vec<IndCand> = shipped.iter().map(|&i| cands[i].clone()).collect();
                let counts = exec.count_misses(&batch)?;
                if counts.len() != batch.len() {
                    return Err(io::Error::other(format!(
                        "shard executor returned {} miss counts for {} candidates",
                        counts.len(),
                        batch.len()
                    )));
                }
                let mut misses = vec![0u64; cands.len()];
                for (&i, m) in shipped.iter().zip(counts) {
                    misses[i] = m;
                }
                misses
            }
        };
        let mut next = Vec::new();
        for (cand, miss) in cands.into_iter().zip(misses) {
            if !cand.is_trivial() {
                stats.ind_candidates += 1;
            }
            let support = store.relation(cand.lrel).row_count() as u64;
            if miss as f64 <= config.max_error * support as f64 {
                if !cand.is_trivial() {
                    let ind = to_ind(schema, columns, &cand);
                    scored.push(ScoredDependency {
                        dep: ind.clone().into(),
                        misses: miss,
                        support,
                    });
                    out.push(ind);
                }
                next.push(cand);
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }
    Ok(out)
}

/// Materialize the distinct right-side projections of one global-column
/// set as a word-packed [`KeySet`].
fn build_rhs_keys(store: &ColumnStore, columns: &[(usize, usize)], rhs: &[usize]) -> KeySet {
    let rrel = columns[rhs[0]].0;
    let rcols: Vec<usize> = rhs.iter().map(|&c| columns[c].1).collect();
    let rel = store.relation(rrel);
    let cursor = ColumnCursor::new(rel, &rcols);
    let mut set = KeySet::with_arity(rcols.len());
    let mut buf = Vec::with_capacity(rcols.len());
    for r in 0..rel.row_count() {
        cursor.fill(r, &mut buf);
        set.insert(&buf);
    }
    set
}

/// Validate a candidate: every left projection must appear among the right
/// projections. A pure column-gather scan — the reused `buf` is the only
/// storage touched per row.
fn ind_holds(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    cand: &IndCand,
    rhs_sets: &FastMap<Vec<usize>, KeySet>,
    buf: &mut Vec<u32>,
) -> bool {
    let keys = &rhs_sets[cand.rhs.as_slice()];
    let lcols: Vec<usize> = cand.lhs.iter().map(|&c| columns[c].1).collect();
    let rel = store.relation(cand.lrel);
    let cursor = ColumnCursor::new(rel, &lcols);
    for r in 0..rel.row_count() {
        cursor.fill(r, buf);
        if !keys.contains(buf) {
            return false;
        }
    }
    true
}

/// Count a candidate's misses: left rows whose projection is absent from
/// the right key set. [`ind_holds`] without the early return — the full
/// scan is the price of the exact count.
fn ind_misses(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    cand: &IndCand,
    rhs_sets: &FastMap<Vec<usize>, KeySet>,
    buf: &mut Vec<u32>,
) -> u64 {
    let keys = &rhs_sets[cand.rhs.as_slice()];
    let lcols: Vec<usize> = cand.lhs.iter().map(|&c| columns[c].1).collect();
    let rel = store.relation(cand.lrel);
    let cursor = ColumnCursor::new(rel, &lcols);
    let mut misses = 0u64;
    for r in 0..rel.row_count() {
        cursor.fill(r, buf);
        if !keys.contains(buf) {
            misses += 1;
        }
    }
    misses
}

/// Hard cap on [`key_shard`] passes per right side. The pass count is
/// `est_bytes / keyset_share`, so a pathologically tiny budget on a big
/// relation could demand thousands of full left-side rescans; beyond this
/// cap the shard sets exceed their share instead (graceful degradation —
/// the run may use more memory than asked, never produce different
/// output).
const MAX_KEY_PASSES: usize = 64;

/// Bytes a [`KeySet`] of `rows` keys at the given arity occupies, by the
/// set's own packing rules (`u64` entries up to arity 2, `u128` for 3–4,
/// boxed slices beyond) plus a fixed per-entry table overhead.
/// Deliberately a function of the data shape alone, so the sharded pass
/// count is deterministic.
fn keyset_bytes_estimate(rows: usize, arity: usize) -> usize {
    let per_key = match arity {
        0..=2 => 16,
        3..=4 => 24,
        a => 24 + 4 * a,
    };
    rows * per_key
}

/// Deterministic shard of a projection key: FNV-1a over the id words.
/// The right-side build and the left-side probe must agree on this, and
/// it must depend on nothing but the key itself — then pass `p` validates
/// exactly the keys the unsharded validator would have looked up in shard
/// `p`, and the sharded verdict equals the unsharded one.
fn key_shard(key: &[u32], passes: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in key {
        h ^= u64::from(v);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % passes as u64) as usize
}

/// Memory-budgeted candidate validation: group candidates by right side;
/// for each right side whose full [`KeySet`] would exceed its budget
/// share, run `passes = est / share` hash-partitioned passes — build the
/// shard-`p` subset of the right keys, then scan every member candidate's
/// left rows restricted to shard `p` (parallel over candidates, merged in
/// candidate order). A candidate is valid iff it survives every pass.
/// Verdicts are exactly the unsharded ones; only peak memory differs.
fn validate_sharded(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    cands: &[IndCand],
    plan: &BudgetPlan,
    threads: usize,
) -> Vec<bool> {
    // Trivial candidates hold by definition, mirroring the unsharded path.
    let mut ok = vec![true; cands.len()];
    // Group candidate indices by right side, first-seen order.
    let mut groups: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    let mut by_rhs: FastMap<Vec<usize>, usize> = FastMap::default();
    for (i, cand) in cands.iter().enumerate() {
        if cand.is_trivial() {
            continue;
        }
        match by_rhs.get(cand.rhs.as_slice()) {
            Some(&g) => groups[g].1.push(i),
            None => {
                by_rhs.insert(cand.rhs.clone(), groups.len());
                groups.push((cand.rhs.clone(), vec![i]));
            }
        }
    }
    for (rhs, members) in &groups {
        let rrel = columns[rhs[0]].0;
        let rows = store.relation(rrel).row_count();
        let passes = keyset_bytes_estimate(rows, rhs.len())
            .div_ceil(plan.keyset_share)
            .clamp(1, MAX_KEY_PASSES);
        for pass in 0..passes {
            // Candidates already refuted by an earlier pass need no more
            // scans; skipping them cannot change any verdict.
            let alive: Vec<usize> = members.iter().copied().filter(|&i| ok[i]).collect();
            if alive.is_empty() {
                break;
            }
            let shard = build_rhs_keys_shard(store, columns, rhs, pass, passes);
            let verdicts = pool::map_subset_with(threads, &alive, Vec::new, |buf, i| {
                ind_holds_shard(store, columns, &cands[i], &shard, pass, passes, buf)
            });
            for (&i, good) in alive.iter().zip(verdicts) {
                ok[i] = good;
            }
        }
    }
    ok
}

/// Memory-budgeted miss counting: [`validate_sharded`]'s pass structure
/// with the boolean verdicts replaced by per-pass miss sums. Two
/// deliberate differences: there is **no** early break — a candidate
/// already over tolerance still needs its exact count, and every
/// projection key lands in exactly one [`key_shard`] pass, so only the
/// full pass sum equals the unsharded [`ind_misses`] scan; and trivial
/// candidates count zero without scanning. The per-pass shard sets obey
/// the same budget share as boolean validation.
fn count_misses_sharded(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    cands: &[IndCand],
    plan: &BudgetPlan,
    threads: usize,
) -> Vec<u64> {
    let mut misses = vec![0u64; cands.len()];
    let mut groups: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    let mut by_rhs: FastMap<Vec<usize>, usize> = FastMap::default();
    for (i, cand) in cands.iter().enumerate() {
        if cand.is_trivial() {
            continue;
        }
        match by_rhs.get(cand.rhs.as_slice()) {
            Some(&g) => groups[g].1.push(i),
            None => {
                by_rhs.insert(cand.rhs.clone(), groups.len());
                groups.push((cand.rhs.clone(), vec![i]));
            }
        }
    }
    for (rhs, members) in &groups {
        let rrel = columns[rhs[0]].0;
        let rows = store.relation(rrel).row_count();
        let passes = keyset_bytes_estimate(rows, rhs.len())
            .div_ceil(plan.keyset_share)
            .clamp(1, MAX_KEY_PASSES);
        for pass in 0..passes {
            let shard = build_rhs_keys_shard(store, columns, rhs, pass, passes);
            let counts = pool::map_subset_with(threads, members, Vec::new, |buf, i| {
                ind_misses_shard(store, columns, &cands[i], &shard, pass, passes, buf)
            });
            for (&i, m) in members.iter().zip(counts) {
                misses[i] += m;
            }
        }
    }
    misses
}

/// The shard-`pass` subset of [`build_rhs_keys`]: only right keys whose
/// [`key_shard`] is `pass` enter the set.
fn build_rhs_keys_shard(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    rhs: &[usize],
    pass: usize,
    passes: usize,
) -> KeySet {
    let rrel = columns[rhs[0]].0;
    let rcols: Vec<usize> = rhs.iter().map(|&c| columns[c].1).collect();
    let rel = store.relation(rrel);
    let cursor = ColumnCursor::new(rel, &rcols);
    let mut set = KeySet::with_arity(rcols.len());
    let mut buf = Vec::with_capacity(rcols.len());
    for r in 0..rel.row_count() {
        cursor.fill(r, &mut buf);
        if key_shard(&buf, passes) == pass {
            set.insert(&buf);
        }
    }
    set
}

/// The shard-`pass` slice of [`ind_holds`]: left rows outside the shard
/// are someone else's pass; rows inside it must appear in the shard set.
#[allow(clippy::too_many_arguments)]
fn ind_holds_shard(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    cand: &IndCand,
    shard: &KeySet,
    pass: usize,
    passes: usize,
    buf: &mut Vec<u32>,
) -> bool {
    let lcols: Vec<usize> = cand.lhs.iter().map(|&c| columns[c].1).collect();
    let rel = store.relation(cand.lrel);
    let cursor = ColumnCursor::new(rel, &lcols);
    for r in 0..rel.row_count() {
        cursor.fill(r, buf);
        if key_shard(buf, passes) == pass && !shard.contains(buf) {
            return false;
        }
    }
    true
}

/// The counting slice of [`ind_misses`]: misses among the left rows whose
/// projection key falls on shard `pass`. Summed over all passes this is
/// the exact unsharded miss count, because [`key_shard`] assigns every
/// key to exactly one pass.
#[allow(clippy::too_many_arguments)]
fn ind_misses_shard(
    store: &ColumnStore,
    columns: &[(usize, usize)],
    cand: &IndCand,
    shard: &KeySet,
    pass: usize,
    passes: usize,
    buf: &mut Vec<u32>,
) -> u64 {
    let lcols: Vec<usize> = cand.lhs.iter().map(|&c| columns[c].1).collect();
    let rel = store.relation(cand.lrel);
    let cursor = ColumnCursor::new(rel, &lcols);
    let mut misses = 0u64;
    for r in 0..rel.row_count() {
        cursor.fill(r, buf);
        if key_shard(buf, passes) == pass && !shard.contains(buf) {
            misses += 1;
        }
    }
    misses
}

/// Resolve a candidate's global column ids back to a string-typed [`Ind`].
fn to_ind(schema: &DatabaseSchema, columns: &[(usize, usize)], cand: &IndCand) -> Ind {
    let lhs_scheme = &schema.schemes()[cand.lrel];
    let rhs_scheme = &schema.schemes()[cand.rrel];
    let lcols: Vec<usize> = cand.lhs.iter().map(|&c| columns[c].1).collect();
    let rcols: Vec<usize> = cand.rhs.iter().map(|&c| columns[c].1).collect();
    Ind::new(
        lhs_scheme.name().clone(),
        lhs_scheme.attrs().select(&lcols).expect("distinct columns"),
        rhs_scheme.name().clone(),
        rhs_scheme.attrs().select(&rcols).expect("distinct columns"),
    )
    .expect("equal arities by construction")
}

// ---------------------------------------------------------------------------
// FD discovery (level-wise partition refinement over columns)
// ---------------------------------------------------------------------------

/// A stripped partition: the equivalence classes of `π_X` over row indices,
/// with singleton classes dropped (they can never witness a violation).
type Partition = Vec<Vec<u32>>;

/// What one lattice node contributes: how many `(X, A)` pairs it checked,
/// which right-hand columns `X` determines — each with its g3 error,
/// always `0` in exact mode — and its refined children.
#[derive(Default)]
struct NodeResult {
    checked: usize,
    determined_cols: Vec<(usize, u64)>,
    children: Vec<(Vec<usize>, Partition)>,
}

/// Check one lattice node against the `found` set frozen at the level
/// boundary: which right-hand columns `X` determines, and which child
/// left sides extend it. With `carry` set, children materialize their
/// refined partitions (the in-memory mode); without it, children carry
/// the left side only and the next level recomputes partitions via
/// [`recompute_partition`] (the memory-budgeted mode).
///
/// `g3_budget` is `None` in exact mode ([`Refiner::determines`], with its
/// first-disagreement early exit) and `Some(max_error × rows)` in
/// approximate mode, where a column is "determined" when its
/// [`Refiner::g3_error`] fits the budget. g3 is monotone non-increasing
/// as `X` grows, so both minimality pruning (a subset within budget makes
/// every superset within budget, hence non-minimal) and the superkey
/// prune (an empty stripped partition has g3 = 0 everywhere) remain valid
/// at any threshold.
#[allow(clippy::too_many_arguments)]
fn check_fd_node(
    rel: &RelationColumns,
    arity: usize,
    found: &[(Vec<usize>, usize)],
    lhs: &[usize],
    partition: &Partition,
    refiner: &mut Refiner,
    last_level: bool,
    carry: bool,
    g3_budget: Option<f64>,
) -> NodeResult {
    let determined = |c: usize| {
        found
            .iter()
            .any(|(y, a)| *a == c && y.iter().all(|x| lhs.contains(x)))
    };
    // Right-hand candidates: columns outside `X` not already determined
    // by a found subset (those FDs would not be minimal).
    let rhs: Vec<usize> = (0..arity)
        .filter(|&c| !lhs.contains(&c) && !determined(c))
        .collect();
    if rhs.is_empty() {
        // Everything outside X is determined by subsets of X: no superset
        // of X can carry a minimal FD.
        return NodeResult::default();
    }
    let mut node = NodeResult {
        checked: rhs.len(),
        ..NodeResult::default()
    };
    for &c in &rhs {
        match g3_budget {
            None => {
                if Refiner::determines(partition, rel.column(c)) {
                    node.determined_cols.push((c, 0));
                }
            }
            Some(budget) => {
                let err = Refiner::g3_error(partition, rel.column(c));
                if err as f64 <= budget {
                    node.determined_cols.push((c, err));
                }
            }
        }
    }
    // Superkey prune: with no class of size ≥ 2 left, X determines
    // everything, so no superset FD is minimal.
    if partition.is_empty() || last_level {
        return node;
    }
    let start = lhs.last().map_or(0, |&l| l + 1);
    for c in start..arity {
        // A column determined by a subset of X (or by X itself, just
        // established) can never sit in a minimal left side extending X.
        if node.determined_cols.iter().any(|&(d, _)| d == c) || determined(c) {
            continue;
        }
        let mut extended = lhs.to_vec();
        extended.push(c);
        let child = if carry {
            refiner.refine_stripped(partition, rel.column(c))
        } else {
            Vec::new()
        };
        node.children.push((extended, child));
    }
    node
}

/// Recompute `π_X` from the root by refining one column at a time in
/// ascending order — exactly the order the carried-partition mode refines
/// in (children always extend with a larger column index), so the result
/// is identical to the partition that would have been carried.
fn recompute_partition(
    refiner: &mut Refiner,
    rel: &RelationColumns,
    root: &Partition,
    lhs: &[usize],
) -> Partition {
    let mut part: Option<Partition> = None;
    for &c in lhs {
        part = Some(refiner.refine_stripped(part.as_ref().unwrap_or(root), rel.column(c)));
    }
    part.unwrap_or_else(|| root.clone())
}

/// Deterministic wave of one lattice node under the memory budget:
/// FNV-1a over its left-side column indices.
fn lhs_shard(lhs: &[usize], waves: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in lhs {
        h ^= c as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % waves as u64) as usize
}

/// Mine the minimal satisfied FDs of every relation.
///
/// Lattice nodes of one level are processed in parallel against the
/// `found` set *frozen at the level boundary*. That is exactly equivalent
/// to the sequential sweep: a minimal-FD left side found at this level has
/// the same size as every other node's `X`, so it can only be a subset of
/// `X` by being `X` itself — other nodes' same-level finds can never
/// influence a node's pruning, and each node sees its own finds locally.
///
/// Under a memory budget, a relation whose carried partitions would
/// exceed the FD share switches to **external mode**: level entries carry
/// left sides only, each node recomputes its partition from the root
/// ([`recompute_partition`] — trading refinement passes for memory), and
/// the level is processed in [`lhs_shard`]-assigned waves so at most one
/// wave's worth of transient partitions is in flight. Results are
/// scattered back by node index and merged in the same order as the
/// in-memory sweep — the frozen-`found` argument above covers waves just
/// as it covers threads, so the output is byte-identical.
fn mine_fds(
    schema: &DatabaseSchema,
    store: &ColumnStore,
    config: &DiscoveryConfig,
    threads: usize,
    plan: Option<&BudgetPlan>,
    stats: &mut DiscoveryStats,
    scored: &mut Vec<ScoredDependency>,
) -> Vec<Fd> {
    let mut out = Vec::new();
    let nvals = store.distinct_values();
    for (ri, scheme) in schema.schemes().iter().enumerate() {
        let rel = store.relation(ri);
        let arity = scheme.arity();
        let rows = rel.row_count();
        // Approximate mode: a column is determined when its g3 error fits
        // `max_error` of the relation's rows; each find is scored below.
        let g3_budget = (config.max_error > 0.0).then_some(config.max_error * rows as f64);
        // External when even one partition per attribute would overrun
        // the share — a deterministic function of the data shape.
        let external = plan.is_some_and(|p| 4 * rows * arity > p.fd_share);
        // Minimal FDs found so far, as (lhs columns sorted, rhs column).
        let mut found: Vec<(Vec<usize>, usize)> = Vec::new();
        // Level 0: the empty left side; its partition is one class of all
        // rows (stripped, so empty when the relation has ≤ 1 row — every
        // column is then vacuously constant).
        let root: Partition = if rows >= 2 {
            vec![(0..rows as u32).collect()]
        } else {
            Vec::new()
        };
        let mut level: Vec<(Vec<usize>, Partition)> = vec![(Vec::new(), root.clone())];
        for size in 0..=config.max_fd_lhs {
            let node = |refiner: &mut Refiner, i: usize| {
                let (lhs, carried) = &level[i];
                let recomputed;
                let partition = if external && size > 0 {
                    recomputed = recompute_partition(refiner, rel, &root, lhs);
                    &recomputed
                } else {
                    carried
                };
                check_fd_node(
                    rel,
                    arity,
                    &found,
                    lhs,
                    partition,
                    refiner,
                    size == config.max_fd_lhs,
                    !external,
                    g3_budget,
                )
            };
            let results: Vec<NodeResult> = if !external {
                pool::map_indexed_with(threads, level.len(), || Refiner::new(nvals), node)
            } else {
                let fd_share = plan.expect("external implies a plan").fd_share;
                let waves = (level.len().saturating_mul(4 * rows))
                    .div_ceil(fd_share)
                    .clamp(1, level.len().max(1));
                let mut slots: Vec<Option<NodeResult>> = (0..level.len()).map(|_| None).collect();
                for w in 0..waves {
                    let members: Vec<usize> = (0..level.len())
                        .filter(|&i| lhs_shard(&level[i].0, waves) == w)
                        .collect();
                    let wave =
                        pool::map_subset_with(threads, &members, || Refiner::new(nvals), node);
                    for (&i, res) in members.iter().zip(wave) {
                        slots[i] = Some(res);
                    }
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("every node lands in exactly one wave"))
                    .collect()
            };
            // Merge in node order: output and `found` growth are identical
            // to the sequential sweep, independent of the thread count.
            let mut next: Vec<(Vec<usize>, Partition)> = Vec::new();
            for (i, node) in results.into_iter().enumerate() {
                let lhs = &level[i].0;
                stats.fd_candidates += node.checked;
                for (c, err) in node.determined_cols {
                    found.push((lhs.clone(), c));
                    let fd = Fd::new(
                        scheme.name().clone(),
                        scheme.attrs().select(lhs).expect("distinct columns"),
                        scheme.attrs().select(&[c]).expect("single column"),
                    );
                    if config.max_error > 0.0 {
                        scored.push(ScoredDependency {
                            dep: fd.clone().into(),
                            misses: err,
                            support: rows as u64,
                        });
                    }
                    out.push(fd);
                }
                next.extend(node.children);
            }
            if next.is_empty() {
                break;
            }
            level = next;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Row-at-a-time reference engine (the executable specification)
// ---------------------------------------------------------------------------

/// Mine `db` with the pre-columnar row-at-a-time engine over
/// [`CompiledRows`]: HashMap-based partition refinement, per-row
/// projection allocation, no parallelism.
///
/// Kept as the executable specification of the discovery semantics — the
/// columnar [`discover_with_config`] must produce an identical
/// [`Discovery`] (raw set, cover, and stats) for every database and
/// thread count; `tests/columnar_vs_rows.rs` property-checks exactly
/// that. Use the columnar entry points for anything performance-minded.
pub fn discover_reference(db: &Database, config: &DiscoveryConfig) -> Discovery {
    let schema = db.schema();
    let data = CompiledRows::new(db);
    let columns = column_table(schema);
    let mut stats = DiscoveryStats {
        rows: data.total_rows(),
        columns: columns.len(),
        distinct_values: data.distinct_values(),
        ..DiscoveryStats::default()
    };

    let mut raw: Vec<Dependency> = Vec::new();
    let unary = spider_unary_rows(&data, &columns);
    for ind in mine_inds_rows(schema, &data, &columns, &unary, config, &mut stats) {
        raw.push(ind.into());
    }
    stats.raw_inds = raw.len();
    for fd in mine_fds_rows(schema, &data, config, &mut stats) {
        raw.push(fd.into());
    }
    stats.raw_fds = raw.len() - stats.raw_inds;
    raw.sort();
    raw.dedup();

    let cover = minimize_cover(&raw, config);
    stats.pruned = raw.len() - cover.len();
    // The reference engine is exact-only: it specifies the zero-tolerance
    // semantics, and `columnar_vs_rows` compares it against exact runs.
    Discovery {
        raw,
        cover,
        scored: Vec::new(),
        stats,
        spill: SpillStats::default(),
    }
}

/// Row-based SPIDER: `occurs[v]` built by scanning every row of every
/// column (not the distinct runs), then the same refinement.
fn spider_unary_rows(data: &CompiledRows, columns: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let ncols = columns.len();
    let blocks = ncols.div_ceil(64);
    let nvals = data.distinct_values();
    let mut occurs = vec![0u64; nvals * blocks];
    for (c, &(rel, col)) in columns.iter().enumerate() {
        for row in data.rows(rel) {
            occurs[row[col] as usize * blocks + c / 64] |= 1 << (c % 64);
        }
    }
    let mut cand: Vec<Vec<u64>> = vec![vec![!0u64; blocks]; ncols];
    for v in 0..nvals {
        let set = &occurs[v * blocks..(v + 1) * blocks];
        for (b, &word) in set.iter().enumerate() {
            let mut rest = word;
            while rest != 0 {
                let c = b * 64 + rest.trailing_zeros() as usize;
                rest &= rest - 1;
                for (dst, &src) in cand[c].iter_mut().zip(set) {
                    *dst &= src;
                }
            }
        }
    }
    cand.iter()
        .map(|bits| {
            (0..ncols)
                .filter(|d| bits[d / 64] & (1 << (d % 64)) != 0)
                .collect()
        })
        .collect()
}

/// Row-based n-ary IND mining: sequential composition with
/// [`ProjectionIndex`]-backed validation.
fn mine_inds_rows(
    schema: &DatabaseSchema,
    data: &CompiledRows,
    columns: &[(usize, usize)],
    unary: &[Vec<usize>],
    config: &DiscoveryConfig,
    stats: &mut DiscoveryStats,
) -> Vec<Ind> {
    let mut out = Vec::new();
    let mut level: Vec<IndCand> = Vec::new();
    let mut by_pair: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for (c, supersets) in unary.iter().enumerate() {
        for &d in supersets {
            let cand = IndCand {
                lrel: columns[c].0,
                rrel: columns[d].0,
                lhs: vec![c],
                rhs: vec![d],
            };
            if !cand.is_trivial() {
                out.push(to_ind(schema, columns, &cand));
            }
            by_pair
                .entry((cand.lrel, cand.rrel))
                .or_default()
                .push((c, d));
            level.push(cand);
        }
    }
    let mut rhs_cache: HashMap<Vec<usize>, ProjectionIndex> = HashMap::new();
    for _arity in 2..=config.max_ind_arity {
        let mut next = Vec::new();
        for base in &level {
            let Some(extensions) = by_pair.get(&(base.lrel, base.rrel)) else {
                continue;
            };
            for &(a, b) in extensions {
                if a <= *base.lhs.last().expect("bases are nonempty") || base.rhs.contains(&b) {
                    continue;
                }
                let cand = IndCand {
                    lrel: base.lrel,
                    rrel: base.rrel,
                    lhs: base.lhs.iter().copied().chain([a]).collect(),
                    rhs: base.rhs.iter().copied().chain([b]).collect(),
                };
                let ok = if cand.is_trivial() {
                    true
                } else {
                    stats.ind_candidates += 1;
                    ind_holds_rows(data, columns, &cand, &mut rhs_cache)
                };
                if ok {
                    if !cand.is_trivial() {
                        out.push(to_ind(schema, columns, &cand));
                    }
                    next.push(cand);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }
    out
}

/// Row-based candidate validation against an index of right projections,
/// cached per right column set. The cache is keyed by the candidate's
/// global right-side column ids and probed borrow-keyed (a two-step
/// get-or-insert), so a cache hit clones nothing.
fn ind_holds_rows(
    data: &CompiledRows,
    columns: &[(usize, usize)],
    cand: &IndCand,
    rhs_cache: &mut HashMap<Vec<usize>, ProjectionIndex>,
) -> bool {
    if !rhs_cache.contains_key(cand.rhs.as_slice()) {
        let rrel = columns[cand.rhs[0]].0;
        let rcols: Vec<usize> = cand.rhs.iter().map(|&c| columns[c].1).collect();
        let mut idx = ProjectionIndex::new();
        for row in data.rows(rrel) {
            idx.add(rcols.iter().map(|&c| row[c]).collect());
        }
        rhs_cache.insert(cand.rhs.clone(), idx);
    }
    let index = &rhs_cache[cand.rhs.as_slice()];
    let lcols: Vec<usize> = cand.lhs.iter().map(|&c| columns[c].1).collect();
    data.rows(cand.lrel).iter().all(|row| {
        let key: Vec<u32> = lcols.iter().map(|&c| row[c]).collect();
        index.count(&key) > 0
    })
}

/// Row-based stripped-partition refinement by one column's values.
fn refine_rows(partition: &Partition, rows: &[Vec<u32>], col: usize) -> Partition {
    let mut out = Vec::new();
    let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
    for class in partition {
        for &r in class {
            groups.entry(rows[r as usize][col]).or_default().push(r);
        }
        for (_, group) in groups.drain() {
            if group.len() >= 2 {
                out.push(group);
            }
        }
    }
    out
}

/// Whether every class of `π_X` agrees on `col` — i.e. `X → col` holds.
fn determines_rows(partition: &Partition, rows: &[Vec<u32>], col: usize) -> bool {
    partition.iter().all(|class| {
        let v = rows[class[0] as usize][col];
        class.iter().all(|&r| rows[r as usize][col] == v)
    })
}

/// Row-based level-wise FD mining (sequential TANE sweep).
fn mine_fds_rows(
    schema: &DatabaseSchema,
    data: &CompiledRows,
    config: &DiscoveryConfig,
    stats: &mut DiscoveryStats,
) -> Vec<Fd> {
    let mut out = Vec::new();
    for (ri, scheme) in schema.schemes().iter().enumerate() {
        let rows = data.rows(ri);
        let arity = scheme.arity();
        let mut found: Vec<(Vec<usize>, usize)> = Vec::new();
        let determined = |found: &[(Vec<usize>, usize)], lhs: &[usize], c: usize| {
            found
                .iter()
                .any(|(y, a)| *a == c && y.iter().all(|x| lhs.contains(x)))
        };
        let root: Partition = if rows.len() >= 2 {
            vec![(0..rows.len() as u32).collect()]
        } else {
            Vec::new()
        };
        let mut level: Vec<(Vec<usize>, Partition)> = vec![(Vec::new(), root)];
        for size in 0..=config.max_fd_lhs {
            let mut next: Vec<(Vec<usize>, Partition)> = Vec::new();
            for (lhs, partition) in &level {
                let rhs: Vec<usize> = (0..arity)
                    .filter(|c| !lhs.contains(c) && !determined(&found, lhs, *c))
                    .collect();
                if rhs.is_empty() {
                    continue;
                }
                for &c in &rhs {
                    stats.fd_candidates += 1;
                    if determines_rows(partition, rows, c) {
                        found.push((lhs.clone(), c));
                        out.push(Fd::new(
                            scheme.name().clone(),
                            scheme.attrs().select(lhs).expect("distinct columns"),
                            scheme.attrs().select(&[c]).expect("single column"),
                        ));
                    }
                }
                if partition.is_empty() || size == config.max_fd_lhs {
                    continue;
                }
                let start = lhs.last().map_or(0, |&l| l + 1);
                for c in start..arity {
                    if determined(&found, lhs, c) {
                        continue;
                    }
                    let mut extended = lhs.clone();
                    extended.push(c);
                    next.push((extended, refine_rows(partition, rows, c)));
                }
            }
            if next.is_empty() {
                break;
            }
            level = next;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::generate::{random_database, random_schema, Rng, SchemaConfig};

    fn dep(src: &str) -> Dependency {
        src.parse().expect("test dependency parses")
    }

    fn db(schemes: &[&str], rows: &[(&str, &[i64])]) -> Database {
        let schema = DatabaseSchema::parse(schemes).unwrap();
        let mut db = Database::empty(schema);
        for (rel, row) in rows {
            db.insert_ints(rel, &[row]).unwrap();
        }
        db
    }

    #[test]
    fn spider_finds_all_unary_inds() {
        // R.A = {1,2} ⊆ S.B = {1,2,3}; nothing else is included.
        let db = db(
            &["R(A)", "S(B)"],
            &[
                ("R", &[1]),
                ("R", &[2]),
                ("S", &[1]),
                ("S", &[2]),
                ("S", &[3]),
            ],
        );
        let found = discover(&db);
        assert!(found.raw.contains(&dep("R[A] <= S[B]")));
        assert!(!found.raw.contains(&dep("S[B] <= R[A]")));
    }

    #[test]
    fn empty_columns_are_included_everywhere() {
        // R is empty, so R[A] ⊆ S[B] holds vacuously (matching
        // `core::satisfy`), but S[B] ⊆ R[A] does not.
        let db = db(&["R(A)", "S(B)"], &[("S", &[7])]);
        let found = discover(&db);
        assert!(found.raw.contains(&dep("R[A] <= S[B]")));
        assert!(!found.raw.contains(&dep("S[B] <= R[A]")));
    }

    #[test]
    fn nary_inds_compose_from_unary_ones() {
        // The pairs of R are a subset of the pairs of S, including a base
        // whose first position is a *trivial* unary IND within R = S case.
        let db = db(
            &["R(A, B)", "S(A, B)"],
            &[("R", &[1, 10]), ("S", &[1, 10]), ("S", &[2, 20])],
        );
        let found = discover(&db);
        assert!(found.raw.contains(&dep("R[A, B] <= S[A, B]")));
        // The binary IND subsumes its unary projections in the cover.
        assert!(implied_by(&found.cover, &dep("R[A] <= S[A]")));
        assert!(!found.raw.contains(&dep("S[A, B] <= R[A, B]")));
    }

    #[test]
    fn trivial_bases_compose_within_one_relation() {
        // R[A] ⊆ R[A] is trivial, but extending it yields the nontrivial
        // R[A, B] ⊆ R[A, C] — the composition must keep trivial bases.
        let db = db(
            &["R(A, B, C)"],
            &[("R", &[1, 5, 5]), ("R", &[2, 6, 6]), ("R", &[3, 7, 7])],
        );
        let found = discover(&db);
        assert!(found.raw.contains(&dep("R[A, B] <= R[A, C]")));
    }

    #[test]
    fn fd_mining_finds_minimal_fds_only() {
        // A is a key; B → C also holds; C → B does not.
        let db = db(
            &["R(A, B, C)"],
            &[
                ("R", &[1, 10, 100]),
                ("R", &[2, 10, 100]),
                ("R", &[3, 20, 100]),
                ("R", &[4, 30, 300]),
            ],
        );
        let found = discover(&db);
        assert!(found.raw.contains(&dep("R: A -> B")));
        assert!(found.raw.contains(&dep("R: B -> C")));
        assert!(!found.raw.contains(&dep("R: C -> B")));
        // A → C holds but is pruned from the cover (A → B, B → C imply it).
        assert!(found.raw.contains(&dep("R: A -> C")));
        assert!(!found.cover.contains(&dep("R: A -> C")));
        // Non-minimal left sides are never materialized.
        assert!(!found.raw.contains(&dep("R: A, B -> C")));
    }

    #[test]
    fn constant_columns_yield_empty_lhs_fds() {
        let db = db(&["R(A, B)"], &[("R", &[1, 9]), ("R", &[2, 9])]);
        let found = discover(&db);
        assert!(found.raw.contains(&dep("R: -> B")));
        // B constant means A → B is not minimal.
        assert!(!found.raw.contains(&dep("R: A -> B")));
    }

    #[test]
    fn cover_is_minimal_and_complete_on_random_databases() {
        let mut rng = Rng::new(0x5EED);
        for _ in 0..10 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 2,
                    min_arity: 2,
                    max_arity: 3,
                },
            );
            let db = random_database(&mut rng, &schema, 6, 3);
            let found = discover(&db);
            for d in &found.cover {
                assert!(found.raw.contains(d), "cover must be a subset of raw");
            }
            for d in &found.raw {
                assert!(implied_by(&found.cover, d), "cover must imply raw: {d}");
            }
            for i in 0..found.cover.len() {
                let mut rest = found.cover.clone();
                rest.remove(i);
                let still_complete = found.raw.iter().all(|d| implied_by(&rest, d));
                assert!(
                    !still_complete,
                    "cover member {} is redundant",
                    found.cover[i]
                );
            }
        }
    }

    #[test]
    fn columnar_engine_matches_the_reference_engine() {
        let mut rng = Rng::new(0xC01);
        for round in 0..8 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 2,
                    min_arity: 1,
                    max_arity: 3,
                },
            );
            let db = random_database(&mut rng, &schema, 8, 3);
            let config = DiscoveryConfig::default();
            let columnar = discover_with_config(&db, &config);
            let reference = discover_reference(&db, &config);
            assert_eq!(columnar.raw, reference.raw, "raw mismatch in round {round}");
            assert_eq!(
                columnar.cover, reference.cover,
                "cover mismatch in round {round}"
            );
            assert_eq!(
                columnar.stats, reference.stats,
                "stats mismatch in round {round}"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let mut rng = Rng::new(0xD1);
        let schema = random_schema(
            &mut rng,
            &SchemaConfig {
                relations: 2,
                min_arity: 2,
                max_arity: 3,
            },
        );
        let db = random_database(&mut rng, &schema, 12, 3);
        let single = discover_with_config(
            &db,
            &DiscoveryConfig {
                threads: 1,
                ..DiscoveryConfig::default()
            },
        );
        for threads in [2, 4, 7] {
            let multi = discover_with_config(
                &db,
                &DiscoveryConfig {
                    threads,
                    ..DiscoveryConfig::default()
                },
            );
            assert_eq!(single.raw, multi.raw);
            assert_eq!(single.cover, multi.cover);
            assert_eq!(single.stats, multi.stats);
        }
    }

    #[test]
    fn memory_budget_does_not_change_the_result() {
        let mut rng = Rng::new(0xB0D6);
        for round in 0..4 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 2,
                    min_arity: 1,
                    max_arity: 3,
                },
            );
            let db = random_database(&mut rng, &schema, 10, 3);
            let unbounded = discover_with_config(&db, &DiscoveryConfig::default());
            assert!(!unbounded.spill.spilled());
            for budget in [1usize, 64, 4096] {
                for threads in [1usize, 3] {
                    let budgeted = discover_with_config(
                        &db,
                        &DiscoveryConfig {
                            memory_budget: budget,
                            threads,
                            ..DiscoveryConfig::default()
                        },
                    );
                    assert_eq!(
                        unbounded.raw, budgeted.raw,
                        "raw mismatch: round {round}, budget {budget}, threads {threads}"
                    );
                    assert_eq!(unbounded.cover, budgeted.cover);
                    assert_eq!(unbounded.stats, budgeted.stats);
                    // A 1-byte budget must actually exercise the disk path
                    // whenever there is any data to profile.
                    if budget == 1 && budgeted.stats.rows > 0 {
                        assert!(budgeted.spill.spilled(), "1-byte budget never spilled");
                    }
                }
            }
        }
    }

    /// The simplest possible [`ShardExecutor`]: runs every shard itself,
    /// through the exact worker-side helpers the process workers use —
    /// the in-crate proof that profile + refutation-pass delegation is
    /// verdict-preserving, independent of any transport.
    struct InlineExec<'a> {
        schema: &'a DatabaseSchema,
        store: &'a ColumnStore,
        dir: SpillDir,
        passes: usize,
        chunk_ids: usize,
    }

    impl ShardExecutor for InlineExec<'_> {
        fn profile_columns(&mut self, ncols: usize) -> io::Result<Vec<RunSet>> {
            let columns = column_table(self.schema);
            assert_eq!(columns.len(), ncols);
            (0..ncols)
                .map(|c| {
                    profile_column_runs(self.store, &columns, c, self.dir.path(), self.chunk_ids)
                })
                .collect()
        }

        fn validate_candidates(&mut self, cands: &[IndCand]) -> io::Result<Vec<bool>> {
            let columns = column_table(self.schema);
            let mut ok = vec![true; cands.len()];
            for pass in 0..self.passes {
                for i in refute_candidates_pass(self.store, &columns, cands, pass, self.passes) {
                    ok[i] = false;
                }
            }
            Ok(ok)
        }

        fn count_misses(&mut self, cands: &[IndCand]) -> io::Result<Vec<u64>> {
            let columns = column_table(self.schema);
            let mut misses = vec![0u64; cands.len()];
            for pass in 0..self.passes {
                let counts =
                    count_candidate_misses_pass(self.store, &columns, cands, pass, self.passes);
                for (sum, m) in misses.iter_mut().zip(counts) {
                    *sum += m;
                }
            }
            Ok(misses)
        }
    }

    #[test]
    fn sharded_execution_equals_local() {
        let mut rng = Rng::new(0x5A4D);
        for round in 0..4 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 2,
                    min_arity: 1,
                    max_arity: 3,
                },
            );
            let db = random_database(&mut rng, &schema, 12, 3);
            let config = DiscoveryConfig::default();
            let local = discover_with_config(&db, &config);
            let store = ColumnStore::new(&db);
            for (passes, chunk_ids) in [(1usize, 1usize), (3, 16), (8, 1024)] {
                let mut exec = InlineExec {
                    schema: db.schema(),
                    store: &store,
                    dir: SpillDir::create_in(&std::env::temp_dir().join("depkit-shard-tests"))
                        .unwrap(),
                    passes,
                    chunk_ids,
                };
                let sharded =
                    discover_store_sharded(db.schema(), &store, &config, &mut exec).unwrap();
                assert_eq!(
                    local.raw, sharded.raw,
                    "raw mismatch: round {round}, passes {passes}, chunk {chunk_ids}"
                );
                assert_eq!(local.cover, sharded.cover);
                assert_eq!(local.stats, sharded.stats);
            }
        }
    }

    #[test]
    fn discover_store_matches_the_database_entry_point() {
        let db = db(
            &["R(A, B)", "S(B)"],
            &[("R", &[1, 10]), ("R", &[2, 10]), ("S", &[10])],
        );
        let config = DiscoveryConfig::default();
        let via_db = discover_with_config(&db, &config);
        let store = ColumnStore::new(&db);
        let via_store = discover_store(db.schema(), &store, &config).unwrap();
        assert_eq!(via_db.raw, via_store.raw);
        assert_eq!(via_db.cover, via_store.cover);
        assert_eq!(via_db.stats, via_store.stats);
    }

    #[test]
    fn stats_reflect_the_profile() {
        let db = db(&["R(A, B)", "S(C)"], &[("R", &[1, 2]), ("S", &[1])]);
        let found = discover(&db);
        assert_eq!(found.stats.rows, 2);
        assert_eq!(found.stats.columns, 3);
        assert_eq!(found.stats.distinct_values, 2);
        assert_eq!(found.stats.raw_fds + found.stats.raw_inds, found.raw.len());
        assert_eq!(found.stats.pruned, found.raw.len() - found.cover.len());
    }

    /// A small dirty database: one of R's ten A-values is junk (absent
    /// from S.B), and one of R's four C-rows breaks A → C.
    fn dirty_db() -> Database {
        let schema = DatabaseSchema::parse(&["R(A, C)", "S(B)"]).unwrap();
        let mut db = Database::empty(schema);
        // A: 1..=9 plus the junk 99; C: constant 7 except row 9.
        for a in 1..=9i64 {
            db.insert_ints("R", &[&[a, 7]]).unwrap();
        }
        db.insert_ints("R", &[&[99, 8]]).unwrap();
        for b in 1..=9i64 {
            db.insert_ints("S", &[&[b]]).unwrap();
        }
        db
    }

    #[test]
    fn zero_tolerance_is_byte_identical_to_exact_discovery() {
        let db = dirty_db();
        let exact = discover(&db);
        let store = ColumnStore::new(&db);
        for threads in [1usize, 3] {
            for budget in [0usize, 1] {
                let run = discover_with_config(
                    &db,
                    &DiscoveryConfig {
                        max_error: 0.0,
                        threads,
                        memory_budget: budget,
                        ..DiscoveryConfig::default()
                    },
                );
                assert_eq!(exact.raw, run.raw, "threads {threads}, budget {budget}");
                assert_eq!(exact.cover, run.cover);
                assert_eq!(exact.stats, run.stats);
                assert!(run.scored.is_empty(), "exact runs score nothing");
            }
        }
        let mut exec = InlineExec {
            schema: db.schema(),
            store: &store,
            dir: SpillDir::create_in(&std::env::temp_dir().join("depkit-approx-tests")).unwrap(),
            passes: 3,
            chunk_ids: 16,
        };
        let config = DiscoveryConfig {
            max_error: 0.0,
            ..DiscoveryConfig::default()
        };
        let sharded = discover_store_sharded(db.schema(), &store, &config, &mut exec).unwrap();
        assert_eq!(exact.raw, sharded.raw);
        assert_eq!(exact.cover, sharded.cover);
        assert_eq!(exact.stats, sharded.stats);
        assert!(sharded.scored.is_empty());
    }

    #[test]
    fn approximate_discovery_scores_planted_dirt() {
        let db = dirty_db();
        let config = DiscoveryConfig {
            max_error: 0.15,
            ..DiscoveryConfig::default()
        };
        let found = discover_with_config(&db, &config);
        // R[A] ⊆ S[B] misses exactly the junk row: confidence 9/10.
        let ind = found
            .scored
            .iter()
            .find(|s| s.dep == dep("R[A] <= S[B]"))
            .expect("dirty IND is mined at 15% tolerance");
        assert_eq!((ind.misses, ind.support), (1, 10));
        assert!((ind.confidence() - 0.9).abs() < 1e-12);
        // The constant-ish C column: `-> C` has g3 error 1 (nine 7s, one 8).
        let fd = found
            .scored
            .iter()
            .find(|s| s.dep == dep("R: -> C"))
            .expect("nearly-constant column is mined at 15% tolerance");
        assert_eq!((fd.misses, fd.support), (1, 10));
        // Dirty dependencies are in `raw` but never in the exact cover.
        assert!(found.raw.contains(&dep("R[A] <= S[B]")));
        assert!(!found.cover.contains(&dep("R[A] <= S[B]")));
        assert!(!found.cover.contains(&dep("R: -> C")));
        // `scored` is parallel to `raw`: same members, sorted by dependency.
        let scored_deps: Vec<&Dependency> = found.scored.iter().map(|s| &s.dep).collect();
        let raw_refs: Vec<&Dependency> = found.raw.iter().collect();
        assert_eq!(scored_deps, raw_refs);
        // Below the dirt level the junk candidates disappear again.
        let strict = discover_with_config(
            &db,
            &DiscoveryConfig {
                max_error: 0.05,
                ..DiscoveryConfig::default()
            },
        );
        assert!(!strict.raw.contains(&dep("R[A] <= S[B]")));
        assert!(strict.scored.iter().all(|s| s.misses == 0));
    }

    #[test]
    fn approximate_nary_inds_compose_over_dirty_bases() {
        // R's pairs miss S's on one of three rows; both unary projections
        // are within tolerance, so the binary candidate composes and its
        // miss count is exact.
        let db = db(
            &["R(A, B)", "S(A, B)"],
            &[
                ("R", &[1, 10]),
                ("R", &[2, 20]),
                ("R", &[3, 31]),
                ("S", &[1, 10]),
                ("S", &[2, 20]),
                ("S", &[3, 30]),
                ("S", &[4, 40]),
            ],
        );
        let config = DiscoveryConfig {
            max_error: 0.34,
            ..DiscoveryConfig::default()
        };
        let found = discover_with_config(&db, &config);
        let binary = found
            .scored
            .iter()
            .find(|s| s.dep == dep("R[A, B] <= S[A, B]"))
            .expect("dirty binary IND composes");
        assert_eq!((binary.misses, binary.support), (1, 3));
    }

    #[test]
    fn approximate_confidences_are_identical_across_modes() {
        let mut rng = Rng::new(0xA11D);
        for round in 0..4 {
            let schema = random_schema(
                &mut rng,
                &SchemaConfig {
                    relations: 2,
                    min_arity: 1,
                    max_arity: 3,
                },
            );
            let db = random_database(&mut rng, &schema, 10, 3);
            let config = DiscoveryConfig {
                max_error: 0.25,
                threads: 1,
                ..DiscoveryConfig::default()
            };
            let baseline = discover_with_config(&db, &config);
            for (threads, budget) in [(3usize, 0usize), (1, 1), (3, 64)] {
                let run = discover_with_config(
                    &db,
                    &DiscoveryConfig {
                        threads,
                        memory_budget: budget,
                        ..config.clone()
                    },
                );
                assert_eq!(
                    baseline.scored, run.scored,
                    "scored mismatch: round {round}, threads {threads}, budget {budget}"
                );
                assert_eq!(baseline.raw, run.raw);
                assert_eq!(baseline.cover, run.cover);
                assert_eq!(baseline.stats, run.stats);
            }
            let store = ColumnStore::new(&db);
            for passes in [1usize, 3, 8] {
                let mut exec = InlineExec {
                    schema: db.schema(),
                    store: &store,
                    dir: SpillDir::create_in(&std::env::temp_dir().join("depkit-approx-tests"))
                        .unwrap(),
                    passes,
                    chunk_ids: 16,
                };
                let sharded =
                    discover_store_sharded(db.schema(), &store, &config, &mut exec).unwrap();
                assert_eq!(
                    baseline.scored, sharded.scored,
                    "scored mismatch: round {round}, sharded passes {passes}"
                );
                assert_eq!(baseline.raw, sharded.raw);
                assert_eq!(baseline.cover, sharded.cover);
                assert_eq!(baseline.stats, sharded.stats);
            }
        }
    }

    #[test]
    fn ranked_orders_by_score_then_dependency_and_truncates() {
        let db = dirty_db();
        let config = DiscoveryConfig {
            max_error: 0.15,
            ..DiscoveryConfig::default()
        };
        let found = discover_with_config(&db, &config);
        let ranked = found.ranked(0);
        assert_eq!(ranked.len(), found.scored.len());
        for pair in ranked.windows(2) {
            assert!(
                pair[0].score() > pair[1].score()
                    || (pair[0].score() == pair[1].score() && pair[0].dep < pair[1].dep),
                "ranked order violated: {} before {}",
                pair[0].dep,
                pair[1].dep
            );
        }
        let top = found.ranked(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top, ranked[..3].to_vec());
    }
}
