//! Functional-dependency machinery.
//!
//! The centrepiece is the linear-time attribute-closure algorithm of Beeri &
//! Bernstein (reference \[BB\] of the paper), which Section 3 contrasts with
//! the IND decision procedure: FD implication is linear, IND implication is
//! PSPACE-complete. On top of the closure we provide implication testing,
//! candidate-key enumeration (Lucchesi–Osborn), and minimal covers.

use depkit_core::attr::{Attr, AttrSeq};
use depkit_core::dependency::Fd;
use depkit_core::intern::{AttrBitSet, AttrId, Catalog, IdSeq};
use depkit_core::schema::{RelName, RelationScheme};
use std::collections::{BTreeSet, VecDeque};

/// An FD-implication engine for a single relation, compiled onto the
/// interned-id representation of [`depkit_core::intern`].
///
/// Construction interns every attribute mentioned by the FDs into a private
/// [`Catalog`] and builds a dense watcher table (`Vec<Vec<u32>>` indexed by
/// [`AttrId`]); each closure query then runs the Beeri–Bernstein counting
/// algorithm entirely over [`AttrBitSet`]s — no string hashing, no
/// per-attribute cloning. The string-typed methods ([`FdEngine::closure`],
/// [`FdEngine::implies`]) intern at the boundary and resolve ids back only
/// for output; id-level callers can use [`FdEngine::closure_bits`] directly.
///
/// Construction is `O(total FD size)`; each closure query is linear in the
/// total size of the FDs (the Beeri–Bernstein counting algorithm). The
/// pre-refactor string-based implementation survives as
/// [`crate::reference::ReferenceFdEngine`] for differential testing.
///
/// # Examples
///
/// The closure / implication round trip:
///
/// ```
/// use depkit_core::attr::{attrs, Attr};
/// use depkit_core::dependency::Fd;
/// use depkit_solver::fd::FdEngine;
///
/// let fds = vec![
///     Fd::new("R", attrs(&["A"]), attrs(&["B"])),
///     Fd::new("R", attrs(&["B"]), attrs(&["C"])),
/// ];
/// let engine = FdEngine::new("R", &fds);
///
/// // A⁺ = {A, B, C}: the Beeri–Bernstein closure chases both FDs.
/// let closure = engine.closure(&attrs(&["A"]));
/// assert!(closure.contains(&Attr::new("C")));
/// assert_eq!(closure.len(), 3);
///
/// // By Armstrong completeness, implication is a closure membership test.
/// assert!(engine.implies(&Fd::new("R", attrs(&["A"]), attrs(&["C"]))));
/// assert!(!engine.implies(&Fd::new("R", attrs(&["B"]), attrs(&["A"]))));
/// ```
#[derive(Debug, Clone)]
pub struct FdEngine {
    rel: RelName,
    fds: Vec<Fd>,
    catalog: Catalog,
    /// Compiled sides of `fds[i]`, parallel to `fds`.
    lhs_ids: Vec<IdSeq>,
    rhs_ids: Vec<IdSeq>,
    /// `watchers[attr_id]` = indices of FDs whose LHS contains the attribute.
    watchers: Vec<Vec<u32>>,
}

impl FdEngine {
    /// Build an engine from the FDs that speak about `rel`; FDs about other
    /// relations are ignored (FD implication never crosses relations).
    pub fn new(rel: impl Into<RelName>, fds: &[Fd]) -> Self {
        let rel = rel.into();
        let fds: Vec<Fd> = fds.iter().filter(|f| f.rel == rel).cloned().collect();
        let mut catalog = Catalog::new();
        let lhs_ids: Vec<IdSeq> = fds.iter().map(|f| catalog.intern_attrs(&f.lhs)).collect();
        let rhs_ids: Vec<IdSeq> = fds.iter().map(|f| catalog.intern_attrs(&f.rhs)).collect();
        let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); catalog.attr_count()];
        for (i, lhs) in lhs_ids.iter().enumerate() {
            for &a in lhs.ids() {
                watchers[a.index()].push(i as u32);
            }
        }
        FdEngine {
            rel,
            fds,
            catalog,
            lhs_ids,
            rhs_ids,
            watchers,
        }
    }

    /// The relation this engine reasons about.
    pub fn rel(&self) -> &RelName {
        &self.rel
    }

    /// The FDs the engine was built from.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// The engine's private symbol catalog (ids are only meaningful against
    /// this catalog).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The attribute closure `X⁺` of `start` under the engine's FDs
    /// (Beeri–Bernstein counting algorithm, linear time).
    pub fn closure(&self, start: &AttrSeq) -> BTreeSet<Attr> {
        self.closure_with_trace(start).0
    }

    /// Id-level closure: the compiled hot path. `seed` ids must come from
    /// [`FdEngine::catalog`]; attributes of the queried set that the FDs
    /// never mention have no id and cannot fire anything, so callers simply
    /// omit them (and union them back into their own view of the result).
    pub fn closure_bits(&self, seed: &AttrBitSet) -> AttrBitSet {
        let mut closure = seed.clone();
        let mut queue: VecDeque<AttrId> = closure.iter().collect();
        let mut missing: Vec<u32> = self.lhs_ids.iter().map(|l| l.len() as u32).collect();
        for (i, &m) in missing.iter().enumerate() {
            if m == 0 {
                Self::fire(&self.rhs_ids[i], &mut closure, &mut queue);
            }
        }
        while let Some(a) = queue.pop_front() {
            for &i in &self.watchers[a.index()] {
                let i = i as usize;
                missing[i] -= 1;
                if missing[i] == 0 {
                    Self::fire(&self.rhs_ids[i], &mut closure, &mut queue);
                }
            }
        }
        closure
    }

    fn fire(rhs: &IdSeq, closure: &mut AttrBitSet, queue: &mut VecDeque<AttrId>) {
        for &a in rhs.ids() {
            if closure.insert(a) {
                queue.push_back(a);
            }
        }
    }

    /// Attribute closure together with a derivation trace: for each attribute
    /// added beyond `start`, the index of the FD that added it. The trace
    /// lets callers reconstruct Armstrong-style proofs.
    pub fn closure_with_trace(&self, start: &AttrSeq) -> (BTreeSet<Attr>, Vec<(Attr, usize)>) {
        // Boundary interning: attributes unknown to the catalog are inert
        // (no FD mentions them), so they go straight to the output set.
        let mut closure_bits = AttrBitSet::with_capacity(self.catalog.attr_count());
        let mut out: BTreeSet<Attr> = BTreeSet::new();
        let mut queue: VecDeque<AttrId> = VecDeque::new();
        for a in start.attrs() {
            match self.catalog.attr_id(a) {
                Some(id) => {
                    if closure_bits.insert(id) {
                        queue.push_back(id);
                    }
                }
                None => {
                    out.insert(a.clone());
                }
            }
        }
        let mut trace_ids: Vec<(AttrId, usize)> = Vec::new();
        let mut missing: Vec<u32> = self.lhs_ids.iter().map(|l| l.len() as u32).collect();
        let fire = |i: usize,
                    closure: &mut AttrBitSet,
                    queue: &mut VecDeque<AttrId>,
                    trace: &mut Vec<(AttrId, usize)>| {
            for &a in self.rhs_ids[i].ids() {
                if closure.insert(a) {
                    queue.push_back(a);
                    trace.push((a, i));
                }
            }
        };
        // FDs with empty LHS fire immediately.
        for (i, &m) in missing.iter().enumerate() {
            if m == 0 {
                fire(i, &mut closure_bits, &mut queue, &mut trace_ids);
            }
        }
        while let Some(a) = queue.pop_front() {
            for &i in &self.watchers[a.index()] {
                let i = i as usize;
                missing[i] -= 1;
                if missing[i] == 0 {
                    fire(i, &mut closure_bits, &mut queue, &mut trace_ids);
                }
            }
        }
        out.extend(closure_bits.iter().map(|id| self.catalog.resolve_attr(id)));
        let trace = trace_ids
            .into_iter()
            .map(|(id, i)| (self.catalog.resolve_attr(id), i))
            .collect();
        (out, trace)
    }

    /// Whether the engine's FDs logically imply `target` (which must speak
    /// about the same relation). By Armstrong completeness this holds iff
    /// `target.rhs ⊆ closure(target.lhs)`.
    pub fn implies(&self, target: &Fd) -> bool {
        if target.rel != self.rel {
            return target.is_trivial();
        }
        let mut seed = AttrBitSet::with_capacity(self.catalog.attr_count());
        for a in target.lhs.attrs() {
            if let Some(id) = self.catalog.attr_id(a) {
                seed.insert(id);
            }
        }
        let closure = self.closure_bits(&seed);
        target
            .rhs
            .attrs()
            .iter()
            .all(|a| match self.catalog.attr_id(a) {
                Some(id) => closure.contains(id),
                // An attribute no FD mentions is in the closure iff it was in X.
                None => target.lhs.contains_attr(a),
            })
    }

    /// All candidate keys of `scheme` under the engine's FDs: the minimal
    /// attribute sets whose closure contains every attribute of the scheme.
    ///
    /// Uses the Lucchesi–Osborn successor generation: from a known key `K`
    /// and an FD `X → Y`, the set `X ∪ (K − Y)` is a superkey; minimizing
    /// each and iterating enumerates all keys.
    pub fn candidate_keys(&self, scheme: &RelationScheme) -> Vec<BTreeSet<Attr>> {
        let all: BTreeSet<Attr> = scheme.attrs().attrs().iter().cloned().collect();
        let first = self.minimize_superkey(&all, &all);
        let mut keys: Vec<BTreeSet<Attr>> = vec![first];
        let mut frontier = keys.clone();
        while let Some(k) = frontier.pop() {
            for fd in &self.fds {
                let x: BTreeSet<Attr> = fd.lhs.attrs().iter().cloned().collect();
                let y: BTreeSet<Attr> = fd.rhs.attrs().iter().cloned().collect();
                let mut candidate: BTreeSet<Attr> = x;
                candidate.extend(k.difference(&y).cloned());
                // Skip if a known key is contained in the candidate.
                if keys.iter().any(|known| known.is_subset(&candidate)) {
                    continue;
                }
                let minimized = self.minimize_superkey(&candidate, &all);
                if !keys.contains(&minimized) {
                    keys.push(minimized.clone());
                    frontier.push(minimized);
                }
            }
        }
        keys.sort();
        keys
    }

    fn minimize_superkey(&self, superkey: &BTreeSet<Attr>, all: &BTreeSet<Attr>) -> BTreeSet<Attr> {
        let mut key: Vec<Attr> = superkey.iter().cloned().collect();
        let mut i = 0;
        while i < key.len() {
            let mut shrunk = key.clone();
            shrunk.remove(i);
            let seq = AttrSeq::new(shrunk.clone()).expect("attributes are distinct");
            let c = self.closure(&seq);
            if all.iter().all(|a| c.contains(a)) {
                key = shrunk;
            } else {
                i += 1;
            }
        }
        key.into_iter().collect()
    }
}

/// Whether `fds ⊨ target` where all FDs may mention different relations
/// (implication is checked within `target`'s relation only, which is exact:
/// FDs about other relations cannot affect it).
pub fn implies_fd(fds: &[Fd], target: &Fd) -> bool {
    FdEngine::new(target.rel.clone(), fds).implies(target)
}

/// Compute a minimal cover of `fds` (all assumed to be about one relation):
/// an equivalent set where every RHS is a single attribute, no LHS attribute
/// is extraneous, and no FD is redundant.
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    if fds.is_empty() {
        return Vec::new();
    }
    let rel = fds[0].rel.clone();
    // 1. Split right-hand sides.
    let mut work: Vec<Fd> = Vec::new();
    for f in fds {
        for a in f.rhs.attrs() {
            let single = AttrSeq::new(vec![a.clone()]).expect("single attribute");
            let fd = Fd::new(rel.clone(), f.lhs.clone(), single);
            if !fd.is_trivial() && !work.contains(&fd) {
                work.push(fd);
            }
        }
    }
    // 2. Remove extraneous LHS attributes.
    let mut i = 0;
    while i < work.len() {
        let mut j = 0;
        while j < work[i].lhs.len() {
            let mut shrunk: Vec<Attr> = work[i].lhs.attrs().to_vec();
            shrunk.remove(j);
            let candidate = Fd::new(
                rel.clone(),
                AttrSeq::new(shrunk).expect("distinct attributes"),
                work[i].rhs.clone(),
            );
            if implies_fd(&work, &candidate) {
                work[i] = candidate;
            } else {
                j += 1;
            }
        }
        i += 1;
    }
    // 3. Remove redundant FDs.
    let mut i = 0;
    while i < work.len() {
        let without: Vec<Fd> = work
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, f)| f.clone())
            .collect();
        if implies_fd(&without, &work[i]) {
            work.remove(i);
        } else {
            i += 1;
        }
    }
    work.sort();
    work.dedup();
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use depkit_core::attr::attrs;

    fn fd(src: &str) -> Fd {
        match depkit_core::parser::parse_dependency(src).unwrap() {
            depkit_core::Dependency::Fd(f) => f,
            _ => panic!("not an FD: {src}"),
        }
    }

    #[test]
    fn closure_basics() {
        let fds = vec![fd("R: A -> B"), fd("R: B -> C"), fd("R: C, D -> E")];
        let eng = FdEngine::new("R", &fds);
        let c = eng.closure(&attrs(&["A"]));
        assert!(c.contains(&Attr::new("A")));
        assert!(c.contains(&Attr::new("B")));
        assert!(c.contains(&Attr::new("C")));
        assert!(!c.contains(&Attr::new("E")));
        let c2 = eng.closure(&attrs(&["A", "D"]));
        assert!(c2.contains(&Attr::new("E")));
    }

    #[test]
    fn closure_with_empty_lhs_fd() {
        // R: ∅ -> A fires unconditionally.
        let fds = vec![fd("R: -> A"), fd("R: A -> B")];
        let eng = FdEngine::new("R", &fds);
        let c = eng.closure(&AttrSeq::empty());
        assert!(c.contains(&Attr::new("A")));
        assert!(c.contains(&Attr::new("B")));
    }

    #[test]
    fn implication() {
        let fds = vec![fd("R: A -> B"), fd("R: B -> C")];
        let eng = FdEngine::new("R", &fds);
        assert!(eng.implies(&fd("R: A -> C")));
        assert!(eng.implies(&fd("R: A, C -> B")));
        assert!(!eng.implies(&fd("R: B -> A")));
        // Trivial FDs are always implied.
        assert!(eng.implies(&fd("R: A, B -> A")));
        // FDs about other relations: only trivial ones are implied.
        assert!(!eng.implies(&fd("S: A -> B")));
        assert!(eng.implies(&fd("S: A, B -> B")));
    }

    #[test]
    fn closure_trace_reconstructs_derivation() {
        let fds = vec![fd("R: A -> B"), fd("R: B -> C")];
        let eng = FdEngine::new("R", &fds);
        let (c, trace) = eng.closure_with_trace(&attrs(&["A"]));
        assert_eq!(c.len(), 3);
        assert_eq!(trace.len(), 2);
        // B added by FD 0, C added by FD 1.
        assert_eq!(trace[0], (Attr::new("B"), 0));
        assert_eq!(trace[1], (Attr::new("C"), 1));
    }

    #[test]
    fn candidate_keys_simple() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C"]));
        let fds = vec![fd("R: A -> B"), fd("R: B -> C")];
        let eng = FdEngine::new("R", &fds);
        let keys = eng.candidate_keys(&scheme);
        assert_eq!(keys.len(), 1);
        assert!(keys[0].contains(&Attr::new("A")));
        assert_eq!(keys[0].len(), 1);
    }

    #[test]
    fn candidate_keys_cyclic() {
        // A -> B, B -> A over R(A, B, C): keys are {A, C} and {B, C}.
        let scheme = RelationScheme::new("R", attrs(&["A", "B", "C"]));
        let fds = vec![fd("R: A -> B"), fd("R: B -> A")];
        let eng = FdEngine::new("R", &fds);
        let keys = eng.candidate_keys(&scheme);
        assert_eq!(keys.len(), 2);
        for k in &keys {
            assert_eq!(k.len(), 2);
            assert!(k.contains(&Attr::new("C")));
        }
    }

    #[test]
    fn candidate_keys_no_fds() {
        let scheme = RelationScheme::new("R", attrs(&["A", "B"]));
        let eng = FdEngine::new("R", &[]);
        let keys = eng.candidate_keys(&scheme);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].len(), 2);
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        let fds = vec![
            fd("R: A -> B, C"),
            fd("R: B -> C"),
            fd("R: A -> C"),    // redundant given A -> B, B -> C
            fd("R: A, B -> C"), // A extraneous... B extraneous: A -> C redundant
        ];
        let cover = minimal_cover(&fds);
        // Expected: {A -> B, B -> C}.
        assert_eq!(cover.len(), 2);
        assert!(implies_fd(&cover, &fd("R: A -> C")));
        for f in &cover {
            assert_eq!(f.rhs.len(), 1);
        }
        // Equivalence both ways.
        for f in &fds {
            assert!(implies_fd(&cover, f));
        }
    }

    #[test]
    fn minimal_cover_strips_extraneous_lhs() {
        let fds = vec![fd("R: A -> B"), fd("R: A, C -> B")];
        let cover = minimal_cover(&fds);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0], fd("R: A -> B"));
    }

    #[test]
    fn closure_is_monotone_and_idempotent() {
        let fds = vec![fd("R: A -> B"), fd("R: B, C -> D"), fd("R: D -> A")];
        let eng = FdEngine::new("R", &fds);
        let small = eng.closure(&attrs(&["A"]));
        let big = eng.closure(&attrs(&["A", "C"]));
        assert!(small.is_subset(&big));
        // Idempotence: closure(closure(X)) = closure(X).
        let again_seq = AttrSeq::new(big.iter().cloned().collect()).unwrap();
        assert_eq!(eng.closure(&again_seq), big);
    }
}
